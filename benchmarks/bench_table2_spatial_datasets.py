"""Table 2 — characteristics of the spatial datasets.

Prints the paper's reported cardinality/dimensionality next to the
synthetic substitute actually generated at bench scale.
"""

from repro.datasets import SPATIAL_DATASETS

from conftest import RESULTS_DIR, dataset_n


def _table() -> str:
    lines = [
        "Table 2 — spatial datasets (paper scale vs bench-scale substitute)",
        f"{'name':10s} {'d':>2s} {'paper n':>10s} {'bench n':>9s}  description",
    ]
    for name, spec in SPATIAL_DATASETS.items():
        data = spec.make(dataset_n(name), rng=0)
        lines.append(
            f"{name:10s} {spec.dimensionality:2d} {spec.paper_cardinality:10,d} "
            f"{data.n:9,d}  {spec.description}"
        )
        assert data.ndim == spec.dimensionality
    return "\n".join(lines)


def bench_table2_spatial_datasets(benchmark):
    table = benchmark.pedantic(_table, rounds=1, iterations=1)
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "table2_spatial_datasets.txt").write_text(table + "\n")
