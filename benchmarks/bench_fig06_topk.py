"""Figure 6 — top-k frequent-string mining precision.

Six panels: {mooc, msnbc} x k in {50, 100, 200}, comparing Truncate,
PrivTree, N-gram and EM over the epsilon sweep.
"""

import pytest

from repro.experiments import format_float, run_topk_experiment

from conftest import sweep_params, dataset_n, emit

PANELS = [
    (name, k) for name in ("mooc", "msnbc") for k in (50, 100, 200)
]


@pytest.mark.parametrize("dataset,k", PANELS, ids=[f"{d}-top{k}" for d, k in PANELS])
def bench_fig06_topk(benchmark, dataset, k):
    params = sweep_params()

    def run():
        return run_topk_experiment(
            dataset,
            k=k,
            epsilons=params["epsilons"],
            n_reps=params["n_reps"],
            dataset_n=dataset_n(dataset),
            rng=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, format_float, "fig06_topk.txt")
