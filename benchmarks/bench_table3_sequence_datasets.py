"""Table 3 — characteristics of the sequence datasets.

Cardinality, alphabet size, average length, l_top and the number of
sequences the truncation rule affects, paper vs bench-scale substitute.
"""

from repro.datasets import SEQUENCE_DATASETS

from conftest import RESULTS_DIR, dataset_n


def _table() -> str:
    lines = [
        "Table 3 — sequence datasets (paper scale vs bench-scale substitute)",
        f"{'name':8s} {'|I|':>4s} {'paper n':>9s} {'bench n':>8s} "
        f"{'paper avg':>9s} {'bench avg':>9s} {'l_top':>5s} {'#>l_top':>8s}",
    ]
    for name, spec in SEQUENCE_DATASETS.items():
        data = spec.make(dataset_n(name), rng=0)
        lines.append(
            f"{name:8s} {spec.dimensionality:4d} {spec.paper_cardinality:9,d} "
            f"{data.n:8,d} {spec.paper_average_length:9.2f} "
            f"{data.average_length:9.2f} {spec.l_top:5d} "
            f"{data.n_longer_than(spec.l_top):8,d}"
        )
        assert data.alphabet.size == spec.dimensionality
    return "\n".join(lines)


def bench_table3_sequence_datasets(benchmark):
    table = benchmark.pedantic(_table, rounds=1, iterations=1)
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "table3_sequence_datasets.txt").write_text(table + "\n")
