"""Ablation — how dataset scale moves the PrivTree-vs-baselines gap.

EXPERIMENTS.md attributes the compressed Figure 5 orderings to the reduced
cardinality of the synthetic substitutes: PrivTree's leaf counts stop at
Theta(delta * depth) points regardless of n, so its relative error falls
roughly linearly with n while grid granularities adapt more slowly.  This
bench measures PrivTree, DAWA and UG on the road analogue at three scales
(fixed ε = 0.8, medium queries) so the trend is part of the record.
"""

import numpy as np

from repro.baselines import dawa_histogram, ug_histogram
from repro.datasets import roadlike
from repro.experiments import SweepResult, format_percent
from repro.mechanisms import ensure_rng, spawn
from repro.spatial import (
    average_relative_error,
    generate_workload,
    privtree_histogram,
)

from conftest import FULL, emit


def _scale_sweep() -> SweepResult:
    sizes = [25_000, 100_000, 400_000] if FULL else [20_000, 60_000, 180_000]
    epsilon = 0.8
    reps = 3 if FULL else 2
    gen = ensure_rng(5)
    methods = {
        "PrivTree": lambda d, r: privtree_histogram(d, epsilon, rng=r),
        "DAWA": lambda d, r: dawa_histogram(d, epsilon, rng=r),
        "UG": lambda d, r: ug_histogram(d, epsilon, rng=r),
    }
    result = SweepResult(
        title=f"Ablation — error vs dataset scale (road/medium, eps={epsilon})",
        row_label="n",
        rows=[float(n) for n in sizes],
        columns=[],
    )
    columns: dict[str, list[float]] = {name: [] for name in methods}
    for n in sizes:
        dataset = roadlike(n, rng=0)
        queries = generate_workload(dataset.domain, "medium", 60, rng=1)
        for name, build in methods.items():
            errs = [
                average_relative_error(build(dataset, r).range_count, dataset, queries)
                for r in spawn(ensure_rng(gen.integers(2**32)), reps)
            ]
            columns[name].append(float(np.mean(errs)))
    for name, column in columns.items():
        result.add_column(name, column)
    # The recorded trend: every method improves with scale.
    for column in columns.values():
        assert column[-1] < column[0]
    return result


def bench_ablation_scale(benchmark):
    result = benchmark.pedantic(_scale_sweep, rounds=1, iterations=1)
    emit(result, format_percent, "ablation_scale.txt")
