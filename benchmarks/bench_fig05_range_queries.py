"""Figure 5 — range-count relative error on the four spatial datasets.

Twelve panels: {road, Gowalla, NYC, Beijing} x {small, medium, large}
query bands, each sweeping epsilon over the paper's six values for every
applicable method (PrivTree, UG, AG, Hierarchy, DAWA, Privelet).
"""

import pytest

from repro.experiments import format_percent, run_range_query_experiment

from conftest import sweep_params, dataset_n, emit

PANELS = [
    (name, band)
    for name in ("road", "gowalla", "nyc", "beijing")
    for band in ("small", "medium", "large")
]


@pytest.mark.parametrize("dataset,band", PANELS, ids=[f"{d}-{b}" for d, b in PANELS])
def bench_fig05_range_queries(benchmark, dataset, band):
    params = sweep_params()

    def run():
        return run_range_query_experiment(
            dataset,
            band,
            epsilons=params["epsilons"],
            n_reps=params["n_reps"],
            n_queries=params["n_queries"],
            dataset_n=dataset_n(dataset),
            rng=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, format_percent, "fig05_range_queries.txt")
