"""Figure 10 — impact of the grid-size factor r on AG (2-d datasets).

road and Gowalla panels (medium queries): both AG grids scaled by r.
"""

import pytest

from repro.experiments import format_percent, run_ag_gridsize_ablation

from conftest import sweep_params, dataset_n, emit


@pytest.mark.parametrize("dataset", ["road", "gowalla"])
def bench_fig10_ag_gridsize(benchmark, dataset):
    params = sweep_params()

    def run():
        return run_ag_gridsize_ablation(
            dataset,
            "medium",
            epsilons=params["epsilons"],
            n_reps=params["n_reps"],
            n_queries=params["n_queries"],
            dataset_n=dataset_n(dataset),
            rng=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, format_percent, "fig10_ag_gridsize.txt")
