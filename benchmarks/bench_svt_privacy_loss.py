"""Section 5 / Appendix A — SVT privacy-loss counterexamples.

Sweeps the query count k and reports the exact privacy loss of the binary
and vanilla SVTs at the claimed noise scale (lambda = 2/epsilon, epsilon=1),
next to the bound the improved SVT actually guarantees.  The reproduced
content of Lemma 5.1 / the Claim 2 refutation: losses grow linearly in k,
blowing past the claimed 2*epsilon.
"""

from repro.experiments import SweepResult, format_float
from repro.svt import (
    binary_svt_log_ratio,
    improved_svt_log_ratio_bound,
    vanilla_svt_log_ratio,
)

from conftest import emit


def _loss_sweep() -> SweepResult:
    lam = 2.0  # the scale Claim 1 / Claim 2 assert suffices for epsilon = 1
    ks = [2, 4, 8, 16, 32, 64]
    result = SweepResult(
        title="SVT privacy loss at the claimed scale (lambda=2, i.e. eps=1)",
        row_label="k",
        rows=[float(k) for k in ks],
        columns=[],
    )
    binary = [binary_svt_log_ratio(k, lam) for k in ks]
    vanilla = [vanilla_svt_log_ratio(k, lam) for k in ks]
    result.add_column("BinarySVT", binary)
    result.add_column("VanillaSVT", vanilla)
    result.add_column("claimed 2*eps", [2.0] * len(ks))
    result.add_column(
        "ImprovedSVT bound", [improved_svt_log_ratio_bound(lam)] * len(ks)
    )
    # The reproduced negative result: losses exceed the claim for large k.
    assert binary[-1] > 2.0
    assert vanilla[-1] > 2.0
    return result


def bench_svt_privacy_loss(benchmark):
    result = benchmark.pedantic(_loss_sweep, rounds=1, iterations=1)
    emit(result, format_float, "svt_privacy_loss.txt")
