"""Ablation — PrivTree's §3.4 parameter choices.

Two design knobs the paper fixes without a figure:

* the ε split between tree structure and leaf counts (the paper uses ½/½);
* the split threshold θ (the paper argues θ = 0 suffices thanks to the
  negative bias).

This bench sweeps both on the road analogue so the defaults can be checked
against alternatives.
"""

from repro.datasets import roadlike
from repro.experiments import SweepResult, format_percent
from repro.mechanisms import ensure_rng, spawn
from repro.spatial import (
    average_relative_error,
    generate_workload,
    privtree_histogram,
)

from conftest import FULL, emit


def _sweep(build_variants: dict, title: str) -> SweepResult:
    import numpy as np

    dataset = roadlike(60_000 if not FULL else 150_000, rng=0)
    queries = generate_workload(dataset.domain, "medium", 80, rng=1)
    epsilons = [0.1, 0.4, 1.6]
    reps = 3 if FULL else 2
    gen = ensure_rng(2)
    result = SweepResult(title=title, row_label="epsilon", rows=epsilons, columns=[])
    for name, build in build_variants.items():
        column = []
        for eps in epsilons:
            errs = [
                average_relative_error(
                    build(dataset, eps, r).range_count, dataset, queries
                )
                for r in spawn(ensure_rng(gen.integers(2**32)), reps)
            ]
            column.append(float(np.mean(errs)))
        result.add_column(name, column)
    return result


def bench_ablation_budget_split(benchmark):
    variants = {
        f"tree={frac:g}": (
            lambda data, eps, rng, frac=frac: privtree_histogram(
                data, eps, tree_fraction=frac, rng=rng
            )
        )
        for frac in (0.2, 0.35, 0.5, 0.65, 0.8)
    }
    result = benchmark.pedantic(
        lambda: _sweep(
            variants, "Ablation — budget fraction spent on tree structure (road/medium)"
        ),
        rounds=1,
        iterations=1,
    )
    emit(result, format_percent, "ablation_budget_split.txt")


def bench_ablation_theta(benchmark):
    variants = {
        f"theta={theta:g}": (
            lambda data, eps, rng, theta=theta: privtree_histogram(
                data, eps, theta=theta, rng=rng
            )
        )
        for theta in (0.0, 10.0, 50.0, 200.0)
    }
    result = benchmark.pedantic(
        lambda: _sweep(variants, "Ablation — split threshold theta (road/medium)"),
        rounds=1,
        iterations=1,
    )
    emit(result, format_percent, "ablation_theta.txt")
