"""Figure 11 — impact of the tree height h on Hierarchy (2-d datasets).

road and Gowalla panels (medium queries): heights 3..8 at a fixed
128x128 leaf grid; h = 3 is the published heuristic.
"""

import pytest

from repro.experiments import format_percent, run_hierarchy_height_ablation

from conftest import sweep_params, dataset_n, emit


@pytest.mark.parametrize("dataset", ["road", "gowalla"])
def bench_fig11_hierarchy_height(benchmark, dataset):
    params = sweep_params()

    def run():
        return run_hierarchy_height_ablation(
            dataset,
            "medium",
            epsilons=params["epsilons"],
            n_reps=params["n_reps"],
            n_queries=params["n_queries"],
            dataset_n=dataset_n(dataset),
            rng=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, format_percent, "fig11_hierarchy_height.txt")
