"""Figure 9 — impact of the grid-size factor r on UG.

One panel per dataset (medium queries): UG with its total cell count
scaled by r in {1/9, 1/3, 1, 3, 9}; r = 1 is the published guideline.
"""

import pytest

from repro.experiments import format_percent, run_ug_gridsize_ablation

from conftest import sweep_params, dataset_n, emit


@pytest.mark.parametrize("dataset", ["road", "gowalla", "nyc", "beijing"])
def bench_fig09_ug_gridsize(benchmark, dataset):
    params = sweep_params()

    def run():
        return run_ug_gridsize_ablation(
            dataset,
            "medium",
            epsilons=params["epsilons"],
            n_reps=params["n_reps"],
            n_queries=params["n_queries"],
            dataset_n=dataset_n(dataset),
            rng=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, format_percent, "fig09_ug_gridsize.txt")
