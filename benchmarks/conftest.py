"""Shared configuration for the reproduction benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper: it runs
the corresponding experiment (timed once under pytest-benchmark) and writes
the paper-style series to ``benchmarks/results/<name>.txt`` (also echoed to
stdout, visible with ``pytest -s``).

Two scales are supported:

* default — laptop-light: one repetition per cell, scaled-down datasets;
  the whole suite runs in a few minutes.
* ``REPRO_BENCH_FULL=1`` — closer to the paper: registry-default dataset
  sizes and multiple repetitions (slower, smoother curves).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

import pytest

from repro.experiments import PAPER_EPSILONS, SweepResult

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Per-dataset cardinalities for the light bench scale.
LIGHT_SPATIAL_N = {"road": 60_000, "gowalla": 30_000, "nyc": 20_000, "beijing": 10_000}
LIGHT_SEQUENCE_N = {"mooc": 8_000, "msnbc": 15_000}


def sweep_params() -> dict:
    """Common sweep parameters at the chosen scale."""
    if FULL:
        return {"epsilons": PAPER_EPSILONS, "n_reps": 5, "n_queries": 200}
    return {"epsilons": PAPER_EPSILONS, "n_reps": 1, "n_queries": 80}


def dataset_n(name: str) -> int | None:
    """Bench-scale cardinality for a registered dataset (None = default)."""
    if FULL:
        return None
    return LIGHT_SPATIAL_N.get(name) or LIGHT_SEQUENCE_N.get(name)


def emit(result: SweepResult, fmt: Callable[[float], str], filename: str) -> None:
    """Print a sweep table and persist it under ``benchmarks/results/``."""
    table = result.to_table(fmt)
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    existing = path.read_text() if path.exists() else ""
    if result.title in existing:
        return
    with path.open("a") as handle:
        handle.write(table + "\n\n")


@pytest.fixture(autouse=True, scope="session")
def _fresh_results_dir():
    """Start each bench session with a clean results directory."""
    RESULTS_DIR.mkdir(exist_ok=True)
    for stale in RESULTS_DIR.glob("*.txt"):
        stale.unlink()
    yield
