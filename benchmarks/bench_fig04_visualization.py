"""Figure 4 — visualization of the spatial datasets.

ASCII density rasters of the four synthetic substitutes (pickup projection
for the 4-d taxi analogues), the terminal equivalent of the paper's scatter
plots.  The recorded content: road/NYC look filamentary/spiky, Gowalla and
Beijing blotchier — the skew ordering the evaluation narrative relies on.
"""

from repro.datasets import SPATIAL_DATASETS
from repro.spatial import render_density

from conftest import RESULTS_DIR, dataset_n


def _render_all() -> str:
    blocks = []
    for name, spec in SPATIAL_DATASETS.items():
        data = spec.make(dataset_n(name), rng=0)
        blocks.append(
            f"Figure 4 — {name} ({data.n:,} points, first two axes)\n"
            + render_density(data, width=72, height=20)
        )
    return "\n\n".join(blocks)


def bench_fig04_visualization(benchmark):
    text = benchmark.pedantic(_render_all, rounds=1, iterations=1)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig04_visualization.txt").write_text(text + "\n")


def _render_decomposition() -> str:
    """Figure 1's content: the decomposition grows deep where data is dense."""
    from repro.spatial import privtree_histogram, render_leaf_depth

    spec = SPATIAL_DATASETS["gowalla"]
    data = spec.make(dataset_n("gowalla"), rng=0)
    synopsis = privtree_histogram(data, epsilon=1.0, rng=0)
    depth_map = render_leaf_depth(synopsis, width=72, height=20)
    return (
        "Figure 1 — PrivTree leaf depth over gowalla (digit = tree depth; "
        "deeper where denser)\n" + depth_map
    )


def bench_fig01_decomposition(benchmark):
    text = benchmark.pedantic(_render_decomposition, rounds=1, iterations=1)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig01_decomposition.txt").write_text(text + "\n")
