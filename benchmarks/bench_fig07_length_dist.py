"""Figure 7 — total variation distance of sequence-length distributions.

Two panels (mooc, msnbc): each model generates synthetic data whose length
distribution is compared to the original's; Truncate is the no-privacy
reference affected only by the l_top cut.
"""

import pytest

from repro.experiments import format_float, run_length_distribution_experiment

from conftest import FULL, sweep_params, dataset_n, emit


@pytest.mark.parametrize("dataset", ["mooc", "msnbc"])
def bench_fig07_length_dist(benchmark, dataset):
    params = sweep_params()

    def run():
        return run_length_distribution_experiment(
            dataset,
            epsilons=params["epsilons"],
            n_reps=params["n_reps"],
            n_synthetic=5_000 if FULL else 1_500,
            dataset_n=dataset_n(dataset),
            rng=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, format_float, "fig07_length_dist.txt")
