"""Appendix A — the improved SVT's accuracy advantage over the reduced SVT.

Both are genuinely ε-DP with ``lambda = 2/eps``, but the improved variant
perturbs the threshold once with scale ``lambda`` instead of ``t * lambda``.
The recorded content: the improved SVT's decision error rate is lower at
every ``t``, and the gap widens as ``t`` grows — "yields more accurate
results since it uses a more accurate version of θ".
"""

import numpy as np

from repro.experiments import SweepResult, format_float
from repro.mechanisms import ensure_rng
from repro.svt import improved_svt, reduced_svt

from conftest import FULL, emit


def _error_rate(algorithm, t: int, margin: float, trials: int, gen) -> float:
    """Fraction of single-query streams misclassified (answer < theta)."""
    errors = 0
    for _ in range(trials):
        out = algorithm([0.0], theta=margin, lam=2.0, t=t, rng=gen)
        errors += out == [1]
    return errors / trials


def _accuracy_sweep() -> SweepResult:
    trials = 8_000 if FULL else 3_000
    margin = 12.0
    ts = [1, 2, 5, 10, 20]
    gen = ensure_rng(11)
    result = SweepResult(
        title=f"Appendix A — SVT false-positive rate (margin {margin}, lambda=2)",
        row_label="t",
        rows=[float(t) for t in ts],
        columns=[],
    )
    reduced = [_error_rate(reduced_svt, t, margin, trials, gen) for t in ts]
    improved = [_error_rate(improved_svt, t, margin, trials, gen) for t in ts]
    result.add_column("ReducedSVT", reduced)
    result.add_column("ImprovedSVT", improved)
    # The recorded claim: improved is at least as accurate at every t and
    # strictly better once t is large.
    assert improved[-1] < reduced[-1]
    return result


def bench_appendix_svt_accuracy(benchmark):
    result = benchmark.pedantic(_accuracy_sweep, rounds=1, iterations=1)
    emit(result, format_float, "appendix_svt_accuracy.txt")
