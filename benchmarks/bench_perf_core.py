"""Performance micro-benchmarks of the library's hot paths.

Not a paper artifact — these guard the implementation itself: PrivTree
construction throughput, range-count traversal latency, PST construction,
and the DAWA partition DP.  pytest-benchmark runs them repeatedly (unlike
the figure benches, which execute once), so regressions show up in the
timing table.
"""

import numpy as np

from repro.baselines import dawa_histogram, private_partition
from repro.baselines.ngram import count_grams, count_grams_reference
from repro.datasets import gowallalike, msnbclike
from repro.domains import Box
from repro.experiments.perf import (
    reference_privtree_histogram,
    reference_workload_answers,
)
from repro.sequence import count_substrings, private_pst
from repro.spatial import generate_workload, privtree_histogram


def bench_perf_privtree_build_20k(benchmark):
    data = gowallalike(20_000, rng=0)
    benchmark(lambda: privtree_histogram(data, epsilon=1.0, rng=0))


def bench_perf_privtree_build_200k(benchmark):
    data = gowallalike(200_000, rng=0)
    benchmark(lambda: privtree_histogram(data, epsilon=1.0, rng=0))


def bench_perf_privtree_build_200k_reference(benchmark):
    # The frozen pre-optimization build path; the 200k case above must come
    # in at least 2x faster (tracked numerically by `repro bench`).
    data = gowallalike(200_000, rng=0)
    benchmark(lambda: reference_privtree_histogram(data, epsilon=1.0, rng=0))


def bench_perf_range_count(benchmark):
    data = gowallalike(20_000, rng=0)
    synopsis = privtree_histogram(data, epsilon=1.0, rng=0)
    queries = generate_workload(data.domain, "medium", 50, rng=1)

    def run() -> float:
        return sum(synopsis.range_count(q) for q in queries)

    benchmark(run)


def bench_perf_range_count_many_1k(benchmark):
    data = gowallalike(200_000, rng=0)
    flat = privtree_histogram(data, epsilon=1.0, rng=0).flat()
    queries = generate_workload(data.domain, "medium", 1_000, rng=1)
    benchmark(lambda: flat.range_count_many(queries))


def bench_perf_range_count_1k_reference(benchmark):
    # The per-query recursive traversal over the same 1k-query workload; the
    # batched case above must come in at least 10x faster.
    data = gowallalike(200_000, rng=0)
    synopsis = privtree_histogram(data, epsilon=1.0, rng=0)
    queries = generate_workload(data.domain, "medium", 1_000, rng=1)
    benchmark(lambda: reference_workload_answers(synopsis, queries))


def bench_perf_workload_generation_10k(benchmark):
    data = gowallalike(1_000, rng=0)
    benchmark(lambda: generate_workload(data.domain, "medium", 10_000, rng=1))


def bench_perf_private_pst_build(benchmark):
    data = msnbclike(10_000, rng=0)
    benchmark(lambda: private_pst(data, epsilon=1.0, l_top=20, rng=0))


def bench_perf_pst_sampling(benchmark):
    # The frozen scalar reference path; the batched case below must come in
    # at least 5x faster (tracked numerically by `repro bench`).
    data = msnbclike(10_000, rng=0)
    pst = private_pst(data, epsilon=1.0, l_top=20, rng=0)
    benchmark(lambda: pst.sample_dataset(200, rng=1, max_length=20))


def bench_perf_pst_sampling_batched_5k(benchmark):
    data = msnbclike(10_000, rng=0)
    flat = private_pst(data, epsilon=1.0, l_top=20, rng=0).flat()
    benchmark(lambda: flat.sample_dataset(5_000, rng=1, max_length=20))


def bench_perf_gram_counting_50k(benchmark):
    store = msnbclike(50_000, rng=0).truncate(20)
    benchmark(lambda: count_grams(store, n_max=5))


def bench_perf_gram_counting_50k_reference(benchmark):
    # The frozen dict triple loop; the vectorized case above must come in
    # at least 5x faster (tracked numerically by `repro bench`).
    store = msnbclike(50_000, rng=0).truncate(20)
    benchmark(lambda: count_grams_reference(store, n_max=5))


def bench_perf_substring_counting_50k(benchmark):
    data = msnbclike(50_000, rng=0)
    benchmark(lambda: count_substrings(data, max_length=8))


def bench_perf_topk_scoring(benchmark):
    data = msnbclike(10_000, rng=0)
    flat = private_pst(data, epsilon=1.0, l_top=20, rng=0).flat()
    benchmark(lambda: flat.top_k_strings(100, max_length=8))


def bench_perf_dawa_partition(benchmark):
    cells = np.random.default_rng(0).poisson(2.0, size=16_384).astype(float)
    benchmark(lambda: private_partition(cells, epsilon=0.25, rng=0))


def bench_perf_dawa_full(benchmark):
    data = gowallalike(20_000, rng=0)
    benchmark(lambda: dawa_histogram(data, epsilon=1.0, rng=0))


def bench_perf_exact_count(benchmark):
    data = gowallalike(50_000, rng=0)
    query = Box((0.2, 0.2), (0.7, 0.7))
    benchmark(lambda: data.count_in(query))
