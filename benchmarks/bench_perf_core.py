"""Performance micro-benchmarks of the library's hot paths.

Not a paper artifact — these guard the implementation itself: PrivTree
construction throughput, range-count traversal latency, PST construction,
and the DAWA partition DP.  pytest-benchmark runs them repeatedly (unlike
the figure benches, which execute once), so regressions show up in the
timing table.
"""

import numpy as np

from repro.baselines import dawa_histogram, private_partition
from repro.datasets import gowallalike, msnbclike
from repro.domains import Box
from repro.sequence import private_pst
from repro.spatial import generate_workload, privtree_histogram


def bench_perf_privtree_build_20k(benchmark):
    data = gowallalike(20_000, rng=0)
    benchmark(lambda: privtree_histogram(data, epsilon=1.0, rng=0))


def bench_perf_range_count(benchmark):
    data = gowallalike(20_000, rng=0)
    synopsis = privtree_histogram(data, epsilon=1.0, rng=0)
    queries = generate_workload(data.domain, "medium", 50, rng=1)

    def run() -> float:
        return sum(synopsis.range_count(q) for q in queries)

    benchmark(run)


def bench_perf_private_pst_build(benchmark):
    data = msnbclike(10_000, rng=0)
    benchmark(lambda: private_pst(data, epsilon=1.0, l_top=20, rng=0))


def bench_perf_pst_sampling(benchmark):
    data = msnbclike(10_000, rng=0)
    pst = private_pst(data, epsilon=1.0, l_top=20, rng=0)
    benchmark(lambda: pst.sample_dataset(200, rng=1, max_length=20))


def bench_perf_dawa_partition(benchmark):
    cells = np.random.default_rng(0).poisson(2.0, size=16_384).astype(float)
    benchmark(lambda: private_partition(cells, epsilon=0.25, rng=0))


def bench_perf_dawa_full(benchmark):
    data = gowallalike(20_000, rng=0)
    benchmark(lambda: dawa_histogram(data, epsilon=1.0, rng=0))


def bench_perf_exact_count(benchmark):
    data = gowallalike(50_000, rng=0)
    query = Box((0.2, 0.2), (0.7, 0.7))
    benchmark(lambda: data.count_in(query))
