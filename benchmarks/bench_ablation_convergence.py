"""Lemma 3.2 — the convergence guarantee E[|T|] <= 2 |T*|.

Monte-Carlo estimate of PrivTree's expected tree size against twice the
noise-free tree size, across epsilon, on a clustered spatial dataset.  The
reproduced content: the ratio stays below 2 at every budget, which is what
lets PrivTree drop the height limit.
"""

import numpy as np

from repro.core import PrivTreeParams, privtree
from repro.datasets import gowallalike
from repro.experiments import SweepResult, format_float
from repro.spatial import SpatialNodeData

from conftest import FULL, emit


def _noise_free_size(dataset, theta: float) -> int:
    """|T*|: split exactly when the true count exceeds theta."""
    root = SpatialNodeData.root(dataset)
    stack, size = [root], 1
    while stack:
        node = stack.pop()
        if node.can_split() and node.score() > theta:
            children = node.split()
            size += len(children)
            stack.extend(children)
    return size


def _convergence_sweep() -> SweepResult:
    dataset = gowallalike(8_000 if not FULL else 40_000, rng=0)
    theta = 40.0  # positive threshold keeps |T*| finite for the comparison
    t_star = _noise_free_size(dataset, theta)
    epsilons = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
    reps = 10 if FULL else 4
    result = SweepResult(
        title=f"Lemma 3.2 — E[|T|] vs 2|T*|  (|T*| = {t_star})",
        row_label="epsilon",
        rows=epsilons,
        columns=[],
    )
    sizes = []
    for eps in epsilons:
        params = PrivTreeParams.calibrate(eps, fanout=4, theta=theta)
        runs = [
            privtree(SpatialNodeData.root(dataset), params, rng=seed).size
            for seed in range(reps)
        ]
        sizes.append(float(np.mean(runs)))
    result.add_column("E[|T|] (MC)", sizes)
    result.add_column("2*|T*| bound", [2.0 * t_star] * len(epsilons))
    assert all(s <= 2.0 * t_star for s in sizes)
    return result


def bench_ablation_convergence(benchmark):
    result = benchmark.pedantic(_convergence_sweep, rounds=1, iterations=1)
    emit(result, format_float, "ablation_convergence.txt")
