"""Figure 8 — impact of the fanout beta on PrivTree.

One panel per dataset (medium queries): PrivTree run with beta = 2^d and
the smaller round-robin fanouts the paper ablates.
"""

import pytest

from repro.experiments import format_percent, run_fanout_ablation

from conftest import sweep_params, dataset_n, emit


@pytest.mark.parametrize("dataset", ["road", "gowalla", "nyc", "beijing"])
def bench_fig08_fanout(benchmark, dataset):
    params = sweep_params()

    def run():
        return run_fanout_ablation(
            dataset,
            "medium",
            epsilons=params["epsilons"],
            n_reps=params["n_reps"],
            n_queries=params["n_queries"],
            dataset_n=dataset_n(dataset),
            rng=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, format_percent, "fig08_fanout.txt")
