"""Table 4 — PrivTree running time on all six datasets across epsilon.

Absolute numbers are Python-on-synthetic-data; the table's shape (time
grows with epsilon and with dataset size) is the reproduced content.
"""

from repro.experiments import format_seconds, run_privtree_timing

from conftest import FULL, dataset_n, emit


def bench_table4_runtime(benchmark):
    names = ["road", "gowalla", "nyc", "beijing", "mooc", "msnbc"]

    def run():
        # Per-dataset cardinality differs; run one dataset at a time and
        # merge the columns so each uses its own bench-scale size.
        merged = None
        for name in names:
            res = run_privtree_timing(
                dataset_names=[name],
                n_reps=3 if FULL else 1,
                dataset_n=dataset_n(name),
                rng=0,
            )
            if merged is None:
                merged = res
                merged.title = "Table 4 — PrivTree running time (seconds)"
            else:
                merged.add_column(name, res.values[name])
        return merged

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, format_seconds, "table4_runtime.txt")
