"""Figure 2 — the privacy-cost function rho(x) and its bound rho_top(x).

Regenerates the x-sweep of Equation (5) against the Lemma 3.1 closed form,
checking the bound holds at every sampled point (the figure's content).
"""

import numpy as np

from repro.core import rho, rho_top
from repro.experiments import SweepResult, format_float

from conftest import emit


def _rho_curves() -> SweepResult:
    lam, theta = 1.0, 0.0
    xs = np.linspace(theta - 4.0, theta + 12.0, 17)
    result = SweepResult(
        title="Figure 2 — rho(x) vs rho_top(x)  (lambda=1, theta=0)",
        row_label="x",
        rows=[float(x) for x in xs],
        columns=[],
    )
    rho_vals = [rho(float(x), lam, theta) for x in xs]
    top_vals = [rho_top(float(x), lam, theta) for x in xs]
    result.add_column("rho", rho_vals)
    result.add_column("rho_top", top_vals)
    assert all(r <= t + 1e-12 for r, t in zip(rho_vals, top_vals))
    return result


def bench_fig02_rho(benchmark):
    result = benchmark.pedantic(_rho_curves, rounds=1, iterations=1)
    emit(result, format_float, "fig02_rho.txt")
