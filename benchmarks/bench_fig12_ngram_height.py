"""Figure 12 — impact of the tree height h on N-gram.

mooc and msnbc panels (top-100 precision): n_max in {3..7}; n_max = 5 is
the published recommendation.
"""

import pytest

from repro.experiments import format_float, run_ngram_height_ablation

from conftest import sweep_params, dataset_n, emit


@pytest.mark.parametrize("dataset", ["mooc", "msnbc"])
def bench_fig12_ngram_height(benchmark, dataset):
    params = sweep_params()

    def run():
        return run_ngram_height_ablation(
            dataset,
            k=100,
            epsilons=params["epsilons"],
            n_reps=params["n_reps"],
            dataset_n=dataset_n(dataset),
            rng=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, format_float, "fig12_ngram_height.txt")
