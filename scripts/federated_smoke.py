#!/usr/bin/env python
"""CI smoke test for the federated path, end to end.

Usage::

    python scripts/federated_smoke.py [STORE_DIR] [N_POINTS]

Runs the whole pipeline in one process tree:

1. shard a synthetic spatial dataset across K=3 in-process
   :class:`~repro.federated.ShardCollector` parties;
2. drive a federated PrivTree fit through the
   :class:`~repro.federated.SecureAggregator` and check it is
   **bit-identical** to the centralized fit on the concatenated data;
3. run a 3-epoch continual-release series through an
   :class:`~repro.federated.EpochLedger` into a
   :class:`~repro.serve.ReleaseStore`;
4. start ``repro serve`` as a subprocess and check that range counts
   answered over HTTP against the latest epoch artifact are bit-identical
   to querying the in-process release.

Exits non-zero on any deviation.  STORE_DIR defaults to a fresh temp
directory.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

N_SHARDS = 3
N_EPOCHS = 3
EPSILON = 0.5


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def main(argv: list[str]) -> int:
    store_dir = argv[1] if len(argv) > 1 else tempfile.mkdtemp(prefix="fed_smoke_")
    n_points = int(argv[2]) if len(argv) > 2 else 3000

    import numpy as np

    from repro.datasets.spatial import gowallalike
    from repro.federated import EpochLedger, federated_privtree_histogram, shard_dataset
    from repro.mechanisms import PrivacyAccountant
    from repro.serve import ReleaseStore
    from repro.spatial import generate_workload
    from repro.spatial.quadtree import _privtree_histogram
    from repro.spatial.serialize import tree_to_dict

    # -- 1-2: one-shot federated fit, checked against the centralized engine.
    data = gowallalike(n_points, rng=0)
    federated = federated_privtree_histogram(
        shard_dataset(data, N_SHARDS), epsilon=1.0, rng=0
    )
    central = _privtree_histogram(data, epsilon=1.0, rng=0)
    if tree_to_dict(federated) != tree_to_dict(central):
        print("FAIL: federated fit is not bit-identical to the centralized fit")
        return 1
    print(
        f"OK: federated fit over {N_SHARDS} shards (n={data.n}) bit-identical "
        f"to centralized privtree ({federated.size} nodes)"
    )

    # -- 3: continual release into the store, one epoch batch at a time.
    store = ReleaseStore(store_dir)
    accountant = PrivacyAccountant(N_EPOCHS * EPSILON)
    ledger = EpochLedger(
        store,
        accountant,
        n_shards=N_SHARDS,
        epsilon_per_epoch=EPSILON,
        window=2,
        blinding_seed=1,
    )
    for epoch in range(N_EPOCHS):
        batch = gowallalike(max(n_points // N_EPOCHS, 200), rng=100 + epoch)
        ledger.ingest(epoch, shard_dataset(batch, N_SHARDS))
        ledger.release(epoch, rng=epoch)
    if accountant.remaining > 1e-9:
        print(f"FAIL: epoch series left {accountant.remaining} budget unspent")
        return 1
    latest_id = store.latest("epoch-")
    if latest_id != ledger.as_of(N_EPOCHS):
        print(
            f"FAIL: store.latest says {latest_id!r} but the ledger says "
            f"{ledger.as_of(N_EPOCHS)!r}"
        )
        return 1
    print(
        f"OK: {N_EPOCHS}-epoch continual release stored "
        f"({', '.join(store.ids())}); budget fully composed "
        f"({accountant.spent:g}/{accountant.total_epsilon:g})"
    )

    # -- 4: serve the store over HTTP and query the latest epoch.
    release = store.get(latest_id)
    boxes = generate_workload(release.query_domain, "medium", 200, rng=0)
    expected = release.query_many(boxes)

    if shutil.which("repro"):
        command = ["repro"]
    else:
        command = [
            sys.executable,
            "-c",
            "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
        ]
    port = _free_port()
    server = subprocess.Popen(
        command + ["serve", "--store", store_dir, "--port", str(port), "--quiet"]
    )
    try:
        deadline = time.monotonic() + 30
        while True:
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=1
                ) as resp:
                    json.loads(resp.read())
                break
            except (urllib.error.URLError, OSError):
                if time.monotonic() > deadline:
                    print("server did not become healthy within 30s")
                    return 1
                time.sleep(0.2)

        body = json.dumps(
            {"queries": [{"low": list(b.low), "high": list(b.high)} for b in boxes]}
        ).encode("utf-8")
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/releases/{latest_id}/query", data=body
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            answers = np.array(json.loads(resp.read())["answers"])
        if not np.array_equal(answers, expected):
            worst = float(np.abs(answers - expected).max())
            print(
                f"FAIL: served answers deviate from the in-process epoch "
                f"release (max |delta| = {worst})"
            )
            return 1
        print(
            f"OK: {len(boxes)} range counts served over HTTP bit-identical "
            f"to in-process query_many for {latest_id}"
        )
        return 0
    finally:
        server.terminate()
        server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
