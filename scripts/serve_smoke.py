#!/usr/bin/env python
"""CI smoke test for the serving path: HTTP answers == in-process answers.

Usage::

    repro store put --store STORE_DIR --method privtree --dataset gowalla ...
    python scripts/serve_smoke.py STORE_DIR [N_QUERIES]

Starts ``repro serve`` as a subprocess on a free port, fires one batched
range-count query (default 1000 boxes) at the first stored release plus
one typed mixed workload (range / point / marginal documents), and exits
non-zero unless every answer returned over HTTP is bit-identical to
calling ``release.query_many`` / ``release.answer`` on a local reload of
the artifact.  A second phase restarts the server pre-forked with
``--workers 2`` and repeats the checks over the packed binary wire form
(v2 mmap'd artifacts on the server side), then verifies the fleet-wide
counters: ``GET /statz?aggregate=1`` and the ``GET /metrics`` Prometheus
exposition must both report exactly the batches/queries this script
sent, no matter which worker answers the scrape.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
import urllib.error
import urllib.request


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    store_dir = argv[1]
    n_queries = int(argv[2]) if len(argv) > 2 else 1000

    import numpy as np

    from repro.serve import ReleaseStore
    from repro.spatial import generate_workload

    try:
        store = ReleaseStore(store_dir, create=False)
    except FileNotFoundError as exc:
        print(exc)
        return 2
    ids = store.ids()
    if not ids:
        print(f"store {store_dir} is empty; run `repro store put` first")
        return 2
    release_id = ids[0]
    release = store.get(release_id)
    from repro.domains import Box

    if not isinstance(release.query_domain, Box):
        print(
            f"first stored release {release_id} is not spatial; "
            "this smoke test drives range-count workloads"
        )
        return 2
    boxes = generate_workload(release.query_domain, "medium", n_queries, rng=0)
    expected = release.query_many(boxes)

    port = _free_port()
    # Prefer the installed console script; fall back to the current
    # interpreter so the smoke test also runs from a source checkout.
    import shutil

    if shutil.which("repro"):
        command = ["repro"]
    else:
        command = [
            sys.executable,
            "-c",
            "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
        ]
    server = subprocess.Popen(
        command + ["serve", "--store", store_dir, "--port", str(port), "--quiet"]
    )
    try:
        deadline = time.monotonic() + 30
        while True:
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=1
                ) as resp:
                    json.loads(resp.read())
                break
            except (urllib.error.URLError, OSError):
                if time.monotonic() > deadline:
                    print("server did not become healthy within 30s")
                    return 1
                time.sleep(0.2)

        body = json.dumps(
            {"queries": [{"low": list(b.low), "high": list(b.high)} for b in boxes]}
        ).encode("utf-8")
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/releases/{release_id}/query", data=body
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            answers = np.array(json.loads(resp.read())["answers"])

        if not np.array_equal(answers, expected):
            worst = float(np.abs(answers - expected).max())
            print(
                f"FAIL: HTTP answers deviate from in-process query_many "
                f"(max |delta| = {worst})"
            )
            return 1
        print(
            f"OK: {n_queries} served answers bit-identical to in-process "
            f"query_many for {release_id}"
        )

        # One typed workload through the same endpoint: range + point +
        # marginal documents, checked against the in-process answer path.
        from repro.queries import Marginal1D, PointCount, RangeCount, Workload

        domain = release.query_domain
        workload = Workload.of(
            [RangeCount.of(b) for b in boxes[:8]]
            + [PointCount(point=domain.center)]
            + [Marginal1D.regular(0, 8, domain.low[0], domain.high[0])]
        )
        expected_flat = release.answer(workload)
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/releases/{release_id}/query",
            data=json.dumps(
                {"queries": [q.to_wire() for q in workload]}
            ).encode("utf-8"),
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            served = json.loads(resp.read())["answers"]
        flat = np.array(
            [v for entry in served for v in (entry if isinstance(entry, list) else [entry])]
        )
        if not np.array_equal(flat, expected_flat):
            worst = float(np.abs(flat - expected_flat).max())
            print(
                f"FAIL: typed workload answers deviate from in-process "
                f"answer (max |delta| = {worst})"
            )
            return 1
        print(
            f"OK: typed workload ({len(workload)} queries, {flat.shape[0]} "
            f"answers) bit-identical to in-process answer for {release_id}"
        )
    finally:
        server.terminate()
        server.wait(timeout=10)

    # ------------------------------------------------------------------
    # Phase 2: pre-forked workers + the packed binary wire form.  The
    # store migrate ensures v2 binary artifacts exist, so the workers
    # serve from mmap'd arrays; answers must still match bit-for-bit.
    # ------------------------------------------------------------------
    from repro.queries import (
        BINARY_WIRE_CONTENT_TYPE,
        RangeCount,
        Workload,
        decode_binary_answers,
        encode_binary_workload,
    )

    migrated = store.migrate()
    if migrated:
        print(f"migrated {len(migrated)} release(s) to binary-v2 artifacts")
    entry = store.manifest_entry(release_id)
    if entry.get("artifact_format") != "binary-v2":
        print(f"FAIL: {release_id} has no binary-v2 artifact after migrate")
        return 1

    workload = Workload.of([RangeCount.of(b) for b in boxes])
    payload = encode_binary_workload(workload)
    port = _free_port()
    server = subprocess.Popen(
        command
        + [
            "serve",
            "--store",
            store_dir,
            "--port",
            str(port),
            "--workers",
            "2",
            "--quiet",
        ]
    )
    try:
        deadline = time.monotonic() + 30
        while True:
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=1
                ) as resp:
                    json.loads(resp.read())
                break
            except (urllib.error.URLError, OSError):
                if time.monotonic() > deadline:
                    print("2-worker server did not become healthy within 30s")
                    return 1
                time.sleep(0.2)

        n_batches = 8
        for _ in range(n_batches):
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/releases/{release_id}/query",
                data=payload,
                headers={"Content-Type": BINARY_WIRE_CONTENT_TYPE},
            )
            with urllib.request.urlopen(request, timeout=30) as resp:
                if resp.headers.get("Content-Type") != "application/x-repro-answers":
                    print(
                        "FAIL: binary request did not answer with the "
                        f"binary content type ({resp.headers.get('Content-Type')!r})"
                    )
                    return 1
                values, _offsets = decode_binary_answers(resp.read())
            if not np.array_equal(values, expected):
                worst = float(np.abs(values - expected).max())
                print(
                    f"FAIL: binary-wire answers deviate from in-process "
                    f"query_many (max |delta| = {worst})"
                )
                return 1

        # Fleet-wide counters: one server-side aggregation over the
        # per-pid metric slabs, instead of sampling /statz per worker and
        # summing client-side (a bare /statz answers for whichever worker
        # the kernel picked — scope "process").
        sent_queries = n_batches * len(workload)
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/statz?aggregate=1", timeout=5
        ) as resp:
            stats = json.loads(resp.read())
        if stats.get("scope") != "aggregate":
            print(f"FAIL: /statz?aggregate=1 answered scope {stats.get('scope')!r}")
            return 1
        if stats["batches"] != n_batches or stats["queries"] != sent_queries:
            print(
                f"FAIL: aggregated /statz reports {stats['batches']} batches / "
                f"{stats['queries']} queries; sent {n_batches} / {sent_queries}"
            )
            return 1

        # The Prometheus exposition must agree with the aggregate, again
        # regardless of which worker serves the scrape.
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=5
        ) as resp:
            metrics_text = resp.read().decode("utf-8")
        exposed = {}
        for line in metrics_text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            name, _, value = line.rpartition(" ")
            exposed[name] = float(value)
        if exposed.get("repro_serve_batches_total") != float(n_batches):
            print(
                "FAIL: /metrics repro_serve_batches_total = "
                f"{exposed.get('repro_serve_batches_total')}; sent {n_batches}"
            )
            return 1
        if exposed.get("repro_serve_queries_total") != float(sent_queries):
            print(
                "FAIL: /metrics repro_serve_queries_total = "
                f"{exposed.get('repro_serve_queries_total')}; sent {sent_queries}"
            )
            return 1
        if exposed.get("repro_serve_request_latency_seconds_count") != float(
            n_batches
        ):
            print(
                "FAIL: /metrics latency histogram count = "
                f"{exposed.get('repro_serve_request_latency_seconds_count')}; "
                f"sent {n_batches} batches"
            )
            return 1
        print(
            f"OK: {n_queries} binary-wire answers bit-identical across "
            f"{len(stats['pids'])} worker process(es) (pids {stats['pids']}); "
            f"/statz?aggregate=1 and /metrics both count {n_batches} batches "
            f"/ {sent_queries} queries"
        )
        return 0
    finally:
        server.terminate()
        server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
