#!/usr/bin/env python
"""CI chaos test for the fault-tolerant federated transport.

Usage::

    python scripts/chaos_smoke.py [N_POINTS] [--trace TRACE.jsonl]

Runs three failure scenarios against *real* collector processes
(``repro collector-serve`` subprocesses speaking the framed TCP protocol)
and fails loudly unless the fault-tolerance contract holds:

1. **Retriable chaos**: a seeded :class:`~repro.federated.FaultInjector`
   drops, delays, duplicates, and corrupts frames on every round; the fit
   must still produce a release **bit-identical** to the in-process
   federated fit (and hence to the centralized engine).
2. **Kill a collector**: shard 1's process is SIGKILLed mid-fit; the
   coordinator must abort the round with a typed error *naming the shard*
   and roll back every budget spend (an aborted fit releases nothing and
   spends nothing).
3. **Kill and resume the coordinator**: the coordinator "crashes" between
   a committed round and the next (the widest window), its sockets die,
   and a fresh coordinator ``--resume``\\ s from the checkpoint against
   the same still-running collectors.  The resumed release must be
   bit-identical, with exactly one spend per ledger label and exactly one
   committed entry per round — a double-spend here is a privacy bug.

Exits non-zero on any deviation.

With ``--trace PATH`` the whole run executes under an enabled tracer and
the spans (federated rounds, per-collector calls, retries, accountant
spends) are exported as JSON-lines on exit — even when a scenario fails —
so CI can upload the trace as a workflow artifact.  Render it with
``repro trace PATH --chrome OUT.json``.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import time

N_SHARDS = 3
EPSILON = 1.0
SEED = 7


def _collector_command() -> list[str]:
    if shutil.which("repro"):
        return ["repro"]
    return [
        sys.executable,
        "-c",
        "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
    ]


def _spawn_collectors(n_points: int) -> tuple[list, list[tuple[str, int]]]:
    """One ``repro collector-serve`` process per shard, READY-synced."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    command = _collector_command()
    procs, addresses = [], []
    try:
        for shard_id in range(N_SHARDS):
            procs.append(
                subprocess.Popen(
                    command
                    + [
                        "collector-serve",
                        "--dataset", "gowalla",
                        "--n", str(n_points),
                        "--seed", str(SEED),
                        "--shard-id", str(shard_id),
                        "--n-shards", str(N_SHARDS),
                        "--port", "0",
                    ],
                    stdout=subprocess.PIPE,
                    text=True,
                    bufsize=1,
                    env=env,
                )
            )
        for shard_id, proc in enumerate(procs):
            line = proc.stdout.readline().strip()
            if not line.startswith("READY "):
                raise RuntimeError(f"collector {shard_id} failed: {line!r}")
            fields = dict(kv.split("=", 1) for kv in line.split()[1:])
            addresses.append(("127.0.0.1", int(fields["port"])))
    except BaseException:
        for proc in procs:
            proc.kill()
        raise
    return procs, addresses


def _reap(procs: list) -> None:
    for proc in procs:
        proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


def main(argv: list[str]) -> int:
    args = list(argv[1:])
    trace_path = None
    if "--trace" in args:
        at = args.index("--trace")
        if at + 1 >= len(args):
            print("--trace requires an output path")
            return 2
        trace_path = args[at + 1]
        del args[at : at + 2]
    n_points = int(args[0]) if args else 3000

    from repro import telemetry

    tracer = telemetry.enable() if trace_path else None
    try:
        return _scenarios(n_points)
    finally:
        # Export whatever was traced even when a scenario fails, so CI
        # can upload the trace artifact from the failing run too.
        if tracer is not None:
            telemetry.disable()
            n_spans = tracer.export_jsonl(trace_path)
            print(f"trace: wrote {n_spans} span(s) to {trace_path}")


def _scenarios(n_points: int) -> int:
    from repro.datasets.spatial import gowallalike
    from repro.federated import (
        CollectorCrashError,
        CollectorTimeoutError,
        FaultInjector,
        FaultPlan,
        FederatedPrivTree,
        FitCheckpoint,
        InjectedCoordinatorCrash,
        ShardCollector,
        connect_collectors,
        shard_dataset,
    )
    from repro.federated.transport import RetryPolicy
    from repro.mechanisms import PrivacyAccountant
    from repro.spatial.quadtree import _privtree_histogram
    from repro.spatial.serialize import tree_to_dict

    data = gowallalike(n_points, rng=SEED)
    shards = shard_dataset(data, N_SHARDS)
    reference = FederatedPrivTree(
        [ShardCollector(i, N_SHARDS, s) for i, s in enumerate(shards)]
    ).fit_histogram(EPSILON, rng=SEED)
    central = _privtree_histogram(data, EPSILON, rng=SEED)
    if tree_to_dict(reference) != tree_to_dict(central):
        print("FAIL: in-process federated fit deviates from centralized")
        return 1
    want = tree_to_dict(reference)

    # -- 1: retriable chaos on every round -----------------------------
    procs, addresses = _spawn_collectors(n_points)
    try:
        injector = FaultInjector(
            FaultPlan(drop=0.1, delay=0.15, duplicate=0.15, corrupt=0.05,
                      delay_s=0.001),
            seed=SEED,
        )
        retry = RetryPolicy(
            attempts=6, timeout_s=5.0, base_backoff_s=0.02,
            max_backoff_s=0.2, deadline_s=60.0,
        )
        clients = connect_collectors(
            addresses, session="chaos-retriable", retry=retry, injector=injector
        )
        tree = FederatedPrivTree(clients).fit_histogram(EPSILON, rng=SEED)
        for client in clients:
            client.finish()
        if tree_to_dict(tree) != want:
            print("FAIL: fit under retriable faults is not bit-identical")
            return 1
        fired = {k: v for k, v in injector.injected.items() if v}
        if not fired:
            print("FAIL: the fault injector never fired; the scenario is vacuous")
            return 1
        print(f"OK: fit under injected faults bit-identical (injected: {fired})")
    finally:
        _reap(procs)

    # -- 2: SIGKILL a collector mid-fit --------------------------------
    procs, addresses = _spawn_collectors(n_points)
    try:
        retry = RetryPolicy(
            attempts=3, timeout_s=1.0, base_backoff_s=0.02,
            max_backoff_s=0.1, deadline_s=8.0,
        )
        clients = connect_collectors(addresses, session="chaos-kill", retry=retry)
        procs[1].kill()
        procs[1].wait(timeout=10)
        accountant = PrivacyAccountant(EPSILON)
        try:
            FederatedPrivTree(clients).fit_histogram(
                EPSILON, rng=SEED, accountant=accountant
            )
            print("FAIL: fit succeeded although shard 1 was SIGKILLed")
            return 1
        except (CollectorCrashError, CollectorTimeoutError) as exc:
            if exc.shard_id != 1 or "shard 1" not in str(exc):
                print(f"FAIL: error does not name the dead shard: {exc}")
                return 1
        if accountant.ledger:
            print(f"FAIL: aborted fit left spends behind: {accountant.ledger}")
            return 1
        print("OK: killed collector -> typed abort naming shard 1, "
              "zero budget spent")
    finally:
        _reap(procs)

    # -- 3: kill the coordinator, resume from the checkpoint -----------
    procs, addresses = _spawn_collectors(n_points)
    checkpoint_dir = tempfile.mkdtemp(prefix="chaos_ckpt_")
    try:
        checkpoint = FitCheckpoint(os.path.join(checkpoint_dir, "fit.json"))
        injector = FaultInjector(
            FaultPlan(crash_coordinator_at_round=4), seed=SEED
        )
        clients = connect_collectors(addresses, session="chaos-resume")
        accountant = PrivacyAccountant(EPSILON)
        t0 = time.monotonic()
        try:
            FederatedPrivTree(clients).fit_histogram(
                EPSILON, rng=SEED, accountant=accountant,
                checkpoint=checkpoint, fault_injector=injector,
            )
            print("FAIL: the injected coordinator crash never fired")
            return 1
        except InjectedCoordinatorCrash:
            pass
        for client in clients:
            client.channel.close()  # the dead coordinator's sockets vanish
        if accountant.ledger:
            print(f"FAIL: crashed fit left in-memory spends: {accountant.ledger}")
            return 1

        clients = connect_collectors(addresses, session="chaos-resume")
        resumed_accountant = PrivacyAccountant(EPSILON)
        tree = FederatedPrivTree(clients).fit_histogram(
            EPSILON, rng=SEED, accountant=resumed_accountant,
            checkpoint=checkpoint, resume=True,
        )
        for client in clients:
            client.finish()
        if tree_to_dict(tree) != want:
            print("FAIL: resumed fit is not bit-identical to uninterrupted fit")
            return 1
        labels = [label for label, _ in resumed_accountant.ledger]
        if labels != ["privtree/tree structure", "privtree/leaf counts"]:
            print(f"FAIL: resumed ledger has wrong/duplicated spends: {labels}")
            return 1
        if abs(resumed_accountant.spent - EPSILON) > 1e-9:
            print(f"FAIL: resumed fit spent {resumed_accountant.spent}, "
                  f"expected {EPSILON}")
            return 1
        state = checkpoint.load()
        rounds = [entry["round"] for entry in state["round_log"]]
        if len(rounds) != len(set(rounds)) or rounds != sorted(rounds):
            print(f"FAIL: round log shows re-committed rounds: {rounds}")
            return 1
        if state["phase"] != "done":
            print(f"FAIL: checkpoint phase is {state['phase']!r}, not 'done'")
            return 1
        print(f"OK: coordinator killed at round 4 and resumed "
              f"({time.monotonic() - t0:.1f}s): release bit-identical, one "
              f"spend per label, {len(rounds)} rounds each committed once")
    finally:
        _reap(procs)
        shutil.rmtree(checkpoint_dir, ignore_errors=True)

    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
