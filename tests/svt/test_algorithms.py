"""Tests for the four SVT variants."""

import numpy as np
import pytest

from repro.svt import binary_svt, improved_svt, reduced_svt, vanilla_svt


class TestBinarySvt:
    def test_output_length_matches_queries(self, rng):
        out = binary_svt([1.0, 2.0, 3.0], theta=2.0, lam=1.0, rng=rng)
        assert len(out) == 3
        assert set(out) <= {0, 1}

    def test_noiseless_limit_thresholding(self):
        out = binary_svt([10.0, -10.0, 10.0], theta=0.0, lam=1e-9, rng=0)
        assert out == [1, 0, 1]

    def test_deterministic_given_seed(self):
        a = binary_svt([0.5] * 10, theta=0.0, lam=1.0, rng=3)
        b = binary_svt([0.5] * 10, theta=0.0, lam=1.0, rng=3)
        assert a == b

    def test_invalid_lam(self):
        with pytest.raises(ValueError):
            binary_svt([1.0], theta=0.0, lam=0.0)


class TestVanillaSvt:
    def test_stops_after_t_releases(self):
        out = vanilla_svt([100.0] * 10, theta=0.0, lam=1e-9, t=3, rng=0)
        released = [o for o in out if o is not None]
        assert len(released) == 3
        assert len(out) == 3  # stream stopped at the third release

    def test_below_threshold_yields_none(self):
        out = vanilla_svt([-100.0] * 5, theta=0.0, lam=1e-9, t=2, rng=0)
        assert out == [None] * 5

    def test_released_values_are_noisy_answers(self):
        out = vanilla_svt([50.0], theta=0.0, lam=0.01, t=1, rng=1)
        assert out[0] == pytest.approx(50.0, abs=1.0)

    def test_noise_scale_is_t_lam(self, rng):
        # With t = 10 the released answers have scale 10*lam.
        vals = []
        for seed in range(400):
            out = vanilla_svt([1000.0], theta=0.0, lam=1.0, t=10, rng=seed)
            vals.append(out[0] - 1000.0)
        assert np.std(vals) == pytest.approx(np.sqrt(2) * 10.0, rel=0.2)

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            vanilla_svt([1.0], theta=0.0, lam=1.0, t=0)


class TestReducedSvt:
    def test_stops_after_t_positives(self):
        out = reduced_svt([100.0] * 10, theta=0.0, lam=1e-9, t=2, rng=0)
        assert sum(out) == 2
        assert len(out) == 2

    def test_zero_for_low_answers(self):
        out = reduced_svt([-100.0] * 4, theta=0.0, lam=1e-9, t=2, rng=0)
        assert out == [0, 0, 0, 0]

    def test_binary_output(self, rng):
        out = reduced_svt([0.0] * 20, theta=0.0, lam=1.0, t=5, rng=rng)
        assert set(out) <= {0, 1}


class TestImprovedSvt:
    def test_stops_after_t_positives(self):
        out = improved_svt([100.0] * 10, theta=0.0, lam=1e-9, t=2, rng=0)
        assert sum(out) == 2
        assert len(out) == 2

    def test_matches_reduced_semantics_noiseless(self):
        answers = [5.0, -5.0, 5.0, -5.0, 5.0]
        red = reduced_svt(answers, theta=0.0, lam=1e-9, t=2, rng=0)
        imp = improved_svt(answers, theta=0.0, lam=1e-9, t=2, rng=0)
        assert red == imp == [1, 0, 1]

    def test_fewer_false_positives_than_reduced(self):
        # The improved variant perturbs the threshold with scale lam instead
        # of t*lam, so a clearly-below-threshold answer is misclassified
        # less often.  Single-query streams isolate the first decision.
        t, lam, margin = 20, 1.0, 15.0

        def false_positive_rate(fn) -> float:
            hits = 0
            trials = 4000
            gen = np.random.default_rng(77)
            for _ in range(trials):
                out = fn([0.0], theta=margin, lam=lam, t=t, rng=gen)
                hits += out == [1]
            return hits / trials

        assert false_positive_rate(improved_svt) < false_positive_rate(reduced_svt)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            improved_svt([1.0], theta=0.0, lam=-1.0, t=1)
        with pytest.raises(ValueError):
            improved_svt([1.0], theta=0.0, lam=1.0, t=0)
