"""Test package (enables relative imports and unique module names)."""
