"""Tests for the (intentionally non-private) SVT quadtree demonstration."""

import pytest

from repro.svt import binary_svt_decomposition


class TestSvtDecomposition:
    def test_builds_a_tree(self, clustered_2d):
        tree = binary_svt_decomposition(clustered_2d, epsilon=1.0, theta=100.0, rng=0)
        assert tree.size >= 1
        assert tree.root.box == clustered_2d.domain

    def test_adapts_to_density(self, clustered_2d):
        tree = binary_svt_decomposition(clustered_2d, epsilon=2.0, theta=50.0, rng=1)
        if tree.size > 1:
            # Deepest leaves should sit near the cluster at (0.25, 0.25).
            leaves = [n for n in tree.root.iter_nodes() if n.is_leaf]
            smallest = min(leaves, key=lambda n: n.box.volume)
            assert abs(smallest.box.center[0] - 0.25) < 0.3
            assert abs(smallest.box.center[1] - 0.25) < 0.3

    def test_max_depth_respected(self, clustered_2d):
        tree = binary_svt_decomposition(
            clustered_2d, epsilon=10.0, theta=0.0, max_depth=3, rng=2
        )
        assert tree.height <= 3

    def test_high_threshold_yields_single_node(self, clustered_2d):
        tree = binary_svt_decomposition(clustered_2d, epsilon=1.0, theta=1e9, rng=0)
        assert tree.size == 1

    def test_invalid_epsilon(self, clustered_2d):
        with pytest.raises(ValueError):
            binary_svt_decomposition(clustered_2d, epsilon=0.0, theta=0.0)
