"""Tests for the SVT privacy-loss counterexamples (Lemma 5.1, Appendix A)."""

import math

import numpy as np
import pytest

from repro.svt import (
    binary_svt,
    binary_svt_log_ratio,
    improved_svt_log_ratio_bound,
    vanilla_svt_log_ratio,
)


class TestVanillaAttack:
    def test_matches_analytic_k_over_lam(self):
        # Appendix A derives Pr[D1->E]/Pr[D3->E] = e^{k/lam} exactly.
        for k in (2, 6, 12):
            for lam in (1.0, 2.0, 5.0):
                assert vanilla_svt_log_ratio(k, lam) == pytest.approx(
                    k / lam, rel=1e-3
                )

    def test_violates_claimed_guarantee(self):
        # Claim 2 asserts eps-DP at lam = 2/eps, i.e. loss <= eps = 2/lam.
        lam = 2.0
        claimed_eps = 2.0 / lam
        assert vanilla_svt_log_ratio(10, lam) > 2 * claimed_eps

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            vanilla_svt_log_ratio(1, 1.0)
        with pytest.raises(ValueError):
            vanilla_svt_log_ratio(4, 0.0)


class TestBinaryAttack:
    def test_exceeds_lemma_5_1_lower_bound(self):
        # The proof shows the ratio is at least e^{k/(2 lam)}.
        for k in (4, 8, 16):
            lam = 2.0
            assert binary_svt_log_ratio(k, lam) > k / (2 * lam) - 1e-6

    def test_violates_claimed_guarantee_for_large_k(self):
        # At lam = 2/eps (eps = 1), the loss must stay <= 2 eps = 2 if the
        # claim held; it exceeds it once k is moderately large.
        assert binary_svt_log_ratio(10, 2.0) > 2.0

    def test_loss_grows_roughly_linearly_in_k(self):
        lam = 2.0
        r8 = binary_svt_log_ratio(8, lam)
        r16 = binary_svt_log_ratio(16, lam)
        assert r16 / r8 == pytest.approx(2.0, rel=0.25)

    def test_scaling_lam_with_k_restores_privacy(self):
        # With lam = k/eps the loss stays bounded (the Omega(k/eps) scale).
        k = 16
        assert binary_svt_log_ratio(k, lam=float(k)) < 2.0

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            binary_svt_log_ratio(5, 1.0)


class TestMonteCarloAgreement:
    def test_binary_event_probability_matches_simulation(self):
        # Validate the integral against a direct simulation of Algorithm 3
        # on D1 = {a, b} (qa = qb = 1) for a small k.
        k, lam, theta = 4, 2.0, 1.0
        answers = [1.0, 1.0, 1.0, 1.0]  # k/2 qa then k/2 qb on D1
        target = [1, 1, 0, 0]
        hits = 0
        trials = 40_000
        gen = np.random.default_rng(123)
        for _ in range(trials):
            if binary_svt(answers, theta, lam, rng=gen) == target:
                hits += 1
        simulated = hits / trials

        from repro.svt.attack import _log_event_probability_binary

        grid = np.linspace(theta - 60 * lam, theta + 60 * lam, 40_001)
        integral = math.exp(
            _log_event_probability_binary(1.0, 1.0, k, lam, theta, grid)
        )
        assert simulated == pytest.approx(integral, rel=0.15)


class TestImprovedBound:
    def test_bound_value(self):
        assert improved_svt_log_ratio_bound(2.0) == pytest.approx(1.0)

    def test_bound_independent_of_k(self):
        # The whole point: the guarantee does not mention the query count.
        assert improved_svt_log_ratio_bound(4.0) == improved_svt_log_ratio_bound(4.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            improved_svt_log_ratio_bound(0.0)
