"""Tests for the privacy-loss analysis (Lemma 3.1, Theorem 3.1, Corollary 1)."""

import math

import numpy as np
import pytest

from repro.core import (
    delta_for_lambda,
    epsilon_for_lambda,
    lambda_for_epsilon,
    path_cost_bound,
    rho,
    rho_top,
    simpletree_scale,
    split_probability,
)


class TestRho:
    def test_rho_below_threshold_is_one_over_lambda(self):
        # Equation (3): for x <= theta the cost is exactly 1/lambda.
        lam = 2.0
        for x in (-5.0, -1.0, 0.0):
            assert rho(x, lam, theta=0.0) == pytest.approx(1.0 / lam)

    def test_rho_decays_above_threshold(self):
        lam = 1.0
        values = [rho(x, lam) for x in (1.0, 2.0, 4.0, 8.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_rho_positive(self):
        for x in np.linspace(-10, 10, 41):
            assert rho(float(x), 1.5) > 0

    def test_rho_deep_tail_matches_exponential_decay(self):
        # For large x, rho(x) ~ (e^{1/lam} - 1) * Pr[Lap > x - theta] ... the
        # dominant behaviour is exp(-x/lam); check the log-slope.
        lam = 1.0
        r1, r2 = rho(20.0, lam), rho(21.0, lam)
        assert math.log(r1 / r2) == pytest.approx(1.0 / lam, rel=1e-3)

    def test_lemma_3_1_pointwise(self):
        # rho(x) <= rho_top(x) everywhere (Lemma 3.1), multiple scales/thresholds.
        for lam in (0.5, 1.0, 3.0):
            for theta in (0.0, 2.5):
                for x in np.linspace(theta - 8, theta + 30, 200):
                    assert rho(float(x), lam, theta) <= rho_top(float(x), lam, theta) + 1e-12

    def test_rho_top_piecewise_boundary(self):
        lam, theta = 2.0, 0.0
        # At x = theta + 1 both branches agree: exp(0)/lam = 1/lam.
        assert rho_top(theta + 1, lam, theta) == pytest.approx(1.0 / lam)
        assert rho_top(theta + 0.999, lam, theta) == pytest.approx(1.0 / lam)

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            rho(0.0, 0.0)
        with pytest.raises(ValueError):
            rho_top(0.0, -1.0)


class TestPathBound:
    def test_path_cost_bound_formula(self):
        lam, gamma = 2.0, math.log(4)
        expected = (2 * 4 - 1) / (4 - 1) / lam  # (2beta-1)/(beta-1)/lam
        assert path_cost_bound(lam, gamma) == pytest.approx(expected)

    def test_telescoped_rho_top_sum_within_bound(self):
        # A worst-case path: biased counts theta+1, theta+1+delta, ... going up.
        lam, gamma, theta = 1.0, math.log(4), 0.0
        delta = gamma * lam
        counts = [theta + 1 + k * delta for k in range(200)]
        total = sum(rho_top(c, lam, theta) for c in counts) + 1.0 / lam
        assert total <= path_cost_bound(lam, gamma) + 1e-9

    def test_bound_decreases_with_gamma(self):
        assert path_cost_bound(1.0, 0.5) > path_cost_bound(1.0, 2.0)


class TestCalibration:
    def test_corollary_1_quadtree(self):
        # beta = 4: lambda = (2*4-1)/(4-1)/eps = 7/3/eps.
        assert lambda_for_epsilon(1.0, fanout=4) == pytest.approx(7.0 / 3.0)
        assert lambda_for_epsilon(0.5, fanout=4) == pytest.approx(14.0 / 3.0)

    def test_corollary_1_binary(self):
        # beta = 2: lambda = 3/eps.
        assert lambda_for_epsilon(1.0, fanout=2) == pytest.approx(3.0)

    def test_delta_is_lambda_ln_beta(self):
        lam = lambda_for_epsilon(1.0, fanout=4)
        assert delta_for_lambda(lam, fanout=4) == pytest.approx(lam * math.log(4))

    def test_epsilon_lambda_roundtrip(self):
        for fanout in (2, 4, 16):
            for eps in (0.05, 0.4, 1.6):
                lam = lambda_for_epsilon(eps, fanout)
                assert epsilon_for_lambda(lam, fanout) == pytest.approx(eps)

    def test_custom_gamma(self):
        # gamma = ln 2 regardless of fanout.
        lam = lambda_for_epsilon(1.0, fanout=4, gamma=math.log(2))
        assert lam == pytest.approx(3.0)

    def test_simpletree_scale(self):
        assert simpletree_scale(0.5, height=10) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            simpletree_scale(1.0, height=0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            lambda_for_epsilon(0.0, 4)
        with pytest.raises(ValueError):
            lambda_for_epsilon(1.0, 1)
        with pytest.raises(ValueError):
            lambda_for_epsilon(1.0, 4, gamma=0.0)


class TestSplitProbability:
    def test_floor_probability_is_half_beta_inverse(self):
        # Lemma 3.2: at b = theta - delta with delta = lam ln(beta),
        # Pr[split] = 1/(2 beta).
        beta = 4
        lam = 1.3
        delta = lam * math.log(beta)
        p = split_probability(0.0 - delta, lam, theta=0.0)
        assert p == pytest.approx(1.0 / (2 * beta))

    def test_monotone_in_count(self):
        ps = [split_probability(b, 1.0) for b in (-3.0, -1.0, 0.0, 1.0, 3.0)]
        assert all(a < b for a, b in zip(ps, ps[1:]))
