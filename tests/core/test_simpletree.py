"""Tests for the SimpleTree baseline (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import simpletree, simpletree_for_epsilon

from .helpers import IntervalPayload


class TestSimpleTree:
    def test_height_limit_enforced(self):
        values = np.random.default_rng(0).uniform(0, 1, 5000)
        tree = simpletree(
            IntervalPayload.over_unit(values), lam=1e-9, theta=0.0, height=4, rng=0
        )
        assert tree.height <= 3  # height levels = 4 -> max depth 3

    def test_height_one_never_splits(self):
        values = np.random.default_rng(0).uniform(0, 1, 5000)
        tree = simpletree(
            IntervalPayload.over_unit(values), lam=1e-9, theta=0.0, height=1, rng=0
        )
        assert tree.size == 1

    def test_noisy_scores_recorded_everywhere(self):
        values = np.random.default_rng(1).uniform(0, 1, 1000)
        tree = simpletree(
            IntervalPayload.over_unit(values), lam=1.0, theta=0.0, height=3, rng=1
        )
        assert all(n.noisy_score is not None for n in tree.root.iter_nodes())

    def test_near_noiseless_split_rule(self):
        # 10 points below the threshold boundary: theta = 20 stops the root.
        values = np.full(10, 0.2)
        tree = simpletree(
            IntervalPayload.over_unit(values), lam=1e-9, theta=20.0, height=5, rng=0
        )
        assert tree.size == 1

    def test_epsilon_variant_uses_h_over_eps_scale(self):
        # With eps = 1 and height = 10 the noise scale is 10: on an empty
        # dataset the root's noisy count should vary on that scale.
        draws = []
        for seed in range(300):
            tree = simpletree_for_epsilon(
                IntervalPayload.over_unit([]), epsilon=1.0, theta=1e9, height=10, rng=seed
            )
            draws.append(tree.root.noisy_score)
        # Lap(10) has std ~14.1; empirical std should be way above Lap(1)'s.
        assert np.std(draws) == pytest.approx(np.sqrt(2) * 10.0, rel=0.2)

    def test_invalid_parameters(self):
        payload = IntervalPayload.over_unit([])
        with pytest.raises(ValueError):
            simpletree(payload, lam=0.0, theta=0.0, height=2)
        with pytest.raises(ValueError):
            simpletree(payload, lam=1.0, theta=0.0, height=0)
