"""Tests for the PrivTree engine (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import DecompositionTree, PrivTreeParams, privtree
from repro.core.privtree import MaxDepthWarning

from .helpers import IntervalPayload


def near_noiseless_params(theta: float = 0.0) -> PrivTreeParams:
    """Tiny noise and tiny decay: split decisions approach `count > theta`."""
    return PrivTreeParams(lam=1e-9, delta=1e-9, theta=theta, fanout=2)


class TestEngine:
    def test_empty_data_often_single_node(self):
        # With c = 0 and theta = 0 the root biased count is 0, so the root
        # splits with probability 1/2 under symmetric noise; sizes stay small.
        params = PrivTreeParams.calibrate(1.0, fanout=2)
        sizes = []
        for seed in range(200):
            tree = privtree(IntervalPayload.over_unit([]), params, rng=seed)
            sizes.append(tree.size)
        assert min(sizes) == 1
        assert np.mean(sizes) < 6.0

    def test_near_noiseless_matches_threshold_rule(self):
        # 10 points in [0, .5), 3 in [.5, 1): with theta = 5, only the root
        # and the left child exceed the threshold; the left child's children
        # hold 10 and 0 points -> exactly one more split below it.
        values = np.concatenate([np.full(10, 0.3), np.full(3, 0.7)])
        tree = privtree(
            IntervalPayload.over_unit(values), near_noiseless_params(theta=5.0), rng=0
        )
        # root splits (13 > 5); left child (10 > 5) splits; right (3) doesn't;
        # grandchildren: [0.25,0.375)=0... values all at 0.3 -> child [0.25,0.5)
        # has 10 and keeps splitting toward max depth... use max_depth to stop.
        assert not tree.root.is_leaf
        left, right = tree.root.children
        assert not left.is_leaf
        assert right.is_leaf

    def test_duplicate_heavy_data_terminates_without_guard(self):
        # All points identical: the decaying bias must eventually stop the
        # splitting despite the count never decreasing (§3.4 convergence).
        values = np.full(1000, 0.123456)
        params = PrivTreeParams.calibrate(1.0, fanout=2)
        tree = privtree(IntervalPayload.over_unit(values), params, rng=3, max_depth=None)
        assert tree.height < 64  # terminated on its own

    def test_max_depth_guard_warns(self):
        values = np.full(1000, 0.123456)
        with pytest.warns(MaxDepthWarning):
            privtree(
                IntervalPayload.over_unit(values),
                near_noiseless_params(theta=0.0),
                rng=0,
                max_depth=5,
            )

    def test_deterministic_given_seed(self):
        values = np.random.default_rng(0).uniform(0, 1, 500)
        params = PrivTreeParams.calibrate(0.5, fanout=2)
        t1 = privtree(IntervalPayload.over_unit(values), params, rng=77)
        t2 = privtree(IntervalPayload.over_unit(values), params, rng=77)
        assert t1.size == t2.size
        assert t1.height == t2.height

    def test_returns_decomposition_tree(self):
        params = PrivTreeParams.calibrate(1.0, fanout=2)
        tree = privtree(IntervalPayload.over_unit([0.5]), params, rng=0)
        assert isinstance(tree, DecompositionTree)

    def test_scores_not_stored_on_nodes(self):
        # Algorithm 2 line 11: released tree must not carry the noisy scores.
        params = PrivTreeParams.calibrate(1.0, fanout=2)
        values = np.random.default_rng(1).uniform(0, 1, 1000)
        tree = privtree(IntervalPayload.over_unit(values), params, rng=1)
        assert all(node.noisy_score is None for node in tree.root.iter_nodes())

    def test_depths_increment(self):
        params = PrivTreeParams.calibrate(1.0, fanout=2)
        values = np.random.default_rng(2).uniform(0, 1, 2000)
        tree = privtree(IntervalPayload.over_unit(values), params, rng=2)
        for node in tree.root.iter_nodes():
            for child in node.children:
                assert child.depth == node.depth + 1

    def test_point_partitioning_conserved(self):
        params = PrivTreeParams.calibrate(1.0, fanout=2)
        values = np.random.default_rng(3).uniform(0, 1, 3000)
        tree = privtree(IntervalPayload.over_unit(values), params, rng=5)
        for node in tree.root.iter_nodes():
            if not node.is_leaf:
                child_total = sum(c.payload.score() for c in node.children)
                assert child_total == node.payload.score()

    def test_unsplittable_payload_stays_leaf(self):
        payload = IntervalPayload(0.0, 5e-324, np.array([0.0]))  # atomic interval
        params = PrivTreeParams.calibrate(1.0, fanout=2)
        tree = privtree(payload, params, rng=0)
        assert tree.size == 1

    def test_deeper_trees_with_larger_epsilon(self):
        # More budget -> less noise and smaller decay -> finer decomposition
        # on concentrated data (this is the Table 4 runtime intuition).
        values = np.random.default_rng(4).normal(0.5, 0.01, 5000).clip(0, 0.999)
        sizes = {}
        for eps in (0.05, 1.6):
            params = PrivTreeParams.calibrate(eps, fanout=2)
            reps = [
                privtree(IntervalPayload.over_unit(values), params, rng=s).size
                for s in range(10)
            ]
            sizes[eps] = np.mean(reps)
        assert sizes[1.6] > sizes[0.05]
