"""Engine tests with non-binary and variable-fanout payloads.

The spatial tests exercise fanout 2/4/16 payloads; here the engine runs
over a taxonomy-backed payload whose fanout varies per node, the setting
the §3.5 calibration (β = max fanout) is designed for.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core import PrivTreeParams, privtree
from repro.domains import Taxonomy, TaxonomyDomain


@dataclass
class CategoryPayload:
    """Categorical values decomposed along a taxonomy."""

    domain: TaxonomyDomain
    values: list[str]

    def score(self) -> float:
        return float(len(self.values))

    def can_split(self) -> bool:
        return self.domain.can_split()

    def split(self) -> list["CategoryPayload"]:
        children = self.domain.split()
        return [
            CategoryPayload(
                domain=child,
                values=[v for v in self.values if child.contains(v)],
            )
            for child in children
        ]


@pytest.fixture
def taxonomy() -> Taxonomy:
    return Taxonomy.from_dict(
        "root",
        {
            "root": ["left", "mid", "right"],  # fanout 3 at the root
            "left": ["l1", "l2"],  # fanout 2 below
            "right": ["r1", "r2", "r3", "r4"],  # fanout 4 below
        },
    )


class TestVariableFanout:
    def test_decomposes_with_max_fanout_calibration(self, taxonomy):
        gen = np.random.default_rng(0)
        values = list(gen.choice(["l1", "l2", "mid", "r1", "r2", "r3", "r4"], 5000))
        root = CategoryPayload(TaxonomyDomain(taxonomy, "root"), values)
        params = PrivTreeParams.calibrate(2.0, fanout=taxonomy.max_fanout())
        tree = privtree(root, params, rng=0)
        assert tree.size >= 1
        for node in tree.root.iter_nodes():
            assert len(node.children) in (0, 2, 3, 4)

    def test_partitioning_conserved_across_fanouts(self, taxonomy):
        gen = np.random.default_rng(1)
        values = list(gen.choice(["l1", "l2", "mid", "r1", "r2", "r3", "r4"], 3000))
        root = CategoryPayload(TaxonomyDomain(taxonomy, "root"), values)
        params = PrivTreeParams.calibrate(4.0, fanout=4)
        tree = privtree(root, params, rng=1)
        for node in tree.root.iter_nodes():
            if node.children:
                child_total = sum(c.payload.score() for c in node.children)
                assert child_total == node.payload.score()

    def test_leaves_stop_at_taxonomy_leaves(self, taxonomy):
        values = ["r1"] * 10_000  # heavy mass on one leaf category
        root = CategoryPayload(TaxonomyDomain(taxonomy, "root"), values)
        params = PrivTreeParams.calibrate(2.0, fanout=4)
        tree = privtree(root, params, rng=2)
        # No node can be deeper than the taxonomy (depth 2), however heavy.
        assert tree.height <= 2

    def test_skewed_category_refined(self, taxonomy):
        gen = np.random.default_rng(3)
        values = ["r1"] * 5000 + list(gen.choice(["l1", "mid"], 50))
        root = CategoryPayload(TaxonomyDomain(taxonomy, "root"), values)
        params = PrivTreeParams.calibrate(2.0, fanout=4)
        tree = privtree(root, params, rng=3)
        labels = {
            node.payload.domain.label
            for node in tree.root.iter_nodes()
        }
        assert "r1" in labels  # the heavy branch was expanded to its leaf
