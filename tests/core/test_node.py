"""Tests for tree-node containers."""

from repro.core import DecompositionTree, TreeNode


def chain(depth: int) -> TreeNode:
    """A single path of the given depth."""
    root = TreeNode(payload=None, depth=0)
    node = root
    for d in range(1, depth + 1):
        child = TreeNode(payload=None, depth=d)
        node.children = [child]
        node = child
    return root


class TestTreeNode:
    def test_leaf_detection(self):
        assert TreeNode(payload=None, depth=0).is_leaf
        assert not chain(1).is_leaf

    def test_iter_nodes_preorder(self):
        root = TreeNode(payload="r", depth=0)
        a = TreeNode(payload="a", depth=1)
        b = TreeNode(payload="b", depth=1)
        a1 = TreeNode(payload="a1", depth=2)
        a.children = [a1]
        root.children = [a, b]
        order = [n.payload for n in root.iter_nodes()]
        assert order == ["r", "a", "a1", "b"]

    def test_iter_leaves(self):
        root = TreeNode(payload="r", depth=0)
        a = TreeNode(payload="a", depth=1)
        b = TreeNode(payload="b", depth=1)
        root.children = [a, b]
        assert [n.payload for n in root.iter_leaves()] == ["a", "b"]


class TestDecompositionTree:
    def test_size_leafcount_height_singleton(self):
        tree = DecompositionTree(root=TreeNode(payload=None, depth=0))
        assert tree.size == 1
        assert tree.leaf_count == 1
        assert tree.height == 0

    def test_size_leafcount_height_chain(self):
        tree = DecompositionTree(root=chain(5))
        assert tree.size == 6
        assert tree.leaf_count == 1
        assert tree.height == 5

    def test_nodes_and_leaves_lists(self):
        tree = DecompositionTree(root=chain(2))
        assert len(tree.nodes()) == 3
        assert len(tree.leaves()) == 1
