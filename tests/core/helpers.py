"""A minimal 1-d payload used to unit-test the decomposition engines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class IntervalPayload:
    """Points on a half-open interval; splits bisect and partition them."""

    lo: float
    hi: float
    values: np.ndarray

    @staticmethod
    def over_unit(values) -> "IntervalPayload":
        return IntervalPayload(0.0, 1.0, np.asarray(values, dtype=float))

    def score(self) -> float:
        return float(len(self.values))

    def can_split(self) -> bool:
        mid = (self.lo + self.hi) / 2.0
        return self.lo < mid < self.hi

    def split(self) -> list["IntervalPayload"]:
        mid = (self.lo + self.hi) / 2.0
        left = self.values[self.values < mid]
        right = self.values[self.values >= mid]
        return [
            IntervalPayload(self.lo, mid, left),
            IntervalPayload(mid, self.hi, right),
        ]
