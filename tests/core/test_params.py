"""Tests for PrivTree parameter calibration."""

import math

import pytest

from repro.core import PrivTreeParams


class TestCalibrate:
    def test_quadtree_defaults(self):
        p = PrivTreeParams.calibrate(epsilon=1.0, fanout=4)
        assert p.lam == pytest.approx(7.0 / 3.0)
        assert p.delta == pytest.approx(p.lam * math.log(4))
        assert p.theta == 0.0
        assert p.fanout == 4

    def test_sensitivity_scales_lambda_and_delta(self):
        base = PrivTreeParams.calibrate(1.0, 4)
        scaled = PrivTreeParams.calibrate(1.0, 4, sensitivity=20.0)
        assert scaled.lam == pytest.approx(20.0 * base.lam)
        assert scaled.delta == pytest.approx(20.0 * base.delta)

    def test_gamma_property(self):
        p = PrivTreeParams.calibrate(0.8, 16)
        assert p.gamma == pytest.approx(math.log(16))

    def test_floor(self):
        p = PrivTreeParams.calibrate(1.0, 4, theta=5.0)
        assert p.floor() == pytest.approx(5.0 - p.delta)

    def test_split_probability_at_floor(self):
        p = PrivTreeParams.calibrate(1.0, 4)
        assert p.split_probability_at_floor() == pytest.approx(1.0 / 8.0)

    def test_epsilon_smaller_means_more_noise(self):
        lo = PrivTreeParams.calibrate(0.05, 4)
        hi = PrivTreeParams.calibrate(1.6, 4)
        assert lo.lam > hi.lam

    def test_validation(self):
        with pytest.raises(ValueError):
            PrivTreeParams(lam=0.0, delta=1.0)
        with pytest.raises(ValueError):
            PrivTreeParams(lam=1.0, delta=0.0)
        with pytest.raises(ValueError):
            PrivTreeParams(lam=1.0, delta=1.0, fanout=1)
        with pytest.raises(ValueError):
            PrivTreeParams.calibrate(1.0, 4, sensitivity=0.0)
