"""The tracing pillar: spans, events, the no-op fast path, exports."""

import json
import threading

import pytest

from repro import telemetry
from repro.telemetry import (
    SpanRecord,
    Tracer,
    current_tracer,
    read_jsonl,
    span,
    summarize_records,
    to_chrome_trace,
    write_jsonl,
)
from repro.telemetry.trace import _NOOP_SPAN, event


class TestDisabledFastPath:
    def test_disabled_span_is_the_shared_noop_singleton(self):
        assert current_tracer() is None
        handle = span("anything.at.all", depth=3)
        assert handle is _NOOP_SPAN
        assert span("something.else") is handle  # no allocation per call

    def test_noop_span_supports_the_full_surface(self):
        with span("x", a=1) as handle:
            handle.set(b=2)  # silently dropped
        assert event("x.event", n=1) is None

    def test_enable_disable_toggles_collection(self):
        tracer = telemetry.enable()
        with span("toggled"):
            pass
        telemetry.disable()
        with span("after.disable"):
            pass
        names = [r.name for r in tracer.records]
        assert names == ["toggled"]


class TestSpanCollection:
    def test_span_records_times_ids_and_attrs(self):
        tracer = telemetry.enable()
        with span("work.unit", depth=2) as handle:
            handle.set(n_items=5)
        (record,) = tracer.records
        assert record.name == "work.unit"
        assert record.kind == "span"
        assert record.attrs == {"depth": 2, "n_items": 5}
        assert record.wall_s >= 0.0
        assert record.cpu_s >= 0.0
        assert record.start_s > 0.0
        assert record.span_id == 1
        assert record.parent_id is None
        assert record.pid > 0 and record.tid > 0

    def test_nested_spans_form_a_parent_chain(self):
        tracer = telemetry.enable()
        with span("outer"):
            with span("middle"):
                with span("inner"):
                    pass
            event("tail")
        by_name = {r.name: r for r in tracer.records}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["middle"].span_id
        # The event fired while only "outer" was open.
        assert by_name["tail"].parent_id == by_name["outer"].span_id
        assert by_name["tail"].kind == "event"

    def test_exception_inside_span_is_recorded_and_propagates(self):
        tracer = telemetry.enable()
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
        (record,) = tracer.records
        assert record.attrs["error"] == "ValueError"

    def test_sibling_spans_share_a_parent(self):
        tracer = telemetry.enable()
        with span("parent"):
            with span("first"):
                pass
            with span("second"):
                pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["first"].parent_id == by_name["parent"].span_id
        assert by_name["second"].parent_id == by_name["parent"].span_id

    def test_threads_keep_independent_parent_stacks(self):
        tracer = telemetry.enable()
        started = threading.Event()
        release = threading.Event()

        def worker():
            with span("thread.child"):
                started.set()
                release.wait(timeout=5)

        with span("main.parent"):
            t = threading.Thread(target=worker)
            t.start()
            started.wait(timeout=5)
            release.set()
            t.join(timeout=5)
        by_name = {r.name: r for r in tracer.records}
        # The worker's span opened while main.parent was open on the main
        # thread; per-thread stacks keep it a root, not a child.
        assert by_name["thread.child"].parent_id is None
        assert by_name["thread.child"].tid != by_name["main.parent"].tid

    def test_clear_empties_the_buffer(self):
        tracer = telemetry.enable()
        with span("gone"):
            pass
        tracer.clear()
        assert tracer.records == []


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = telemetry.enable()
        with span("a", depth=1):
            event("a.note", n=2)
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(tracer.records, path) == 2
        loaded = read_jsonl(path)
        assert [r.to_wire() for r in loaded] == [
            r.to_wire() for r in tracer.records
        ]

    def test_export_jsonl_is_sorted_stable_json(self, tmp_path):
        tracer = telemetry.enable()
        with span("one"):
            pass
        path = tmp_path / "t.jsonl"
        assert tracer.export_jsonl(path) == 1
        (line,) = path.read_text().splitlines()
        parsed = json.loads(line)
        assert parsed["name"] == "one"
        assert parsed["kind"] == "span"

    def test_chrome_trace_shapes(self):
        tracer = telemetry.enable()
        with span("privtree.level", depth=0):
            event("accountant.spend", epsilon=0.5)
        doc = to_chrome_trace(tracer.records)
        assert doc["displayTimeUnit"] == "ms"
        events = {e["name"]: e for e in doc["traceEvents"]}
        level = events["privtree.level"]
        assert level["ph"] == "X"
        assert level["cat"] == "privtree"
        assert level["dur"] >= 0.0
        assert level["args"]["depth"] == 0
        assert "cpu_ms" in level["args"]
        spend = events["accountant.spend"]
        assert spend["ph"] == "i"
        assert "dur" not in spend

    def test_summarize_aggregates_by_name(self):
        tracer = telemetry.enable()
        for _ in range(3):
            with span("hot.loop"):
                pass
        with span("cold.path"):
            pass
        summary = summarize_records(tracer.records)
        by_name = {entry["name"]: entry for entry in summary}
        assert by_name["hot.loop"]["count"] == 3
        assert by_name["cold.path"]["count"] == 1
        assert all(entry["mean_ms"] >= 0.0 for entry in summary)

    def test_from_wire_tolerates_minimal_records(self):
        record = SpanRecord.from_wire({"name": "bare", "start_s": 1.0})
        assert record.wall_s == 0.0
        assert record.kind == "span"
        assert record.attrs == {}


class TestInstrumentationPrivacy:
    """Spans must carry shapes and timings, never data or counts."""

    def test_privtree_level_spans_expose_only_shape(self, uniform_2d):
        from repro.spatial.quadtree import _privtree_histogram

        tracer = telemetry.enable()
        _privtree_histogram(uniform_2d, epsilon=1.0, rng=5)
        levels = [r for r in tracer.records if r.name == "privtree.level"]
        assert levels, "privtree build produced no per-level spans"
        allowed = {"depth", "frontier", "eligible", "split"}
        for record in levels:
            assert set(record.attrs) <= allowed
        # One span per level, not per node: depths are strictly increasing.
        depths = [r.attrs["depth"] for r in levels]
        assert depths == sorted(set(depths))

    def test_accountant_spend_events_match_ledger(self):
        from repro.mechanisms.accountant import PrivacyAccountant

        tracer = telemetry.enable()
        accountant = PrivacyAccountant(1.0)
        accountant.spend(0.25, "tree structure")
        accountant.spend(0.5, "leaf counts")
        events = [r for r in tracer.records if r.name == "accountant.spend"]
        assert [(e.attrs["label"], e.attrs["epsilon"]) for e in events] == list(
            accountant.ledger
        )

    def test_rollback_emits_an_event_with_the_entry_count(self):
        from repro.mechanisms.accountant import PrivacyAccountant

        tracer = telemetry.enable()
        accountant = PrivacyAccountant(1.0)
        with pytest.raises(RuntimeError):
            with accountant.transaction():
                accountant.spend(0.25, "doomed")
                raise RuntimeError("boom")
        (rollback,) = [
            r for r in tracer.records if r.name == "accountant.rollback"
        ]
        assert rollback.attrs == {"n_entries": 1}
        assert accountant.ledger == []

    def test_tracing_never_changes_the_release(self, uniform_2d):
        from repro.spatial.quadtree import _privtree_histogram
        from repro.spatial.serialize import tree_to_dict

        plain = _privtree_histogram(uniform_2d, epsilon=1.0, rng=5)
        telemetry.enable()
        traced = _privtree_histogram(uniform_2d, epsilon=1.0, rng=5)
        telemetry.disable()
        assert tree_to_dict(traced) == tree_to_dict(plain)


class TestTracerIsolation:
    def test_enable_accepts_an_existing_tracer(self):
        mine = Tracer()
        installed = telemetry.enable(mine)
        assert installed is mine
        assert current_tracer() is mine
