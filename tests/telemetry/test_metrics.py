"""The metrics pillar: registry semantics, exposition, per-pid slabs."""

import json
import math
import os

import pytest

from repro.telemetry import (
    MetricsRegistry,
    aggregate_slabs,
    get_registry,
    read_slabs,
    render_prometheus,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    DEFAULT_SIZE_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    merge_snapshots,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_is_refused(self):
        counter = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0


class TestHistogram:
    def test_observe_fills_buckets_sum_count(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        snap = hist.snapshot()
        # Inclusive upper bounds: 1.0 lands in the first bucket.
        assert snap["counts"] == [2.0, 1.0, 1.0]
        assert snap["count"] == 4.0
        assert snap["sum"] == pytest.approx(106.5)

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one bound"):
            Histogram("h", bounds=())

    def test_default_bounds_are_valid(self):
        Histogram("lat", bounds=DEFAULT_LATENCY_BOUNDS)
        Histogram("size", bounds=DEFAULT_SIZE_BOUNDS)


class TestRegistry:
    def test_get_or_create_returns_the_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total")
        b = registry.counter("x_total")
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("x")

    def test_snapshot_and_names_are_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.gauge("a").set(2)
        assert registry.names() == ["a", "b_total"]
        snap = registry.snapshot()
        assert list(snap) == ["a", "b_total"]
        assert snap["a"] == {"type": "gauge", "value": 2.0}
        assert snap["b_total"] == {"type": "counter", "value": 1.0}

    def test_default_registry_is_a_process_singleton(self):
        assert get_registry() is get_registry()


class TestPrometheusRendering:
    def test_counter_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total").inc(3)
        registry.gauge("resident").set(1.5)
        text = registry.render_text()
        assert "# TYPE reqs_total counter" in text
        assert "reqs_total 3" in text  # integral floats render as ints
        assert "resident 1.5" in text
        assert text.endswith("\n")

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = registry.render_text()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 5.55" in text
        assert "lat_count 3" in text


class TestMergeSnapshots:
    def test_counters_histograms_and_gauges_sum(self):
        def make(n):
            registry = MetricsRegistry()
            registry.counter("c").inc(n)
            registry.gauge("g").set(n)
            registry.histogram("h", bounds=(1.0,)).observe(n)
            return registry.snapshot()

        merged = merge_snapshots([make(1), make(2)])
        assert merged["c"]["value"] == 3.0
        assert merged["g"]["value"] == 3.0  # gauges sum: fleet-wide total
        assert merged["h"]["count"] == 2.0
        assert merged["h"]["sum"] == 3.0
        assert merged["h"]["counts"] == [1.0, 1.0]

    def test_merge_does_not_mutate_inputs(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        merge_snapshots([snap, snap])
        assert snap["h"]["counts"] == [1.0, 0.0]

    def test_type_mismatch_raises(self):
        with pytest.raises(ValueError, match="type mismatch"):
            merge_snapshots(
                [
                    {"m": {"type": "counter", "value": 1.0}},
                    {"m": {"type": "gauge", "value": 1.0}},
                ]
            )

    def test_bounds_mismatch_raises(self):
        a = {"h": {"type": "histogram", "bounds": [1.0], "counts": [0.0, 0.0],
                   "sum": 0.0, "count": 0.0}}
        b = {"h": {"type": "histogram", "bounds": [2.0], "counts": [0.0, 0.0],
                   "sum": 0.0, "count": 0.0}}
        with pytest.raises(ValueError, match="bounds differ"):
            merge_snapshots([a, b])


class TestSlabs:
    def _worker_registry(self, directory, pid, *, n_requests):
        """Simulate one worker: its own registry bound to a fake pid."""
        registry = MetricsRegistry()
        requests = registry.counter("reqs_total")
        resident = registry.gauge("resident")
        latency = registry.histogram("lat", bounds=(0.1, 1.0))
        registry.bind_slab(str(directory), pid=pid)
        for i in range(n_requests):
            requests.inc()
            latency.observe(0.05 * (i + 1))
        resident.set(n_requests)
        return registry

    def test_slab_files_use_the_pid_key(self, tmp_path):
        self._worker_registry(tmp_path, 111, n_requests=1)
        assert (tmp_path / "slab-111.schema.json").exists()
        assert (tmp_path / "slab-111.dat").exists()

    def test_read_slabs_round_trips_the_snapshot(self, tmp_path):
        registry = self._worker_registry(tmp_path, 222, n_requests=3)
        (slab,) = read_slabs(str(tmp_path))
        assert slab["pid"] == 222
        assert slab["metrics"] == registry.snapshot()

    def test_aggregate_slabs_sums_across_pids(self, tmp_path):
        self._worker_registry(tmp_path, 1, n_requests=2)
        self._worker_registry(tmp_path, 2, n_requests=5)
        merged = aggregate_slabs(str(tmp_path))
        assert merged["pids"] == [1, 2]
        assert merged["metrics"]["reqs_total"]["value"] == 7.0
        assert merged["metrics"]["resident"]["value"] == 7.0
        assert merged["metrics"]["lat"]["count"] == 7.0

    def test_values_recorded_before_bind_are_flushed(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("early_total").inc(4)
        registry.bind_slab(str(tmp_path), pid=5)
        (slab,) = read_slabs(str(tmp_path))
        assert slab["metrics"]["early_total"]["value"] == 4.0

    def test_late_registration_extends_the_slab(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("first_total").inc()
        registry.bind_slab(str(tmp_path), pid=9)
        late = registry.histogram("late", bounds=(1.0, 2.0))
        late.observe(1.5)
        registry.counter("also_late_total").inc(2)
        (slab,) = read_slabs(str(tmp_path))
        assert slab["metrics"]["first_total"]["value"] == 1.0
        assert slab["metrics"]["late"]["count"] == 1.0
        assert slab["metrics"]["late"]["counts"] == [0.0, 1.0, 0.0]
        assert slab["metrics"]["also_late_total"]["value"] == 2.0

    def test_unreadable_slabs_are_skipped(self, tmp_path):
        self._worker_registry(tmp_path, 1, n_requests=1)
        # A worker mid-startup: schema present, data file truncated short.
        schema = {
            "pid": 2,
            "total_slots": 4,
            "slots": [{"name": "x", "type": "counter", "offset": 0}],
        }
        (tmp_path / "slab-2.schema.json").write_text(json.dumps(schema))
        (tmp_path / "slab-2.dat").write_bytes(b"\x00" * 8)  # 1 of 4 slots
        (tmp_path / "slab-3.schema.json").write_text("{not json")
        merged = aggregate_slabs(str(tmp_path))
        assert merged["pids"] == [1]

    def test_empty_directory_aggregates_to_nothing(self, tmp_path):
        merged = aggregate_slabs(str(tmp_path))
        assert merged == {"pids": [], "metrics": {}}

    def test_real_pid_is_the_default_key(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.bind_slab(str(tmp_path))
        (slab,) = read_slabs(str(tmp_path))
        assert slab["pid"] == os.getpid()


class TestFormatHelpers:
    def test_render_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            render_prometheus({"m": {"type": "mystery", "value": 1.0}})

    def test_inf_bound_label(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(math.pi,)).observe(1.0)
        text = registry.render_text()
        assert f'le="{math.pi!r}"' in text
