"""Telemetry tests share one invariant: the global tracer is off between
tests.  Instrumented call sites all over the library dispatch to it, so a
leaked tracer from one test would silently collect spans in every later
test (and perturb the disabled-overhead numbers)."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _tracing_disabled_between_tests():
    telemetry.disable()
    yield
    telemetry.disable()
