"""The acceptance contract: traces reconcile with the fit's own records.

A federated fit over the TCP transport, run with tracing and a
checkpoint, must produce a trace whose per-round spans match the
checkpoint's round log entry for entry, and whose accountant events
match the privacy ledger 1:1.  The heartbeat satellite rides here too:
probes are counted, never touch the RNG stream, and a stalled collector
trips the per-round deadline instead of hanging the fit.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.federated import (
    CollectorTimeoutError,
    FederatedPrivTree,
    ShardCollector,
    connect_collectors,
    loopback_collectors,
    shard_dataset,
)
from repro.federated.checkpoint import FitCheckpoint
from repro.federated.net import CollectorEndpoint, CollectorServer
from repro.federated.transport import RetryPolicy
from repro.mechanisms import PrivacyAccountant
from repro.spatial import SpatialDataset
from repro.spatial.serialize import tree_to_dict
from repro.telemetry import get_registry

N_SHARDS = 2


@pytest.fixture()
def small_2d():
    gen = np.random.default_rng(41)
    return SpatialDataset.from_points(gen.uniform(0.0, 50.0, size=(800, 2)))


def _collectors(dataset):
    return [
        ShardCollector(i, N_SHARDS, shard)
        for i, shard in enumerate(shard_dataset(dataset, N_SHARDS))
    ]


class TestTraceReconciliation:
    def test_tcp_fit_trace_reconciles_with_round_log_and_ledger(
        self, small_2d, tmp_path
    ):
        tracer = telemetry.enable()
        checkpoint = FitCheckpoint(tmp_path / "fit.json")
        accountant = PrivacyAccountant(1.0)
        servers, addresses = [], []
        try:
            for i, shard in enumerate(shard_dataset(small_2d, N_SHARDS)):
                server = CollectorServer(
                    ("127.0.0.1", 0),
                    CollectorEndpoint(ShardCollector(i, N_SHARDS, shard)),
                )
                server.serve_in_thread()
                servers.append(server)
                addresses.append(("127.0.0.1", server.port))
            clients = connect_collectors(addresses, session="trace-acceptance")
            driver = FederatedPrivTree(clients)
            driver.fit_histogram(
                1.0,
                rng=3,
                accountant=accountant,
                checkpoint=checkpoint,
                heartbeat_interval=0.0,
            )
            for client in clients:
                client.finish()
        finally:
            telemetry.disable()
            for server in servers:
                server.shutdown()
                server.server_close()

        records = tracer.records
        state = checkpoint.load()
        assert state["phase"] == "done"

        # Per-round spans reconcile with the checkpoint's round log,
        # entry for entry: same rounds, same kinds, same node counts.
        round_spans = [r for r in records if r.name == "federated.round"]
        traced = sorted(
            (r.attrs["round"], r.attrs["kind"], r.attrs["n_nodes"])
            for r in round_spans
        )
        logged = sorted(
            (entry["round"], entry["kind"], entry["n_nodes"])
            for entry in state["round_log"]
        )
        assert traced == logged

        # Accountant events reconcile with the privacy ledger 1:1.
        spends = [r for r in records if r.name == "accountant.spend"]
        assert [
            (r.attrs["label"], r.attrs["epsilon"]) for r in spends
        ] == list(accountant.ledger)
        assert [
            [label, eps] for label, eps in accountant.ledger
        ] == state["ledger"]

        # Per-collector spans: every counts round touched every shard.
        collector_spans = [r for r in records if r.name == "federated.collector"]
        counts_rounds = {
            entry["round"] for entry in state["round_log"]
            if entry["kind"] == "counts"
        }
        for round_index in counts_rounds:
            shards = {
                r.attrs["shard_id"]
                for r in collector_spans
                if r.attrs["round"] == round_index
                and r.attrs["op"] == "blinded_counts"
            }
            assert shards == set(range(N_SHARDS))

        # Heartbeats ran (interval 0 probes before every round) and were
        # both traced and counted.
        beats = [r for r in records if r.name == "federated.heartbeat"]
        assert beats
        assert {r.attrs["shard_id"] for r in beats} == set(range(N_SHARDS))

    def test_trace_captures_no_raw_data(self, small_2d):
        """No span attribute may carry points, counts, or shares."""
        tracer = telemetry.enable()
        clients = loopback_collectors(
            _collectors(small_2d), session="privacy-sweep"
        )
        FederatedPrivTree(clients).fit_histogram(1.0, rng=3)
        telemetry.disable()
        allowed = {
            "federated.round": {"round", "kind", "n_nodes"},
            "federated.collector": {"shard_id", "round", "op"},
            "federated.heartbeat": {"shard_id"},
            "accountant.spend": {"label", "epsilon"},
            "accountant.rollback": {"n_entries"},
        }
        for record in tracer.records:
            if record.name in allowed:
                assert set(record.attrs) <= allowed[record.name], record.name


class TestHeartbeat:
    def test_heartbeats_are_counted_and_preserve_bit_identity(self, small_2d):
        reference = FederatedPrivTree(_collectors(small_2d)).fit_histogram(
            1.0, rng=3
        )
        beats = get_registry().counter("repro_federated_heartbeats_total")
        before = beats.value
        clients = loopback_collectors(_collectors(small_2d), session="beats")
        tree = FederatedPrivTree(clients).fit_histogram(
            1.0, rng=3, heartbeat_interval=0.0
        )
        assert beats.value > before
        # Probes never touch the coordinator's RNG stream.
        assert tree_to_dict(tree) == tree_to_dict(reference)

    def test_in_process_collectors_are_skipped(self, small_2d):
        beats = get_registry().counter("repro_federated_heartbeats_total")
        before = beats.value
        driver = FederatedPrivTree(_collectors(small_2d))
        driver.fit_histogram(1.0, rng=3, heartbeat_interval=0.0)
        # ShardCollector has no transport, hence no heartbeat surface.
        assert beats.value == before

    def test_none_or_negative_interval_disables_probing(self, small_2d):
        beats = get_registry().counter("repro_federated_heartbeats_total")
        before = beats.value
        clients = loopback_collectors(_collectors(small_2d), session="off")
        FederatedPrivTree(clients).fit_histogram(1.0, rng=3)
        FederatedPrivTree(clients2 := loopback_collectors(
            _collectors(small_2d), session="neg"
        )).fit_histogram(1.0, rng=3, heartbeat_interval=-1.0)
        del clients, clients2
        assert beats.value == before

    def test_stalled_collector_trips_the_round_deadline(self, small_2d):
        """Satellite 2: a collector that stops answering heartbeats must
        surface as the usual typed timeout, with nothing spent."""
        retry = RetryPolicy(
            attempts=2, timeout_s=0.01, base_backoff_s=1e-4,
            max_backoff_s=1e-3, deadline_s=0.25,
        )
        clients = loopback_collectors(
            _collectors(small_2d), session="stall", retry=retry
        )
        victim = clients[1]
        original_send = victim.channel.send

        def swallowing_send(frame, round_index=None):
            # The collector never sees the probe: frames are plaintext
            # JSON, so the heartbeat kind is visible in the raw bytes.
            if b'"kind":"heartbeat"' in frame:
                return
            original_send(frame, round_index=round_index)

        victim.channel.send = swallowing_send
        accountant = PrivacyAccountant(1.0)
        driver = FederatedPrivTree(clients)
        with pytest.raises(CollectorTimeoutError, match="heartbeat") as excinfo:
            driver.fit_histogram(
                1.0, rng=3, accountant=accountant, heartbeat_interval=0.0
            )
        assert excinfo.value.shard_id == 1
        # The aborted fit rolled its budget back.
        assert accountant.ledger == []
