"""Construction and validation invariants of the six query types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.domains import Box
from repro.queries import (
    Marginal1D,
    NextSymbolDistribution,
    PointCount,
    PrefixCount,
    QueryValidationError,
    RangeCount,
    StringFrequency,
    Workload,
    query_type_registry,
)
from repro.sequence.alphabet import Alphabet

DOMAIN = Box.unit(2)
ALPHABET = Alphabet.of_size(5)


class TestRegistry:
    def test_all_six_types_registered(self):
        assert set(query_type_registry()) == {
            "range_count",
            "point_count",
            "marginal1d",
            "string_frequency",
            "prefix_count",
            "next_symbol_distribution",
        }

    def test_families(self):
        registry = query_type_registry()
        spatial = {"range_count", "point_count", "marginal1d"}
        for tag, cls in registry.items():
            assert cls.family == ("spatial" if tag in spatial else "sequence")


class TestRangeCount:
    def test_of_box_round_trips(self):
        box = Box((0.1, 0.2), (0.5, 0.6))
        assert RangeCount.of(box).box == box

    def test_rejects_inverted_extent(self):
        with pytest.raises(QueryValidationError, match="degenerate"):
            RangeCount(low=(0.5, 0.0), high=(0.1, 1.0))

    def test_rejects_dim_mismatch(self):
        with pytest.raises(QueryValidationError, match="dims"):
            RangeCount(low=(0.0,), high=(1.0, 1.0))

    def test_rejects_non_finite(self):
        with pytest.raises(QueryValidationError, match="finite"):
            RangeCount(low=(0.0, float("nan")), high=(1.0, 1.0))

    def test_validate_checks_domain_dims(self):
        query = RangeCount(low=(0.0, 0.0, 0.0), high=(1.0, 1.0, 1.0))
        with pytest.raises(QueryValidationError, match="dims"):
            query.validate(DOMAIN)

    def test_validate_rejects_wrong_family_domain(self):
        with pytest.raises(QueryValidationError, match="spatial"):
            RangeCount(low=(0.0,), high=(1.0,)).validate(ALPHABET)


class TestPointCount:
    def test_probe_cell_is_centred_and_clipped(self):
        cell = PointCount(point=(0.5, 0.5), cell_fraction=0.1).to_boxes(DOMAIN)[0]
        np.testing.assert_allclose(cell.low, (0.45, 0.45))
        np.testing.assert_allclose(cell.high, (0.55, 0.55))
        corner = PointCount(point=(0.0, 1.0), cell_fraction=0.1).to_boxes(DOMAIN)[0]
        np.testing.assert_allclose(corner.low, (0.0, 0.95))
        np.testing.assert_allclose(corner.high, (0.05, 1.0))

    def test_rejects_bad_cell_fraction(self):
        for bad in (0.0, -1.0, 1.5):
            with pytest.raises(QueryValidationError, match="cell_fraction"):
                PointCount(point=(0.5, 0.5), cell_fraction=bad)

    def test_validate_rejects_point_outside_domain(self):
        with pytest.raises(QueryValidationError, match="outside"):
            PointCount(point=(1.5, 0.5)).validate(DOMAIN)

    def test_probe_survives_float_resolution_collapse(self):
        # At coordinates much larger than the probe size, point ± half
        # rounds back onto the point; the probe must still be a valid box.
        domain = Box((1e16, 0.0), (1e16 + 4.0, 1.0))
        query = PointCount(point=(1e16, 0.5))
        query.validate(domain)
        cell = query.to_boxes(domain)[0]
        assert cell.low[0] < cell.high[0]
        assert domain.contains_box(cell)


class TestMarginal1D:
    def test_regular_edges(self):
        query = Marginal1D.regular(axis=1, n_bins=4, low=0.0, high=1.0)
        assert query.n_bins == 4
        np.testing.assert_allclose(query.edges, np.linspace(0.0, 1.0, 5))

    def test_boxes_cover_full_extent_of_other_axes(self):
        query = Marginal1D(axis=0, edges=(0.2, 0.4, 0.6))
        boxes = query.to_boxes(DOMAIN)
        assert len(boxes) == 2 == query.result_size(DOMAIN)
        for box, (lo, hi) in zip(boxes, [(0.2, 0.4), (0.4, 0.6)]):
            assert box.low == (lo, 0.0) and box.high == (hi, 1.0)

    def test_rejects_non_increasing_edges(self):
        with pytest.raises(QueryValidationError, match="increasing"):
            Marginal1D(axis=0, edges=(0.0, 0.5, 0.5))

    def test_rejects_single_edge(self):
        with pytest.raises(QueryValidationError, match="two boundaries"):
            Marginal1D(axis=0, edges=(0.0,))

    def test_validate_rejects_axis_out_of_range(self):
        with pytest.raises(QueryValidationError, match="axis 2"):
            Marginal1D(axis=2, edges=(0.0, 1.0)).validate(DOMAIN)


class TestSequenceQueries:
    @pytest.mark.parametrize("cls", [StringFrequency, PrefixCount])
    def test_rejects_empty_and_string_codes(self, cls):
        with pytest.raises(QueryValidationError, match="non-empty"):
            cls(codes=())
        with pytest.raises(QueryValidationError, match="not a string"):
            cls(codes="12")

    @pytest.mark.parametrize("cls", [StringFrequency, PrefixCount])
    def test_validate_rejects_out_of_alphabet_codes(self, cls):
        with pytest.raises(QueryValidationError, match="outside the release alphabet"):
            cls(codes=(0, ALPHABET.size)).validate(ALPHABET)

    def test_validate_rejects_wrong_family_domain(self):
        with pytest.raises(QueryValidationError, match="sequence"):
            StringFrequency(codes=(0,)).validate(DOMAIN)

    def test_next_symbol_allows_empty_context(self):
        query = NextSymbolDistribution()
        query.validate(ALPHABET)
        assert query.result_size(ALPHABET) == ALPHABET.hist_size

    def test_next_symbol_rejects_sentinel_context(self):
        query = NextSymbolDistribution(context=(ALPHABET.start_code,))
        with pytest.raises(QueryValidationError, match="outside the release alphabet"):
            query.validate(ALPHABET)


class TestWorkload:
    def test_ranges_and_strings_builders(self):
        boxes = [Box((0.0, 0.0), (0.5, 0.5)), Box((0.2, 0.2), (0.9, 0.9))]
        workload = Workload.ranges(boxes)
        assert [q.box for q in workload] == boxes
        strings = Workload.strings([[0, 1], [2]])
        assert [q.codes for q in strings] == [(0, 1), (2,)]

    def test_rejects_non_query_elements(self):
        with pytest.raises(TypeError, match="not a Query"):
            Workload.of([Box((0.0,), (1.0,))])

    def test_validate_names_offending_index(self):
        workload = Workload.of(
            [
                RangeCount(low=(0.0, 0.0), high=(1.0, 1.0)),
                RangeCount(low=(0.0,), high=(1.0,)),
            ]
        )
        with pytest.raises(QueryValidationError, match="workload query 1") as excinfo:
            workload.validate(DOMAIN)
        assert excinfo.value.index == 1

    def test_split_matches_result_sizes(self):
        workload = Workload.of(
            [
                RangeCount(low=(0.0, 0.0), high=(1.0, 1.0)),
                Marginal1D.regular(axis=0, n_bins=3, low=0.0, high=1.0),
            ]
        )
        parts = workload.split(np.arange(4.0), DOMAIN)
        assert [p.tolist() for p in parts] == [[0.0], [1.0, 2.0, 3.0]]
        with pytest.raises(ValueError, match="shape"):
            workload.split(np.arange(3.0), DOMAIN)

    def test_type_tags_first_appearance_order(self):
        workload = Workload.of(
            [
                Marginal1D.regular(axis=0, n_bins=2, low=0.0, high=1.0),
                RangeCount(low=(0.0, 0.0), high=(1.0, 1.0)),
                Marginal1D.regular(axis=1, n_bins=2, low=0.0, high=1.0),
            ]
        )
        assert workload.type_tags == ("marginal1d", "range_count")
