"""Wire-codec round trips — every query type, across all 10 methods."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.queries import (
    QueryDecodeError,
    RangeCount,
    StringFrequency,
    Workload,
    decode_query_batch,
    query_from_wire,
    query_type_registry,
    workload_from_wire,
)

from .conftest import FAST_PARAMS, example_queries, fitted_release


class TestQueryRoundTrip:
    @pytest.mark.parametrize("name", sorted(FAST_PARAMS))
    def test_every_type_round_trips_on_every_method(
        self, name, uniform_2d, sequence_data
    ):
        """to_wire -> query_from_wire is the identity, and the round-tripped
        workload answers bit-identically, for each method's supported types."""
        release = fitted_release(name, uniform_2d, sequence_data)
        domain = release.query_domain
        for query_cls in release.supported_query_types():
            queries = example_queries(
                query_cls, domain, include_anchored=(name == "pst")
            )
            for query in queries:
                wire = query.to_wire()
                # The wire form is plain JSON (no numpy scalars, no tuples).
                recoded = json.loads(json.dumps(wire))
                assert recoded == wire
                assert query_from_wire(recoded) == query
            workload = Workload.of(queries)
            round_tripped = workload_from_wire(
                json.loads(json.dumps(workload.to_wire()))
            )
            assert round_tripped == workload
            assert np.array_equal(
                release.answer(round_tripped), release.answer(workload)
            )

    def test_wire_form_is_versioned_and_tagged(self):
        wire = RangeCount(low=(0.0, 0.0), high=(1.0, 1.0)).to_wire()
        assert wire["format"] == "repro.query"
        assert wire["version"] == 1
        assert wire["type"] == "range_count"

    def test_every_registered_type_has_examples(self, uniform_2d, sequence_data):
        """The parametrized round trip above covers all six tags."""
        spatial = fitted_release("privtree", uniform_2d, sequence_data)
        pst = fitted_release("pst", uniform_2d, sequence_data)
        covered = set()
        for release in (spatial, pst):
            for cls in release.supported_query_types():
                covered.add(cls.type_tag)
        assert covered == set(query_type_registry())


class TestDecodeErrors:
    def test_rejects_wrong_format(self):
        with pytest.raises(QueryDecodeError, match="format"):
            query_from_wire({"format": "repro.release", "version": 1})

    def test_rejects_unknown_version(self):
        with pytest.raises(QueryDecodeError, match="version"):
            query_from_wire(
                {"format": "repro.query", "version": 99, "type": "range_count"}
            )

    def test_rejects_unhashable_type_field(self):
        # A list "type" must be a decode error, not a TypeError traceback.
        with pytest.raises(QueryDecodeError, match="must be a string"):
            query_from_wire(
                {"format": "repro.query", "version": 1, "type": ["range_count"]}
            )

    def test_rejects_unknown_type_listing_known(self):
        with pytest.raises(QueryDecodeError, match="range_count"):
            query_from_wire(
                {"format": "repro.query", "version": 1, "type": "sql"}
            )

    def test_rejects_malformed_payload(self):
        with pytest.raises(QueryDecodeError, match="range_count"):
            query_from_wire(
                {"format": "repro.query", "version": 1, "type": "range_count"}
            )

    def test_workload_reports_offending_index(self):
        doc = {
            "format": "repro.workload",
            "version": 1,
            "queries": [
                StringFrequency(codes=(0,)).to_wire(),
                {"format": "repro.query", "version": 1, "type": "nope"},
            ],
        }
        with pytest.raises(QueryDecodeError, match="workload query 1") as excinfo:
            workload_from_wire(doc)
        assert excinfo.value.index == 1


class TestDecodeBatch:
    def test_legacy_boxes_decode_with_deprecation(self):
        raw = [{"low": [0.1, 0.1], "high": [0.5, 0.5]}]
        with pytest.warns(DeprecationWarning, match="raw query batches"):
            workload = decode_query_batch(raw, spatial=True)
        assert workload[0] == RangeCount(low=(0.1, 0.1), high=(0.5, 0.5))

    def test_legacy_codes_decode_with_deprecation(self):
        with pytest.warns(DeprecationWarning, match="raw query batches"):
            workload = decode_query_batch([[0, 1, 2]], spatial=False)
        assert workload[0] == StringFrequency(codes=(0, 1, 2))

    def test_mixed_typed_and_legacy(self):
        raw = [
            RangeCount(low=(0.0, 0.0), high=(1.0, 1.0)).to_wire(),
            {"low": [0.1, 0.1], "high": [0.5, 0.5]},
        ]
        with pytest.warns(DeprecationWarning):
            workload = decode_query_batch(raw, spatial=True)
        assert len(workload) == 2

    def test_malformed_entry_reports_index(self):
        raw = [
            {"low": [0.0, 0.0], "high": [1.0, 1.0]},
            {"low": [0.0, 0.0]},
        ]
        with pytest.raises(QueryDecodeError, match="query 1 is malformed") as excinfo:
            decode_query_batch(raw, spatial=True)
        assert excinfo.value.index == 1

    def test_string_not_treated_as_code_list(self):
        with pytest.raises(QueryDecodeError, match="query 0 is malformed"):
            decode_query_batch(["12"], spatial=False)
