"""`Release.answer` correctness across every registered method.

For each of the 10 registry methods: every supported query type answers
through one vectorized ``answer`` dispatch, bit-identical to the scalar
reference (the per-box ``query`` loop for spatial releases; the recursive
model walks for sequence releases).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.queries import (
    Marginal1D,
    NextSymbolDistribution,
    PointCount,
    PrefixCount,
    QueryValidationError,
    RangeCount,
    StringFrequency,
    UnsupportedQueryTypeError,
    Workload,
)

from .conftest import FAST_PARAMS, example_queries, fitted_release

SPATIAL_METHODS = sorted(n for n, (k, _) in FAST_PARAMS.items() if k == "spatial")
SEQUENCE_METHODS = sorted(n for n, (k, _) in FAST_PARAMS.items() if k == "sequence")


def mixed_workload(release):
    """Every supported query type of ``release``, interleaved."""
    queries = []
    for query_cls in release.supported_query_types():
        queries.extend(
            example_queries(
                query_cls,
                release.query_domain,
                include_anchored=(release.kind == "sequence-pst"),
            )
        )
    # Interleave so homogeneous grouping inside answer() is exercised.
    queries = queries[::2] + queries[1::2]
    return Workload.of(queries)


def reference_prefix_count(model, codes):
    """The anchored Equation (12) chain via the recursive PST walks."""
    start = model.alphabet.start_code
    node = model.lookup([start])
    answer = float(node.hist[codes[0]])
    context = [start, codes[0]]
    for code in codes[1:]:
        if answer <= 0:
            return 0.0
        node = model.lookup(context)
        total = node.hist.sum()
        if total <= 0:
            return 0.0
        answer = answer * float(node.hist[code] / total)
        context.append(code)
    return max(answer, 0.0)


def reference_next_symbol(model, query):
    """The conditional row via the recursive PST lookup."""
    context = list(query.context)
    if query.anchored:
        context = [model.alphabet.start_code] + context
    node = model.lookup(context)
    total = node.hist.sum()
    if total <= 0:
        return np.zeros_like(np.asarray(node.hist, dtype=float))
    return np.asarray(node.hist, dtype=float) / total


class TestSpatialAnswer:
    @pytest.mark.parametrize("name", SPATIAL_METHODS)
    def test_answer_matches_scalar_query_loop(self, name, uniform_2d):
        release = fitted_release(name, uniform_2d, None)
        workload = mixed_workload(release)
        flat = release.answer(workload)
        assert flat.dtype == np.float64
        domain = release.query_domain
        scalar = np.array(
            [release.query(box) for q in workload for box in q.to_boxes(domain)]
        )
        assert np.array_equal(flat, scalar)
        assert flat.shape[0] == workload.result_size(domain)

    @pytest.mark.parametrize("name", SPATIAL_METHODS)
    def test_ranges_workload_matches_query_many(self, name, uniform_2d):
        """The documented migration: answer(Workload.ranges(boxes)) is
        bit-identical to the legacy query_many(boxes)."""
        release = fitted_release(name, uniform_2d, None)
        boxes = [q.box for q in example_queries(RangeCount, release.query_domain)]
        assert np.array_equal(
            release.answer(Workload.ranges(boxes)), release.query_many(boxes)
        )

    def test_marginal_bins_sum_to_full_range(self, uniform_2d):
        """Adjacent marginal bins partition their slab: the bin answers sum
        to the slab's range count (same piecewise-uniform geometry)."""
        from repro.domains import Box

        release = fitted_release("privtree", uniform_2d, None)
        marginal = Marginal1D.regular(axis=0, n_bins=8, low=0.2, high=0.8)
        bins = release.answer(Workload.of([marginal]))
        whole = release.query(Box((0.2, 0.0), (0.8, 1.0)))
        assert bins.sum() == pytest.approx(whole, rel=1e-9)

    def test_point_count_equals_probe_range(self, uniform_2d):
        release = fitted_release("privtree", uniform_2d, None)
        query = PointCount(point=(0.3, 0.7))
        probe = query.to_boxes(release.query_domain)[0]
        assert release.answer(Workload.of([query]))[0] == release.query(probe)

    def test_sequence_queries_rejected_with_index(self, uniform_2d):
        release = fitted_release("ug", uniform_2d, None)
        workload = Workload.of(
            [
                RangeCount(low=(0.0, 0.0), high=(1.0, 1.0)),
                StringFrequency(codes=(0,)),
            ]
        )
        with pytest.raises(UnsupportedQueryTypeError, match="workload query 1") as exc:
            release.answer(workload)
        assert exc.value.index == 1

    def test_validation_failure_reports_index(self, uniform_2d):
        release = fitted_release("privtree", uniform_2d, None)
        workload = Workload.of(
            [
                RangeCount(low=(0.0, 0.0), high=(1.0, 1.0)),
                PointCount(point=(7.0, 7.0)),  # outside the unit domain
            ]
        )
        with pytest.raises(QueryValidationError, match="workload query 1") as exc:
            release.answer(workload)
        assert exc.value.index == 1


class TestSequenceAnswer:
    def test_pst_string_frequency_matches_recursive(self, sequence_data):
        release = fitted_release("pst", None, sequence_data)
        queries = example_queries(StringFrequency, release.query_domain)
        flat = release.answer(Workload.of(queries))
        recursive = np.array(
            [release.model.string_frequency(q.codes) for q in queries]
        )
        assert np.array_equal(flat, recursive)

    def test_pst_prefix_count_matches_anchored_walk(self, sequence_data):
        release = fitted_release("pst", None, sequence_data)
        queries = example_queries(PrefixCount, release.query_domain)
        flat = release.answer(Workload.of(queries))
        reference = np.array(
            [reference_prefix_count(release.model, q.codes) for q in queries]
        )
        assert np.array_equal(flat, reference)

    def test_pst_prefix_counts_bounded_by_sequence_openings(self, sequence_data):
        """Prefix mass can only shrink under extension, and a one-symbol
        prefix count is exactly the $-context histogram entry."""
        release = fitted_release("pst", None, sequence_data)
        start_node = release.model.lookup([release.model.alphabet.start_code])
        one = release.answer(Workload.of([PrefixCount(codes=(0,))]))[0]
        two = release.answer(Workload.of([PrefixCount(codes=(0, 1))]))[0]
        assert one == float(start_node.hist[0])
        assert 0.0 <= two <= one

    def test_pst_next_symbol_matches_recursive(self, sequence_data):
        release = fitted_release("pst", None, sequence_data)
        domain = release.query_domain
        queries = example_queries(NextSymbolDistribution, domain, include_anchored=True)
        workload = Workload.of(queries)
        parts = workload.split(release.answer(workload), domain)
        for query, part in zip(queries, parts):
            assert np.array_equal(part, reference_next_symbol(release.model, query))

    def test_pst_mixed_workload_matches_per_type_answers(self, sequence_data):
        release = fitted_release("pst", None, sequence_data)
        workload = mixed_workload(release)
        domain = release.query_domain
        parts = workload.split(release.answer(workload), domain)
        for query, part in zip(workload, parts):
            alone = release.answer(Workload.of([query]))
            assert np.array_equal(part, alone)

    def test_ngram_frequency_and_next_symbol(self, sequence_data):
        release = fitted_release("ngram", None, sequence_data)
        domain = release.query_domain
        freq = example_queries(StringFrequency, domain)
        flat = release.answer(Workload.of(freq))
        assert np.array_equal(
            flat, np.array([release.model.string_frequency(q.codes) for q in freq])
        )
        dist = NextSymbolDistribution(context=(1,))
        row = release.answer(Workload.of([dist]))
        assert np.array_equal(row, release.model.conditional_row((1,)))

    def test_ngram_rejects_prefix_count(self, sequence_data):
        release = fitted_release("ngram", None, sequence_data)
        with pytest.raises(UnsupportedQueryTypeError, match="prefix_count"):
            release.answer(Workload.of([PrefixCount(codes=(0,))]))

    def test_ngram_rejects_anchored_next_symbol_with_index(self, sequence_data):
        """Dropping the $ anchor would silently answer a materially
        different distribution; the n-gram release must refuse instead."""
        release = fitted_release("ngram", None, sequence_data)
        workload = Workload.of(
            [
                NextSymbolDistribution(context=(0,)),
                NextSymbolDistribution(context=(), anchored=True),
            ]
        )
        with pytest.raises(UnsupportedQueryTypeError, match="anchored") as exc:
            release.answer(workload)
        assert exc.value.index == 1

    def test_dollarless_pst_drops_prefix_count(self):
        """A PST released without a $ context (tiny budgets may never
        split on the start sentinel) has no sequence-start statistics:
        PrefixCount must be rejected, not silently answered with
        occurrence counts exceeding n."""
        from repro.api.releases import SequenceRelease
        from repro.sequence.alphabet import Alphabet
        from repro.sequence.pst import PredictionSuffixTree, PSTNode

        alphabet = Alphabet.of_size(3)
        root = PSTNode(context=(), hist=np.array([5.0, 3.0, 2.0, 1.0]))
        release = SequenceRelease(
            PredictionSuffixTree(alphabet=alphabet, root=root),
            method="pst",
            epsilon_spent=0.1,
        )
        assert PrefixCount not in release.supported_query_types()
        with pytest.raises(UnsupportedQueryTypeError, match="prefix_count"):
            release.answer(Workload.of([PrefixCount(codes=(0,))]))
        with pytest.raises(ValueError, match="no '\\$' context"):
            release.model.flat().prefix_frequency_many([(0,)])
        # The other sequence types still answer.
        flat = release.answer(
            Workload.of(
                [StringFrequency(codes=(0,)), NextSymbolDistribution(context=(0,))]
            )
        )
        assert flat.shape[0] == 1 + release.query_domain.hist_size

    @pytest.mark.parametrize("name", SEQUENCE_METHODS)
    def test_strings_workload_matches_query_many(self, name, sequence_data):
        """The documented migration for sequence releases."""
        release = fitted_release(name, None, sequence_data)
        code_lists = [[0], [1, 2], [0, 1, 0]]
        assert np.array_equal(
            release.answer(Workload.strings(code_lists)),
            np.asarray(release.query_many(code_lists), dtype=np.float64),
        )


class TestAnswerInputs:
    def test_accepts_single_query_and_sequences(self, uniform_2d):
        release = fitted_release("privtree", uniform_2d, None)
        query = RangeCount(low=(0.1, 0.1), high=(0.6, 0.6))
        single = release.answer(query)
        as_list = release.answer([query])
        as_workload = release.answer(Workload.of([query]))
        assert np.array_equal(single, as_list)
        assert np.array_equal(single, as_workload)

    def test_empty_workload_answers_empty(self, uniform_2d):
        release = fitted_release("privtree", uniform_2d, None)
        flat = release.answer(Workload.of([]))
        assert flat.shape == (0,)
