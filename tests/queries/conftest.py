"""Shared fixtures for the query-subsystem tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import from_spec
from repro.datasets import msnbclike
from repro.queries import (
    Marginal1D,
    NextSymbolDistribution,
    PointCount,
    PrefixCount,
    RangeCount,
    StringFrequency,
)

from ..api.conftest import FAST_PARAMS

__all__ = ["FAST_PARAMS", "example_queries", "fitted_release"]


@pytest.fixture(scope="module")
def sequence_data():
    """A small browsing-history analogue (same config as the API tests)."""
    return msnbclike(800, rng=3)


def fitted_release(name, uniform_2d, sequence_data, rng=0):
    """One fitted release per registry method, at the fast test configs."""
    kind, params = FAST_PARAMS[name]
    dataset = uniform_2d if kind == "spatial" else sequence_data
    return from_spec(name, epsilon=1.0, **params).fit(dataset, rng=rng)


def example_queries(query_cls, domain, include_anchored=False):
    """A few representative instances of ``query_cls`` valid over ``domain``.

    ``include_anchored`` adds ``$``-anchored next-symbol variants, which
    only PST releases answer (the n-gram baseline rejects anchoring).
    """
    if query_cls is RangeCount:
        return [
            RangeCount(low=(0.1, 0.1), high=(0.4, 0.5)),
            RangeCount(low=(0.0, 0.0), high=(1.0, 1.0)),
            RangeCount(low=(0.55, 0.2), high=(0.85, 0.95)),
        ]
    if query_cls is PointCount:
        return [
            PointCount(point=(0.5, 0.5)),
            PointCount(point=(0.0, 1.0), cell_fraction=0.25),
        ]
    if query_cls is Marginal1D:
        return [
            Marginal1D.regular(axis=0, n_bins=4, low=0.0, high=1.0),
            Marginal1D(axis=1, edges=(0.2, 0.5, 0.9)),
        ]
    size = domain.size
    if query_cls is StringFrequency:
        return [
            StringFrequency(codes=(0,)),
            StringFrequency(codes=(1, 2)),
            StringFrequency(codes=(0, 1, 0)),
            StringFrequency(codes=(size - 1,)),
        ]
    if query_cls is PrefixCount:
        return [
            PrefixCount(codes=(0,)),
            PrefixCount(codes=(1, 0)),
            PrefixCount(codes=(0, 1, 2)),
        ]
    if query_cls is NextSymbolDistribution:
        out = [
            NextSymbolDistribution(),
            NextSymbolDistribution(context=(0,)),
            NextSymbolDistribution(context=(1, 2), anchored=False),
        ]
        if include_anchored:
            out += [
                NextSymbolDistribution(context=(), anchored=True),
                NextSymbolDistribution(context=(0, 1), anchored=True),
            ]
        return out
    raise AssertionError(f"no examples for {query_cls}")
