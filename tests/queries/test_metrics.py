"""Unified workload metrics: the §6.1 smoothed relative error, mean + max."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queries import (
    RangeCount,
    Workload,
    WorkloadScore,
    relative_errors,
    score_workload,
    workload_error,
)


class TestRelativeErrors:
    def test_matches_formula(self):
        errors = relative_errors(
            np.array([110.0, 1.0]), np.array([100.0, 0.0]), smoothing=5.0
        )
        np.testing.assert_allclose(errors, [10.0 / 100.0, 1.0 / 5.0])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="smoothing"):
            relative_errors(np.ones(2), np.ones(2), smoothing=0.0)
        with pytest.raises(ValueError, match="shape"):
            relative_errors(np.ones(2), np.ones(3), smoothing=1.0)
        with pytest.raises(ValueError, match="at least one"):
            relative_errors(np.empty(0), np.empty(0), smoothing=1.0)


class TestScoreWorkload:
    def test_release_scored_through_answer(self, uniform_2d):
        from repro.api import from_spec

        release = from_spec("privtree", epsilon=1.0).fit(uniform_2d, rng=0)
        boxes = [
            RangeCount(low=(0.1, 0.1), high=(0.5, 0.5)).box,
            RangeCount(low=(0.2, 0.0), high=(0.9, 0.8)).box,
        ]
        workload = Workload.ranges(boxes)
        exacts = np.array([float(uniform_2d.count_in(b)) for b in boxes])
        smoothing = 0.001 * uniform_2d.n
        score = score_workload(release, workload, exacts, smoothing)
        assert isinstance(score, WorkloadScore)
        estimates = release.answer(workload)
        expected = np.abs(estimates - exacts) / np.maximum(exacts, smoothing)
        assert score.mean_error == pytest.approx(float(expected.mean()))
        assert score.max_error == pytest.approx(float(expected.max()))
        assert score.n_answers == 2
        assert workload_error(release, workload, exacts, smoothing) == score.mean_error
        assert float(score) == score.mean_error

    def test_bare_synopsis_falls_back_to_range_count_many(self, uniform_2d):
        """Ablation builders may return raw trees; scoring still works."""
        from repro.spatial import privtree_histogram

        with pytest.warns(DeprecationWarning):
            tree = privtree_histogram(uniform_2d, epsilon=1.0, rng=0)
        boxes = [RangeCount(low=(0.1, 0.1), high=(0.5, 0.5)).box]
        workload = Workload.ranges(boxes)
        exacts = np.array([float(uniform_2d.count_in(b)) for b in boxes])
        err = workload_error(tree, workload, exacts, smoothing=5.0)
        direct = abs(tree.range_count(boxes[0]) - exacts[0]) / max(exacts[0], 5.0)
        assert err == pytest.approx(direct)
