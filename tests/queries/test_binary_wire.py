"""The packed binary wire form: round-trips, fast path, malformed payloads."""

import numpy as np
import pytest

from repro.domains import Box
from repro.queries import (
    BINARY_ANSWERS_CONTENT_TYPE,
    BINARY_WIRE_CONTENT_TYPE,
    Marginal1D,
    NextSymbolDistribution,
    PackedRangeCounts,
    PointCount,
    PrefixCount,
    QueryDecodeError,
    QueryValidationError,
    RangeCount,
    StringFrequency,
    Workload,
    decode_binary_answers,
    decode_binary_workload,
    encode_binary_answers,
    encode_binary_workload,
)


def _range_workload(n=5, d=2, seed=0):
    rng = np.random.default_rng(seed)
    lows = rng.random((n, d)) * 0.5
    highs = lows + 0.1 + rng.random((n, d)) * 0.3
    return Workload.of(
        [RangeCount(low=tuple(l), high=tuple(h)) for l, h in zip(lows, highs)]
    )


MIXED_QUERIES = [
    RangeCount(low=(0.1, 0.1), high=(0.4, 0.5)),
    RangeCount(low=(0.0, 0.0), high=(1.0, 1.0)),
    PointCount(point=(0.25, 0.75)),
    Marginal1D.regular(axis=0, n_bins=4, low=0.0, high=1.0),
    StringFrequency(codes=(0, 1)),
    PrefixCount(codes=(1,)),
    NextSymbolDistribution(context=(0,)),
    RangeCount(low=(0.2, 0.2), high=(0.3, 0.3)),
]


class TestWorkloadRoundTrip:
    def test_all_range_counts_decode_to_packed_arrays(self):
        workload = _range_workload(n=7)
        packed = decode_binary_workload(encode_binary_workload(workload))
        assert isinstance(packed, PackedRangeCounts)
        assert len(packed) == 7
        assert packed.ndim == 2
        expected_lows = np.array([q.low for q in workload])
        expected_highs = np.array([q.high for q in workload])
        assert np.array_equal(packed.q_lows, expected_lows)
        assert np.array_equal(packed.q_highs, expected_highs)
        assert packed.to_workload() == workload

    def test_mixed_batch_round_trips_in_order(self):
        workload = Workload.of(MIXED_QUERIES)
        decoded = decode_binary_workload(encode_binary_workload(workload))
        assert isinstance(decoded, Workload)
        assert decoded == workload

    def test_empty_workload_round_trips(self):
        decoded = decode_binary_workload(encode_binary_workload(Workload.of([])))
        assert isinstance(decoded, Workload)
        assert len(decoded) == 0

    def test_single_non_range_query_materializes_workload(self):
        workload = Workload.of([PointCount(point=(0.5, 0.5))])
        decoded = decode_binary_workload(encode_binary_workload(workload))
        assert isinstance(decoded, Workload)
        assert decoded == workload

    def test_answers_against_release_match_json_path(self, uniform_2d):
        from repro.api import from_spec

        release = from_spec("privtree", epsilon=1.0).fit(uniform_2d, rng=0)
        workload = _range_workload(n=6, seed=3)
        packed = decode_binary_workload(encode_binary_workload(workload))
        direct = release.answer(workload)
        via_arrays = release.range_count_arrays(packed.q_lows, packed.q_highs)
        assert np.array_equal(direct, via_arrays)


class TestAnswerRoundTrip:
    def test_values_and_offsets_bit_exact(self):
        values = np.random.default_rng(0).random(11) * 1e6
        offsets = np.arange(12, dtype=np.uint32)
        out_values, out_offsets = decode_binary_answers(
            encode_binary_answers(values, offsets)
        )
        assert np.array_equal(out_values, values)
        assert np.array_equal(out_offsets, offsets)

    def test_vector_query_offsets(self):
        values = np.arange(7, dtype=np.float64)
        offsets = np.array([0, 1, 5, 7], dtype=np.uint32)  # 3 queries
        out_values, out_offsets = decode_binary_answers(
            encode_binary_answers(values, offsets)
        )
        assert np.array_equal(out_offsets, offsets)
        assert np.array_equal(out_values[1:5], values[1:5])

    def test_answer_payload_rejects_bad_magic(self):
        payload = bytearray(
            encode_binary_answers(np.zeros(1), np.array([0, 1], dtype=np.uint32))
        )
        payload[:4] = b"XXXX"
        with pytest.raises(QueryDecodeError):
            decode_binary_answers(bytes(payload))


class TestMalformedPayloads:
    def test_bad_magic(self):
        with pytest.raises(QueryDecodeError):
            decode_binary_workload(b"JSON{not binary}")

    def test_truncated_header(self):
        with pytest.raises(QueryDecodeError):
            decode_binary_workload(b"RPWB\x01")

    def test_truncated_columns(self):
        payload = encode_binary_workload(_range_workload(n=4))
        with pytest.raises(QueryDecodeError):
            decode_binary_workload(payload[:-8])

    def test_trailing_bytes_rejected(self):
        payload = encode_binary_workload(_range_workload(n=2))
        with pytest.raises(QueryDecodeError):
            decode_binary_workload(payload + b"\x00")

    def test_unknown_tag_rejected(self):
        payload = bytearray(encode_binary_workload(_range_workload(n=2)))
        payload[8] = 0xEE  # first section's tag byte
        with pytest.raises(QueryDecodeError):
            decode_binary_workload(bytes(payload))

    def test_invalid_bounds_raise_validation_error_with_index(self):
        queries = [
            RangeCount(low=(0.1, 0.1), high=(0.4, 0.5)),
            PointCount(point=(0.5, 0.5)),
        ]
        payload = bytearray(encode_binary_workload(Workload.of(queries)))
        # Corrupt the first range bound to NaN: materialization re-validates.
        nan = np.array([np.nan]).tobytes()
        start = 8 + 8  # file header + first section header
        payload[start : start + 8] = nan
        with pytest.raises((QueryDecodeError, QueryValidationError)) as info:
            decode_binary_workload(bytes(payload))
        assert getattr(info.value, "index", None) == 0

    def test_packed_validate_checks_domain_and_finiteness(self):
        packed = decode_binary_workload(
            encode_binary_workload(_range_workload(n=3, d=2))
        )
        packed.validate(Box.unit(2))  # fine
        with pytest.raises(QueryValidationError):
            packed.validate(Box.unit(3))  # wrong dimensionality
        bad = PackedRangeCounts(
            q_lows=np.array([[0.4, 0.4]]), q_highs=np.array([[0.1, 0.5]])
        )
        with pytest.raises(QueryValidationError):
            bad.validate(Box.unit(2))  # low >= high


class TestContentTypes:
    def test_distinct_vendor_types(self):
        assert BINARY_WIRE_CONTENT_TYPE == "application/x-repro-workload"
        assert BINARY_ANSWERS_CONTENT_TYPE == "application/x-repro-answers"
        assert BINARY_WIRE_CONTENT_TYPE != BINARY_ANSWERS_CONTENT_TYPE
