"""Tests for histogram-tree serialization."""

import json

import pytest

from repro.domains import Box
from repro.spatial import (
    generate_workload,
    load_tree,
    privtree_histogram,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_structure(self, uniform_2d):
        original = privtree_histogram(uniform_2d, epsilon=1.0, rng=0)
        restored = tree_from_dict(tree_to_dict(original))
        assert restored.size == original.size
        assert restored.leaf_count == original.leaf_count
        assert restored.total_count == pytest.approx(original.total_count)

    def test_roundtrip_preserves_query_answers(self, clustered_2d):
        original = privtree_histogram(clustered_2d, epsilon=1.0, rng=1)
        restored = tree_from_dict(tree_to_dict(original))
        for query in generate_workload(clustered_2d.domain, "medium", 20, rng=2):
            assert restored.range_count(query) == pytest.approx(
                original.range_count(query)
            )

    def test_file_roundtrip(self, uniform_2d, tmp_path):
        original = privtree_histogram(uniform_2d, epsilon=1.0, rng=0)
        path = tmp_path / "synopsis.json"
        save_tree(original, path)
        restored = load_tree(path)
        assert restored.size == original.size

    def test_document_is_plain_json(self, uniform_2d, tmp_path):
        original = privtree_histogram(uniform_2d, epsilon=1.0, rng=0)
        path = tmp_path / "synopsis.json"
        save_tree(original, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro.histogram_tree"
        assert "root" in data
        assert set(data["root"]) <= {"low", "high", "count", "children"}


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            tree_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self, uniform_2d):
        doc = tree_to_dict(privtree_histogram(uniform_2d, epsilon=1.0, rng=0))
        doc["version"] = 999
        with pytest.raises(ValueError):
            tree_from_dict(doc)

    def test_degenerate_box_rejected_on_load(self):
        doc = {
            "format": "repro.histogram_tree",
            "version": 1,
            "root": {"low": [0.0], "high": [0.0], "count": 1.0},
        }
        with pytest.raises(ValueError):
            tree_from_dict(doc)


def _doc(root):
    return {"format": "repro.histogram_tree", "version": 1, "root": root}


class TestMalformedDocuments:
    """Untrusted artifacts (the HTTP service's input) must fail at load.

    Regression: these documents used to load silently and only blow up —
    or worse, answer garbage — inside the flat-engine query math.
    """

    def test_inverted_box_rejected(self):
        root = {"low": [1.0, 0.0], "high": [0.0, 1.0], "count": 5.0}
        with pytest.raises(ValueError, match="low must be < high"):
            tree_from_dict(_doc(root))

    def test_non_finite_coordinates_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            root = {"low": [0.0, 0.0], "high": [1.0, bad], "count": 5.0}
            with pytest.raises(ValueError, match="non-finite box coordinate"):
                tree_from_dict(_doc(root))

    def test_non_finite_count_rejected(self):
        for bad in (float("nan"), float("inf")):
            root = {"low": [0.0], "high": [1.0], "count": bad}
            with pytest.raises(ValueError, match="non-finite node count"):
                tree_from_dict(_doc(root))

    def test_non_numeric_count_rejected(self):
        root = {"low": [0.0], "high": [1.0], "count": "lots"}
        with pytest.raises(ValueError, match="numeric 'count'"):
            tree_from_dict(_doc(root))

    def test_child_escaping_parent_rejected(self):
        root = {
            "low": [0.0, 0.0],
            "high": [1.0, 1.0],
            "count": 10.0,
            "children": [
                {"low": [0.0, 0.0], "high": [0.5, 1.0], "count": 4.0},
                {"low": [0.5, 0.0], "high": [1.5, 1.0], "count": 6.0},
            ],
        }
        with pytest.raises(ValueError, match="escapes its parent"):
            tree_from_dict(_doc(root))

    def test_child_dimension_mismatch_rejected(self):
        root = {
            "low": [0.0, 0.0],
            "high": [1.0, 1.0],
            "count": 10.0,
            "children": [{"low": [0.0], "high": [0.5], "count": 4.0}],
        }
        with pytest.raises(ValueError, match="dims"):
            tree_from_dict(_doc(root))

    def test_missing_extents_rejected(self):
        with pytest.raises(ValueError, match="low"):
            tree_from_dict(_doc({"count": 1.0}))
        with pytest.raises(ValueError, match="root"):
            tree_from_dict({"format": "repro.histogram_tree", "version": 1})

    def test_extent_length_mismatch_rejected(self):
        root = {"low": [0.0, 0.0], "high": [1.0], "count": 1.0}
        with pytest.raises(ValueError, match="dims"):
            tree_from_dict(_doc(root))

    def test_valid_nested_document_still_loads(self, uniform_2d):
        doc = tree_to_dict(privtree_histogram(uniform_2d, epsilon=1.0, rng=0))
        restored = tree_from_dict(json.loads(json.dumps(doc)))
        assert restored.size >= 1
