"""Equivalence tests for the flat array-backed query engine.

The flat engine must answer exactly like the recursive §2.2 traversal (to
float round-off) on any released tree — including SimpleTree releases,
whose internal counts are NOT the sum of their children, which exercises
the maximal-covered-node logic rather than leaf-only shortcuts.
"""

import numpy as np
import pytest

from repro.domains import Box
from repro.spatial import (
    FlatHistogram,
    HistogramNode,
    HistogramTree,
    SpatialDataset,
    flatten_tree,
    generate_workload,
    privtree_histogram,
    simpletree_histogram,
)

BANDS = ["small", "medium", "large"]


def random_dataset(seed: int, n: int = 4000, d: int = 2) -> SpatialDataset:
    gen = np.random.default_rng(seed)
    mode = seed % 3
    if mode == 0:
        pts = gen.uniform(0, 1, size=(n, d)) * 0.999
    elif mode == 1:
        pts = np.clip(gen.normal(0.5, 0.12, size=(n, d)), 0, 0.999)
    else:
        centers = gen.uniform(0.1, 0.9, size=(4, d))
        pts = np.clip(
            centers[gen.integers(4, size=n)] + gen.normal(0, 0.03, size=(n, d)),
            0,
            0.999,
        )
    return SpatialDataset(pts, Box.unit(d))


def random_trees():
    """A varied set of released trees: PrivTree and SimpleTree, 2-d and 4-d."""
    trees = []
    for seed in range(4):
        data = random_dataset(seed)
        trees.append(privtree_histogram(data, epsilon=1.0, rng=seed))
        trees.append(
            simpletree_histogram(data, epsilon=1.0, height=5, theta=0.0, rng=seed)
        )
    data4 = random_dataset(5, n=2000, d=4)
    trees.append(privtree_histogram(data4, epsilon=1.0, rng=5))
    trees.append(privtree_histogram(random_dataset(6), epsilon=1.0, rng=6, dims_per_split=1))
    return trees


class TestCompilation:
    def test_arrays_mirror_tree(self):
        tree = privtree_histogram(random_dataset(0), epsilon=1.0, rng=0)
        flat = flatten_tree(tree)
        assert flat.size == tree.size
        assert flat.leaf_count == tree.leaf_count
        assert flat.total_count == tree.total_count
        assert flat.ndim == 2
        nodes = list(tree.root.iter_nodes())
        for i, node in enumerate(nodes):
            assert tuple(flat.lows[i]) == node.box.low
            assert tuple(flat.highs[i]) == node.box.high
            assert flat.counts[i] == node.count

    def test_topology_consistent(self):
        flat = flatten_tree(
            privtree_histogram(random_dataset(1), epsilon=1.0, rng=1)
        )
        assert flat.parents[0] == -1
        for i in range(flat.size):
            children = flat.child_index[
                flat.child_offsets[i] : flat.child_offsets[i + 1]
            ]
            for c in children:
                assert flat.parents[c] == i
        # Every non-root node appears exactly once as someone's child.
        assert sorted(flat.child_index) == list(range(1, flat.size))

    def test_to_tree_round_trip(self):
        tree = privtree_histogram(random_dataset(2), epsilon=1.0, rng=2)
        rebuilt = flatten_tree(tree).to_tree()
        assert rebuilt.size == tree.size
        originals = list(tree.root.iter_nodes())
        copies = list(rebuilt.root.iter_nodes())
        for a, b in zip(originals, copies):
            assert a.box == b.box
            assert a.count == b.count

    def test_cached_on_histogram_tree(self):
        tree = privtree_histogram(random_dataset(0), epsilon=1.0, rng=0)
        assert tree.flat() is tree.flat()


class TestEquivalence:
    @pytest.mark.parametrize("band", BANDS)
    def test_flat_matches_recursive_on_randomized_trees(self, band):
        for i, tree in enumerate(random_trees()):
            flat = tree.flat()
            domain = tree.root.box
            queries = generate_workload(domain, band, 40, rng=100 + i)
            recursive = np.array([tree.range_count(q) for q in queries])
            batched = flat.range_count_many(queries)
            single = np.array([flat.range_count(q) for q in queries])
            scale = max(1.0, float(np.abs(recursive).max()))
            assert np.abs(batched - recursive).max() <= 1e-9 * scale
            assert np.abs(single - recursive).max() <= 1e-9 * scale

    def test_query_covering_whole_domain(self):
        tree = privtree_histogram(random_dataset(0), epsilon=1.0, rng=0)
        whole = Box((-1.0, -1.0), (2.0, 2.0))
        assert tree.flat().range_count(whole) == pytest.approx(tree.total_count)

    def test_query_outside_domain(self):
        tree = privtree_histogram(random_dataset(0), epsilon=1.0, rng=0)
        outside = Box((2.0, 2.0), (3.0, 3.0))
        assert tree.flat().range_count(outside) == 0.0

    def test_single_node_tree(self):
        tree = HistogramTree(root=HistogramNode(box=Box.unit(2), count=42.0))
        flat = flatten_tree(tree)
        assert flat.range_count(Box((0.0, 0.0), (0.5, 0.5))) == pytest.approx(10.5)
        assert flat.range_count(Box((-1.0, -1.0), (2.0, 2.0))) == pytest.approx(42.0)

    def test_non_sum_consistent_counts(self):
        # Internal counts unrelated to children: the traversal's
        # maximal-covered semantics must be preserved exactly.
        quadrants = Box.unit(2).bisect()
        children = [
            HistogramNode(box=b, count=c)
            for b, c in zip(quadrants, [1.0, 2.0, 3.0, 4.0])
        ]
        tree = HistogramTree(
            root=HistogramNode(box=Box.unit(2), count=999.0, children=children)
        )
        flat = flatten_tree(tree)
        whole = Box((-0.5, -0.5), (1.5, 1.5))
        # Whole-domain query hits the covered root: 999, not 1+2+3+4.
        assert flat.range_count(whole) == pytest.approx(999.0)
        assert tree.range_count(whole) == pytest.approx(999.0)
        half = Box((0.0, 0.0), (0.5, 1.0))
        assert flat.range_count(half) == pytest.approx(tree.range_count(half))


class TestBatchedSurface:
    def test_empty_workload(self):
        tree = privtree_histogram(random_dataset(0), epsilon=1.0, rng=0)
        assert tree.flat().range_count_many([]).shape == (0,)

    def test_dimension_mismatch_raises(self):
        flat = flatten_tree(
            privtree_histogram(random_dataset(0), epsilon=1.0, rng=0)
        )
        with pytest.raises(ValueError):
            flat.range_count(Box.unit(3))
        with pytest.raises(ValueError):
            flat.range_count_many([Box.unit(3)])

    def test_tree_range_count_many_delegates(self):
        tree = privtree_histogram(random_dataset(3), epsilon=1.0, rng=3)
        queries = generate_workload(tree.root.box, "medium", 10, rng=9)
        assert np.allclose(
            tree.range_count_many(queries),
            [tree.range_count(q) for q in queries],
        )


class TestFlatHistogramIsFrozen:
    def test_dataclass_frozen(self):
        flat = flatten_tree(
            privtree_histogram(random_dataset(0), epsilon=1.0, rng=0)
        )
        with pytest.raises(AttributeError):
            flat.counts = np.zeros(1)
