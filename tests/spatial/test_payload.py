"""Tests for the spatial node payload."""

import numpy as np
import pytest

from repro.spatial import SpatialDataset, SpatialNodeData


class TestSpatialNodeData:
    def test_root_covers_domain(self, uniform_2d):
        root = SpatialNodeData.root(uniform_2d)
        assert root.box == uniform_2d.domain
        assert root.score() == uniform_2d.n

    def test_default_fanout_is_2_pow_d(self, uniform_2d):
        assert SpatialNodeData.root(uniform_2d).fanout == 4

    def test_round_robin_fanout(self, uniform_2d):
        root = SpatialNodeData.root(uniform_2d, dims_per_split=1)
        assert root.fanout == 2

    def test_split_partitions_points(self, uniform_2d):
        root = SpatialNodeData.root(uniform_2d)
        children = root.split()
        assert len(children) == 4
        assert sum(c.score() for c in children) == root.score()

    def test_round_robin_rotates_dimensions(self, uniform_2d):
        root = SpatialNodeData.root(uniform_2d, dims_per_split=1)
        first = root.split()
        # First split halves dim 0.
        assert first[0].box.high[0] == pytest.approx(0.5)
        assert first[0].box.high[1] == pytest.approx(1.0)
        second = first[0].split()
        # Second split (child) halves dim 1.
        assert second[0].box.high[1] == pytest.approx(0.5)

    def test_score_is_monotone_under_split(self, clustered_2d):
        # The Section 3.5 requirement: children never outscore the parent.
        node = SpatialNodeData.root(clustered_2d)
        frontier = [node]
        for _ in range(30):
            if not frontier:
                break
            current = frontier.pop()
            if not current.can_split():
                continue
            for child in current.split():
                assert child.score() <= current.score()
                frontier.append(child)

    def test_invalid_dims_per_split(self, uniform_2d):
        with pytest.raises(ValueError):
            SpatialNodeData.root(uniform_2d, dims_per_split=0)
        with pytest.raises(ValueError):
            SpatialNodeData.root(uniform_2d, dims_per_split=3)

    def test_4d_split_fanout(self):
        pts = np.random.default_rng(0).uniform(0, 1, size=(100, 4)) * 0.999
        from repro.domains import Box

        data = SpatialDataset(pts, Box.unit(4))
        assert SpatialNodeData.root(data).fanout == 16
        assert SpatialNodeData.root(data, dims_per_split=2).fanout == 4

    def test_split_is_memoized(self, uniform_2d):
        # The single-pass split reorders the shared permutation in place, so
        # a second call must hand back the same children, not re-partition.
        root = SpatialNodeData.root(uniform_2d)
        assert root.split() is root.split()


def reference_split(node: SpatialNodeData) -> list[np.ndarray]:
    """The historical per-child partition: one contains_points mask per child."""
    dims = node._split_dims()
    parent_points = node.points
    return [
        parent_points[child_box.contains_points(parent_points)]
        for child_box in node.box.bisect(dims)
    ]


def assert_matches_reference(node: SpatialNodeData) -> list[SpatialNodeData]:
    expected = reference_split(node)
    children = node.split()
    assert len(children) == len(expected)
    for child, points in zip(children, expected):
        assert child.score() == len(points)
        assert np.array_equal(child.points, points)
    return children


class TestSinglePassSplitEquivalence:
    """The bit-packed child-index pass must reproduce the per-child masks."""

    def test_quadtree_partitions(self, clustered_2d):
        frontier = [SpatialNodeData.root(clustered_2d)]
        for _ in range(40):
            if not frontier:
                break
            node = frontier.pop()
            if not node.can_split():
                continue
            frontier.extend(assert_matches_reference(node))

    def test_round_robin_partitions(self, clustered_2d):
        frontier = [SpatialNodeData.root(clustered_2d, dims_per_split=1)]
        for _ in range(40):
            if not frontier:
                break
            node = frontier.pop()
            if not node.can_split():
                continue
            frontier.extend(assert_matches_reference(node))

    def test_4d_round_robin_partitions(self):
        from repro.domains import Box

        pts = np.random.default_rng(3).uniform(0, 1, size=(500, 4)) * 0.999
        data = SpatialDataset(pts, Box.unit(4))
        frontier = [SpatialNodeData.root(data, dims_per_split=3)]
        for _ in range(25):
            if not frontier:
                break
            node = frontier.pop()
            if not node.can_split():
                continue
            frontier.extend(assert_matches_reference(node))

    def test_empty_children(self):
        from repro.domains import Box

        # All points in one quadrant: three children must come out empty.
        pts = np.full((50, 2), 0.1)
        data = SpatialDataset(pts, Box.unit(2))
        children = assert_matches_reference(SpatialNodeData.root(data))
        assert [c.score() for c in children] == [50.0, 0.0, 0.0, 0.0]
        # Splitting an empty child keeps producing (empty) partitions.
        assert_matches_reference(children[1])

    def test_point_on_midpoint_goes_to_upper_child(self):
        from repro.domains import Box

        pts = np.array([[0.5, 0.5], [0.25, 0.25]])
        data = SpatialDataset(pts, Box.unit(2))
        children = assert_matches_reference(SpatialNodeData.root(data))
        # Half-open boxes: the midpoint belongs to the upper half.
        assert [c.score() for c in children] == [1.0, 0.0, 0.0, 1.0]

    def test_split_many_matches_individual_splits(self, clustered_2d):
        a = SpatialNodeData.root(clustered_2d)
        b = SpatialNodeData.root(clustered_2d)
        level_a = a.split()
        expected = [reference_split(c) for c in level_a]
        results = SpatialNodeData.split_many(b.split())
        assert len(results) == len(expected)
        for child_list, expected_points in zip(results, expected):
            for child, points in zip(child_list, expected_points):
                assert np.array_equal(child.points, points)

    def test_split_many_falls_back_on_mixed_stores(self, uniform_2d, clustered_2d):
        a = SpatialNodeData.root(uniform_2d)
        b = SpatialNodeData.root(clustered_2d)
        results = SpatialNodeData.split_many([a, b])
        assert len(results) == 2
        assert results[0] is a.split() and results[1] is b.split()

    def test_split_many_empty(self):
        assert SpatialNodeData.split_many([]) == []
