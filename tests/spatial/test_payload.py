"""Tests for the spatial node payload."""

import numpy as np
import pytest

from repro.spatial import SpatialDataset, SpatialNodeData


class TestSpatialNodeData:
    def test_root_covers_domain(self, uniform_2d):
        root = SpatialNodeData.root(uniform_2d)
        assert root.box == uniform_2d.domain
        assert root.score() == uniform_2d.n

    def test_default_fanout_is_2_pow_d(self, uniform_2d):
        assert SpatialNodeData.root(uniform_2d).fanout == 4

    def test_round_robin_fanout(self, uniform_2d):
        root = SpatialNodeData.root(uniform_2d, dims_per_split=1)
        assert root.fanout == 2

    def test_split_partitions_points(self, uniform_2d):
        root = SpatialNodeData.root(uniform_2d)
        children = root.split()
        assert len(children) == 4
        assert sum(c.score() for c in children) == root.score()

    def test_round_robin_rotates_dimensions(self, uniform_2d):
        root = SpatialNodeData.root(uniform_2d, dims_per_split=1)
        first = root.split()
        # First split halves dim 0.
        assert first[0].box.high[0] == pytest.approx(0.5)
        assert first[0].box.high[1] == pytest.approx(1.0)
        second = first[0].split()
        # Second split (child) halves dim 1.
        assert second[0].box.high[1] == pytest.approx(0.5)

    def test_score_is_monotone_under_split(self, clustered_2d):
        # The Section 3.5 requirement: children never outscore the parent.
        node = SpatialNodeData.root(clustered_2d)
        frontier = [node]
        for _ in range(30):
            if not frontier:
                break
            current = frontier.pop()
            if not current.can_split():
                continue
            for child in current.split():
                assert child.score() <= current.score()
                frontier.append(child)

    def test_invalid_dims_per_split(self, uniform_2d):
        with pytest.raises(ValueError):
            SpatialNodeData.root(uniform_2d, dims_per_split=0)
        with pytest.raises(ValueError):
            SpatialNodeData.root(uniform_2d, dims_per_split=3)

    def test_4d_split_fanout(self):
        pts = np.random.default_rng(0).uniform(0, 1, size=(100, 4)) * 0.999
        from repro.domains import Box

        data = SpatialDataset(pts, Box.unit(4))
        assert SpatialNodeData.root(data).fanout == 16
        assert SpatialNodeData.root(data, dims_per_split=2).fanout == 4
