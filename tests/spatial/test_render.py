"""Tests for ASCII rendering of datasets and decompositions."""

import numpy as np
import pytest

from repro.domains import Box
from repro.spatial import (
    SpatialDataset,
    privtree_histogram,
    render_density,
    render_leaf_depth,
)


class TestRenderDensity:
    def test_shape(self, uniform_2d):
        text = render_density(uniform_2d, width=30, height=10)
        lines = text.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 30 for line in lines)

    def test_dense_region_darker(self, clustered_2d):
        # The cluster sits at (0.25, 0.25): lower-left of the raster.
        text = render_density(clustered_2d, width=40, height=20)
        lines = text.split("\n")
        lower_left = lines[-5][8:12]  # around x~0.25, y~0.25
        upper_right = lines[2][32:36]
        ramp = " .:-=+*#%@"
        assert max(ramp.index(c) for c in lower_left) > max(
            ramp.index(c) for c in upper_right
        )

    def test_empty_dataset_blank(self):
        data = SpatialDataset(np.zeros((0, 2)), Box.unit(2))
        text = render_density(data, width=10, height=4)
        assert set(text) <= {" ", "\n"}

    def test_4d_projects_first_two_axes(self):
        pts = np.random.default_rng(0).uniform(0, 1, size=(500, 4)) * 0.999
        data = SpatialDataset(pts, Box.unit(4))
        text = render_density(data, width=20, height=8)
        assert len(text.split("\n")) == 8

    def test_invalid_raster(self, uniform_2d):
        with pytest.raises(ValueError):
            render_density(uniform_2d, width=0)


class TestRenderLeafDepth:
    def test_deeper_in_dense_region(self, clustered_2d):
        syn = privtree_histogram(clustered_2d, epsilon=1.0, rng=0)
        text = render_leaf_depth(syn, width=32, height=16)
        lines = text.split("\n")

        def depth(char: str) -> int:
            return 10 if char == "+" else int(char)

        cluster_depths = [depth(c) for line in lines[-6:] for c in line[:10]]
        corner_depths = [depth(c) for line in lines[:4] for c in line[-8:]]
        assert max(cluster_depths) > max(corner_depths)

    def test_rejects_non_2d(self):
        pts = np.random.default_rng(0).uniform(0, 1, size=(200, 4)) * 0.999
        data = SpatialDataset(pts, Box.unit(4))
        syn = privtree_histogram(data, epsilon=1.0, rng=0)
        with pytest.raises(ValueError):
            render_leaf_depth(syn)
