"""Tests for the relative-error metric."""

import numpy as np
import pytest

from repro.domains import Box
from repro.spatial import (
    SpatialDataset,
    average_relative_error,
    relative_error,
)


class TestRelativeError:
    def test_exact_answer_zero_error(self):
        assert relative_error(10.0, 10.0, smoothing=1.0) == 0.0

    def test_error_normalized_by_exact(self):
        assert relative_error(15.0, 10.0, smoothing=1.0) == pytest.approx(0.5)

    def test_smoothing_floor_applies_to_small_counts(self):
        # exact = 1 but smoothing = 100: denominator is 100.
        assert relative_error(3.0, 1.0, smoothing=100.0) == pytest.approx(0.02)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 1.0, smoothing=0.0)


class TestAverageRelativeError:
    def test_perfect_oracle_zero(self, uniform_2d):
        queries = [Box((0.1, 0.1), (0.6, 0.6)), Box((0.0, 0.0), (0.3, 0.9))]
        err = average_relative_error(
            lambda q: float(uniform_2d.count_in(q)), uniform_2d, queries
        )
        assert err == 0.0

    def test_smoothing_uses_dataset_fraction(self):
        # 1000 points, default smoothing 0.1% -> floor 1.0; a query with exact
        # answer 0 and estimate 5 has error 5.0.
        pts = np.full((1000, 2), 0.9)
        data = SpatialDataset(pts, Box.unit(2))
        empty_query = Box((0.0, 0.0), (0.1, 0.1))
        err = average_relative_error(lambda q: 5.0, data, [empty_query])
        assert err == pytest.approx(5.0)

    def test_empty_workload_rejected(self, uniform_2d):
        with pytest.raises(ValueError):
            average_relative_error(lambda q: 0.0, uniform_2d, [])
