"""Tests for rasterizing a released tree onto a regular grid."""

import numpy as np
import pytest

from repro.domains import Box
from repro.spatial import privtree_histogram
from repro.spatial.histogram_tree import HistogramNode, HistogramTree


def quadrant_tree() -> HistogramTree:
    quadrants = Box.unit(2).bisect()
    counts = [10.0, 20.0, 30.0, 40.0]
    children = [HistogramNode(box=b, count=c) for b, c in zip(quadrants, counts)]
    return HistogramTree(
        root=HistogramNode(box=Box.unit(2), count=100.0, children=children)
    )


class TestToGrid:
    def test_mass_conserved(self):
        grid = quadrant_tree().to_grid((8, 8))
        assert grid.sum() == pytest.approx(100.0)

    def test_aligned_grid_exact(self):
        # A 2x2 raster aligns exactly with the quadrants.
        grid = quadrant_tree().to_grid((2, 2))
        np.testing.assert_allclose(grid, [[10.0, 20.0], [30.0, 40.0]])

    def test_uniform_spread_within_leaf(self):
        grid = quadrant_tree().to_grid((4, 4))
        # Each quadrant spreads evenly over its 2x2 raster cells.
        np.testing.assert_allclose(grid[:2, :2], 10.0 / 4)
        np.testing.assert_allclose(grid[2:, 2:], 40.0 / 4)

    def test_coarser_than_leaves(self):
        grid = quadrant_tree().to_grid((1, 1))
        assert grid[0, 0] == pytest.approx(100.0)

    def test_matches_range_count_on_cells(self, clustered_2d):
        syn = privtree_histogram(clustered_2d, epsilon=1.0, rng=0)
        shape = (8, 8)
        grid = syn.to_grid(shape)
        for i in (0, 3, 7):
            for j in (1, 4, 6):
                cell = Box(
                    (i / 8, j / 8),
                    ((i + 1) / 8, (j + 1) / 8),
                )
                assert grid[i, j] == pytest.approx(syn.range_count(cell), abs=1e-6)

    def test_shape_validation(self):
        tree = quadrant_tree()
        with pytest.raises(ValueError):
            tree.to_grid((4,))
        with pytest.raises(ValueError):
            tree.to_grid((0, 4))
