"""Tests for workload generation."""

import numpy as np
import pytest

from repro.domains import Box
from repro.spatial import QUERY_BANDS, QueryBand, generate_workload, random_query


class TestBands:
    def test_paper_bands(self):
        assert QUERY_BANDS["small"].lo == pytest.approx(1e-4)
        assert QUERY_BANDS["small"].hi == pytest.approx(1e-3)
        assert QUERY_BANDS["medium"].hi == pytest.approx(1e-2)
        assert QUERY_BANDS["large"].hi == pytest.approx(1e-1)

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            QueryBand("bad", 0.5, 0.1)
        with pytest.raises(ValueError):
            QueryBand("bad", 0.0, 0.1)


class TestRandomQuery:
    def test_query_inside_domain(self, rng):
        domain = Box((0.0, -5.0), (10.0, 5.0))
        for _ in range(100):
            q = random_query(domain, QUERY_BANDS["medium"], rng)
            assert domain.contains_box(q)

    def test_volume_fraction_in_band(self, rng):
        domain = Box((0.0, 0.0), (4.0, 4.0))
        band = QUERY_BANDS["large"]
        for _ in range(200):
            q = random_query(domain, band, rng)
            fraction = q.volume / domain.volume
            assert band.lo <= fraction < band.hi * 1.0000001

    def test_4d_queries(self, rng):
        domain = Box.unit(4)
        band = QUERY_BANDS["small"]
        for _ in range(50):
            q = random_query(domain, band, rng)
            assert q.ndim == 4
            assert domain.contains_box(q)

    def test_aspect_ratios_vary(self, rng):
        domain = Box.unit(2)
        ratios = []
        for _ in range(200):
            q = random_query(domain, QUERY_BANDS["medium"], rng)
            ext = q.extents
            ratios.append(ext[0] / ext[1])
        assert np.std(np.log(ratios)) > 0.1


class TestWorkload:
    def test_size_and_band_string(self, rng):
        queries = generate_workload(Box.unit(2), "small", 25, rng)
        assert len(queries) == 25

    def test_reproducible_with_seed(self):
        a = generate_workload(Box.unit(2), "small", 5, rng=3)
        b = generate_workload(Box.unit(2), "small", 5, rng=3)
        assert all(x == y for x, y in zip(a, b))
