"""Tests for the §3.5 user-level (multi-leaf) extension."""

import numpy as np
import pytest

from repro.spatial import privtree_histogram


class TestTuplesPerIndividual:
    def test_noise_scales_with_x(self, uniform_2d):
        # With x = 10 the leaf-count noise is 10x larger: the total count's
        # deviation across seeds must grow accordingly.
        def total_spread(x: int) -> float:
            totals = [
                privtree_histogram(
                    uniform_2d, epsilon=0.5, tuples_per_individual=x, rng=s
                ).total_count
                for s in range(25)
            ]
            return float(np.std(totals))

        assert total_spread(10) > 3.0 * total_spread(1)

    def test_coarser_trees_with_larger_x(self, clustered_2d):
        # User-level protection also makes split decisions noisier and more
        # conservative (sensitivity multiplies lambda and delta).
        sizes = {}
        for x in (1, 20):
            sizes[x] = np.mean(
                [
                    privtree_histogram(
                        clustered_2d, epsilon=1.0, tuples_per_individual=x, rng=s
                    ).size
                    for s in range(5)
                ]
            )
        assert sizes[20] < sizes[1]

    def test_default_is_event_level(self, uniform_2d):
        a = privtree_histogram(uniform_2d, epsilon=1.0, rng=0)
        b = privtree_histogram(uniform_2d, epsilon=1.0, tuples_per_individual=1, rng=0)
        assert a.size == b.size
        assert a.total_count == pytest.approx(b.total_count)

    def test_invalid_x(self, uniform_2d):
        with pytest.raises(ValueError):
            privtree_histogram(uniform_2d, epsilon=1.0, tuples_per_individual=0)
