"""End-to-end tests for the PrivTree / SimpleTree spatial pipelines."""

import numpy as np
import pytest

from repro.domains import Box
from repro.spatial import (
    average_relative_error,
    generate_workload,
    privtree_decomposition,
    privtree_histogram,
    simpletree_histogram,
)


class TestPrivTreeHistogram:
    def test_total_count_near_n(self, uniform_2d):
        syn = privtree_histogram(uniform_2d, epsilon=1.0, rng=0)
        assert syn.total_count == pytest.approx(uniform_2d.n, rel=0.10)

    def test_intermediate_counts_are_leaf_sums(self, uniform_2d):
        syn = privtree_histogram(uniform_2d, epsilon=1.0, rng=0)
        for node in syn.root.iter_nodes():
            if not node.is_leaf:
                assert node.count == pytest.approx(sum(c.count for c in node.children))

    def test_accuracy_on_large_queries(self, uniform_2d):
        syn = privtree_histogram(uniform_2d, epsilon=1.0, rng=1)
        queries = generate_workload(uniform_2d.domain, "large", 50, rng=2)
        err = average_relative_error(syn.range_count, uniform_2d, queries)
        assert err < 0.15

    def test_adapts_to_skew(self, clustered_2d):
        # Leaves covering the cluster must be smaller than background leaves.
        syn = privtree_histogram(clustered_2d, epsilon=1.0, rng=0)
        vols = {}
        for box in syn.leaf_boxes():
            center_dist = max(abs(box.center[0] - 0.25), abs(box.center[1] - 0.25))
            region = "cluster" if center_dist < 0.05 else "background"
            vols.setdefault(region, []).append(box.volume)
        assert np.median(vols["cluster"]) < np.median(vols["background"])

    def test_error_decreases_with_epsilon(self, clustered_2d):
        queries = generate_workload(clustered_2d.domain, "medium", 60, rng=3)
        errs = {}
        for eps in (0.05, 1.6):
            runs = [
                average_relative_error(
                    privtree_histogram(clustered_2d, eps, rng=s).range_count,
                    clustered_2d,
                    queries,
                )
                for s in range(5)
            ]
            errs[eps] = np.mean(runs)
        assert errs[1.6] < errs[0.05]

    def test_deterministic_given_seed(self, uniform_2d):
        a = privtree_histogram(uniform_2d, epsilon=0.5, rng=9)
        b = privtree_histogram(uniform_2d, epsilon=0.5, rng=9)
        assert a.size == b.size
        assert a.total_count == pytest.approx(b.total_count)

    def test_budget_fraction_respected(self, uniform_2d):
        # More budget on counts -> less noisy total count (weak sanity check:
        # just confirm both settings produce a valid tree).
        lo = privtree_histogram(uniform_2d, epsilon=1.0, tree_fraction=0.2, rng=0)
        hi = privtree_histogram(uniform_2d, epsilon=1.0, tree_fraction=0.8, rng=0)
        assert lo.size >= 1 and hi.size >= 1


class TestPrivTreeDecomposition:
    def test_structure_only_no_counts(self, uniform_2d):
        tree = privtree_decomposition(uniform_2d, epsilon=1.0, rng=0)
        assert all(n.noisy_score is None for n in tree.root.iter_nodes())

    def test_round_robin_splits(self, uniform_2d):
        tree = privtree_decomposition(uniform_2d, epsilon=1.0, dims_per_split=1, rng=0)
        for node in tree.root.iter_nodes():
            assert len(node.children) in (0, 2)


class TestSimpleTreeHistogram:
    def test_height_respected(self, uniform_2d):
        syn = simpletree_histogram(uniform_2d, epsilon=1.0, height=3, theta=0.0, rng=0)
        assert syn.height <= 2

    def test_all_nodes_have_counts(self, uniform_2d):
        syn = simpletree_histogram(uniform_2d, epsilon=1.0, height=3, theta=0.0, rng=0)
        for node in syn.root.iter_nodes():
            assert isinstance(node.count, float)

    def test_privtree_beats_simpletree_on_skewed_data(self, clustered_2d):
        # The headline claim, in miniature: with deep structure available,
        # PrivTree outperforms the h-limited SimpleTree on skewed data.
        queries = generate_workload(clustered_2d.domain, "small", 60, rng=4)
        eps = 0.5
        priv_err = np.mean(
            [
                average_relative_error(
                    privtree_histogram(clustered_2d, eps, rng=s).range_count,
                    clustered_2d,
                    queries,
                )
                for s in range(5)
            ]
        )
        simple_err = np.mean(
            [
                average_relative_error(
                    simpletree_histogram(
                        clustered_2d, eps, height=10, theta=0.0, rng=s
                    ).range_count,
                    clustered_2d,
                    queries,
                )
                for s in range(5)
            ]
        )
        assert priv_err < simple_err
