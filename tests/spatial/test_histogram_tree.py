"""Tests for the released histogram tree and its range-count traversal."""

import pytest

from repro.domains import Box
from repro.spatial import HistogramNode, HistogramTree


def two_level_tree() -> HistogramTree:
    """Unit square split into quadrants with known counts 10/20/30/40."""
    quadrants = Box.unit(2).bisect()
    counts = [10.0, 20.0, 30.0, 40.0]
    children = [HistogramNode(box=b, count=c) for b, c in zip(quadrants, counts)]
    root = HistogramNode(box=Box.unit(2), count=100.0, children=children)
    return HistogramTree(root=root)


class TestStructure:
    def test_counts_and_sizes(self):
        tree = two_level_tree()
        assert tree.size == 5
        assert tree.leaf_count == 4
        assert tree.height == 1
        assert tree.total_count == 100.0

    def test_leaf_boxes(self):
        assert len(two_level_tree().leaf_boxes()) == 4


class TestRangeCount:
    def test_full_domain(self):
        assert two_level_tree().range_count(Box.unit(2)) == pytest.approx(100.0)

    def test_exact_quadrant_uses_node_count(self):
        tree = two_level_tree()
        quadrant = Box((0.0, 0.0), (0.5, 0.5))
        assert tree.range_count(quadrant) == pytest.approx(10.0)

    def test_disjoint_query_is_zero(self):
        tree = two_level_tree()
        tree.root.box = Box.unit(2)
        outside = Box((2.0, 2.0), (3.0, 3.0))
        assert tree.range_count(outside) == 0.0

    def test_partial_leaf_uses_uniform_fraction(self):
        tree = two_level_tree()
        # Query = left half of the lower-left quadrant: fraction 1/2 of it.
        query = Box((0.0, 0.0), (0.25, 0.5))
        assert tree.range_count(query) == pytest.approx(10.0 * 0.5)

    def test_query_spanning_multiple_children(self):
        tree = two_level_tree()
        # Lower half: all of quadrants (0,0)-(.5,.5) and (.5,0)-(1,.5).
        # Order of bisect children: (low,low), (low,high), (high,low), (high,high)
        query = Box((0.0, 0.0), (1.0, 0.5))
        # Quadrants fully covered: those with y-range [0, .5): counts 10 and 30.
        assert tree.range_count(query) == pytest.approx(40.0)

    def test_mixed_full_and_partial(self):
        tree = two_level_tree()
        # x in [0,1), y in [0, 0.75): two full quadrants + half of the two upper.
        query = Box((0.0, 0.0), (1.0, 0.75))
        expected = 10.0 + 30.0 + 0.5 * (20.0 + 40.0)
        assert tree.range_count(query) == pytest.approx(expected)

    def test_intermediate_count_used_when_fully_contained(self):
        # A root-only tree answers from the root count directly.
        tree = HistogramTree(root=HistogramNode(box=Box.unit(2), count=55.0))
        assert tree.range_count(Box.unit(2)) == pytest.approx(55.0)
        assert tree.range_count(Box((0.0, 0.0), (0.5, 1.0))) == pytest.approx(27.5)
