"""Tests for spatial datasets."""

import numpy as np
import pytest

from repro.domains import Box
from repro.spatial import SpatialDataset


class TestSpatialDataset:
    def test_basic_properties(self, uniform_2d):
        assert uniform_2d.n == 5_000
        assert uniform_2d.ndim == 2

    def test_count_in(self):
        pts = np.array([[0.1, 0.1], [0.9, 0.9], [0.2, 0.2]])
        data = SpatialDataset(pts, Box.unit(2))
        assert data.count_in(Box((0.0, 0.0), (0.5, 0.5))) == 2

    def test_points_outside_domain_rejected(self):
        with pytest.raises(ValueError):
            SpatialDataset(np.array([[1.5, 0.5]]), Box.unit(2))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SpatialDataset(np.zeros((3, 3)), Box.unit(2))
        with pytest.raises(ValueError):
            SpatialDataset(np.zeros(3), Box.unit(2))

    def test_from_points_bounding(self):
        pts = np.random.default_rng(0).normal(5.0, 2.0, size=(100, 2))
        data = SpatialDataset.from_points(pts, name="gauss")
        assert data.n == 100
        assert data.name == "gauss"
        assert data.domain.contains_points(pts).all()

    def test_restrict(self, uniform_2d):
        sub_box = Box((0.0, 0.0), (0.5, 0.5))
        sub = uniform_2d.restrict(sub_box)
        assert sub.domain == sub_box
        assert sub.n == uniform_2d.count_in(sub_box)

    def test_empty_dataset_allowed(self):
        data = SpatialDataset(np.zeros((0, 2)), Box.unit(2))
        assert data.n == 0
        assert data.count_in(Box.unit(2)) == 0
