"""Tests for the alternative (geometric) count mechanism."""

import numpy as np
import pytest

from repro.spatial import privtree_histogram


class TestGeometricCounts:
    def test_leaf_counts_are_integers(self, uniform_2d):
        syn = privtree_histogram(
            uniform_2d, epsilon=1.0, count_mechanism="geometric", rng=0
        )
        leaves = [n for n in syn.root.iter_nodes() if n.is_leaf]
        for leaf in leaves:
            assert leaf.count == int(leaf.count)

    def test_total_count_near_n(self, uniform_2d):
        syn = privtree_histogram(
            uniform_2d, epsilon=1.0, count_mechanism="geometric", rng=0
        )
        assert syn.total_count == pytest.approx(uniform_2d.n, rel=0.10)

    def test_comparable_accuracy_to_laplace(self, clustered_2d):
        from repro.spatial import average_relative_error, generate_workload

        queries = generate_workload(clustered_2d.domain, "medium", 40, rng=1)
        errs = {}
        for mech in ("laplace", "geometric"):
            errs[mech] = np.mean(
                [
                    average_relative_error(
                        privtree_histogram(
                            clustered_2d, 0.8, count_mechanism=mech, rng=s
                        ).range_count,
                        clustered_2d,
                        queries,
                    )
                    for s in range(4)
                ]
            )
        # The two mechanisms have near-identical utility at the same eps.
        assert errs["geometric"] < 2.0 * errs["laplace"]

    def test_user_level_scaling_applies(self, uniform_2d):
        def spread(x: int) -> float:
            totals = [
                privtree_histogram(
                    uniform_2d,
                    epsilon=0.5,
                    count_mechanism="geometric",
                    tuples_per_individual=x,
                    rng=s,
                ).total_count
                for s in range(20)
            ]
            return float(np.std(totals))

        assert spread(10) > 2.5 * spread(1)

    def test_unknown_mechanism_rejected(self, uniform_2d):
        with pytest.raises(ValueError):
            privtree_histogram(uniform_2d, epsilon=1.0, count_mechanism="gaussian")
