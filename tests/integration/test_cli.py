"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if isinstance(a.choices, dict)
        )
        assert set(sub.choices) == {
            "figure5",
            "figure6",
            "figure7",
            "table4",
            "svt",
            "datasets",
        }

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure5", "--dataset", "adult"])


class TestCommands:
    def test_svt_command(self, capsys):
        assert main(["svt"]) == 0
        out = capsys.readouterr().out
        assert "BinarySVT" in out
        assert "VanillaSVT" in out

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "road" in out and "msnbc" in out

    def test_figure5_small_run(self, capsys):
        code = main(
            [
                "figure5",
                "--dataset",
                "gowalla",
                "--band",
                "large",
                "--n",
                "3000",
                "--queries",
                "10",
                "--epsilons",
                "1.6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PrivTree" in out
        assert "1.6" in out

    def test_figure6_small_run(self, capsys):
        code = main(
            [
                "figure6",
                "--dataset",
                "msnbc",
                "--k",
                "10",
                "--n",
                "1500",
                "--epsilons",
                "1.6",
            ]
        )
        assert code == 0
        assert "N-gram" in capsys.readouterr().out

    def test_figure7_small_run(self, capsys):
        code = main(
            [
                "figure7",
                "--dataset",
                "msnbc",
                "--n",
                "1500",
                "--synthetic",
                "200",
                "--epsilons",
                "1.6",
            ]
        )
        assert code == 0
        assert "Truncate" in capsys.readouterr().out

    def test_table4_small_run(self, capsys):
        code = main(["table4", "--n", "1500", "--epsilons", "0.4"])
        assert code == 0
        assert "road" in capsys.readouterr().out
