"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if isinstance(a.choices, dict)
        )
        assert set(sub.choices) == {
            "run",
            "methods",
            "query",
            "store",
            "federated-fit",
            "collector-serve",
            "serve",
            "figure5",
            "figure6",
            "figure7",
            "table4",
            "bench",
            "trace",
            "svt",
            "datasets",
        }

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure5", "--dataset", "adult"])


class TestCommands:
    def test_svt_command(self, capsys):
        assert main(["svt"]) == 0
        out = capsys.readouterr().out
        assert "BinarySVT" in out
        assert "VanillaSVT" in out

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "road" in out and "msnbc" in out

    def test_figure5_small_run(self, capsys):
        code = main(
            [
                "figure5",
                "--dataset",
                "gowalla",
                "--band",
                "large",
                "--n",
                "3000",
                "--queries",
                "10",
                "--epsilons",
                "1.6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PrivTree" in out
        assert "1.6" in out

    def test_figure6_small_run(self, capsys):
        code = main(
            [
                "figure6",
                "--dataset",
                "msnbc",
                "--k",
                "10",
                "--n",
                "1500",
                "--epsilons",
                "1.6",
            ]
        )
        assert code == 0
        assert "N-gram" in capsys.readouterr().out

    def test_figure7_small_run(self, capsys):
        code = main(
            [
                "figure7",
                "--dataset",
                "msnbc",
                "--n",
                "1500",
                "--synthetic",
                "200",
                "--epsilons",
                "1.6",
            ]
        )
        assert code == 0
        assert "Truncate" in capsys.readouterr().out

    def test_table4_small_run(self, capsys):
        code = main(["table4", "--n", "1500", "--epsilons", "0.4"])
        assert code == 0
        assert "road" in capsys.readouterr().out

    def test_bench_small_run(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "BENCH_perf.json"
        code = main(
            [
                "bench",
                "--n",
                "3000",
                "--queries",
                "50",
                "--sequences",
                "1500",
                "--synthetic",
                "500",
                "--repeats",
                "1",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "privtree_build" in out
        assert "speedup" in out
        results = json.loads(out_file.read_text())
        assert set(results["cases"]) == {
            "privtree_build",
            "workload_queries",
            "workload_generation",
            "workload_answering",
            "federated_fit",
            "federated_fit_tcp",
            "service_cached_queries",
            "artifact_cold_load",
            "service_throughput",
            "telemetry_overhead",
            "gram_counting",
            "substring_counting",
            "substring_count_table",
            "pst_build_release",
            "topk_scoring",
            "pst_generation",
        }
        assert results["cases"]["federated_fit"]["bit_identical_to_centralized"] is True
        assert results["cases"]["federated_fit"]["overhead_vs_centralized"] > 0
        assert results["cases"]["workload_queries"]["max_abs_deviation"] < 1e-6
        assert results["cases"]["topk_scoring"]["max_abs_deviation"] < 1e-9
        assert results["cases"]["workload_answering"]["speedup"] > 0
        assert results["cases"]["workload_answering"]["n_answers"] > 0
        assert results["cases"]["service_cached_queries"]["queries_per_s"] > 0
        assert results["cases"]["service_cached_queries"]["cache_hit"] is True
        telemetry_case = results["cases"]["telemetry_overhead"]
        assert telemetry_case["spans_recorded"] > 0
        # The acceptance bound: disabled telemetry (no-op span sites)
        # costs at most 5% of a privtree build.
        assert 0 < telemetry_case["overhead_disabled"] <= 0.05
        assert telemetry_case["enabled_s"] > 0
        assert results["config"]["n_points"] == 3000
        assert results["config"]["sequence"]["n_sequences"] == 1500

        # --compare against the file just written: no case can regress vs
        # itself beyond noise, and the table must render.
        code = main(
            [
                "bench",
                "--n",
                "3000",
                "--queries",
                "50",
                "--sequences",
                "1500",
                "--synthetic",
                "500",
                "--repeats",
                "1",
                "--out",
                str(tmp_path / "BENCH_new.json"),
                "--compare",
                str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"comparison vs {out_file}" in out
        assert "baseline" in out and "current" in out


class TestQueryCommand:
    def test_query_answers_typed_workload(self, capsys, tmp_path):
        import json

        import numpy as np

        release_file = tmp_path / "release.json"
        assert (
            main(
                [
                    "run",
                    "--method",
                    "privtree",
                    "--dataset",
                    "gowalla",
                    "--n",
                    "2000",
                    "--out",
                    str(release_file),
                ]
            )
            == 0
        )
        capsys.readouterr()

        from repro.api import load_release
        from repro.queries import Marginal1D, RangeCount, Workload

        release = load_release(release_file)
        domain = release.query_domain
        workload = Workload.of(
            [
                RangeCount(low=domain.low, high=domain.high),
                Marginal1D.regular(
                    axis=0, n_bins=3, low=domain.low[0], high=domain.high[0]
                ),
            ]
        )
        workload_file = tmp_path / "workload.json"
        workload_file.write_text(json.dumps(workload.to_wire()))
        answers_file = tmp_path / "answers.json"
        code = main(
            [
                "query",
                "--release",
                str(release_file),
                "--workload",
                str(workload_file),
                "--out",
                str(answers_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "range_count" in out and "marginal1d" in out
        document = json.loads(answers_file.read_text())
        assert document["method"] == "privtree"
        assert document["count"] == 2
        flat = np.array([document["answers"][0]] + document["answers"][1])
        assert np.array_equal(flat, release.answer(workload))

    def test_query_rejects_bad_workload(self, tmp_path, capsys):
        import json

        release_file = tmp_path / "release.json"
        assert (
            main(
                [
                    "run",
                    "--method",
                    "privtree",
                    "--dataset",
                    "gowalla",
                    "--n",
                    "1000",
                    "--out",
                    str(release_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        workload_file = tmp_path / "workload.json"
        workload_file.write_text(json.dumps({"format": "wrong"}))
        with pytest.raises(SystemExit, match="invalid workload"):
            main(
                [
                    "query",
                    "--release",
                    str(release_file),
                    "--workload",
                    str(workload_file),
                ]
            )

    def test_query_rejects_missing_release(self, tmp_path):
        workload_file = tmp_path / "workload.json"
        workload_file.write_text("{}")
        with pytest.raises(SystemExit, match="cannot load release"):
            main(
                [
                    "query",
                    "--release",
                    str(tmp_path / "missing.json"),
                    "--workload",
                    str(workload_file),
                ]
            )


class TestRunCommand:
    def test_methods_lists_registry(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("privtree", "ug", "ag", "dawa", "pst", "ngram"):
            assert name in out

    def test_run_spatial_method(self, capsys, tmp_path):
        out_file = tmp_path / "release.json"
        code = main(
            [
                "run",
                "--method",
                "privtree",
                "--dataset",
                "gowalla",
                "--n",
                "2000",
                "--epsilon",
                "0.5",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "privtree/tree structure" in out
        assert "privtree/leaf counts" in out
        assert out_file.exists()

        from repro.api import load_release

        release = load_release(out_file)
        assert release.method == "privtree"
        assert release.epsilon_spent == 0.5

    def test_run_sequence_method_defaults_l_top(self, capsys):
        code = main(
            ["run", "--method", "pst", "--dataset", "msnbc", "--n", "1000"]
        )
        assert code == 0
        assert "pst/structure" in capsys.readouterr().out

    def test_run_with_param_override(self, capsys):
        code = main(
            [
                "run",
                "--method",
                "ug",
                "--dataset",
                "gowalla",
                "--n",
                "2000",
                "--param",
                "size_factor=2.0",
            ]
        )
        assert code == 0
        assert "ug/cell counts" in capsys.readouterr().out

    def test_run_rejects_unknown_method(self):
        with pytest.raises(SystemExit, match="unknown method"):
            main(["run", "--method", "nope", "--dataset", "road"])

    def test_run_rejects_unknown_param(self):
        with pytest.raises(SystemExit, match="valid parameters"):
            main(["run", "--method", "ug", "--dataset", "road", "--param", "zeta=2"])

    def test_run_rejects_epsilon_via_param(self):
        with pytest.raises(SystemExit, match="--epsilon"):
            main(["run", "--method", "ug", "--dataset", "road", "--param", "epsilon=2"])

    def test_run_rejects_kind_mismatch(self):
        with pytest.raises(SystemExit):
            main(["run", "--method", "privtree", "--dataset", "msnbc", "--n", "500"])


class TestStoreCommand:
    def _put(self, store_dir, **overrides):
        argv = [
            "store", "put",
            "--store", str(store_dir),
            "--method", overrides.get("method", "ug"),
            "--dataset", overrides.get("dataset", "gowalla"),
            "--n", "1500",
            "--epsilon", "0.5",
        ]
        if "release_id" in overrides:
            argv += ["--id", overrides["release_id"]]
        return main(argv)

    def test_put_ls_get_round_trip(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        assert self._put(store_dir, release_id="demo") == 0
        assert "stored demo" in capsys.readouterr().out

        assert main(["store", "ls", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out and "ug" in out and "gowalla(n=1500)" in out

        out_file = tmp_path / "copy.json"
        code = main(
            ["store", "get", "--store", str(store_dir), "demo", "--out", str(out_file)]
        )
        assert code == 0
        assert "GridRelease" in capsys.readouterr().out

        from repro.api import load_release

        release = load_release(out_file)
        assert release.method == "ug"
        assert release.epsilon_spent == 0.5

    def test_ls_reports_artifact_format_and_bytes(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        assert self._put(store_dir, release_id="demo") == 0
        capsys.readouterr()
        assert main(["store", "ls", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "binary-v2" in out
        from repro.serve import ReleaseStore

        n_bytes = ReleaseStore(store_dir).manifest_entry("demo")["artifact_bytes"]
        assert f"{n_bytes:,}" in out

    def test_migrate_backfills_binary_artifacts(self, capsys, tmp_path):
        import json as json_mod

        store_dir = tmp_path / "store"
        assert self._put(store_dir, release_id="demo") == 0
        capsys.readouterr()
        # Strip the store back to v1: no .bin, no manifest artifact fields.
        (store_dir / "releases" / "demo.bin").unlink()
        manifest_path = store_dir / "manifest.json"
        manifest = json_mod.loads(manifest_path.read_text())
        for entry in manifest["releases"].values():
            for key in ("artifact_format", "artifact_bytes", "binary_path"):
                entry.pop(key, None)
        manifest_path.write_text(json_mod.dumps(manifest))

        assert main(["store", "migrate", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert (store_dir / "releases" / "demo.bin").exists()

        assert main(["store", "migrate", "--store", str(store_dir)]) == 0
        assert "already" in capsys.readouterr().out

    def test_manifest_records_params(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        assert self._put(store_dir, release_id="demo") == 0
        capsys.readouterr()

        from repro.serve import ReleaseStore

        entry = ReleaseStore(store_dir).manifest_entry("demo")
        assert entry["params"]["epsilon"] == 0.5
        assert entry["dataset"] == "gowalla(n=1500)"

    def test_ls_empty_store(self, capsys, tmp_path):
        from repro.serve import ReleaseStore

        ReleaseStore(tmp_path / "empty")  # materialize an empty store
        assert main(["store", "ls", "--store", str(tmp_path / "empty")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_ls_missing_store_exits_without_creating_it(self, tmp_path):
        missing = tmp_path / "typo"
        with pytest.raises(SystemExit, match="does not exist"):
            main(["store", "ls", "--store", str(missing)])
        assert not missing.exists()

    def test_put_rejects_bad_id_before_fitting(self, tmp_path):
        with pytest.raises(SystemExit, match="invalid release id"):
            self._put(tmp_path / "store", release_id="../escape")
        assert not (tmp_path / "store").exists()

    def test_put_usage_error_leaves_no_store_behind(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown method"):
            self._put(tmp_path / "store", method="typo")
        assert not (tmp_path / "store").exists()

    def test_get_unknown_id_exits(self, tmp_path):
        from repro.serve import ReleaseStore

        ReleaseStore(tmp_path / "s")
        with pytest.raises(SystemExit, match="unknown release id"):
            main(["store", "get", "--store", str(tmp_path / "s"), "nope"])


class TestBenchGate:
    """The blocking bench regression gate (`--fail-above`)."""

    ARGS = [
        "bench",
        "--n", "1500",
        "--queries", "10",
        "--sequences", "500",
        "--synthetic", "100",
        "--repeats", "1",
    ]

    def test_fail_above_requires_compare(self):
        with pytest.raises(SystemExit, match="requires --compare"):
            main(self.ARGS + ["--fail-above", "1.5"])

    def test_fail_above_rejects_non_slowdown_ratio(self, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text('{"cases": {}}')
        with pytest.raises(SystemExit, match="must exceed 1.0"):
            main(
                self.ARGS
                + ["--compare", str(baseline), "--fail-above", "0.9"]
            )

    def test_gate_passes_and_fails(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "bench.json"
        args = self.ARGS + ["--out", str(out_file)]
        assert main(args) == 0
        capsys.readouterr()

        # A generous gate vs the run's own output passes with exit 0.
        code = main(
            args + ["--compare", str(out_file), "--fail-above", "1000"]
        )
        assert code == 0
        assert "regression gate passed" in capsys.readouterr().out

        # A doctored 100x-faster baseline makes every case a regression.
        results = json.loads(out_file.read_text())
        for case in results["cases"].values():
            if "optimized_s" in case:
                case["optimized_s"] /= 100.0
        fast = tmp_path / "fast.json"
        fast.write_text(json.dumps(results))
        code = main(args + ["--compare", str(fast), "--fail-above", "1.5"])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out


class TestTraceCommand:
    """`--trace` on the fit commands plus the `repro trace` inspector."""

    def test_run_trace_then_summarize_and_convert(self, capsys, tmp_path):
        import json

        from repro import telemetry

        trace_file = tmp_path / "run_trace.jsonl"
        code = main(
            [
                "run",
                "--method", "privtree",
                "--dataset", "gowalla",
                "--n", "2000",
                "--trace", str(trace_file),
            ]
        )
        assert code == 0
        assert f"record(s) written to {trace_file}" in capsys.readouterr().out
        # The CLI must uninstall its tracer on the way out.
        assert telemetry.current_tracer() is None

        records = telemetry.read_jsonl(trace_file)
        names = {r.name for r in records}
        assert "privtree.level" in names
        assert "accountant.spend" in names

        code = main(["trace", str(trace_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert f"{len(records)} record(s)" in out
        assert "privtree.level" in out

        chrome_file = tmp_path / "trace_chrome.json"
        code = main(["trace", str(trace_file), "--chrome", str(chrome_file)])
        assert code == 0
        assert "chrome trace written" in capsys.readouterr().out
        chrome = json.loads(chrome_file.read_text())
        assert len(chrome["traceEvents"]) == len(records)

    def test_federated_fit_trace_with_heartbeat_interval(self, capsys, tmp_path):
        from repro import telemetry

        trace_file = tmp_path / "fed_trace.jsonl"
        code = main(
            [
                "federated-fit",
                "--shards", "2",
                "--dataset", "gowalla",
                "--n", "2000",
                "--epsilon", "0.5",
                "--seed", "0",
                "--trace", str(trace_file),
                "--heartbeat-interval", "0",
            ]
        )
        assert code == 0
        capsys.readouterr()
        names = {r.name for r in telemetry.read_jsonl(trace_file)}
        assert "federated.round" in names
        assert "federated.collector" in names
        assert "accountant.spend" in names

    def test_trace_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read trace"):
            main(["trace", str(tmp_path / "nope.jsonl")])


class TestFederatedFitCommand:
    def test_single_fit_matches_centralized_run(self, capsys, tmp_path):
        """The CLI's headline guarantee: federated == centralized, bit for bit."""
        import json

        fed_out = tmp_path / "federated.json"
        code = main(
            [
                "federated-fit",
                "--shards", "3",
                "--dataset", "gowalla",
                "--n", "2000",
                "--epsilon", "1.0",
                "--seed", "0",
                "--out", str(fed_out),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 shard collectors" in out
        assert "privtree/tree structure" in out

        central_out = tmp_path / "central.json"
        assert main(
            [
                "run",
                "--method", "privtree",
                "--dataset", "gowalla",
                "--n", "2000",
                "--epsilon", "1.0",
                "--seed", "0",
                "--out", str(central_out),
            ]
        ) == 0
        capsys.readouterr()
        fed = json.loads(fed_out.read_text())
        central = json.loads(central_out.read_text())
        assert fed["payload"] == central["payload"]

    def test_epoch_series_persists_store(self, capsys, tmp_path):
        store = tmp_path / "epochs"
        code = main(
            [
                "federated-fit",
                "--shards", "3",
                "--dataset", "gowalla",
                "--n", "600",
                "--epsilon", "0.5",
                "--epochs", "3",
                "--window", "2",
                "--store", str(store),
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epoch-0000" in out and "epoch-0002" in out
        assert "1.5 spent of 1.5" in out.replace("budget   : ", "")

        from repro.serve import ReleaseStore

        reloaded = ReleaseStore(store, create=False)
        assert reloaded.ids() == ["epoch-0000", "epoch-0001", "epoch-0002"]
        assert reloaded.latest("epoch-") == "epoch-0002"
        entry = reloaded.manifest_entry("epoch-0002")
        assert entry["params"]["window_epochs"] == [1, 2]

    def test_epochs_require_store(self):
        with pytest.raises(SystemExit, match="--store is required"):
            main(
                [
                    "federated-fit",
                    "--shards", "2",
                    "--dataset", "gowalla",
                    "--n", "200",
                    "--epochs", "2",
                ]
            )

    def test_rejects_one_shard(self):
        with pytest.raises(SystemExit, match="at least 2"):
            main(
                ["federated-fit", "--shards", "1", "--dataset", "gowalla"]
            )

    def test_rejects_sequence_dataset(self):
        with pytest.raises(SystemExit, match="unknown spatial dataset"):
            main(["federated-fit", "--dataset", "msnbc"])
