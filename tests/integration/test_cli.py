"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if isinstance(a.choices, dict)
        )
        assert set(sub.choices) == {
            "run",
            "methods",
            "figure5",
            "figure6",
            "figure7",
            "table4",
            "bench",
            "svt",
            "datasets",
        }

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure5", "--dataset", "adult"])


class TestCommands:
    def test_svt_command(self, capsys):
        assert main(["svt"]) == 0
        out = capsys.readouterr().out
        assert "BinarySVT" in out
        assert "VanillaSVT" in out

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "road" in out and "msnbc" in out

    def test_figure5_small_run(self, capsys):
        code = main(
            [
                "figure5",
                "--dataset",
                "gowalla",
                "--band",
                "large",
                "--n",
                "3000",
                "--queries",
                "10",
                "--epsilons",
                "1.6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PrivTree" in out
        assert "1.6" in out

    def test_figure6_small_run(self, capsys):
        code = main(
            [
                "figure6",
                "--dataset",
                "msnbc",
                "--k",
                "10",
                "--n",
                "1500",
                "--epsilons",
                "1.6",
            ]
        )
        assert code == 0
        assert "N-gram" in capsys.readouterr().out

    def test_figure7_small_run(self, capsys):
        code = main(
            [
                "figure7",
                "--dataset",
                "msnbc",
                "--n",
                "1500",
                "--synthetic",
                "200",
                "--epsilons",
                "1.6",
            ]
        )
        assert code == 0
        assert "Truncate" in capsys.readouterr().out

    def test_table4_small_run(self, capsys):
        code = main(["table4", "--n", "1500", "--epsilons", "0.4"])
        assert code == 0
        assert "road" in capsys.readouterr().out

    def test_bench_small_run(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "BENCH_perf.json"
        code = main(
            [
                "bench",
                "--n",
                "3000",
                "--queries",
                "50",
                "--sequences",
                "1500",
                "--synthetic",
                "500",
                "--repeats",
                "1",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "privtree_build" in out
        assert "speedup" in out
        results = json.loads(out_file.read_text())
        assert set(results["cases"]) == {
            "privtree_build",
            "workload_queries",
            "workload_generation",
            "gram_counting",
            "substring_counting",
            "substring_count_table",
            "pst_build_release",
            "topk_scoring",
            "pst_generation",
        }
        assert results["cases"]["workload_queries"]["max_abs_deviation"] < 1e-6
        assert results["cases"]["topk_scoring"]["max_abs_deviation"] < 1e-9
        assert results["config"]["n_points"] == 3000
        assert results["config"]["sequence"]["n_sequences"] == 1500

        # --compare against the file just written: no case can regress vs
        # itself beyond noise, and the table must render.
        code = main(
            [
                "bench",
                "--n",
                "3000",
                "--queries",
                "50",
                "--sequences",
                "1500",
                "--synthetic",
                "500",
                "--repeats",
                "1",
                "--out",
                str(tmp_path / "BENCH_new.json"),
                "--compare",
                str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"comparison vs {out_file}" in out
        assert "baseline" in out and "current" in out


class TestRunCommand:
    def test_methods_lists_registry(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("privtree", "ug", "ag", "dawa", "pst", "ngram"):
            assert name in out

    def test_run_spatial_method(self, capsys, tmp_path):
        out_file = tmp_path / "release.json"
        code = main(
            [
                "run",
                "--method",
                "privtree",
                "--dataset",
                "gowalla",
                "--n",
                "2000",
                "--epsilon",
                "0.5",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "privtree/tree structure" in out
        assert "privtree/leaf counts" in out
        assert out_file.exists()

        from repro.api import load_release

        release = load_release(out_file)
        assert release.method == "privtree"
        assert release.epsilon_spent == 0.5

    def test_run_sequence_method_defaults_l_top(self, capsys):
        code = main(
            ["run", "--method", "pst", "--dataset", "msnbc", "--n", "1000"]
        )
        assert code == 0
        assert "pst/structure" in capsys.readouterr().out

    def test_run_with_param_override(self, capsys):
        code = main(
            [
                "run",
                "--method",
                "ug",
                "--dataset",
                "gowalla",
                "--n",
                "2000",
                "--param",
                "size_factor=2.0",
            ]
        )
        assert code == 0
        assert "ug/cell counts" in capsys.readouterr().out

    def test_run_rejects_unknown_method(self):
        with pytest.raises(SystemExit, match="unknown method"):
            main(["run", "--method", "nope", "--dataset", "road"])

    def test_run_rejects_unknown_param(self):
        with pytest.raises(SystemExit, match="valid parameters"):
            main(["run", "--method", "ug", "--dataset", "road", "--param", "zeta=2"])

    def test_run_rejects_epsilon_via_param(self):
        with pytest.raises(SystemExit, match="--epsilon"):
            main(["run", "--method", "ug", "--dataset", "road", "--param", "epsilon=2"])

    def test_run_rejects_kind_mismatch(self):
        with pytest.raises(SystemExit):
            main(["run", "--method", "privtree", "--dataset", "msnbc", "--n", "500"])
