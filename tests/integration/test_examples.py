"""Smoke tests: the fast example scripts run end to end.

The slower demos (full baseline comparisons) are exercised indirectly by
the experiments tests; here we execute the quick ones exactly as a user
would, so a broken import or API drift in any example fails CI.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "PrivTree synopsis" in out
        assert "leaf volumes" in out

    def test_svt_pitfalls(self, capsys):
        out = run_example("svt_pitfalls.py", capsys)
        assert "VIOLATES claim" in out
        assert "PrivTree needs lambda" in out

    def test_taxonomy_decomposition(self, capsys):
        out = run_example("taxonomy_decomposition.py", capsys)
        assert "mixed-domain PrivTree" in out
        assert "coffee" in out

    def test_all_examples_importable(self):
        # Every example must at least parse and expose a main().
        import ast

        for path in sorted(EXAMPLES.glob("*.py")):
            tree = ast.parse(path.read_text())
            names = {
                node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
            }
            assert "main" in names, f"{path.name} lacks a main()"
