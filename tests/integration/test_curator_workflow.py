"""End-to-end curator workflows: the library's intended usage, verified.

Each test walks the full path a data curator would: sensitive data in,
ε-DP artifact out, artifact shipped (serialized), consumed by a party that
never sees the raw data, and validated for utility.
"""

import numpy as np
import pytest

from repro.domains import Box
from repro.sequence import (
    MarkovModel,
    load_pst,
    private_pst,
    save_pst,
)
from repro.spatial import (
    SpatialDataset,
    average_relative_error,
    generate_workload,
    load_tree,
    privtree_histogram,
    save_tree,
)


class TestSpatialCuratorWorkflow:
    def test_publish_ship_consume(self, clustered_2d, tmp_path):
        # Curator side: one ε-DP release, written to disk.
        epsilon = 1.0
        synopsis = privtree_histogram(clustered_2d, epsilon, rng=0)
        path = tmp_path / "release.json"
        save_tree(synopsis, path)

        # Consumer side: loads the artifact, never touches the points.
        release = load_tree(path)
        queries = generate_workload(release.root.box, "medium", 40, rng=1)
        answers = [release.range_count(q) for q in queries]
        assert all(np.isfinite(a) for a in answers)

        # Utility check against ground truth (curator-side audit).
        err = average_relative_error(release.range_count, clustered_2d, queries)
        assert err < 0.5

        # The artifact carries no raw coordinates: its JSON mentions only
        # boxes and counts, and the number of stored values is far below n.
        n_values = sum(1 for _ in release.root.iter_nodes())
        assert n_values < clustered_2d.n / 3

    def test_release_reuse_is_free(self, clustered_2d):
        # Postprocessing freedom: the same release feeds queries, a raster,
        # and k-means without further privacy spend.
        from repro.applications import kmeans_cost, privtree_kmeans

        synopsis = privtree_histogram(clustered_2d, epsilon=1.0, rng=0)
        raster = synopsis.to_grid((16, 16))
        assert raster.sum() == pytest.approx(synopsis.total_count, rel=1e-6)
        centers = privtree_kmeans(
            clustered_2d, k=2, epsilon=1.0, rng=1, synopsis=synopsis
        )
        assert kmeans_cost(clustered_2d, centers) < 1.0


class TestSequenceCuratorWorkflow:
    def test_publish_ship_consume(self, tmp_path):
        from repro.datasets import msnbclike

        data = msnbclike(5_000, rng=0)
        model_path = tmp_path / "pst.json"
        save_pst(private_pst(data, epsilon=1.0, l_top=20, rng=0), model_path)

        release = load_pst(model_path)
        # Consumer: mine strings, sample synthetic data, score likelihoods.
        top = release.top_k_strings(10, max_length=6)
        assert len(top) == 10
        synthetic = release.sample_dataset(200, rng=1, max_length=20)
        assert len(synthetic) == 200
        lm = MarkovModel(release)
        ll = lm.sequence_log_likelihood(synthetic[0]) if len(synthetic[0]) else None
        if ll is not None:
            assert ll < 0.0

    def test_budget_is_respected_across_two_releases(self, tmp_path):
        # Two independent releases must each carry their own budget: the
        # curator splits manually and the accountant enforces the sum.
        from repro.mechanisms import BudgetExceededError, PrivacyAccountant

        gen = np.random.default_rng(0)
        pts = gen.uniform(0, 1, size=(2_000, 2)) * 0.999
        data = SpatialDataset(pts, Box.unit(2))
        acc = PrivacyAccountant(1.0)
        privtree_histogram(data, acc.spend(0.6, "coarse release"), rng=1)
        privtree_histogram(data, acc.spend(0.4, "refined release"), rng=2)
        with pytest.raises(BudgetExceededError):
            acc.spend(0.1, "one release too many")
