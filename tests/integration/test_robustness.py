"""Failure-injection and degenerate-input tests across the whole pipeline.

A release library must behave sensibly on empty data, single points, and
adversarial parameter corners — none of these should crash or hang.
"""

import numpy as np
import pytest

from repro.baselines import (
    ag_histogram,
    dawa_histogram,
    hierarchy_histogram,
    kdtree_histogram,
    ngram_model,
    privelet_histogram,
    ug_histogram,
)
from repro.domains import Box
from repro.sequence import Alphabet, SequenceDataset, private_pst
from repro.spatial import SpatialDataset, privtree_histogram


@pytest.fixture
def empty_2d() -> SpatialDataset:
    return SpatialDataset(np.zeros((0, 2)), Box.unit(2), name="empty")


@pytest.fixture
def single_point() -> SpatialDataset:
    return SpatialDataset(np.array([[0.5, 0.5]]), Box.unit(2), name="one")


class TestEmptySpatialData:
    def test_privtree(self, empty_2d):
        syn = privtree_histogram(empty_2d, epsilon=1.0, rng=0)
        assert syn.size >= 1
        assert isinstance(syn.range_count(Box.unit(2)), float)

    def test_ug(self, empty_2d):
        grid = ug_histogram(empty_2d, epsilon=1.0, rng=0)
        assert grid.n_cells == 1  # the granularity formula floors at 1

    def test_ag(self, empty_2d):
        ag = ag_histogram(empty_2d, epsilon=1.0, rng=0)
        assert isinstance(ag.range_count(Box.unit(2)), float)

    def test_hierarchy(self, empty_2d):
        hist = hierarchy_histogram(empty_2d, epsilon=1.0, rng=0)
        assert abs(hist.leaf_grid.counts.sum()) < 5_000  # pure noise

    def test_dawa(self, empty_2d):
        hist = dawa_histogram(empty_2d, epsilon=1.0, rng=0)
        assert hist.n_buckets >= 1

    def test_privelet(self, empty_2d):
        hist = privelet_histogram(empty_2d, epsilon=1.0, rng=0)
        assert np.isfinite(hist.grid.counts).all()

    def test_kdtree(self, empty_2d):
        tree = kdtree_histogram(empty_2d, epsilon=1.0, height=3, rng=0)
        assert tree.height <= 2


class TestSinglePoint:
    def test_privtree_single_point(self, single_point):
        syn = privtree_histogram(single_point, epsilon=1.0, rng=0)
        assert syn.total_count == pytest.approx(1.0, abs=20.0)

    def test_all_grids_single_point(self, single_point):
        for build in (ug_histogram, ag_histogram, dawa_histogram, privelet_histogram):
            synopsis = build(single_point, 1.0, rng=0)
            assert np.isfinite(synopsis.range_count(Box.unit(2)))


class TestDegenerateSequences:
    def test_private_pst_on_empty_dataset(self):
        data = SequenceDataset(alphabet=Alphabet.of_size(3), sequences=())
        pst = private_pst(data, epsilon=1.0, l_top=5, rng=0)
        assert pst.size >= 1
        assert pst.string_frequency((0,)) >= 0.0

    def test_private_pst_on_empty_sequences(self):
        data = SequenceDataset(
            alphabet=Alphabet.of_size(2),
            sequences=(np.array([], dtype=np.int64),) * 5,
        )
        pst = private_pst(data, epsilon=1.0, l_top=5, rng=0)
        # Only the end markers exist; sampling must terminate.
        seq = pst.sample_sequence(rng=1, max_length=10)
        assert len(seq) <= 10

    def test_ngram_on_empty_dataset(self):
        data = SequenceDataset(alphabet=Alphabet.of_size(3), sequences=())
        model = ngram_model(data, epsilon=1.0, l_top=5, rng=0)
        assert model.string_frequency((0,)) >= 0.0
        assert len(model.sample_sequence(rng=1)) <= 5

    def test_pst_sampling_always_terminates(self):
        # A model whose histograms never emit & must still stop at the cap.
        data = SequenceDataset.from_symbols(
            Alphabet(("A",)), [["A"] * 30 for _ in range(50)]
        )
        pst = private_pst(data, epsilon=5.0, l_top=10, rng=0)
        seq = pst.sample_sequence(rng=2, max_length=25)
        assert len(seq) <= 25


class TestAdversarialQueries:
    def test_query_outside_domain(self, single_point):
        syn = privtree_histogram(single_point, epsilon=1.0, rng=0)
        outside = Box((5.0, 5.0), (6.0, 6.0))
        assert syn.range_count(outside) == 0.0

    def test_sliver_query(self, uniform_2d):
        syn = privtree_histogram(uniform_2d, epsilon=1.0, rng=0)
        sliver = Box((0.5, 0.0), (0.5 + 1e-12, 1.0))
        assert np.isfinite(syn.range_count(sliver))

    def test_negative_noisy_counts_still_answer(self, empty_2d):
        # Empty data + noise yields negative leaf counts; traversal must
        # propagate them (the release is unbiased, not clamped).
        syn = privtree_histogram(empty_2d, epsilon=0.05, rng=3)
        assert np.isfinite(syn.range_count(Box((0.1, 0.1), (0.4, 0.4))))
