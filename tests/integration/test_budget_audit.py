"""End-to-end privacy-budget audits of the released pipelines.

Verifies the ε arithmetic of every composed release: the pieces must sum
to the promised total (Lemma 2.1), and the noise scales used must match
the calibration rules of the paper.
"""

import math

import pytest

from repro.core import PrivTreeParams, lambda_for_epsilon
from repro.mechanisms import BudgetExceededError, PrivacyAccountant


class TestPrivTreeHistogramBudget:
    def test_default_split_halves(self):
        acc = PrivacyAccountant(1.0)
        tree = acc.spend_fraction(0.5, "tree")
        counts = acc.spend_fraction(0.5, "counts")
        assert tree == counts == 0.5
        assert acc.remaining == pytest.approx(0.0, abs=1e-12)

    def test_structure_noise_matches_corollary_1(self):
        # privtree_histogram at eps=1, fanout 4: tree budget 0.5 -> lambda
        # must be (2*4-1)/(4-1)/0.5 = 14/3.
        params = PrivTreeParams.calibrate(0.5, fanout=4)
        assert params.lam == pytest.approx(14.0 / 3.0)
        assert params.delta == pytest.approx(params.lam * math.log(4))

    def test_count_noise_is_two_over_epsilon(self):
        # Section 3.4: leaf counts at eps/2 budget means scale 2/eps.
        eps = 0.8
        count_scale = 1.0 / (eps / 2.0)
        assert count_scale == pytest.approx(2.0 / eps)

    def test_overspending_fails_loudly(self):
        acc = PrivacyAccountant(1.0)
        acc.spend_fraction(0.5)
        acc.spend_fraction(0.5)
        with pytest.raises(BudgetExceededError):
            acc.spend(1e-6)


class TestSequenceBudget:
    def test_section_4_2_split(self):
        # PST structure gets eps/beta, histograms eps*(beta-1)/beta.
        beta = 18  # msnbc: |I| + 1
        eps = 1.0
        acc = PrivacyAccountant(eps)
        tree = acc.spend_fraction(1.0 / beta, "structure")
        hists = acc.spend_fraction(1.0 - 1.0 / beta, "histograms")
        assert tree == pytest.approx(eps / beta)
        assert hists == pytest.approx(eps * (beta - 1) / beta)
        assert acc.remaining == pytest.approx(0.0, abs=1e-9)

    def test_theorem_4_1_scale(self):
        # lambda >= (2beta-1)/(beta-1) * l_top / eps_tree.
        beta, l_top, eps_tree = 8, 20, 0.125
        params = PrivTreeParams.calibrate(
            eps_tree, fanout=beta, sensitivity=float(l_top)
        )
        expected = (2 * beta - 1) / (beta - 1) * l_top / eps_tree
        assert params.lam == pytest.approx(expected)

    def test_theorem_4_2_scale(self):
        # Histogram noise: l_top / eps_hist.
        l_top, eps_hist = 20, 0.875
        assert l_top / eps_hist == pytest.approx(22.857142857142858)


class TestCalibrationInverse:
    def test_guaranteed_epsilon_never_exceeds_promise(self):
        from repro.core import epsilon_for_lambda

        for eps in (0.05, 0.4, 1.6):
            for fanout in (2, 4, 16):
                lam = lambda_for_epsilon(eps, fanout)
                assert epsilon_for_lambda(lam, fanout) <= eps * (1 + 1e-9)
