"""Tests for the private k-means application."""

import numpy as np
import pytest

from repro.applications import dplloyd_kmeans, kmeans_cost, privtree_kmeans
from repro.domains import Box
from repro.spatial import SpatialDataset, privtree_histogram


@pytest.fixture
def three_blobs() -> SpatialDataset:
    gen = np.random.default_rng(1)
    blobs = [
        gen.normal(loc=c, scale=0.03, size=(3_000, 2))
        for c in [(0.2, 0.2), (0.8, 0.3), (0.5, 0.8)]
    ]
    pts = np.clip(np.vstack(blobs), 0.0, 0.999999)
    return SpatialDataset(pts, Box.unit(2), name="blobs")


class TestPrivtreeKmeans:
    def test_returns_k_centers_in_domain(self, three_blobs):
        centers = privtree_kmeans(three_blobs, k=3, epsilon=1.0, rng=0)
        assert centers.shape == (3, 2)
        assert three_blobs.domain.contains_points(np.clip(centers, 0, 0.999999)).all()

    def test_recovers_blob_centers_at_high_epsilon(self, three_blobs):
        centers = privtree_kmeans(three_blobs, k=3, epsilon=4.0, rng=0)
        true_centers = np.array([(0.2, 0.2), (0.8, 0.3), (0.5, 0.8)])
        for truth in true_centers:
            nearest = np.linalg.norm(centers - truth, axis=1).min()
            assert nearest < 0.1

    def test_cost_near_nonprivate_baseline(self, three_blobs):
        private_cost = kmeans_cost(
            three_blobs, privtree_kmeans(three_blobs, k=3, epsilon=2.0, rng=0)
        )
        # A very good clustering of these blobs costs about 2 * 0.03^2.
        assert private_cost < 10 * (2 * 0.03**2)

    def test_reuses_existing_synopsis(self, three_blobs):
        synopsis = privtree_histogram(three_blobs, epsilon=2.0, rng=0)
        a = privtree_kmeans(three_blobs, k=3, epsilon=2.0, rng=1, synopsis=synopsis)
        b = privtree_kmeans(three_blobs, k=3, epsilon=2.0, rng=1, synopsis=synopsis)
        np.testing.assert_allclose(a, b)

    def test_invalid_k(self, three_blobs):
        with pytest.raises(ValueError):
            privtree_kmeans(three_blobs, k=0, epsilon=1.0)


class TestDpLloyd:
    def test_returns_k_centers(self, three_blobs):
        centers = dplloyd_kmeans(three_blobs, k=3, epsilon=2.0, rng=0)
        assert centers.shape == (3, 2)

    def test_privtree_coarsening_beats_interactive_lloyd(self, three_blobs):
        # The Section 1 motivation in miniature: coarsen-then-mine spends
        # the budget once and wins over per-iteration noisy Lloyd at tight
        # budgets.  Medians over seeds defeat the local-minima lottery.
        eps = 0.2
        pt = np.median(
            [
                kmeans_cost(
                    three_blobs, privtree_kmeans(three_blobs, k=3, epsilon=eps, rng=s)
                )
                for s in range(8)
            ]
        )
        dl = np.median(
            [
                kmeans_cost(
                    three_blobs, dplloyd_kmeans(three_blobs, k=3, epsilon=eps, rng=s)
                )
                for s in range(8)
            ]
        )
        assert pt < dl

    def test_invalid_parameters(self, three_blobs):
        with pytest.raises(ValueError):
            dplloyd_kmeans(three_blobs, k=3, epsilon=0.0)
        with pytest.raises(ValueError):
            dplloyd_kmeans(three_blobs, k=3, epsilon=1.0, iterations=0)


class TestCost:
    def test_zero_for_centers_on_points(self):
        pts = np.array([[0.25, 0.25], [0.75, 0.75]])
        data = SpatialDataset(pts, Box.unit(2))
        assert kmeans_cost(data, pts) == 0.0

    def test_shape_validation(self, three_blobs):
        with pytest.raises(ValueError):
            kmeans_cost(three_blobs, np.zeros((3, 5)))
