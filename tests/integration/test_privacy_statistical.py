"""Statistical verification of differential-privacy guarantees.

These tests estimate output distributions on neighboring datasets by Monte
Carlo and check the ε bound with sampling-aware slack.  They are the
empirical counterpart of Theorem 3.1 / Lemma A.1: a buggy noise scale or a
forgotten bias term makes them fail loudly.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np
import pytest

from repro.core import PrivTreeParams, privtree
from repro.mechanisms import ensure_rng
from repro.svt import improved_svt


class AtomicIntervalPayload:
    """1-d payload over integer atoms: unsplittable below width 1.

    Keeps the output space tiny so distributions are estimable by MC.
    """

    def __init__(self, lo: int, hi: int, values: np.ndarray):
        self.lo = lo
        self.hi = hi
        self.values = values

    def score(self) -> float:
        return float(len(self.values))

    def can_split(self) -> bool:
        return self.hi - self.lo > 1

    def split(self) -> list["AtomicIntervalPayload"]:
        mid = (self.lo + self.hi) // 2
        return [
            AtomicIntervalPayload(self.lo, mid, self.values[self.values < mid]),
            AtomicIntervalPayload(mid, self.hi, self.values[self.values >= mid]),
        ]


def tree_signature(tree) -> tuple:
    """A hashable encoding of the released structure (leaf intervals)."""
    return tuple(
        sorted((node.payload.lo, node.payload.hi) for node in tree.root.iter_leaves())
    )


def empirical_log_ratios(
    sample_a: Counter, sample_b: Counter, n: int, min_count: int = 80
) -> list[tuple[float, float]]:
    """(log-ratio, MC slack) for outcomes well-supported in both samples."""
    out = []
    for outcome, count_a in sample_a.items():
        count_b = sample_b.get(outcome, 0)
        if count_a < min_count or count_b < min_count:
            continue
        ratio = math.log(count_a / count_b)
        # Three-sigma slack on the log-ratio of two binomial proportions.
        slack = 3.0 * math.sqrt(1.0 / count_a + 1.0 / count_b)
        out.append((ratio, slack))
    return out


class TestPrivTreeIsDifferentiallyPrivate:
    @pytest.mark.slow
    def test_structure_distribution_respects_epsilon(self):
        # Domain {0..7}, neighboring datasets differing in one point placed
        # inside the dense region (the worst case for split decisions).
        epsilon = 2.0
        params = PrivTreeParams.calibrate(epsilon, fanout=2, theta=2.0)
        base = np.array([1, 1, 1, 2, 2, 3, 5, 5, 6])
        neighbor = np.concatenate([base, [1]])
        n_runs = 12_000
        gen = ensure_rng(20160630)

        def sample(values: np.ndarray) -> Counter:
            counts: Counter = Counter()
            for _ in range(n_runs):
                tree = privtree(
                    AtomicIntervalPayload(0, 8, values), params, rng=gen
                )
                counts[tree_signature(tree)] += 1
            return counts

        dist_a = sample(base)
        dist_b = sample(neighbor)
        ratios = empirical_log_ratios(dist_a, dist_b, n_runs)
        assert ratios, "no outcome had enough support to compare"
        for ratio, slack in ratios:
            assert abs(ratio) <= epsilon + slack, (
                f"empirical privacy loss {abs(ratio):.3f} exceeds "
                f"eps={epsilon} + slack={slack:.3f}"
            )

    @pytest.mark.slow
    def test_miscalibrated_noise_detected(self):
        # Sanity check that the harness has teeth: with noise 4x too small,
        # a node whose biased count straddles theta flips with very
        # different probabilities on the two datasets, and the bound breaks.
        epsilon = 2.0
        good = PrivTreeParams.calibrate(epsilon, fanout=2, theta=2.0)
        params = PrivTreeParams(
            lam=good.lam / 4.0, delta=good.delta, theta=good.theta, fanout=2
        )
        base = np.array([1, 1, 1, 2, 2, 3, 5, 5, 6])
        neighbor = np.concatenate([base, [1]])
        n_runs = 6_000
        gen = ensure_rng(99)

        def sample(values: np.ndarray) -> Counter:
            counts: Counter = Counter()
            for _ in range(n_runs):
                tree = privtree(
                    AtomicIntervalPayload(0, 8, values), params, rng=gen
                )
                counts[tree_signature(tree)] += 1
            return counts

        dist_a = sample(base)
        dist_b = sample(neighbor)
        ratios = empirical_log_ratios(dist_a, dist_b, n_runs, min_count=30)
        bounded_violated = any(abs(r) > epsilon + s for r, s in ratios)
        # Disjoint support with real mass is also a violation.
        support_violated = any(
            dist_b.get(outcome, 0) == 0 for outcome, c in dist_a.items() if c > 200
        ) or any(
            dist_a.get(outcome, 0) == 0 for outcome, c in dist_b.items() if c > 200
        )
        assert bounded_violated or support_violated


class TestImprovedSvtIsDifferentiallyPrivate:
    @pytest.mark.slow
    def test_output_distribution_respects_two_over_lambda(self):
        lam = 1.0  # guarantees loss <= 2/lam = 2
        answers_a = [1.0, 0.0, 2.0, 1.0]
        answers_b = [0.0, 1.0, 1.0, 2.0]  # each query differs by at most 1
        n_runs = 25_000
        gen = ensure_rng(7)

        def sample(answers) -> Counter:
            counts: Counter = Counter()
            for _ in range(n_runs):
                out = improved_svt(answers, theta=1.0, lam=lam, t=2, rng=gen)
                counts[tuple(out)] += 1
            return counts

        ratios = empirical_log_ratios(sample(answers_a), sample(answers_b), n_runs)
        assert ratios
        for ratio, slack in ratios:
            assert abs(ratio) <= 2.0 / lam + slack
