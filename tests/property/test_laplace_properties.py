"""Property-based tests for the Laplace distribution utilities."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms import (
    laplace_cdf,
    laplace_logcdf,
    laplace_logsf,
    laplace_pdf,
    laplace_sf,
)

scales = st.floats(min_value=1e-3, max_value=1e3)
reals = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestDistributionProperties:
    @given(x=reals, scale=scales, loc=reals)
    def test_cdf_plus_sf_is_one(self, x, scale, loc):
        assert math.isclose(
            laplace_cdf(x, scale, loc) + laplace_sf(x, scale, loc), 1.0,
            rel_tol=1e-9, abs_tol=1e-12,
        )

    @given(x=reals, scale=scales)
    def test_cdf_in_unit_interval(self, x, scale):
        assert 0.0 <= laplace_cdf(x, scale) <= 1.0

    @given(x=reals, y=reals, scale=scales)
    def test_cdf_monotone(self, x, y, scale):
        lo, hi = min(x, y), max(x, y)
        assert laplace_cdf(lo, scale) <= laplace_cdf(hi, scale) + 1e-15

    @given(x=reals, scale=scales)
    def test_pdf_nonnegative_and_bounded(self, x, scale):
        value = laplace_pdf(x, scale)
        assert 0.0 <= value <= 1.0 / (2.0 * scale) + 1e-15

    @given(x=reals, scale=scales, loc=reals)
    def test_symmetry_about_loc(self, x, scale, loc):
        left = laplace_cdf(loc - abs(x - loc), scale, loc)
        right = laplace_sf(loc + abs(x - loc), scale, loc)
        assert math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-12)

    @given(x=st.floats(min_value=-200, max_value=200), scale=scales)
    def test_log_functions_consistent(self, x, scale):
        # Where the linear-space value does not underflow, logs must agree.
        # abs_tol covers probabilities within double rounding of 1, where
        # the log1p-based implementation is *more* accurate than log(sf).
        sf = laplace_sf(x, scale)
        if sf > 1e-300:
            assert math.isclose(
                laplace_logsf(x, scale), math.log(sf), rel_tol=1e-6, abs_tol=1e-9
            )
        cdf = laplace_cdf(x, scale)
        if cdf > 1e-300:
            assert math.isclose(
                laplace_logcdf(x, scale), math.log(cdf), rel_tol=1e-6, abs_tol=1e-9
            )

    @given(x=reals, shift=st.floats(min_value=0, max_value=50), scale=scales)
    @settings(max_examples=50)
    def test_dp_likelihood_ratio_bound(self, x, shift, scale):
        # The defining DP property of the Laplace mechanism: shifting the
        # location by s changes ln Pr[> x] by at most s/scale.
        shift = min(shift, 5 * scale)  # keep the ratio numerically stable
        a = laplace_logsf(x, scale, loc=0.0)
        b = laplace_logsf(x, scale, loc=shift)
        assert abs(a - b) <= shift / scale + 1e-7
