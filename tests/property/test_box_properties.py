"""Property-based tests for box geometry."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.domains import Box


@st.composite
def boxes(draw, ndim=None):
    d = ndim or draw(st.integers(min_value=1, max_value=4))
    lows = draw(
        arrays(
            float,
            d,
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        )
    )
    extents = draw(
        arrays(float, d, elements=st.floats(min_value=1e-3, max_value=100))
    )
    return Box.from_arrays(lows, lows + extents)


class TestBoxProperties:
    @given(box=boxes())
    def test_bisect_children_tile_volume(self, box):
        children = box.bisect()
        assert np.isclose(sum(c.volume for c in children), box.volume, rtol=1e-9)

    @given(box=boxes(), data=st.data())
    @settings(max_examples=50)
    def test_bisect_children_partition_points(self, box, data):
        seed = data.draw(st.integers(0, 2**31))
        gen = np.random.default_rng(seed)
        low = np.asarray(box.low)
        high = np.asarray(box.high)
        pts = gen.uniform(low, high, size=(64, box.ndim))
        pts = np.clip(pts, low, np.nextafter(high, low))
        membership = np.stack(
            [c.contains_points(pts) for c in box.bisect()], axis=0
        )
        np.testing.assert_array_equal(membership.sum(axis=0), 1)

    @given(box=boxes())
    def test_contains_self(self, box):
        assert box.contains_box(box)
        assert box.intersects(box)
        assert np.isclose(box.overlap_fraction(box), 1.0)

    @given(a=boxes(ndim=2), b=boxes(ndim=2))
    def test_intersection_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        ia, ib = a.intersection(b), b.intersection(a)
        if ia is None:
            assert ib is None
        else:
            assert np.isclose(ia.volume, ib.volume, rtol=1e-9)

    @given(a=boxes(ndim=3), b=boxes(ndim=3))
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_box(inter)
            assert b.contains_box(inter)

    @given(a=boxes(ndim=2), b=boxes(ndim=2))
    def test_overlap_fraction_in_unit_interval(self, a, b):
        assert 0.0 <= a.overlap_fraction(b) <= 1.0 + 1e-12

    @given(box=boxes())
    def test_split_protocol_matches_bisect(self, box):
        assert len(box.split()) == 2**box.ndim
