"""Property tests for the federated failure surface.

The contract under attack here: a tampered aggregation round — shares
truncated, a shard's report duplicated, entries reordered — must surface
as a *typed* protocol error, never as a plausible-but-wrong count.  Two
mechanisms carry that weight:

* deterministic shape/protocol checks (vector length vs. the queried
  node list, shard count, round digests) catch structural tampering
  outright;
* the ``>= 2^63`` desync guard catches mask misalignment: every
  misaligned entry is one-time-padded by an uncancelled mask, hence
  uniform on ``Z_{2^64}``, so with ``k`` misaligned entries the guard
  misses with probability ``2^-k``.  The tests below keep ``k >= 32``
  (miss odds < 1 in 4 billion per example), which is what "always
  detected" means for a statistical guard.

Plus the transactional-accountant laws the crash-safe fit relies on:
an aborted block must roll back exactly, and exhaustion mid-block must
store nothing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated import (
    PairwiseBlinder,
    RoundMismatchError,
    SecureAggregator,
    ShardDesyncError,
    ShareShapeError,
)
from repro.mechanisms import PrivacyAccountant
from repro.mechanisms.accountant import BudgetExceededError

#: Enough misaligned entries that the desync guard's miss probability
#: (2^-k) is negligible for every generated example.
VECTOR_LEN = 48

n_shards_values = st.integers(min_value=2, max_value=5)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _honest_shares(n_shards: int, seed: int, counts: np.ndarray) -> list:
    blinders = [
        PairwiseBlinder(i, n_shards, blinding_seed=seed) for i in range(n_shards)
    ]
    return [b.blind(counts) for b in blinders]


def _counts(seed: int) -> np.ndarray:
    gen = np.random.default_rng(seed)
    return gen.integers(0, 10_000, size=VECTOR_LEN, dtype=np.int64)


class TestTamperedSharesAreDetected:
    @given(n_shards=n_shards_values, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_honest_rounds_recover_exact_counts(self, n_shards, seed):
        counts = _counts(seed)
        shares = _honest_shares(n_shards, seed, counts)
        recovered = SecureAggregator(n_shards).aggregate(shares)
        assert np.array_equal(recovered, counts * n_shards)

    @given(
        n_shards=n_shards_values,
        seed=seeds,
        cut=st.integers(min_value=0, max_value=VECTOR_LEN - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_truncated_vector_is_always_typed(self, n_shards, seed, cut):
        shares = _honest_shares(n_shards, seed, _counts(seed))
        shares[-1] = shares[-1][:cut]
        with pytest.raises(ShareShapeError, match="must be aligned") as excinfo:
            SecureAggregator(n_shards).aggregate(shares)
        assert excinfo.value.shard_id == n_shards - 1

    @given(n_shards=n_shards_values, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_node_list_pins_the_expected_length(self, n_shards, seed):
        # With node_ids given, even a *consistent* wrong length (all
        # shards truncated alike) is caught — the round is bound to the
        # queried node list, not to whatever shard 0 sent.
        shares = [s[:-1] for s in _honest_shares(n_shards, seed, _counts(seed))]
        node_ids = [f"v1.{i}" for i in range(VECTOR_LEN)]
        with pytest.raises(ShareShapeError, match="queried nodes"):
            SecureAggregator(n_shards).aggregate(shares, node_ids=node_ids)

    @given(n_shards=n_shards_values, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_duplicated_report_is_detected(self, n_shards, seed):
        # Shard 0's report submitted again in shard 1's slot: pair masks
        # no longer telescope, every entry is one-time-padded garbage.
        shares = _honest_shares(n_shards, seed, _counts(seed))
        shares[1] = shares[0]
        with pytest.raises(ShardDesyncError, match="out of sync"):
            SecureAggregator(n_shards).aggregate(shares)

    @given(
        n_shards=n_shards_values,
        seed=seeds,
        shift=st.integers(min_value=1, max_value=VECTOR_LEN - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_reordered_entries_are_detected(self, n_shards, seed, shift):
        # One shard's vector rotated: every entry's mask misaligns.
        shares = _honest_shares(n_shards, seed, _counts(seed))
        shares[-1] = np.roll(shares[-1], shift)
        with pytest.raises(ShardDesyncError, match="out of sync"):
            SecureAggregator(n_shards).aggregate(shares)

    @given(n_shards=n_shards_values, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_missing_report_is_always_typed(self, n_shards, seed):
        shares = _honest_shares(n_shards, seed, _counts(seed))
        with pytest.raises(ShareShapeError, match="expected shares from"):
            SecureAggregator(n_shards).aggregate(shares[:-1])

    @given(seed=seeds, round_index=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_errors_carry_the_round_index(self, seed, round_index):
        shares = _honest_shares(2, seed, _counts(seed))
        shares[1] = shares[1][:-1]
        with pytest.raises(ShareShapeError) as excinfo:
            SecureAggregator(2).aggregate(shares, round_index=round_index)
        assert excinfo.value.round_index == round_index
        assert f"round {round_index}" in str(excinfo.value)

    def test_typed_errors_remain_valueerrors(self):
        # The pre-transport API raised bare ValueError; both tampering
        # errors must stay catchable that way for one deprecation cycle.
        assert issubclass(ShareShapeError, ValueError)
        assert issubclass(ShardDesyncError, ValueError)
        assert issubclass(RoundMismatchError, ValueError)


class TestTransactionalAccountant:
    budgets = st.floats(min_value=0.1, max_value=100.0)
    fractions = st.lists(
        st.floats(min_value=0.01, max_value=0.3), min_size=1, max_size=8
    )

    @given(budget=budgets, fractions=fractions)
    @settings(max_examples=50, deadline=None)
    def test_abort_rolls_back_exactly(self, budget, fractions):
        accountant = PrivacyAccountant(budget)
        accountant.spend(budget * 0.05, "committed")
        before = accountant.ledger
        with pytest.raises(RuntimeError, match="boom"):
            with accountant.transaction():
                # Scale fractions so even max_size draws of the max value
                # stay inside the budget; the abort must come from "boom",
                # never from an overdraw.
                for i, fraction in enumerate(fractions):
                    accountant.spend_fraction(fraction * 0.1, f"round {i}")
                raise RuntimeError("boom")
        assert accountant.ledger == before
        assert accountant.spent == pytest.approx(budget * 0.05)

    @given(budget=budgets)
    @settings(max_examples=50, deadline=None)
    def test_exhaustion_mid_round_stores_nothing(self, budget):
        accountant = PrivacyAccountant(budget)
        with pytest.raises(BudgetExceededError):
            with accountant.transaction():
                accountant.spend(budget * 0.6, "first half")
                accountant.spend(budget * 0.6, "second half")  # overdraws
        assert accountant.ledger == []
        assert accountant.remaining == pytest.approx(budget)

    @given(budget=budgets, fractions=fractions)
    @settings(max_examples=50, deadline=None)
    def test_committed_transaction_keeps_all_spends(self, budget, fractions):
        accountant = PrivacyAccountant(budget)
        with accountant.transaction():
            for i, fraction in enumerate(fractions):
                accountant.spend_fraction(fraction * 0.4, f"round {i}")
        assert len(accountant.ledger) == len(fractions)

    @given(budget=budgets, fractions=fractions)
    @settings(max_examples=50, deadline=None)
    def test_restore_then_total_matches(self, budget, fractions):
        first = PrivacyAccountant(budget)
        for i, fraction in enumerate(fractions):
            first.spend_fraction(fraction * 0.4, f"round {i}")
        second = PrivacyAccountant(budget)
        second.restore(first.ledger)
        assert second.ledger == first.ledger
        assert second.spent == pytest.approx(first.spent)
