"""Property-based tests for taxonomy and product domains."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains import (
    IntervalComponent,
    ProductDomain,
    Taxonomy,
    TaxonomyDomain,
)


@st.composite
def taxonomies(draw):
    """Random small taxonomies built level by level."""
    n_internal = draw(st.integers(min_value=0, max_value=6))
    children: dict[str, list[str]] = {}
    frontier = ["root"]
    next_id = 0
    for _ in range(n_internal):
        if not frontier:
            break
        parent = frontier.pop(0)
        width = draw(st.integers(min_value=2, max_value=4))
        kids = [f"n{next_id + i}" for i in range(width)]
        next_id += width
        children[parent] = kids
        frontier.extend(kids)
    return Taxonomy.from_dict("root", children)


class TestTaxonomyProperties:
    @given(tax=taxonomies())
    @settings(max_examples=60)
    def test_children_partition_leaves(self, tax):
        for label, kids in tax.children.items():
            union = frozenset().union(*(tax.leaves_under(k) for k in kids))
            assert union == tax.leaves_under(label)
            total = sum(len(tax.leaves_under(k)) for k in kids)
            assert total == len(tax.leaves_under(label))

    @given(tax=taxonomies())
    @settings(max_examples=60)
    def test_every_leaf_under_root(self, tax):
        leaves = tax.leaves_under("root")
        assert leaves
        for leaf in leaves:
            assert tax.is_leaf(leaf)
            assert TaxonomyDomain(tax, "root").contains(leaf)

    @given(tax=taxonomies())
    @settings(max_examples=60)
    def test_max_fanout_bounds_all_splits(self, tax):
        cap = tax.max_fanout()
        for kids in tax.children.values():
            assert len(kids) <= cap


class TestProductProperties:
    @given(
        tax=taxonomies(),
        lo=st.floats(min_value=-10, max_value=10),
        width=st.floats(min_value=0.5, max_value=10),
        splits=st.integers(min_value=0, max_value=6),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=50)
    def test_repeated_splits_partition_random_rows(self, tax, lo, width, splits, seed):
        import numpy as np

        domain = ProductDomain(
            (IntervalComponent(lo, lo + width), TaxonomyDomain(tax, "root"))
        )
        gen = np.random.default_rng(seed)
        leaves = list(tax.leaves_under("root"))
        rows = [
            (float(gen.uniform(lo, lo + width)), leaves[gen.integers(len(leaves))])
            for _ in range(20)
        ]
        frontier = [domain]
        for _ in range(splits):
            candidates = [d for d in frontier if d.can_split()]
            if not candidates:
                break
            target = candidates[0]
            frontier.remove(target)
            frontier.extend(target.split())
        for row in rows:
            assert sum(d.contains(row) for d in frontier) == 1
