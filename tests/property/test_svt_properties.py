"""Property-based tests for the SVT variants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.svt import binary_svt, improved_svt, reduced_svt, vanilla_svt

answer_streams = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=1,
    max_size=30,
)


class TestSvtInvariants:
    @given(answers=answer_streams, seed=st.integers(0, 2**31))
    def test_binary_outputs_one_per_query(self, answers, seed):
        out = binary_svt(answers, theta=0.0, lam=1.0, rng=seed)
        assert len(out) == len(answers)
        assert set(out) <= {0, 1}

    @given(answers=answer_streams, t=st.integers(1, 5), seed=st.integers(0, 2**31))
    def test_vanilla_at_most_t_releases(self, answers, t, seed):
        out = vanilla_svt(answers, theta=0.0, lam=1.0, t=t, rng=seed)
        released = [o for o in out if o is not None]
        assert len(released) <= t
        assert len(out) <= len(answers)

    @given(answers=answer_streams, t=st.integers(1, 5), seed=st.integers(0, 2**31))
    def test_reduced_and_improved_stop_at_t(self, answers, t, seed):
        for algorithm in (reduced_svt, improved_svt):
            out = algorithm(answers, theta=0.0, lam=1.0, t=t, rng=seed)
            assert sum(out) <= t
            # The stream stops exactly at the t-th positive (if reached).
            if sum(out) == t:
                assert out[-1] == 1

    @given(answers=answer_streams, seed=st.integers(0, 2**31))
    @settings(max_examples=50)
    def test_noiseless_limit_all_variants_agree_with_thresholding(
        self, answers, seed
    ):
        # Exclude answers that sit exactly on the threshold.
        if any(abs(a) < 1e-6 for a in answers):
            return
        expected = [1 if a > 0 else 0 for a in answers]
        t = len(answers) + 1  # never stop early
        assert binary_svt(answers, 0.0, 1e-12, rng=seed) == expected
        assert reduced_svt(answers, 0.0, 1e-12, t=t, rng=seed) == expected
        assert improved_svt(answers, 0.0, 1e-12, t=t, rng=seed) == expected
        vanilla = vanilla_svt(answers, 0.0, 1e-12, t=t, rng=seed)
        for answer, out in zip(answers, vanilla):
            if answer > 0:
                assert out is not None and abs(out - answer) < 1e-3
            else:
                assert out is None

    @given(answers=answer_streams, seed=st.integers(0, 2**31))
    def test_deterministic_given_seed(self, answers, seed):
        a = binary_svt(answers, theta=1.0, lam=2.0, rng=seed)
        b = binary_svt(answers, theta=1.0, lam=2.0, rng=seed)
        assert a == b
