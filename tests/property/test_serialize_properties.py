"""Property-based round-trip tests for the release serializers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains import Box
from repro.sequence import Alphabet, pst_from_dict, pst_to_dict
from repro.sequence.pst import PredictionSuffixTree, PSTNode
from repro.spatial import tree_from_dict, tree_to_dict
from repro.spatial.histogram_tree import HistogramNode, HistogramTree

counts = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@st.composite
def histogram_trees(draw, box=None, depth=0):
    box = box or Box.unit(2)
    count = draw(counts)
    children = []
    if depth < 3 and draw(st.booleans()):
        children = [
            draw(histogram_trees(box=child, depth=depth + 1))
            for child in box.bisect()
        ]
    return HistogramNode(box=box, count=count, children=children)


@st.composite
def psts(draw):
    size = draw(st.integers(min_value=1, max_value=3))
    alphabet = Alphabet.of_size(size)

    def node(context, depth):
        hist = np.asarray(
            draw(
                st.lists(
                    st.floats(min_value=0, max_value=1e5),
                    min_size=alphabet.hist_size,
                    max_size=alphabet.hist_size,
                )
            )
        )
        children = {}
        if depth < 2 and draw(st.booleans()):
            for code in list(range(size)) + [alphabet.start_code]:
                children[code] = node((code,) + context, depth + 1)
        return PSTNode(context=context, hist=hist, children=children)

    return PredictionSuffixTree(alphabet=alphabet, root=node((), 0))


class TestHistogramTreeRoundTrip:
    @given(root=histogram_trees())
    @settings(max_examples=60)
    def test_structure_and_counts_preserved(self, root):
        tree = HistogramTree(root=root)
        restored = tree_from_dict(tree_to_dict(tree))
        assert restored.size == tree.size
        originals = [(n.box, n.count) for n in tree.root.iter_nodes()]
        restoreds = [(n.box, n.count) for n in restored.root.iter_nodes()]
        for (box_a, count_a), (box_b, count_b) in zip(originals, restoreds):
            assert box_a == box_b
            assert count_a == count_b

    @given(root=histogram_trees())
    @settings(max_examples=30)
    def test_query_equivalence(self, root):
        tree = HistogramTree(root=root)
        restored = tree_from_dict(tree_to_dict(tree))
        query = Box((0.25, 0.1), (0.8, 0.7))
        assert restored.range_count(query) == tree.range_count(query)


class TestPstRoundTrip:
    @given(model=psts())
    @settings(max_examples=60)
    def test_structure_preserved(self, model):
        restored = pst_from_dict(pst_to_dict(model))
        assert restored.size == model.size
        assert restored.alphabet == model.alphabet
        np.testing.assert_allclose(restored.root.hist, model.root.hist)

    @given(model=psts())
    @settings(max_examples=30)
    def test_frequency_equivalence(self, model):
        restored = pst_from_dict(pst_to_dict(model))
        for code in range(model.alphabet.size):
            assert restored.string_frequency((code,)) == model.string_frequency(
                (code,)
            )
