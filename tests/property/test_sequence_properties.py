"""Property-based tests for sequence structures and scores."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence import (
    Alphabet,
    PSTNodeData,
    SequenceDataset,
    equation_13_score,
    length_distribution,
    total_variation_distance,
)


@st.composite
def datasets(draw):
    size = draw(st.integers(min_value=1, max_value=4))
    alphabet = Alphabet.of_size(size)
    n = draw(st.integers(min_value=1, max_value=20))
    seqs = [
        np.asarray(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=size - 1),
                    min_size=0,
                    max_size=12,
                )
            ),
            dtype=np.int64,
        )
        for _ in range(n)
    ]
    return SequenceDataset(alphabet=alphabet, sequences=tuple(seqs))


class TestTruncationProperties:
    @given(data=datasets(), l_top=st.integers(min_value=1, max_value=15))
    @settings(max_examples=60)
    def test_token_lengths_bounded(self, data, l_top):
        store = data.truncate(l_top)
        assert (store.token_lengths() <= l_top).all()

    @given(data=datasets(), l_top=st.integers(min_value=1, max_value=15))
    @settings(max_examples=60)
    def test_prediction_positions_match_token_lengths(self, data, l_top):
        store = data.truncate(l_top)
        positions, _ = store.prediction_positions()
        assert len(positions) == int(store.token_lengths().sum())

    @given(data=datasets(), l_top=st.integers(min_value=1, max_value=15))
    @settings(max_examples=40)
    def test_children_partition_occurrences(self, data, l_top):
        store = data.truncate(l_top)
        root = PSTNodeData.root(store)
        if not root.can_split():
            return
        children = root.split()
        assert sum(len(c.occurrences) for c in children) == len(root.occurrences)
        np.testing.assert_array_equal(
            sum(c.hist() for c in children), root.hist()
        )

    @given(data=datasets(), l_top=st.integers(min_value=1, max_value=15))
    @settings(max_examples=30)
    def test_lemma_4_1_monotone_scores_two_levels(self, data, l_top):
        store = data.truncate(l_top)
        root = PSTNodeData.root(store)
        for child in root.split():
            assert child.score() <= root.score() + 1e-12
            if child.can_split():
                for grand in child.split():
                    assert grand.score() <= child.score() + 1e-12


class TestEquation13Properties:
    @given(
        hist=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=20)
    )
    def test_score_bounds(self, hist):
        arr = np.asarray(hist)
        score = equation_13_score(arr)
        assert 0.0 <= score <= arr.sum()

    @given(
        hist=st.lists(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=20),
        idx=st.integers(min_value=0, max_value=19),
        bump=st.integers(min_value=1, max_value=100),
    )
    def test_score_changes_by_at_most_bump(self, hist, idx, bump):
        # The sensitivity fact behind Theorem 4.1: adding occurrences to one
        # histogram cell moves the score by at most that many units.
        arr = np.asarray(hist)
        bumped = arr.copy()
        bumped[idx % len(arr)] += bump
        assert abs(equation_13_score(bumped) - equation_13_score(arr)) <= bump


class TestMetricsProperties:
    @given(
        lengths=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=200),
        cap=st.integers(min_value=1, max_value=50),
    )
    def test_length_distribution_is_distribution(self, lengths, cap):
        dist = length_distribution(lengths, max_length=cap)
        assert np.isclose(dist.sum(), 1.0)
        assert (dist >= 0).all()
        assert dist.shape == (cap + 1,)

    @given(
        a=st.lists(st.floats(min_value=0.01, max_value=10), min_size=2, max_size=20),
        b=st.lists(st.floats(min_value=0.01, max_value=10), min_size=2, max_size=20),
    )
    @settings(max_examples=60)
    def test_tvd_is_a_metric_on_matching_support(self, a, b):
        if len(a) != len(b):
            return
        p = np.asarray(a) / np.sum(a)
        q = np.asarray(b) / np.sum(b)
        tvd = total_variation_distance(p, q)
        assert 0.0 <= tvd <= 1.0 + 1e-12
        assert np.isclose(total_variation_distance(p, p), 0.0)
        assert np.isclose(tvd, total_variation_distance(q, p))
