"""Property-based tests tying the histogram tree's query paths together."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains import Box
from repro.spatial.histogram_tree import HistogramNode, HistogramTree


@st.composite
def trees(draw, box=None, depth=0):
    box = box or Box.unit(2)
    count = draw(st.floats(min_value=0, max_value=1e5))
    children = []
    if depth < 3 and draw(st.booleans()):
        children = [draw(trees(box=b, depth=depth + 1)) for b in box.bisect()]
        # Keep intermediate counts consistent with children (the PrivTree
        # release invariant), so range counts are well-defined aggregates.
        count = sum(c.count for c in children)
    return HistogramNode(box=box, count=count, children=children)


@st.composite
def queries(draw):
    lows = [draw(st.floats(min_value=0.0, max_value=0.95)) for _ in range(2)]
    highs = [
        min(1.0, lo + draw(st.floats(min_value=0.01, max_value=1.0))) for lo in lows
    ]
    return Box(tuple(lows), tuple(highs))


class TestTraversalProperties:
    @given(root=trees())
    @settings(max_examples=60)
    def test_full_domain_equals_root_count(self, root):
        tree = HistogramTree(root=root)
        assert np.isclose(tree.range_count(Box.unit(2)), root.count, rtol=1e-9)

    @given(root=trees(), query=queries(), data=st.data())
    @settings(max_examples=80)
    def test_additive_over_split_queries(self, root, query, data):
        tree = HistogramTree(root=root)
        frac = data.draw(st.floats(min_value=0.2, max_value=0.8))
        cut = query.low[0] + frac * (query.high[0] - query.low[0])
        if not (query.low[0] < cut < query.high[0]):
            return
        left = Box(query.low, (cut, query.high[1]))
        right = Box((cut, query.low[1]), query.high)
        total = tree.range_count(query)
        assert np.isclose(
            total, tree.range_count(left) + tree.range_count(right),
            rtol=1e-9, atol=1e-6,
        )

    @given(root=trees(), query=queries())
    @settings(max_examples=60)
    def test_monotone_in_query_for_nonnegative_counts(self, root, query):
        tree = HistogramTree(root=root)
        grown = Box(
            tuple(max(0.0, lo - 0.05) for lo in query.low),
            tuple(min(1.0, hi + 0.05) for hi in query.high),
        )
        assert tree.range_count(query) <= tree.range_count(grown) + 1e-6

    @given(root=trees(), query=queries())
    @settings(max_examples=60)
    def test_to_grid_consistent_with_range_count(self, root, query):
        tree = HistogramTree(root=root)
        grid = tree.to_grid((4, 4))
        assert np.isclose(grid.sum(), tree.range_count(Box.unit(2)), rtol=1e-9, atol=1e-6)
