"""Property-based tests for the PrivTree privacy analysis (Lemma 3.1 etc.)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    lambda_for_epsilon,
    path_cost_bound,
    rho,
    rho_top,
)

lams = st.floats(min_value=0.05, max_value=50.0)
thetas = st.floats(min_value=-20.0, max_value=20.0)
offsets = st.floats(min_value=-30.0, max_value=100.0)


class TestLemma31Property:
    @given(offset=offsets, lam=lams, theta=thetas)
    def test_rho_bounded_by_rho_top(self, offset, lam, theta):
        x = theta + offset
        assert rho(x, lam, theta) <= rho_top(x, lam, theta) + 1e-10

    @given(offset=offsets, lam=lams, theta=thetas)
    def test_rho_nonnegative(self, offset, lam, theta):
        # Strict positivity can underflow to 0.0 when offset/lam is huge
        # (rho ~ e^{-offset/lam}); nonnegativity must hold everywhere, and
        # positivity wherever the tail is representable.
        value = rho(theta + offset, lam, theta)
        assert value >= 0
        if offset / lam < 500:
            assert value > 0

    @given(offset=offsets, lam=lams, theta=thetas)
    def test_rho_at_most_one_over_lambda(self, offset, lam, theta):
        # The coarse bound used below theta + 1 must hold globally.
        assert rho(theta + offset, lam, theta) <= 1.0 / lam + 1e-10

    @given(
        a=st.floats(min_value=-30, max_value=100),
        b=st.floats(min_value=-30, max_value=100),
        lam=lams,
    )
    def test_rho_monotone_decreasing(self, a, b, lam):
        lo, hi = min(a, b), max(a, b)
        assert rho(hi, lam) <= rho(lo, lam) + 1e-10


class TestTheorem31Property:
    @given(
        lam=lams,
        gamma=st.floats(min_value=0.1, max_value=5.0),
        start=st.floats(min_value=0.0, max_value=10.0),
        levels=st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=60)
    def test_any_decaying_path_within_bound(self, lam, gamma, start, levels):
        # Theorem 3.1's telescoping: any sequence of biased counts rising by
        # at least delta per step above theta+1, plus the floor term, stays
        # within the closed-form path bound.
        theta = 0.0
        delta = gamma * lam
        counts = [theta + 1 + start + k * delta for k in range(levels)]
        total = sum(rho(c, lam, theta) for c in counts) + 1.0 / lam
        assert total <= path_cost_bound(lam, gamma) + 1e-8

    @given(eps=st.floats(min_value=0.01, max_value=10.0), fanout=st.integers(2, 64))
    def test_calibrated_lambda_meets_bound(self, eps, fanout):
        lam = lambda_for_epsilon(eps, fanout)
        gamma = math.log(fanout)
        assert path_cost_bound(lam, gamma) <= eps * (1 + 1e-9)
