"""Property-based tests for grid range counting and linearizations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import UniformGrid, linear_order, morton_order
from repro.domains import Box
from repro.spatial import SpatialDataset


@st.composite
def grids(draw):
    d = draw(st.integers(min_value=1, max_value=3))
    shape = tuple(draw(st.integers(min_value=1, max_value=8)) for _ in range(d))
    seed = draw(st.integers(0, 2**31))
    counts = np.random.default_rng(seed).poisson(3.0, size=shape).astype(float)
    return UniformGrid(Box.unit(d), counts)


@st.composite
def queries_in(draw, ndim):
    lows = [draw(st.floats(min_value=0.0, max_value=0.97)) for _ in range(ndim)]
    highs = [
        min(1.0, lo + draw(st.floats(min_value=1e-3, max_value=1.0)))
        for lo in lows
    ]
    return Box(tuple(lows), tuple(highs))


class TestGridRangeCount:
    @given(grid=grids())
    def test_full_domain_is_total(self, grid):
        assert np.isclose(grid.range_count(grid.domain), grid.counts.sum(), rtol=1e-9)

    @given(grid=grids(), data=st.data())
    @settings(max_examples=80)
    def test_additive_over_a_split(self, grid, data):
        # Splitting any query at a hyperplane must preserve the total.
        query = data.draw(queries_in(grid.domain.ndim))
        axis = data.draw(st.integers(0, grid.domain.ndim - 1))
        frac = data.draw(st.floats(min_value=0.1, max_value=0.9))
        cut = query.low[axis] + frac * (query.high[axis] - query.low[axis])
        if not (query.low[axis] < cut < query.high[axis]):
            return
        left_high = list(query.high)
        left_high[axis] = cut
        right_low = list(query.low)
        right_low[axis] = cut
        left = Box(query.low, tuple(left_high))
        right = Box(tuple(right_low), query.high)
        total = grid.range_count(query)
        parts = grid.range_count(left) + grid.range_count(right)
        assert np.isclose(total, parts, rtol=1e-9, atol=1e-9)

    @given(grid=grids(), data=st.data())
    @settings(max_examples=60)
    def test_monotone_in_query(self, grid, data):
        query = data.draw(queries_in(grid.domain.ndim))
        grown = Box(
            tuple(max(0.0, lo - 0.05) for lo in query.low),
            tuple(min(1.0, hi + 0.05) for hi in query.high),
        )
        assert grid.range_count(query) <= grid.range_count(grown) + 1e-9

    @given(data=st.data())
    @settings(max_examples=40)
    def test_exact_on_cell_aligned_queries(self, data):
        seed = data.draw(st.integers(0, 2**31))
        gen = np.random.default_rng(seed)
        pts = gen.uniform(0, 1, size=(200, 2)) * 0.999999
        dataset = SpatialDataset(pts, Box.unit(2))
        m = data.draw(st.integers(min_value=1, max_value=8))
        grid = UniformGrid.histogram(dataset, (m, m))
        i = data.draw(st.integers(0, m - 1))
        j = data.draw(st.integers(0, m - 1))
        cell = grid.cell_box((i, j))
        assert np.isclose(grid.range_count(cell), dataset.count_in(cell))


class TestLinearizationProperties:
    @given(
        exponent=st.integers(min_value=0, max_value=5),
        ndim=st.integers(min_value=1, max_value=3),
    )
    def test_orders_are_permutations(self, exponent, ndim):
        m = 2**exponent
        order = linear_order(m, ndim)
        assert sorted(order) == list(range(m**ndim))

    @given(exponent=st.integers(min_value=1, max_value=5))
    def test_morton_first_cell_is_origin(self, exponent):
        m = 2**exponent
        assert morton_order(m, 2)[0] == 0
