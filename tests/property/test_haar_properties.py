"""Property-based tests for the Haar transform used by Privelet."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import haar_forward, haar_inverse, haar_weights


@st.composite
def power_of_two_vectors(draw):
    exponent = draw(st.integers(min_value=0, max_value=7))
    n = 2**exponent
    return draw(
        arrays(
            float,
            n,
            elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        )
    )


class TestHaarProperties:
    @given(x=power_of_two_vectors())
    def test_roundtrip(self, x):
        np.testing.assert_allclose(
            haar_inverse(haar_forward(x)), x, rtol=1e-9, atol=1e-6
        )

    @given(x=power_of_two_vectors())
    def test_base_coefficient_is_mean(self, x):
        assert np.isclose(haar_forward(x)[0], x.mean(), rtol=1e-9, atol=1e-6)

    @given(x=power_of_two_vectors(), y=power_of_two_vectors())
    @settings(max_examples=50)
    def test_linearity(self, x, y):
        if x.shape != y.shape:
            return
        np.testing.assert_allclose(
            haar_forward(x + y),
            haar_forward(x) + haar_forward(y),
            rtol=1e-9,
            atol=1e-6,
        )

    @given(exponent=st.integers(min_value=0, max_value=10), leaf=st.integers(0, 1023))
    @settings(max_examples=60)
    def test_weighted_sensitivity_exactly_h_plus_one(self, exponent, leaf):
        n = 2**exponent
        leaf = leaf % n
        unit = np.zeros(n)
        unit[leaf] = 1.0
        delta = haar_forward(unit)
        weighted = np.abs(delta) @ haar_weights(n)
        assert np.isclose(weighted, exponent + 1, rtol=1e-9)

    @given(x=power_of_two_vectors())
    def test_transform_preserves_total(self, x):
        # Base coefficient times n recovers the total mass.
        coeffs = haar_forward(x)
        assert np.isclose(coeffs[0] * x.size, x.sum(), rtol=1e-9, atol=1e-5)
