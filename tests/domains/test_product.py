"""Tests for product domains (the §3.5 mixed numeric/categorical extension)."""

import pytest

from repro.domains import (
    IntervalComponent,
    ProductDomain,
    Taxonomy,
    TaxonomyDomain,
)


@pytest.fixture
def mixed() -> ProductDomain:
    """One numeric axis on [0, 8) and one 2-level categorical axis."""
    tax = Taxonomy.from_dict("all", {"all": ["x", "y"], "x": ["x1", "x2"]})
    return ProductDomain(
        (IntervalComponent(0.0, 8.0), TaxonomyDomain(tax, "all"))
    )


class TestIntervalComponent:
    def test_split_halves(self):
        left, right = IntervalComponent(0.0, 4.0).split()
        assert (left.low, left.high) == (0.0, 2.0)
        assert (right.low, right.high) == (2.0, 4.0)

    def test_contains_half_open(self):
        comp = IntervalComponent(0.0, 1.0)
        assert comp.contains(0.0)
        assert not comp.contains(1.0)

    def test_atomic_interval(self):
        comp = IntervalComponent(0.0, 5e-324)
        assert not comp.can_split()
        with pytest.raises(ValueError):
            comp.split()

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            IntervalComponent(1.0, 1.0)


class TestProductDomain:
    def test_round_robin_alternates_axes(self, mixed):
        kids = mixed.split()  # splits axis 0 (numeric)
        assert len(kids) == 2
        assert kids[0].next_axis == 1
        grandkids = kids[0].split()  # splits axis 1 (taxonomy)
        assert len(grandkids) == 2  # "all" -> x, y
        assert grandkids[0].next_axis == 0

    def test_skips_unsplittable_axis(self):
        tax = Taxonomy.from_dict("leafonly", {})
        dom = ProductDomain(
            (TaxonomyDomain(tax, "leafonly"), IntervalComponent(0.0, 1.0)),
            next_axis=0,
        )
        kids = dom.split()  # axis 0 is a leaf category: must split axis 1
        assert len(kids) == 2
        assert isinstance(kids[0].components[1], IntervalComponent)
        assert kids[0].components[1].high == pytest.approx(0.5)

    def test_contains_row(self, mixed):
        assert mixed.contains((3.0, "x1"))
        kids = mixed.split()
        assert kids[0].contains((3.0, "x1"))
        assert not kids[1].contains((3.0, "x1"))

    def test_children_partition_rows(self, mixed):
        rows = [(v, c) for v in (0.5, 4.5, 7.9) for c in ("x1", "x2", "y")]
        kids = mixed.split()
        for row in rows:
            assert sum(k.contains(row) for k in kids) == 1

    def test_split_fanout(self, mixed):
        assert mixed.split_fanout() == 2

    def test_max_fanout_accounts_for_taxonomy(self, mixed):
        assert mixed.max_fanout() == 2
        wide_tax = Taxonomy.from_dict("r", {"r": ["a", "b", "c", "d", "e"]})
        dom = ProductDomain((TaxonomyDomain(wide_tax, "r"),))
        assert dom.max_fanout() == 5

    def test_can_split_false_when_all_atomic(self):
        tax = Taxonomy.from_dict("leafonly", {})
        dom = ProductDomain((TaxonomyDomain(tax, "leafonly"),))
        assert not dom.can_split()
        with pytest.raises(ValueError):
            dom.split()

    def test_row_length_validation(self, mixed):
        with pytest.raises(ValueError):
            mixed.contains((1.0,))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ProductDomain(())
        with pytest.raises(ValueError):
            ProductDomain((IntervalComponent(0, 1),), next_axis=5)
