"""Tests for axis-aligned boxes."""

import numpy as np
import pytest

from repro.domains import Box


class TestConstruction:
    def test_unit(self):
        box = Box.unit(3)
        assert box.ndim == 3
        assert box.volume == pytest.approx(1.0)

    def test_from_arrays(self):
        box = Box.from_arrays(np.array([0.0, 1.0]), np.array([2.0, 3.0]))
        assert box.low == (0.0, 1.0)
        assert box.high == (2.0, 3.0)

    def test_bounding(self):
        pts = np.array([[0.0, 0.0], [2.0, 4.0], [1.0, 1.0]])
        box = Box.bounding(pts)
        assert box.contains_points(pts).all()

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Box((0.0,), (0.0,))
        with pytest.raises(ValueError):
            Box((0.0, 0.0), (1.0,))
        with pytest.raises(ValueError):
            Box((), ())


class TestGeometry:
    def test_volume_and_extents(self):
        box = Box((0.0, 0.0), (2.0, 3.0))
        assert box.volume == pytest.approx(6.0)
        assert box.extents == (2.0, 3.0)
        assert box.center == (1.0, 1.5)

    def test_contains_points_half_open(self):
        box = Box((0.0,), (1.0,))
        pts = np.array([[0.0], [0.5], [1.0]])
        np.testing.assert_array_equal(box.contains_points(pts), [True, True, False])

    def test_count_points(self):
        box = Box((0.0, 0.0), (0.5, 0.5))
        pts = np.array([[0.1, 0.1], [0.6, 0.1], [0.4, 0.4]])
        assert box.count_points(pts) == 2

    def test_contains_box(self):
        outer = Box.unit(2)
        inner = Box((0.2, 0.2), (0.8, 0.8))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.contains_box(outer)

    def test_intersects_and_intersection(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((0.5, 0.5), (1.5, 1.5))
        assert a.intersects(b)
        inter = a.intersection(b)
        assert inter.low == (0.5, 0.5)
        assert inter.high == (1.0, 1.0)

    def test_touching_boxes_do_not_intersect(self):
        a = Box((0.0,), (1.0,))
        b = Box((1.0,), (2.0,))
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_overlap_fraction(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((0.5, 0.0), (1.5, 1.0))
        assert a.overlap_fraction(b) == pytest.approx(0.5)
        assert a.overlap_fraction(Box((5.0, 5.0), (6.0, 6.0))) == 0.0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Box.unit(2).intersects(Box.unit(3))
        with pytest.raises(ValueError):
            Box.unit(2).contains_points(np.zeros((3, 3)))


class TestSplitting:
    def test_bisect_all_dims(self):
        children = Box.unit(2).bisect()
        assert len(children) == 4
        assert sum(c.volume for c in children) == pytest.approx(1.0)

    def test_bisect_children_disjoint_and_cover(self):
        parent = Box((0.0, 0.0), (4.0, 2.0))
        children = parent.bisect()
        pts = np.random.default_rng(0).uniform(0, 1, size=(500, 2)) * [4.0, 2.0]
        memberships = np.stack([c.contains_points(pts) for c in children])
        assert (memberships.sum(axis=0) == 1).all()

    def test_bisect_subset_of_dims(self):
        children = Box.unit(3).bisect(dims=[1])
        assert len(children) == 2
        assert children[0].high[1] == pytest.approx(0.5)
        assert children[0].high[0] == pytest.approx(1.0)

    def test_bisect_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Box.unit(2).bisect(dims=[2])
        with pytest.raises(ValueError):
            Box.unit(2).bisect(dims=[0, 0])
        with pytest.raises(ValueError):
            Box.unit(2).bisect(dims=[])

    def test_can_bisect_float_resolution(self):
        tiny = Box((0.0,), (5e-324,))
        assert not tiny.can_bisect()
        assert Box.unit(1).can_bisect()

    def test_protocol_split(self):
        assert len(Box.unit(2).split()) == 4
        assert Box.unit(2).can_split()

    def test_repeated_bisection_preserves_half_open_tiling(self):
        box = Box.unit(1)
        for _ in range(20):
            box = box.bisect()[0]
        assert box.low[0] == 0.0
        assert box.high[0] == pytest.approx(2.0**-20)
