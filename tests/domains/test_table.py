"""Tests for the mixed-table payload (§3.5 extension)."""

import pytest

from repro.core import PrivTreeParams, privtree
from repro.domains import (
    IntervalComponent,
    ProductDomain,
    TableNodeData,
    Taxonomy,
    TaxonomyDomain,
)


@pytest.fixture
def domain() -> ProductDomain:
    tax = Taxonomy.from_dict("all", {"all": ["a", "b"]})
    return ProductDomain(
        (IntervalComponent(0.0, 16.0), TaxonomyDomain(tax, "all"))
    )


@pytest.fixture
def rows() -> list[tuple]:
    return [(1.0, "a"), (1.5, "a"), (9.0, "b"), (15.0, "a"), (2.0, "b")]


class TestTableNodeData:
    def test_root_counts_rows(self, domain, rows):
        root = TableNodeData.root(domain, rows)
        assert root.score() == 5.0

    def test_rejects_outside_rows(self, domain):
        with pytest.raises(ValueError):
            TableNodeData.root(domain, [(99.0, "a")])
        with pytest.raises(ValueError):
            TableNodeData.root(domain, [(1.0, "zebra")])

    def test_split_partitions_rows(self, domain, rows):
        root = TableNodeData.root(domain, rows)
        children = root.split()
        assert sum(len(c.rows) for c in children) == len(rows)
        # First split is on the numeric axis at 8.0.
        low, high = children
        assert {r[0] for r in low.rows} == {1.0, 1.5, 2.0}
        assert {r[0] for r in high.rows} == {9.0, 15.0}

    def test_second_split_is_taxonomy(self, domain, rows):
        low = TableNodeData.root(domain, rows).split()[0]
        kids = low.split()
        labels = [k.domain.components[1].label for k in kids]
        assert labels == ["a", "b"]
        assert {r[1] for r in kids[0].rows} == {"a"}

    def test_score_monotone(self, domain, rows):
        frontier = [TableNodeData.root(domain, rows)]
        for _ in range(20):
            if not frontier:
                break
            node = frontier.pop()
            if not node.can_split():
                continue
            for child in node.split():
                assert child.score() <= node.score()
                if child.rows:
                    frontier.append(child)

    def test_privtree_end_to_end(self, domain):
        # A concentrated table decomposes deeper around its mass.
        import numpy as np

        gen = np.random.default_rng(0)
        rows = [(float(v), "a") for v in gen.normal(3.0, 0.1, size=2000).clip(0, 15.9)]
        root = TableNodeData.root(domain, rows)
        params = PrivTreeParams.calibrate(1.0, fanout=domain.max_fanout())
        tree = privtree(root, params, rng=0, max_depth=30)
        assert tree.size > 3
        deepest = max(tree.leaves(), key=lambda n: n.depth)
        numeric = deepest.payload.domain.components[0]
        # The deepest refinement should be near the cluster at 3.0.
        assert numeric.low <= 3.5 and numeric.high >= 2.5 or numeric.high - numeric.low < 1.0
