"""Tests for taxonomy domains."""

import pytest

from repro.domains import Taxonomy, TaxonomyDomain


@pytest.fixture
def geo() -> Taxonomy:
    """A small place taxonomy: world -> continents -> countries."""
    return Taxonomy.from_dict(
        "world",
        {
            "world": ["europe", "asia"],
            "europe": ["fr", "de", "it"],
            "asia": ["jp", "cn"],
        },
    )


class TestTaxonomy:
    def test_leaves(self, geo):
        assert geo.is_leaf("fr")
        assert not geo.is_leaf("europe")

    def test_children_of(self, geo):
        assert geo.children_of("asia") == ("jp", "cn")
        assert geo.children_of("fr") == ()

    def test_leaves_under(self, geo):
        assert geo.leaves_under("europe") == frozenset({"fr", "de", "it"})
        assert geo.leaves_under("world") == frozenset({"fr", "de", "it", "jp", "cn"})
        assert geo.leaves_under("jp") == frozenset({"jp"})

    def test_max_fanout(self, geo):
        assert geo.max_fanout() == 3

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            Taxonomy.from_dict("a", {"a": ["b"], "b": ["a"]})

    def test_duplicate_children_rejected(self):
        with pytest.raises(ValueError):
            Taxonomy.from_dict("a", {"a": ["b", "b"]})

    def test_unreachable_rejected(self):
        with pytest.raises(ValueError):
            Taxonomy.from_dict("a", {"a": ["b"], "c": ["d"]})

    def test_empty_children_rejected(self):
        with pytest.raises(ValueError):
            Taxonomy.from_dict("a", {"a": []})


class TestTaxonomyDomain:
    def test_split_to_children(self, geo):
        dom = TaxonomyDomain(geo, "world")
        kids = dom.split()
        assert [k.label for k in kids] == ["europe", "asia"]

    def test_leaf_cannot_split(self, geo):
        dom = TaxonomyDomain(geo, "cn")
        assert not dom.can_split()
        with pytest.raises(ValueError):
            dom.split()

    def test_contains(self, geo):
        europe = TaxonomyDomain(geo, "europe")
        assert europe.contains("de")
        assert not europe.contains("jp")

    def test_children_partition_parent(self, geo):
        parent = TaxonomyDomain(geo, "world")
        kids = parent.split()
        union = frozenset().union(*(k.leaf_categories for k in kids))
        assert union == parent.leaf_categories
        for i, a in enumerate(kids):
            for b in kids[i + 1 :]:
                assert not (a.leaf_categories & b.leaf_categories)
