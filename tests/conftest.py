"""Shared fixtures: deterministic RNGs and small spatial datasets.

Also a per-test timeout fallback: the robustness suite exercises retry
loops, server threads, and killed subprocesses, and a regression there
hangs rather than fails.  When pytest-timeout is installed (CI) it owns
the ``timeout`` ini option; otherwise the shim below registers the same
option and enforces it with ``SIGALRM``, so a wedged test still dies
with a clear error instead of stalling the whole run.
"""

from __future__ import annotations

import importlib.util
import signal
import threading

import numpy as np
import pytest

from repro.domains import Box
from repro.spatial import SpatialDataset

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None

if not _HAVE_PYTEST_TIMEOUT:

    def pytest_addoption(parser: pytest.Parser) -> None:
        parser.addini(
            "timeout",
            "per-test timeout in seconds (SIGALRM fallback shim)",
            default="0",
        )

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item: pytest.Item):
        seconds = float(item.config.getini("timeout") or 0)
        usable = (
            seconds > 0
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        if not usable:
            return (yield)

        def _abort(signum, frame):
            raise TimeoutError(
                f"test exceeded the {seconds:g}s per-test timeout "
                "(SIGALRM fallback; install pytest-timeout for the real thing)"
            )

        previous = signal.signal(signal.SIGALRM, _abort)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            return (yield)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(20160601)  # SIGMOD'16


@pytest.fixture
def uniform_2d() -> SpatialDataset:
    """5 000 points uniform on the unit square."""
    gen = np.random.default_rng(7)
    pts = gen.uniform(0.0, 1.0, size=(5_000, 2)) * 0.999999
    return SpatialDataset(pts, Box.unit(2), name="uniform2d")


@pytest.fixture
def clustered_2d() -> SpatialDataset:
    """A skewed dataset: one tight cluster plus sparse background."""
    gen = np.random.default_rng(11)
    cluster = gen.normal(loc=(0.25, 0.25), scale=0.02, size=(4_000, 2))
    background = gen.uniform(0.0, 1.0, size=(500, 2))
    pts = np.clip(np.vstack([cluster, background]), 0.0, 0.999999)
    return SpatialDataset(pts, Box.unit(2), name="clustered2d")
