"""Shared fixtures: deterministic RNGs and small spatial datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.domains import Box
from repro.spatial import SpatialDataset


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(20160601)  # SIGMOD'16


@pytest.fixture
def uniform_2d() -> SpatialDataset:
    """5 000 points uniform on the unit square."""
    gen = np.random.default_rng(7)
    pts = gen.uniform(0.0, 1.0, size=(5_000, 2)) * 0.999999
    return SpatialDataset(pts, Box.unit(2), name="uniform2d")


@pytest.fixture
def clustered_2d() -> SpatialDataset:
    """A skewed dataset: one tight cluster plus sparse background."""
    gen = np.random.default_rng(11)
    cluster = gen.normal(loc=(0.25, 0.25), scale=0.02, size=(4_000, 2))
    background = gen.uniform(0.0, 1.0, size=(500, 2))
    pts = np.clip(np.vstack([cluster, background]), 0.0, 0.999999)
    return SpatialDataset(pts, Box.unit(2), name="clustered2d")
