"""Tests for the synthetic sequence dataset generators."""

import numpy as np
import pytest

from repro.datasets import markov_sequences, mooclike, msnbclike
from repro.sequence import Alphabet


class TestMarkovSequences:
    def test_respects_lengths(self):
        alpha = Alphabet.of_size(3)
        gen = np.random.default_rng(0)
        lengths = np.array([1, 2, 5, 3])
        data = markov_sequences(
            alpha,
            4,
            lengths,
            initial=np.full(3, 1 / 3),
            transition=np.full((3, 3), 1 / 3),
            rng=gen,
            name="t",
        )
        np.testing.assert_array_equal(data.lengths(), lengths)

    def test_transition_structure_respected(self):
        # A chain that can only cycle 0 -> 1 -> 2 -> 0.
        alpha = Alphabet.of_size(3)
        gen = np.random.default_rng(1)
        transition = np.array(
            [[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]]
        )
        data = markov_sequences(
            alpha,
            50,
            np.full(50, 6),
            initial=np.array([1.0, 0.0, 0.0]),
            transition=transition,
            rng=gen,
            name="cycle",
        )
        for seq in data.sequences:
            np.testing.assert_array_equal(seq, [0, 1, 2, 0, 1, 2])

    def test_shape_validation(self):
        alpha = Alphabet.of_size(2)
        gen = np.random.default_rng(0)
        with pytest.raises(ValueError):
            markov_sequences(
                alpha, 2, np.array([1, 1]), np.ones(3) / 3, np.ones((2, 2)) / 2, gen, "x"
            )
        with pytest.raises(ValueError):
            markov_sequences(
                alpha, 2, np.array([0, 1]), np.ones(2) / 2, np.ones((2, 2)) / 2, gen, "x"
            )


class TestMoocLike:
    def test_table3_shape(self):
        data = mooclike(10_000, rng=0)
        assert data.alphabet.size == 7
        assert data.average_length == pytest.approx(13.46, abs=2.0)

    def test_l_top_50_truncates_a_few_percent(self):
        data = mooclike(10_000, rng=1)
        fraction = data.n_longer_than(50) / data.n
        assert 0.0 < fraction < 0.05

    def test_deterministic(self):
        a = mooclike(500, rng=7)
        b = mooclike(500, rng=7)
        assert all(np.array_equal(x, y) for x, y in zip(a.sequences, b.sequences))


class TestMsnbcLike:
    def test_table3_shape(self):
        data = msnbclike(20_000, rng=0)
        assert data.alphabet.size == 17
        assert data.average_length == pytest.approx(4.75, abs=1.5)

    def test_many_single_page_sessions(self):
        data = msnbclike(20_000, rng=0)
        singles = (data.lengths() == 1).mean()
        assert 0.3 < singles < 0.5

    def test_l_top_20_truncates_a_few_percent(self):
        data = msnbclike(20_000, rng=1)
        fraction = data.n_longer_than(20) / data.n
        assert 0.0 < fraction < 0.10

    def test_markov_not_iid(self):
        # The sticky chain makes symbol repeats far likelier than i.i.d.
        data = msnbclike(20_000, rng=2)
        repeats = 0
        pairs = 0
        for seq in data.sequences:
            if len(seq) > 1:
                repeats += int((seq[1:] == seq[:-1]).sum())
                pairs += len(seq) - 1
        assert repeats / pairs > 2.0 / 17
