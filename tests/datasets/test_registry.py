"""Tests for the dataset registry."""

import pytest

from repro.datasets import (
    SEQUENCE_DATASETS,
    SPATIAL_DATASETS,
    make_dataset,
)
from repro.sequence import SequenceDataset
from repro.spatial import SpatialDataset


class TestRegistry:
    def test_paper_datasets_present(self):
        assert set(SPATIAL_DATASETS) == {"road", "gowalla", "nyc", "beijing"}
        assert set(SEQUENCE_DATASETS) == {"mooc", "msnbc"}

    def test_paper_cardinalities_match_table_2(self):
        assert SPATIAL_DATASETS["road"].paper_cardinality == 1_634_165
        assert SPATIAL_DATASETS["gowalla"].paper_cardinality == 107_091
        assert SPATIAL_DATASETS["nyc"].paper_cardinality == 98_013
        assert SPATIAL_DATASETS["beijing"].paper_cardinality == 30_000

    def test_paper_stats_match_table_3(self):
        assert SEQUENCE_DATASETS["mooc"].l_top == 50
        assert SEQUENCE_DATASETS["msnbc"].l_top == 20
        assert SEQUENCE_DATASETS["mooc"].paper_average_length == 13.46
        assert SEQUENCE_DATASETS["msnbc"].paper_average_length == 4.75

    def test_make_spatial(self):
        data = make_dataset("gowalla", n=1_000, rng=0)
        assert isinstance(data, SpatialDataset)
        assert data.n == 1_000

    def test_make_sequence(self):
        data = make_dataset("msnbc", n=500, rng=0)
        assert isinstance(data, SequenceDataset)
        assert data.n == 500

    def test_default_cardinality_used(self):
        spec = SPATIAL_DATASETS["beijing"]
        data = spec.make(rng=0)
        assert data.n == spec.default_cardinality

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_dataset("adult")

    def test_dimensionalities(self):
        assert SPATIAL_DATASETS["road"].dimensionality == 2
        assert SPATIAL_DATASETS["nyc"].dimensionality == 4
        assert SEQUENCE_DATASETS["mooc"].dimensionality == 7
        assert SEQUENCE_DATASETS["msnbc"].dimensionality == 17
