"""Tests for the synthetic spatial dataset generators."""

import numpy as np
import pytest

from repro.baselines import UniformGrid
from repro.datasets import beijinglike, gowallalike, nyclike, roadlike


def skew_ratio(dataset, cells: int = 16) -> float:
    """Fraction of points in the densest 1% of grid cells — a skew proxy."""
    shape = (cells,) * dataset.ndim
    grid = UniformGrid.histogram(dataset, shape)
    flat = np.sort(grid.counts.ravel())[::-1]
    top = max(1, flat.size // 100)
    return float(flat[:top].sum() / max(dataset.n, 1))


class TestShapes:
    @pytest.mark.parametrize(
        "generator,ndim",
        [(roadlike, 2), (gowallalike, 2), (nyclike, 4), (beijinglike, 4)],
    )
    def test_cardinality_and_dimensionality(self, generator, ndim):
        data = generator(5_000, rng=0)
        assert data.n == 5_000
        assert data.ndim == ndim

    @pytest.mark.parametrize(
        "generator", [roadlike, gowallalike, nyclike, beijinglike]
    )
    def test_points_inside_unit_domain(self, generator):
        data = generator(5_000, rng=1)
        assert data.domain.contains_points(data.points).all()

    @pytest.mark.parametrize(
        "generator", [roadlike, gowallalike, nyclike, beijinglike]
    )
    def test_invalid_n(self, generator):
        with pytest.raises(ValueError):
            generator(0)


class TestDeterminism:
    def test_same_seed_same_points(self):
        a = roadlike(2_000, rng=5)
        b = roadlike(2_000, rng=5)
        np.testing.assert_array_equal(a.points, b.points)

    def test_different_seed_different_sample_same_world(self):
        # Different samples, but drawn from the same fixed road network:
        # their density profiles must agree far better than against a
        # uniform sample.
        a = roadlike(20_000, rng=1)
        b = roadlike(20_000, rng=2)
        grid_a = UniformGrid.histogram(a, (16, 16)).counts / a.n
        grid_b = UniformGrid.histogram(b, (16, 16)).counts / b.n
        uniform = np.full((16, 16), 1 / 256)
        dist_ab = np.abs(grid_a - grid_b).sum()
        dist_au = np.abs(grid_a - uniform).sum()
        assert not np.array_equal(a.points, b.points)
        assert dist_ab < dist_au / 3


class TestSkewOrdering:
    def test_road_skew_grows_faster_under_zoom(self):
        # Road mass lies on 1-d filaments: refining the grid keeps exposing
        # new concentration (that's what deep adaptive trees exploit), while
        # blob-like city clusters saturate early.
        road = roadlike(30_000, rng=0)
        gowalla = gowallalike(30_000, rng=0)
        road_growth = skew_ratio(road, cells=64) / skew_ratio(road, cells=16)
        gowalla_growth = skew_ratio(gowalla, cells=64) / skew_ratio(
            gowalla, cells=16
        )
        assert road_growth > gowalla_growth

    def test_nyc_more_skewed_than_beijing(self):
        assert skew_ratio(nyclike(20_000, rng=0), cells=8) > skew_ratio(
            beijinglike(20_000, rng=0), cells=8
        )

    def test_road_strongly_nonuniform(self):
        # At fine resolution the densest 1% of cells should hold far more
        # than 1% of the points (filaments concentrate under zoom).
        assert skew_ratio(roadlike(30_000, rng=3), cells=64) > 0.06


class TestTripStructure:
    def test_nyc_pickup_dropoff_correlated(self):
        data = nyclike(20_000, rng=0)
        pickup = data.points[:, :2]
        dropoff = data.points[:, 2:]
        # With same-cluster probability > 0.5, many trips stay local.
        dists = np.linalg.norm(pickup - dropoff, axis=1)
        assert np.median(dists) < 0.35

    def test_beijing_less_correlated_than_nyc(self):
        nyc = nyclike(20_000, rng=0)
        beijing = beijinglike(20_000, rng=0)
        nyc_med = np.median(
            np.linalg.norm(nyc.points[:, :2] - nyc.points[:, 2:], axis=1)
        )
        beijing_med = np.median(
            np.linalg.norm(beijing.points[:, :2] - beijing.points[:, 2:], axis=1)
        )
        assert nyc_med < beijing_med
