"""Tests for the private k-d tree baseline."""

import numpy as np
import pytest

from repro.baselines import kdtree_histogram
from repro.spatial import average_relative_error, generate_workload


class TestKdTree:
    def test_structure_is_binary(self, uniform_2d):
        tree = kdtree_histogram(uniform_2d, epsilon=1.0, height=4, rng=0)
        for node in tree.root.iter_nodes():
            assert len(node.children) in (0, 2)
        assert tree.height == 3

    def test_total_count_near_n(self, uniform_2d):
        tree = kdtree_histogram(uniform_2d, epsilon=1.0, rng=0)
        assert tree.total_count == pytest.approx(uniform_2d.n, rel=0.10)

    def test_splits_near_median_at_high_epsilon(self, clustered_2d):
        # With a large budget the first split should land near the x-median.
        tree = kdtree_histogram(clustered_2d, epsilon=100.0, height=2, rng=0)
        cut = tree.root.children[0].box.high[0]
        true_median = float(np.median(clustered_2d.points[:, 0]))
        assert abs(cut - true_median) < 0.15

    def test_height_one_is_single_node(self, uniform_2d):
        tree = kdtree_histogram(uniform_2d, epsilon=1.0, height=1, rng=0)
        assert tree.size == 1

    def test_error_decreases_with_epsilon(self, clustered_2d):
        queries = generate_workload(clustered_2d.domain, "large", 30, rng=1)
        errs = {}
        for eps in (0.05, 1.6):
            errs[eps] = np.mean(
                [
                    average_relative_error(
                        kdtree_histogram(clustered_2d, eps, rng=s).range_count,
                        clustered_2d,
                        queries,
                    )
                    for s in range(3)
                ]
            )
        assert errs[1.6] < errs[0.05]

    def test_children_tile_parent(self, uniform_2d):
        tree = kdtree_histogram(uniform_2d, epsilon=1.0, height=5, rng=2)
        for node in tree.root.iter_nodes():
            if node.children:
                vol = sum(c.box.volume for c in node.children)
                assert vol == pytest.approx(node.box.volume)

    def test_invalid_parameters(self, uniform_2d):
        with pytest.raises(ValueError):
            kdtree_histogram(uniform_2d, epsilon=0.0)
        with pytest.raises(ValueError):
            kdtree_histogram(uniform_2d, epsilon=1.0, height=0)
        with pytest.raises(ValueError):
            kdtree_histogram(uniform_2d, epsilon=1.0, split_fraction=1.0)
