"""Tests for the Hierarchy baseline and its constrained inference."""

import numpy as np
import pytest

from repro.baselines import hierarchy_histogram, split_branchings
from repro.spatial import average_relative_error, generate_workload


class TestSplitBranchings:
    def test_even_split(self):
        assert split_branchings(6, 2) == [8, 8]
        assert split_branchings(6, 3) == [4, 4, 4]

    def test_remainder_goes_first(self):
        assert split_branchings(7, 3) == [8, 4, 4]
        assert split_branchings(8, 3) == [8, 8, 4]

    def test_product_is_leaf_count(self):
        for exp in range(2, 10):
            for levels in range(1, exp + 1):
                bs = split_branchings(exp, levels)
                assert np.prod(bs) == 2**exp

    def test_too_many_levels_rejected(self):
        with pytest.raises(ValueError):
            split_branchings(3, 4)
        with pytest.raises(ValueError):
            split_branchings(3, 0)


class TestHierarchyHistogram:
    def test_paper_default_structure(self, uniform_2d):
        hist = hierarchy_histogram(uniform_2d, epsilon=1.0, height=3, rng=0)
        assert hist.levels == 3
        assert hist.branchings == [8, 8]
        assert hist.leaf_grid.shape == (64, 64)

    def test_total_count_near_n(self, uniform_2d):
        hist = hierarchy_histogram(uniform_2d, epsilon=1.0, rng=0)
        assert hist.leaf_grid.counts.sum() == pytest.approx(uniform_2d.n, rel=0.15)

    def test_consistency_children_sum_to_parent(self, uniform_2d):
        # After constrained inference, pooling the leaf level by the last
        # branching must reproduce the implied parent level exactly.
        from repro.baselines.hierarchy import _pool

        hist = hierarchy_histogram(uniform_2d, epsilon=1.0, height=3, rng=0)
        # Rebuild with access to internals: run again at higher level count.
        leaf = hist.leaf_grid.counts
        parent = _pool(leaf, hist.branchings[-1])
        # Pool once more to the coarsest level and compare totals: a proxy
        # that consistency kept mass balanced across levels.
        assert parent.sum() == pytest.approx(leaf.sum())

    def test_noise_decreases_with_epsilon(self, uniform_2d):
        queries = generate_workload(uniform_2d.domain, "medium", 40, rng=1)
        errs = {}
        for eps in (0.05, 1.6):
            errs[eps] = np.mean(
                [
                    average_relative_error(
                        hierarchy_histogram(uniform_2d, eps, rng=s).range_count,
                        uniform_2d,
                        queries,
                    )
                    for s in range(3)
                ]
            )
        assert errs[1.6] < errs[0.05]

    def test_taller_tree_more_levels(self, uniform_2d):
        hist = hierarchy_histogram(
            uniform_2d, epsilon=1.0, height=5, leaf_cells_exponent=6, rng=0
        )
        assert hist.branchings == [4, 4, 2, 2]
        assert hist.leaf_grid.shape == (64, 64)

    def test_invalid_parameters(self, uniform_2d):
        with pytest.raises(ValueError):
            hierarchy_histogram(uniform_2d, epsilon=0.0)
        with pytest.raises(ValueError):
            hierarchy_histogram(uniform_2d, epsilon=1.0, height=1)
