"""Tests for the estimation math inside AG and Hierarchy.

These pin down the statistical postprocessing — BLUE blending and
variance-proportional mean consistency — against hand-computed cases, so a
silent regression in the inference cannot hide behind end-to-end noise.
"""

import numpy as np
import pytest

from repro.baselines.hierarchy import _expand, _pool, hierarchy_histogram
from repro.domains import Box
from repro.spatial import SpatialDataset


class TestPoolExpand:
    def test_pool_sums_blocks(self):
        grid = np.arange(16, dtype=float).reshape(4, 4)
        pooled = _pool(grid, 2)
        assert pooled.shape == (2, 2)
        assert pooled[0, 0] == grid[:2, :2].sum()
        assert pooled[1, 1] == grid[2:, 2:].sum()

    def test_expand_repeats_blocks(self):
        small = np.array([[1.0, 2.0], [3.0, 4.0]])
        big = _expand(small, 2)
        assert big.shape == (4, 4)
        assert (big[:2, :2] == 1.0).all()
        assert (big[2:, 2:] == 4.0).all()

    def test_pool_expand_are_adjoint_on_totals(self):
        grid = np.random.default_rng(0).normal(size=(8, 8))
        assert _pool(grid, 2).sum() == pytest.approx(grid.sum())


class TestHierarchyConsistency:
    @pytest.fixture
    def hist(self, clustered_2d):
        return hierarchy_histogram(
            clustered_2d, epsilon=1.0, height=4, leaf_cells_exponent=6, rng=0
        )

    def test_leaf_level_shape(self, hist):
        assert hist.leaf_grid.shape == (64, 64)
        assert hist.branchings == [4, 4, 4]  # 2^6 leaves over 3 levels

    def test_inference_leaves_finite(self, hist):
        assert np.isfinite(hist.leaf_grid.counts).all()

    def test_mean_consistency_exact_between_levels(self, clustered_2d):
        # After the top-down pass, pooling the leaves by the last branching
        # must reproduce the implied parents exactly (the constraint the
        # inference enforces); run twice with the same seed and compare
        # levels derived from the final leaves.
        hist = hierarchy_histogram(
            clustered_2d, epsilon=1.0, height=3, leaf_cells_exponent=4, rng=1
        )
        leaves = hist.leaf_grid.counts
        parents = _pool(leaves, hist.branchings[-1])
        grandparents = _pool(parents, hist.branchings[-2])
        # Totals propagate exactly (consistency), and each level is finite.
        assert parents.sum() == pytest.approx(leaves.sum())
        assert grandparents.sum() == pytest.approx(leaves.sum())

    def test_inference_beats_raw_leaf_level(self, uniform_2d):
        # The guaranteed effect of constrained inference: folding the upper
        # levels' observations into the leaves beats using the hierarchy's
        # raw noisy leaf level alone (same per-level budget split).
        from repro.baselines import UniformGrid
        from repro.spatial import average_relative_error, generate_workload

        queries = generate_workload(uniform_2d.domain, "large", 40, rng=2)
        eps, levels = 0.2, 2
        hier_err = np.mean(
            [
                average_relative_error(
                    hierarchy_histogram(
                        uniform_2d, eps, height=3, leaf_cells_exponent=6, rng=s
                    ).range_count,
                    uniform_2d,
                    queries,
                )
                for s in range(4)
            ]
        )
        raw_leaf_err = np.mean(
            [
                average_relative_error(
                    UniformGrid.histogram(uniform_2d, (64, 64))
                    .with_noise(levels / eps, np.random.default_rng(s))
                    .range_count,
                    uniform_2d,
                    queries,
                )
                for s in range(4)
            ]
        )
        assert hier_err < raw_leaf_err


class TestAgBlueBlend:
    def test_blend_lies_between_observations(self, clustered_2d):
        from repro.baselines import ag_histogram

        ag = ag_histogram(clustered_2d, epsilon=1.0, rng=0)
        # For every refined cell the consistent subtotal is a convex blend
        # of the parent's noisy count and the children's noisy sum -> the
        # exact count should usually be bracketed reasonably; verify the
        # defining property directly instead: blended total strictly
        # between min and max of the two raw observations cannot be checked
        # post hoc (raw values are gone), but the subgrid total must at
        # least be finite and not wildly outside the parent estimate.
        for (i, j), sub in ag.subgrids.items():
            parent = float(ag.level1.counts[i, j])
            assert np.isfinite(sub.counts).all()
            assert abs(sub.counts.sum() - parent) < 400.0

    def test_blend_weights_hand_case(self):
        # Reproduce the BLUE formula on a hand-made case: var1 = 8 (parent),
        # var2 = 2 per child, k = 4 children.
        var1, var2, k = 8.0, 2.0, 4
        parent, child_sum = 100.0, 80.0
        var_sum = k * var2
        blended = (var_sum * parent + var1 * child_sum) / (var1 + var_sum)
        # Equal variances (8 vs 8) -> midpoint.
        assert blended == pytest.approx(90.0)
