"""Tests for the N-gram sequence baseline."""

import numpy as np
import pytest

from repro.baselines import ngram_model
from repro.sequence import Alphabet, SequenceDataset


@pytest.fixture
def alpha() -> Alphabet:
    return Alphabet(("A", "B"))


@pytest.fixture
def markov_data(alpha) -> SequenceDataset:
    gen = np.random.default_rng(9)
    seqs = []
    for _ in range(3000):
        seq = [0]
        while len(seq) < 15:
            nxt = int(gen.choice(3, p=[0.6, 0.3, 0.1]))
            if nxt == 2:
                break
            seq.append(nxt)
        seqs.append(np.asarray(seq))
    return SequenceDataset(alphabet=alpha, sequences=tuple(seqs), name="ngram-test")


class TestNgramModel:
    def test_counts_respect_n_max(self, markov_data):
        model = ngram_model(markov_data, epsilon=5.0, l_top=16, n_max=3, rng=0)
        assert all(len(g) <= 3 for g in model.counts)

    def test_grams_never_continue_past_end(self, markov_data, alpha):
        model = ngram_model(markov_data, epsilon=5.0, l_top=16, n_max=3, rng=0)
        for gram in model.counts:
            assert alpha.end_code not in gram[:-1]
            assert alpha.start_code not in gram

    def test_frequent_unigram_retained_at_high_epsilon(self, markov_data, alpha):
        model = ngram_model(markov_data, epsilon=50.0, l_top=16, n_max=3, rng=0)
        assert (alpha.code_of("A"),) in model.counts

    def test_string_frequency_close_to_exact_at_high_epsilon(
        self, markov_data, alpha
    ):
        model = ngram_model(markov_data, epsilon=100.0, l_top=16, n_max=3, rng=1)
        exact_a = sum((np.asarray(s) == 0).sum() for s in markov_data.sequences)
        assert model.string_frequency((0,)) == pytest.approx(exact_a, rel=0.05)

    def test_markov_extension_beyond_n_max(self, markov_data):
        model = ngram_model(markov_data, epsilon=50.0, l_top=16, n_max=2, rng=0)
        # Length-3 strings must still get estimates via chaining.
        est = model.string_frequency((0, 0, 0))
        assert est >= 0.0

    def test_top_k_returns_k(self, markov_data):
        model = ngram_model(markov_data, epsilon=10.0, l_top=16, n_max=3, rng=2)
        assert len(model.top_k_strings(10)) == 10

    def test_sampling_valid_sequences(self, markov_data, alpha):
        model = ngram_model(markov_data, epsilon=10.0, l_top=16, n_max=3, rng=3)
        for seq in model.sample_dataset(20, rng=4):
            assert all(0 <= c < alpha.size for c in seq)
            assert len(seq) <= 16

    def test_low_epsilon_prunes_more(self, markov_data):
        lo = ngram_model(markov_data, epsilon=0.1, l_top=16, n_max=3, rng=5)
        hi = ngram_model(markov_data, epsilon=50.0, l_top=16, n_max=3, rng=5)
        assert len(lo.counts) <= len(hi.counts)

    def test_invalid_parameters(self, markov_data):
        with pytest.raises(ValueError):
            ngram_model(markov_data, epsilon=0.0, l_top=16)
        with pytest.raises(ValueError):
            ngram_model(markov_data, epsilon=1.0, l_top=16, n_max=0)
        model = ngram_model(markov_data, epsilon=1.0, l_top=16, rng=0)
        with pytest.raises(ValueError):
            model.string_frequency(())
        with pytest.raises(ValueError):
            model.top_k_strings(0)
