"""Tests for the Privelet wavelet mechanism."""

import numpy as np
import pytest

from repro.baselines import (
    haar_forward,
    haar_inverse,
    haar_weights,
    privelet_histogram,
)
from repro.spatial import average_relative_error, generate_workload


class TestHaarTransform:
    def test_roundtrip_1d(self, rng):
        x = rng.normal(size=64)
        np.testing.assert_allclose(haar_inverse(haar_forward(x)), x, atol=1e-10)

    def test_roundtrip_2d_both_axes(self, rng):
        x = rng.normal(size=(16, 32))
        c = haar_forward(haar_forward(x, axis=0), axis=1)
        back = haar_inverse(haar_inverse(c, axis=1), axis=0)
        np.testing.assert_allclose(back, x, atol=1e-10)

    def test_base_coefficient_is_mean(self):
        x = np.array([1.0, 3.0, 5.0, 7.0])
        coeffs = haar_forward(x)
        assert coeffs[0] == pytest.approx(4.0)

    def test_constant_signal_has_zero_details(self):
        coeffs = haar_forward(np.full(32, 7.0))
        assert coeffs[0] == pytest.approx(7.0)
        np.testing.assert_allclose(coeffs[1:], 0.0, atol=1e-12)

    def test_known_small_transform(self):
        # x = [a, b]: base (a+b)/2, detail (a-b)/2.
        coeffs = haar_forward(np.array([6.0, 2.0]))
        np.testing.assert_allclose(coeffs, [4.0, 2.0])

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            haar_forward(np.zeros(12))
        with pytest.raises(ValueError):
            haar_inverse(np.zeros(12))


class TestHaarWeights:
    def test_layout_and_values(self):
        # n = 8, h = 3: [base=8, coarsest detail t=2 -> 8, two t=1 -> 4,
        # four t=0 -> 2].
        w = haar_weights(8)
        np.testing.assert_allclose(w, [8, 8, 4, 4, 2, 2, 2, 2])

    def test_weighted_sensitivity_is_h_plus_one(self):
        # Adding one unit to a single leaf changes coefficients by Delta;
        # sum |Delta| * W must be exactly h + 1 for every leaf position.
        n = 32
        h = 5
        w = haar_weights(n)
        for leaf in range(0, n, 7):
            delta = haar_forward(np.eye(n)[leaf])
            weighted = np.abs(delta) @ w
            assert weighted == pytest.approx(h + 1)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            haar_weights(10)


class TestPriveletHistogram:
    def test_shape_default(self, clustered_2d):
        hist = privelet_histogram(clustered_2d, epsilon=1.0, rng=0)
        assert hist.grid.shape == (128, 128)

    def test_total_count_near_n(self, clustered_2d):
        hist = privelet_histogram(clustered_2d, epsilon=1.0, rng=0)
        assert hist.grid.counts.sum() == pytest.approx(clustered_2d.n, rel=0.25)

    def test_noiseless_limit_recovers_exact_grid(self, clustered_2d):
        # With enormous epsilon the reconstruction approaches exact counts.
        from repro.baselines import UniformGrid

        hist = privelet_histogram(clustered_2d, epsilon=1e9, rng=0, cells_per_dim=32)
        exact = UniformGrid.histogram(clustered_2d, (32, 32))
        np.testing.assert_allclose(hist.grid.counts, exact.counts, atol=1e-3)

    def test_error_decreases_with_epsilon(self, clustered_2d):
        queries = generate_workload(clustered_2d.domain, "large", 40, rng=2)
        errs = {}
        for eps in (0.05, 1.6):
            errs[eps] = np.mean(
                [
                    average_relative_error(
                        privelet_histogram(clustered_2d, eps, rng=s).range_count,
                        clustered_2d,
                        queries,
                    )
                    for s in range(3)
                ]
            )
        assert errs[1.6] < errs[0.05]

    def test_4d_grid(self):
        from repro.domains import Box
        from repro.spatial import SpatialDataset

        pts = np.random.default_rng(0).uniform(0, 1, size=(2_000, 4)) * 0.999
        data = SpatialDataset(pts, Box.unit(4))
        hist = privelet_histogram(data, epsilon=1.0, rng=0)
        assert hist.grid.shape == (16, 16, 16, 16)

    def test_invalid_parameters(self, clustered_2d):
        with pytest.raises(ValueError):
            privelet_histogram(clustered_2d, epsilon=0.0)
        with pytest.raises(ValueError):
            privelet_histogram(clustered_2d, epsilon=1.0, cells_per_dim=100)
