"""Tests for the UG and AG grid baselines."""

import math

import numpy as np
import pytest

from repro.baselines import ag_histogram, ug_cells_per_dim, ug_histogram
from repro.baselines.ag import ag_level1_cells_per_dim, ag_level2_cells_per_dim
from repro.domains import Box
from repro.spatial import SpatialDataset, average_relative_error, generate_workload


class TestUgGranularity:
    def test_paper_formula_2d(self):
        # m = (n*eps/10)^(2/(d+2)) = (n*eps/10)^(1/2) for d = 2.
        n, eps = 100_000, 1.0
        assert ug_cells_per_dim(n, 2, eps) == math.ceil((n * eps / 10) ** 0.5)

    def test_paper_formula_4d(self):
        n, eps = 100_000, 0.5
        assert ug_cells_per_dim(n, 4, eps) == math.ceil((n * eps / 10) ** (1.0 / 3.0))

    def test_size_factor_scales_total_cells(self):
        base = ug_cells_per_dim(100_000, 2, 1.0)
        bigger = ug_cells_per_dim(100_000, 2, 1.0, size_factor=9.0)
        assert bigger == math.ceil(3.0 * ((100_000 * 1.0 / 10) ** 0.5))
        assert bigger > base

    def test_minimum_one_cell(self):
        assert ug_cells_per_dim(0, 2, 0.05) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ug_cells_per_dim(10, 2, 0.0)
        with pytest.raises(ValueError):
            ug_cells_per_dim(-1, 2, 1.0)
        with pytest.raises(ValueError):
            ug_cells_per_dim(10, 2, 1.0, size_factor=0.0)


class TestUgHistogram:
    def test_grid_shape(self, uniform_2d):
        grid = ug_histogram(uniform_2d, epsilon=1.0, rng=0)
        m = ug_cells_per_dim(uniform_2d.n, 2, 1.0)
        assert grid.shape == (m, m)

    def test_total_near_n(self, uniform_2d):
        grid = ug_histogram(uniform_2d, epsilon=1.0, rng=0)
        assert grid.counts.sum() == pytest.approx(uniform_2d.n, rel=0.10)

    def test_reasonable_accuracy_on_uniform(self, uniform_2d):
        grid = ug_histogram(uniform_2d, epsilon=1.0, rng=1)
        queries = generate_workload(uniform_2d.domain, "large", 40, rng=2)
        err = average_relative_error(grid.range_count, uniform_2d, queries)
        assert err < 0.2


class TestAgGranularity:
    def test_level1_quarter_of_ug(self):
        n, eps = 1_000_000, 1.0
        expected = math.ceil(math.sqrt(n * eps / 10.0) / 4.0)
        assert ag_level1_cells_per_dim(n, eps) == expected

    def test_level1_floor_of_ten(self):
        assert ag_level1_cells_per_dim(10, 0.05) == 10

    def test_level2_grows_with_count(self):
        assert ag_level2_cells_per_dim(10_000, 1.0) > ag_level2_cells_per_dim(100, 1.0)

    def test_level2_nonpositive_count(self):
        assert ag_level2_cells_per_dim(-5.0, 1.0) == 1


class TestAgHistogram:
    def test_rejects_non_2d(self):
        pts = np.zeros((10, 3))
        data = SpatialDataset(pts, Box((0.0,) * 3, (1.0,) * 3))
        with pytest.raises(ValueError):
            ag_histogram(data, epsilon=1.0, rng=0)

    def test_dense_cells_get_refined(self, clustered_2d):
        ag = ag_histogram(clustered_2d, epsilon=1.0, rng=0)
        assert len(ag.subgrids) > 0
        # The cluster sits near (0.25, 0.25); at least one subgrid should
        # cover that area.
        covering = [
            g for g in ag.subgrids.values()
            if g.domain.contains_points(np.array([[0.25, 0.25]]))[0]
        ]
        assert covering

    def test_subgrid_consistency_with_parent(self, clustered_2d):
        # After mean consistency each subgrid total is a blend of parent and
        # children noisy counts -> it must lie between the two raw values or
        # at least be finite and close to the exact count at high epsilon.
        ag = ag_histogram(clustered_2d, epsilon=10.0, rng=0)
        for (i, j), sub in ag.subgrids.items():
            exact = clustered_2d.count_in(ag.level1.cell_box((i, j)))
            assert sub.counts.sum() == pytest.approx(exact, abs=60.0)

    def test_range_count_total(self, clustered_2d):
        ag = ag_histogram(clustered_2d, epsilon=2.0, rng=1)
        assert ag.range_count(clustered_2d.domain) == pytest.approx(
            clustered_2d.n, rel=0.15
        )

    def test_beats_ug_on_skewed_data(self, clustered_2d):
        # The consistent finding of Qardaji et al. reproduced in miniature.
        queries = generate_workload(clustered_2d.domain, "small", 60, rng=5)
        eps = 0.4
        ag_err = np.mean(
            [
                average_relative_error(
                    ag_histogram(clustered_2d, eps, rng=s).range_count,
                    clustered_2d,
                    queries,
                )
                for s in range(5)
            ]
        )
        ug_err = np.mean(
            [
                average_relative_error(
                    ug_histogram(clustered_2d, eps, rng=s).range_count,
                    clustered_2d,
                    queries,
                )
                for s in range(5)
            ]
        )
        assert ag_err < ug_err

    def test_invalid_alpha(self, clustered_2d):
        with pytest.raises(ValueError):
            ag_histogram(clustered_2d, epsilon=1.0, alpha=0.0)
