"""Tests for Hilbert / Morton linearizations."""

import numpy as np
import pytest

from repro.baselines import hilbert_order_2d, linear_order, morton_order


def locality_score(order: np.ndarray, m: int, ndim: int) -> float:
    """Mean spatial (L1) distance between consecutive cells along the curve."""
    coords = np.stack(np.unravel_index(order, (m,) * ndim), axis=1)
    diffs = np.abs(np.diff(coords, axis=0)).sum(axis=1)
    return float(diffs.mean())


class TestHilbert:
    def test_is_permutation(self):
        order = hilbert_order_2d(8)
        assert sorted(order) == list(range(64))

    def test_consecutive_cells_adjacent(self):
        # The defining property of the Hilbert curve: every step moves to a
        # 4-neighbour cell.
        order = hilbert_order_2d(16)
        assert locality_score(order, 16, 2) == pytest.approx(1.0)

    def test_trivial_grid(self):
        assert list(hilbert_order_2d(1)) == [0]

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            hilbert_order_2d(6)


class TestMorton:
    def test_is_permutation_2d(self):
        order = morton_order(8, 2)
        assert sorted(order) == list(range(64))

    def test_is_permutation_4d(self):
        order = morton_order(4, 4)
        assert sorted(order) == list(range(256))

    def test_first_block_is_local(self):
        # The first 4 cells of a 2-d Morton order form the corner 2x2 block.
        order = morton_order(8, 2)
        coords = np.stack(np.unravel_index(order[:4], (8, 8)), axis=1)
        assert coords.max() <= 1

    def test_better_window_locality_than_row_major(self):
        # Mean consecutive-step distance ties with row-major, but any window
        # of 16 consecutive Morton cells stays inside a 4x4 block, whereas
        # row-major windows span a whole row.
        m = 16

        def window_spread(order: np.ndarray) -> float:
            coords = np.stack(np.unravel_index(order, (m, m)), axis=1)
            spreads = []
            for start in range(0, m * m, 16):
                block = coords[start : start + 16]
                spreads.append((block.max(axis=0) - block.min(axis=0)).sum())
            return float(np.mean(spreads))

        assert window_spread(morton_order(m, 2)) < window_spread(np.arange(m * m))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            morton_order(6, 2)
        with pytest.raises(ValueError):
            morton_order(8, 0)


class TestLinearOrder:
    def test_dispatches_hilbert_for_2d(self):
        np.testing.assert_array_equal(linear_order(8, 2), hilbert_order_2d(8))

    def test_dispatches_morton_for_4d(self):
        np.testing.assert_array_equal(linear_order(4, 4), morton_order(4, 4))
