"""Tests for the EM top-k baseline."""

import numpy as np
import pytest

from repro.baselines import em_top_k
from repro.sequence import Alphabet, SequenceDataset, exact_top_k


@pytest.fixture
def alpha() -> Alphabet:
    return Alphabet(("A", "B", "C"))


@pytest.fixture
def skewed_data(alpha) -> SequenceDataset:
    """A dominates B dominates C, strongly."""
    gen = np.random.default_rng(2)
    seqs = []
    for _ in range(1000):
        length = int(gen.integers(2, 8))
        seq = gen.choice(3, size=length, p=[0.7, 0.25, 0.05])
        seqs.append(seq.astype(np.int64))
    return SequenceDataset(alphabet=alpha, sequences=tuple(seqs), name="em-test")


class TestEmTopK:
    def test_returns_k_distinct_strings(self, skewed_data):
        out = em_top_k(skewed_data, epsilon=1.0, l_top=10, k=5, rng=0)
        assert len(out) == 5
        assert len(set(out)) == 5

    def test_high_epsilon_finds_true_top1(self, skewed_data):
        out = em_top_k(skewed_data, epsilon=500.0, l_top=10, k=1, rng=1)
        assert out[0] == exact_top_k(skewed_data, k=1)[0]

    def test_precision_improves_with_epsilon(self, skewed_data):
        exact = set(exact_top_k(skewed_data, k=10))

        def precision(eps: float) -> float:
            hits = [
                len(exact & set(em_top_k(skewed_data, eps, 10, 10, rng=s))) / 10
                for s in range(10)
            ]
            return float(np.mean(hits))

        assert precision(100.0) >= precision(0.05)

    def test_deterministic_given_seed(self, skewed_data):
        a = em_top_k(skewed_data, epsilon=1.0, l_top=10, k=4, rng=9)
        b = em_top_k(skewed_data, epsilon=1.0, l_top=10, k=4, rng=9)
        assert a == b

    def test_candidates_grow_from_selections(self, skewed_data):
        # With k > |I| the answer must include some multi-symbol string.
        out = em_top_k(skewed_data, epsilon=100.0, l_top=10, k=6, rng=3)
        assert any(len(s) > 1 for s in out)

    def test_invalid_parameters(self, skewed_data):
        with pytest.raises(ValueError):
            em_top_k(skewed_data, epsilon=0.0, l_top=10, k=3)
        with pytest.raises(ValueError):
            em_top_k(skewed_data, epsilon=1.0, l_top=10, k=0)
