"""Tests for the uniform grid substrate."""

import numpy as np
import pytest

from repro.baselines import UniformGrid
from repro.domains import Box
from repro.spatial import SpatialDataset


class TestConstruction:
    def test_histogram_counts_total(self, uniform_2d):
        grid = UniformGrid.histogram(uniform_2d, (8, 8))
        assert grid.counts.sum() == uniform_2d.n

    def test_histogram_cell_counts_exact(self):
        pts = np.array([[0.1, 0.1], [0.1, 0.2], [0.9, 0.9]])
        grid = UniformGrid.histogram(SpatialDataset(pts, Box.unit(2)), (2, 2))
        assert grid.counts[0, 0] == 2
        assert grid.counts[1, 1] == 1
        assert grid.counts[0, 1] == 0

    def test_shape_mismatch_rejected(self, uniform_2d):
        with pytest.raises(ValueError):
            UniformGrid.histogram(uniform_2d, (8, 8, 8))
        with pytest.raises(ValueError):
            UniformGrid(Box.unit(2), np.zeros(4))

    def test_edges(self):
        grid = UniformGrid(Box((0.0, 0.0), (4.0, 2.0)), np.zeros((4, 2)))
        np.testing.assert_allclose(grid.edges(0), [0, 1, 2, 3, 4])
        np.testing.assert_allclose(grid.edges(1), [0, 1, 2])

    def test_cell_box(self):
        grid = UniformGrid(Box.unit(2), np.zeros((2, 2)))
        box = grid.cell_box((1, 0))
        assert box.low == (0.5, 0.0)
        assert box.high == (1.0, 0.5)


class TestRangeCount:
    @pytest.fixture
    def grid(self) -> UniformGrid:
        counts = np.array([[1.0, 2.0], [3.0, 4.0]])
        return UniformGrid(Box.unit(2), counts)

    def test_full_domain(self, grid):
        assert grid.range_count(Box.unit(2)) == pytest.approx(10.0)

    def test_single_cell(self, grid):
        assert grid.range_count(Box((0.5, 0.0), (1.0, 0.5))) == pytest.approx(3.0)

    def test_fractional_cell(self, grid):
        # Left half of cell (0,0): half its count.
        assert grid.range_count(Box((0.0, 0.0), (0.25, 0.5))) == pytest.approx(0.5)

    def test_query_outside_domain_clipped(self, grid):
        assert grid.range_count(Box((2.0, 2.0), (3.0, 3.0))) == 0.0

    def test_query_partially_outside(self, grid):
        # Covers the whole grid plus slack: equals the total.
        big = Box((-1.0, -1.0), (2.0, 2.0))
        assert grid.range_count(big) == pytest.approx(10.0)

    def test_matches_exact_counts_on_aligned_queries(self, uniform_2d):
        grid = UniformGrid.histogram(uniform_2d, (16, 16))
        aligned = Box((0.25, 0.5), (0.75, 1.0))
        assert grid.range_count(aligned) == pytest.approx(
            uniform_2d.count_in(aligned)
        )

    def test_dimension_mismatch(self, grid):
        with pytest.raises(ValueError):
            grid.range_count(Box.unit(3))


class TestNoise:
    def test_with_noise_changes_counts(self, uniform_2d, rng):
        grid = UniformGrid.histogram(uniform_2d, (4, 4))
        noisy = grid.with_noise(1.0, rng)
        assert not np.allclose(noisy.counts, grid.counts)
        assert noisy.counts.shape == grid.counts.shape

    def test_noise_scale(self, rng):
        grid = UniformGrid(Box.unit(2), np.zeros((100, 100)))
        noisy = grid.with_noise(3.0, rng)
        assert noisy.counts.std() == pytest.approx(np.sqrt(2) * 3.0, rel=0.1)

    def test_invalid_scale(self, uniform_2d, rng):
        grid = UniformGrid.histogram(uniform_2d, (4, 4))
        with pytest.raises(ValueError):
            grid.with_noise(0.0, rng)
