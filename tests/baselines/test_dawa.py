"""Tests for the DAWA-lite baseline."""

import numpy as np
import pytest

from repro.baselines import dawa_histogram, private_partition
from repro.spatial import average_relative_error, generate_workload


class TestPrivatePartition:
    def test_boundaries_well_formed(self, rng):
        cells = rng.poisson(5.0, size=64).astype(float)
        bounds = private_partition(cells, epsilon=1.0, rng=rng)
        assert bounds[0] == 0
        assert bounds[-1] == 64
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_uniform_region_merged_at_high_epsilon(self):
        # A flat sequence should collapse into few large buckets: merging
        # costs nothing in deviation and saves per-bucket noise.
        cells = np.full(256, 10.0)
        bounds = private_partition(cells, epsilon=50.0, rng=0)
        assert len(bounds) - 1 <= 16

    def test_step_change_split_at_high_epsilon(self):
        # Two very different uniform halves: some boundary should fall at or
        # near the step, and the two sides should not be one giant bucket.
        cells = np.concatenate([np.zeros(128), np.full(128, 1000.0)])
        bounds = private_partition(cells, epsilon=50.0, rng=0)
        n_buckets = len(bounds) - 1
        assert n_buckets >= 2
        assert 128 in bounds

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            private_partition(np.array([]), epsilon=1.0)
        with pytest.raises(ValueError):
            private_partition(np.ones(4), epsilon=0.0)

    def test_deterministic_given_seed(self):
        cells = np.random.default_rng(3).poisson(3.0, size=128).astype(float)
        a = private_partition(cells, epsilon=1.0, rng=7)
        b = private_partition(cells, epsilon=1.0, rng=7)
        assert a == b


class TestDawaHistogram:
    def test_grid_shape_default(self, clustered_2d):
        hist = dawa_histogram(clustered_2d, epsilon=1.0, rng=0)
        assert hist.grid.shape == (128, 128)

    def test_total_count_near_n(self, clustered_2d):
        hist = dawa_histogram(clustered_2d, epsilon=1.0, rng=0)
        assert hist.grid.counts.sum() == pytest.approx(clustered_2d.n, rel=0.2)

    def test_bucket_count_reported(self, clustered_2d):
        hist = dawa_histogram(clustered_2d, epsilon=1.0, rng=0)
        assert hist.n_buckets == len(hist.boundaries) - 1
        assert 1 <= hist.n_buckets <= 128 * 128

    def test_adapts_fewer_buckets_than_cells_on_skewed_data(self, clustered_2d):
        # The point of DAWA: empty space merges into large buckets.
        hist = dawa_histogram(clustered_2d, epsilon=1.0, rng=1)
        assert hist.n_buckets < hist.grid.n_cells / 2

    def test_4d_uses_morton(self):
        from repro.domains import Box
        from repro.spatial import SpatialDataset

        pts = np.random.default_rng(0).uniform(0, 1, size=(2_000, 4)) * 0.999
        data = SpatialDataset(pts, Box.unit(4))
        hist = dawa_histogram(data, epsilon=1.0, rng=0)
        assert hist.grid.shape == (8, 8, 8, 8)

    def test_error_decreases_with_epsilon(self, clustered_2d):
        queries = generate_workload(clustered_2d.domain, "medium", 40, rng=2)
        errs = {}
        for eps in (0.05, 1.6):
            errs[eps] = np.mean(
                [
                    average_relative_error(
                        dawa_histogram(clustered_2d, eps, rng=s).range_count,
                        clustered_2d,
                        queries,
                    )
                    for s in range(3)
                ]
            )
        assert errs[1.6] < errs[0.05]

    def test_invalid_parameters(self, clustered_2d):
        with pytest.raises(ValueError):
            dawa_histogram(clustered_2d, epsilon=1.0, cells_per_dim=100)
        with pytest.raises(ValueError):
            dawa_histogram(clustered_2d, epsilon=1.0, rho=1.5)
