"""The HTTP JSON API: endpoints, error paths, and concurrent batches."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import SynopsisHTTPServer

from .conftest import QUERY_BOXES, QUERY_CODES, fit_release


@pytest.fixture
def server(store, uniform_2d, sequence_data):
    """A running threaded server over a store with one release per family."""
    spatial, _ = fit_release("privtree", uniform_2d, None)
    sequence, _ = fit_release("pst", None, sequence_data)
    ids = {
        "spatial": store.put(spatial, release_id="tree", dataset="uniform2d"),
        "sequence": store.put(sequence, release_id="pst", dataset="msnbc"),
    }
    httpd = SynopsisHTTPServer(("127.0.0.1", 0), store, cache_size=4, quiet=True)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd, ids, {"spatial": spatial, "sequence": sequence}
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)


def _get(httpd, path):
    port = httpd.server_address[1]
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(httpd, path, body):
    port = httpd.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _box_batch(boxes):
    return {"queries": [{"low": list(b.low), "high": list(b.high)} for b in boxes]}


class TestEndpoints:
    def test_healthz(self, server):
        httpd, _, _ = server
        status, body = _get(httpd, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["releases"] == 2

    def test_list_releases(self, server):
        httpd, ids, _ = server
        status, body = _get(httpd, "/releases")
        assert status == 200
        assert {e["id"] for e in body["releases"]} == set(ids.values())

    def test_get_single_manifest_entry(self, server):
        httpd, ids, _ = server
        status, body = _get(httpd, f"/releases/{ids['spatial']}")
        assert status == 200
        assert body["method"] == "privtree"
        assert body["dataset"] == "uniform2d"

    def test_spatial_query_batch_matches_in_process(self, server):
        httpd, ids, releases = server
        status, body = _post(
            httpd, f"/releases/{ids['spatial']}/query", _box_batch(QUERY_BOXES)
        )
        assert status == 200
        assert body["count"] == len(QUERY_BOXES)
        expected = releases["spatial"].query_many(QUERY_BOXES)
        assert np.array_equal(np.array(body["answers"]), expected)

    def test_sequence_query_batch_matches_in_process(self, server):
        httpd, ids, releases = server
        status, body = _post(
            httpd, f"/releases/{ids['sequence']}/query", {"queries": QUERY_CODES}
        )
        assert status == 200
        expected = [float(v) for v in releases["sequence"].query_many(QUERY_CODES)]
        assert body["answers"] == expected

    def test_typed_workload_matches_in_process_answer(self, server):
        """Typed wire queries (range + point + marginal) answer exactly the
        in-process `release.answer` floats; vector queries come as lists."""
        from repro.queries import Marginal1D, PointCount, RangeCount, Workload

        httpd, ids, releases = server
        release = releases["spatial"]
        workload = Workload.of(
            [RangeCount.of(b) for b in QUERY_BOXES]
            + [
                PointCount(point=(0.25, 0.75)),
                Marginal1D.regular(axis=0, n_bins=4, low=0.0, high=1.0),
            ]
        )
        status, body = _post(
            httpd,
            f"/releases/{ids['spatial']}/query",
            {"queries": [q.to_wire() for q in workload]},
        )
        assert status == 200
        assert body["count"] == len(workload)
        scalars, vector = body["answers"][:4], body["answers"][4]
        assert all(isinstance(v, float) for v in scalars)
        assert isinstance(vector, list) and len(vector) == 4
        flat = np.array(scalars + vector)
        assert np.array_equal(flat, release.answer(workload))

    def test_mixed_legacy_and_typed_batch_bit_identical(self, server):
        """A batch mixing raw boxes with typed documents answers exactly the
        in-process `answer` of the decoded workload — and the legacy slots
        exactly match the historical raw-batch answers."""
        from repro.queries import RangeCount, Workload

        httpd, ids, releases = server
        release = releases["spatial"]
        raw = [
            {"low": list(QUERY_BOXES[0].low), "high": list(QUERY_BOXES[0].high)},
            RangeCount.of(QUERY_BOXES[1]).to_wire(),
            {"low": list(QUERY_BOXES[2].low), "high": list(QUERY_BOXES[2].high)},
        ]
        status, body = _post(httpd, f"/releases/{ids['spatial']}/query", {"queries": raw})
        assert status == 200
        expected = release.answer(Workload.ranges(QUERY_BOXES))
        assert np.array_equal(np.array(body["answers"]), expected)
        legacy = release.query_many(QUERY_BOXES)
        assert np.array_equal(np.array(body["answers"]), legacy)

    def test_typed_sequence_workload_over_http(self, server):
        from repro.queries import NextSymbolDistribution, StringFrequency, Workload

        httpd, ids, releases = server
        release = releases["sequence"]
        workload = Workload.of(
            [
                StringFrequency(codes=(0, 1)),
                NextSymbolDistribution(context=(0,)),
            ]
        )
        status, body = _post(
            httpd,
            f"/releases/{ids['sequence']}/query",
            {"queries": [q.to_wire() for q in workload]},
        )
        assert status == 200
        flat = np.array([body["answers"][0]] + body["answers"][1])
        assert np.array_equal(flat, release.answer(workload))


class TestErrorPaths:
    def test_unknown_release_404(self, server):
        httpd, _, _ = server
        status, body = _get(httpd, "/releases/nope")
        assert status == 404 and "unknown release" in body["error"]
        status, body = _post(httpd, "/releases/nope/query", _box_batch(QUERY_BOXES))
        assert status == 404 and "unknown release" in body["error"]

    def test_unknown_endpoint_404(self, server):
        httpd, _, _ = server
        status, body = _get(httpd, "/synopses")
        assert status == 404

    def test_invalid_json_400(self, server):
        httpd, ids, _ = server
        port = httpd.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/releases/{ids['spatial']}/query",
            data=b"this is not json",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert "not valid JSON" in json.loads(excinfo.value.read())["error"]

    def test_body_without_queries_list_400(self, server):
        httpd, ids, _ = server
        status, body = _post(httpd, f"/releases/{ids['spatial']}/query", {"boxes": []})
        assert status == 400 and "queries" in body["error"]

    def test_string_sequence_query_400_not_char_codes(self, server):
        # "12" must not be silently decoded as the code list [1, 2].
        httpd, ids, _ = server
        status, body = _post(
            httpd, f"/releases/{ids['sequence']}/query", {"queries": ["12"]}
        )
        assert status == 400
        assert "query 0 is malformed" in body["error"]

    def test_corrupt_stored_artifact_is_500_not_400(self, server, store):
        # A manifest-listed release whose file is broken is the server's
        # fault: the client must see a 500 with a body, never a 400 or a
        # dropped connection.
        httpd, ids, _ = server
        (store.root / "releases" / f"{ids['spatial']}.json").write_text("garbage")
        (store.root / "releases" / f"{ids['spatial']}.bin").write_bytes(b"garbage")
        status, body = _post(
            httpd, f"/releases/{ids['spatial']}/query", _box_batch(QUERY_BOXES)
        )
        assert status == 500
        assert "failed to load" in body["error"]

    def test_malformed_query_400_names_index(self, server):
        httpd, ids, _ = server
        status, body = _post(
            httpd,
            f"/releases/{ids['spatial']}/query",
            {"queries": [{"low": [0.0, 0.0]}]},
        )
        assert status == 400
        assert "query 0 is malformed" in body["error"]
        assert body["query_index"] == 0

    def test_one_bad_query_in_batch_is_structured_400(self, server):
        """One malformed entry in a large batch: the 400 body names the
        offending index instead of failing opaquely."""
        httpd, ids, _ = server
        queries = _box_batch(QUERY_BOXES)["queries"] + [{"low": [0.1, 0.1]}]
        status, body = _post(
            httpd, f"/releases/{ids['spatial']}/query", {"queries": queries}
        )
        assert status == 400
        assert body["query_index"] == len(QUERY_BOXES)
        assert f"query {len(QUERY_BOXES)} is malformed" in body["error"]

    def test_validation_failure_is_structured_400(self, server):
        """A well-formed typed query that fails domain validation also
        reports its index (satellite: structured 400 on validation)."""
        from repro.queries import PointCount, RangeCount

        httpd, ids, _ = server
        queries = [
            RangeCount(low=(0.1, 0.1), high=(0.5, 0.5)).to_wire(),
            PointCount(point=(9.0, 9.0)).to_wire(),  # outside the unit domain
        ]
        status, body = _post(
            httpd, f"/releases/{ids['spatial']}/query", {"queries": queries}
        )
        assert status == 400
        assert body["query_index"] == 1
        assert "workload query 1" in body["error"]

    def test_unsupported_type_is_structured_400(self, server):
        from repro.queries import StringFrequency

        httpd, ids, _ = server
        status, body = _post(
            httpd,
            f"/releases/{ids['spatial']}/query",
            {"queries": [StringFrequency(codes=(0,)).to_wire()]},
        )
        assert status == 400
        assert body["query_index"] == 0
        assert "string_frequency" in body["error"]


class TestStatz:
    def test_statz_reports_pid_and_counters(self, server):
        import os

        httpd, ids, _ = server
        status, before = _get(httpd, "/statz")
        assert status == 200
        assert before["pid"] == os.getpid()
        # Documented semantics: a bare /statz is one process's view.
        assert before["scope"] == "process"
        _post(httpd, f"/releases/{ids['spatial']}/query", _box_batch(QUERY_BOXES))
        status, after = _get(httpd, "/statz")
        assert status == 200
        assert after["batches"] == before["batches"] + 1
        assert after["queries"] == before["queries"] + len(QUERY_BOXES)

    def test_statz_aggregate_without_slabs_falls_back_to_this_process(
        self, server
    ):
        import os

        httpd, ids, _ = server
        _post(httpd, f"/releases/{ids['spatial']}/query", _box_batch(QUERY_BOXES))
        status, body = _get(httpd, "/statz?aggregate=1")
        assert status == 200
        assert body["scope"] == "aggregate"
        assert body["pids"] == [os.getpid()]
        assert body["batches"] >= 1
        assert body["queries"] >= len(QUERY_BOXES)


@pytest.fixture
def slab_server(store, uniform_2d, tmp_path):
    """A server mirroring its metrics into a slab directory, alongside a
    fake second worker's slab — the single-process stand-in for the
    pre-forked fleet (each worker owns its per-pid slab files)."""
    from repro.telemetry import MetricsRegistry

    spatial, _ = fit_release("privtree", uniform_2d, None)
    release_id = store.put(spatial, release_id="tree", dataset="uniform2d")
    metrics_dir = tmp_path / "metrics"
    httpd = SynopsisHTTPServer(
        ("127.0.0.1", 0), store, cache_size=4, quiet=True,
        metrics_dir=str(metrics_dir),
    )
    other = MetricsRegistry()
    other.counter("repro_serve_batches_total").inc(7)
    other.counter("repro_serve_queries_total").inc(70)
    other.counter("repro_serve_cache_hits_total").inc(3)
    other.bind_slab(str(metrics_dir), pid=999999)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd, release_id
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)


def _get_text(httpd, path):
    port = httpd.server_address[1]
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()


class TestMetricsEndpoint:
    def test_metrics_exposition_aggregates_all_slabs(self, slab_server):
        httpd, release_id = slab_server
        for _ in range(2):
            _post(httpd, f"/releases/{release_id}/query", _box_batch(QUERY_BOXES))
        status, content_type, text = _get_text(httpd, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "# TYPE repro_serve_batches_total counter" in text
        # 2 batches served here + 7 from the fake worker's slab.
        assert "repro_serve_batches_total 9" in text
        assert (
            f"repro_serve_queries_total {2 * len(QUERY_BOXES) + 70}" in text
        )
        assert "repro_serve_request_latency_seconds_count 2" in text
        assert 'repro_serve_request_latency_seconds_bucket{le="+Inf"} 2' in text

    def test_statz_aggregate_sums_all_slabs(self, slab_server):
        import os

        httpd, release_id = slab_server
        _post(httpd, f"/releases/{release_id}/query", _box_batch(QUERY_BOXES))
        status, body = _get(httpd, "/statz?aggregate=1")
        assert status == 200
        assert body["scope"] == "aggregate"
        assert body["pids"] == sorted([os.getpid(), 999999])
        assert body["batches"] == 1 + 7
        assert body["queries"] == len(QUERY_BOXES) + 70
        assert body["hits"] >= 3
        # The bare view still answers per-process alongside.
        status, bare = _get(httpd, "/statz")
        assert bare["scope"] == "process"
        assert bare["batches"] == 1

    def test_metrics_without_slab_dir_serves_this_process(self, server):
        httpd, ids, _ = server
        _post(httpd, f"/releases/{ids['spatial']}/query", _box_batch(QUERY_BOXES))
        status, content_type, text = _get_text(httpd, "/metrics")
        assert status == 200
        assert "repro_serve_batches_total 1" in text
        assert f"repro_serve_queries_total {len(QUERY_BOXES)}" in text


def _post_binary(httpd, path, payload):
    from repro.queries import BINARY_WIRE_CONTENT_TYPE

    port = httpd.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=payload,
        headers={"Content-Type": BINARY_WIRE_CONTENT_TYPE},
    )
    try:
        with urllib.request.urlopen(request) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers.get("Content-Type"), exc.read()


class TestBinaryWire:
    def test_binary_batch_bit_identical_to_in_process_answer(self, server):
        from repro.queries import (
            BINARY_ANSWERS_CONTENT_TYPE,
            Workload,
            decode_binary_answers,
            encode_binary_workload,
        )

        httpd, ids, releases = server
        workload = Workload.ranges(QUERY_BOXES)
        status, content_type, body = _post_binary(
            httpd, f"/releases/{ids['spatial']}/query", encode_binary_workload(workload)
        )
        assert status == 200
        assert content_type == BINARY_ANSWERS_CONTENT_TYPE
        values, offsets = decode_binary_answers(body)
        assert np.array_equal(values, releases["spatial"].answer(workload))
        assert list(offsets) == list(range(len(QUERY_BOXES) + 1))

    def test_binary_mixed_batch_offsets_cover_vector_queries(self, server):
        from repro.queries import (
            Marginal1D,
            RangeCount,
            Workload,
            decode_binary_answers,
            encode_binary_workload,
        )

        httpd, ids, releases = server
        workload = Workload.of(
            [RangeCount.of(QUERY_BOXES[0])]
            + [Marginal1D.regular(axis=0, n_bins=4, low=0.0, high=1.0)]
        )
        status, _, body = _post_binary(
            httpd, f"/releases/{ids['spatial']}/query", encode_binary_workload(workload)
        )
        assert status == 200
        values, offsets = decode_binary_answers(body)
        assert list(offsets) == [0, 1, 5]
        assert np.array_equal(values, releases["spatial"].answer(workload))

    def test_malformed_binary_payload_is_json_400(self, server):
        httpd, ids, _ = server
        status, content_type, body = _post_binary(
            httpd, f"/releases/{ids['spatial']}/query", b"RPWB\x01\x00garbage"
        )
        assert status == 400
        assert content_type == "application/json"
        assert "truncated" in json.loads(body)["error"]

    def test_binary_validation_failure_names_query_index(self, server):
        import struct

        httpd, ids, _ = server
        # RangeCount construction rejects a degenerate extent up front, so
        # build the wire bytes by hand: query 1 has low >= high on axis 0.
        lows = np.array([[0.1, 0.1], [0.5, 0.5]], dtype="<f8")
        highs = np.array([[0.4, 0.4], [0.2, 0.9]], dtype="<f8")
        payload = (
            b"RPWB"
            + bytes([1, 0])
            + struct.pack("<H", 1)
            + struct.pack("<BBHI", 1, 0, 2, 2)
            + lows.tobytes()
            + highs.tobytes()
        )
        status, content_type, body = _post_binary(
            httpd, f"/releases/{ids['spatial']}/query", payload
        )
        assert status == 400
        assert content_type == "application/json"
        parsed = json.loads(body)
        assert parsed["query_index"] == 1
        assert "degenerate" in parsed["error"]


class TestKeepAlive:
    def test_connection_reused_across_requests(self, server):
        """HTTP/1.1 keep-alive: one TCP connection carries several requests
        (satellite: correct Content-Length + persistent connections)."""
        import http.client

        httpd, ids, _ = server
        port = httpd.server_address[1]
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            assert resp.status == 200
            assert resp.read()  # drain so the connection is reusable
            sock = conn.sock
            assert sock is not None
            body = json.dumps(_box_batch(QUERY_BOXES)).encode()
            for _ in range(3):
                conn.request(
                    "POST",
                    f"/releases/{ids['spatial']}/query",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                resp = conn.getresponse()
                assert resp.status == 200
                assert int(resp.headers["Content-Length"]) == len(resp.read())
            assert conn.sock is sock  # never re-dialed
        finally:
            conn.close()

    def test_error_responses_keep_connection_alive(self, server):
        import http.client

        httpd, ids, _ = server
        port = httpd.server_address[1]
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request("GET", "/releases/nope")
            resp = conn.getresponse()
            assert resp.status == 404
            resp.read()
            sock = conn.sock
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            assert resp.status == 200
            resp.read()
            assert conn.sock is sock
        finally:
            conn.close()


class TestListenSocket:
    def test_server_accepts_on_inherited_socket(self, store, uniform_2d):
        """The pre-fork path: a socket bound elsewhere is adopted as-is."""
        import socket

        spatial, _ = fit_release("privtree", uniform_2d, None)
        release_id = store.put(spatial, release_id="inh")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        httpd = SynopsisHTTPServer(
            listener.getsockname(),
            store,
            cache_size=2,
            quiet=True,
            listen_socket=listener,
        )
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            assert httpd.server_address[1] == listener.getsockname()[1]
            status, body = _post(
                httpd, f"/releases/{release_id}/query", _box_batch(QUERY_BOXES)
            )
            assert status == 200
            expected = spatial.query_many(QUERY_BOXES)
            assert np.array_equal(np.array(body["answers"]), expected)
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)

    def test_serve_rejects_nonpositive_workers(self, store):
        from repro.serve import serve

        with pytest.raises(ValueError):
            serve(store, "127.0.0.1", 0, workers=0)


class TestConcurrency:
    def test_concurrent_batches_all_exact(self, server):
        httpd, ids, releases = server
        from repro.spatial import generate_workload

        boxes = generate_workload(releases["spatial"].tree.root.box, "medium", 50, rng=7)
        expected = releases["spatial"].query_many(boxes)
        seq_expected = [float(v) for v in releases["sequence"].query_many(QUERY_CODES)]
        failures = []

        def spatial_worker():
            for _ in range(5):
                status, body = _post(
                    httpd, f"/releases/{ids['spatial']}/query", _box_batch(boxes)
                )
                if status != 200 or not np.array_equal(
                    np.array(body["answers"]), expected
                ):
                    failures.append(("spatial", status))

        def sequence_worker():
            for _ in range(5):
                status, body = _post(
                    httpd,
                    f"/releases/{ids['sequence']}/query",
                    {"queries": QUERY_CODES},
                )
                if status != 200 or body["answers"] != seq_expected:
                    failures.append(("sequence", status))

        threads = [threading.Thread(target=spatial_worker) for _ in range(4)] + [
            threading.Thread(target=sequence_worker) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not failures
        stats = httpd.service.stats()
        # 40 batches over 2 releases: everything after the 2 loads is a hit.
        assert stats["misses"] == 2
        assert stats["hits"] == 38
