"""ReleaseStore: put/get round-trips, the manifest, and crash safety."""

import json

import numpy as np
import pytest

from repro.serve import ReleaseStore, StoreError

from .conftest import FAST_PARAMS, QUERY_BOXES, QUERY_CODES, fit_release


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(FAST_PARAMS))
    def test_every_method_round_trips(self, name, store, uniform_2d, sequence_data):
        release, kind = fit_release(name, uniform_2d, sequence_data)
        release_id = store.put(release, dataset="test")
        restored = store.get(release_id)
        assert type(restored) is type(release)
        assert restored.epsilon_spent == release.epsilon_spent
        assert restored.size == release.size
        queries = QUERY_BOXES if kind == "spatial" else QUERY_CODES
        np.testing.assert_allclose(
            restored.query_many(queries),
            release.query_many(queries),
            rtol=1e-12,
            atol=1e-9,
        )

    def test_privtree_answers_bit_identical(self, store, uniform_2d):
        # The store is the wire format: for the tree synopses the round
        # trip must not change a single float.
        release, _ = fit_release("privtree", uniform_2d, None)
        restored = store.get(store.put(release))
        assert np.array_equal(
            restored.query_many(QUERY_BOXES), release.query_many(QUERY_BOXES)
        )


class TestManifest:
    def test_entry_records_provenance(self, store, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        release_id = store.put(
            release, dataset="uniform2d(n=5000)", params={"epsilon": 1.0}
        )
        entry = store.manifest_entry(release_id)
        assert entry["method"] == "privtree"
        assert entry["kind"] == "spatial-tree"
        assert entry["epsilon_spent"] == 1.0
        assert entry["dataset"] == "uniform2d(n=5000)"
        assert entry["params"] == {"epsilon": 1.0}
        assert entry["created_at"].endswith("Z")
        assert entry["size"] == release.size

    def test_default_id_is_content_addressed(self, store, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        first = store.put(release)
        second = store.put(release)  # identical artifact -> idempotent
        assert first == second
        assert len(store) == 1
        assert first.startswith("privtree-")

    def test_explicit_id_and_listing(self, store, uniform_2d):
        release, _ = fit_release("ug", uniform_2d, None)
        store.put(release, release_id="grid-a")
        store.put(release, release_id="grid-b")
        assert store.ids() == ["grid-a", "grid-b"]
        assert [e["id"] for e in store.entries()] == ["grid-a", "grid-b"]
        assert "grid-a" in store and "nope" not in store

    def test_invalid_id_rejected(self, store, uniform_2d):
        release, _ = fit_release("ug", uniform_2d, None)
        for bad in ("../escape", "a/b", "", ".hidden", "x" * 200):
            with pytest.raises(ValueError, match="invalid release id"):
                store.put(release, release_id=bad)

    def test_unknown_id_raises_store_error(self, store):
        with pytest.raises(StoreError, match="unknown release id"):
            store.get("missing")
        with pytest.raises(StoreError):
            store.manifest_entry("missing")

    def test_manifest_survives_reopen(self, tmp_path, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        release_id = ReleaseStore(tmp_path / "s").put(release, dataset="d")
        reopened = ReleaseStore(tmp_path / "s")
        assert reopened.ids() == [release_id]
        assert reopened.get(release_id).size == release.size

    def test_read_only_open_requires_existing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="does not exist"):
            ReleaseStore(tmp_path / "nowhere", create=False)
        assert not (tmp_path / "nowhere").exists()
        # An existing store opens read-only fine.
        ReleaseStore(tmp_path / "real")
        assert ReleaseStore(tmp_path / "real", create=False).ids() == []

    def test_foreign_manifest_rejected(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / "manifest.json").write_text(json.dumps({"format": "something"}))
        with pytest.raises(ValueError, match="not a release-store manifest"):
            ReleaseStore(root).ids()

    def test_latest_picks_the_newest_epoch_id(self, store, uniform_2d):
        # Zero-padded ids make lexicographic order epoch order, so `latest`
        # is the serve layer's "as of now" over a continual-release series.
        release, _ = fit_release("ug", uniform_2d, None)
        for epoch in (0, 2, 10):
            store.put(release, release_id=f"epoch-{epoch:04d}")
        store.put(release, release_id="other-9999")
        assert store.latest("epoch-") == "epoch-0010"
        assert store.latest("other-") == "other-9999"

    def test_latest_without_match_raises(self, store, uniform_2d):
        with pytest.raises(StoreError, match="no release id starts with"):
            store.latest("epoch-")
        release, _ = fit_release("ug", uniform_2d, None)
        store.put(release, release_id="grid-a")
        with pytest.raises(StoreError, match="grid-a"):
            store.latest("epoch-")


class TestCrashSafety:
    def test_failed_write_preserves_previous_artifact(
        self, store, uniform_2d, monkeypatch
    ):
        # A crash mid-write must leave the previously published document
        # intact: the new bytes only land via os.replace.
        release, _ = fit_release("privtree", uniform_2d, None)
        release_id = store.put(release, release_id="synopsis")
        before = (store.root / "releases" / "synopsis.json").read_text()

        def exploding_replace(src, dst):
            raise OSError("disk full")

        other, _ = fit_release("privtree", uniform_2d, None, rng=9)
        monkeypatch.setattr("repro._io.os.replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            store.put(other, release_id="synopsis")
        monkeypatch.undo()

        assert (store.root / "releases" / "synopsis.json").read_text() == before
        assert not list((store.root / "releases").glob("*.tmp"))
        restored = store.get(release_id)
        assert restored.size == release.size
