"""SynopsisService: lazy loading, LRU bounds, and batch dispatch."""

import numpy as np
import pytest

from repro.serve import ReleaseStore, StoreError, SynopsisService

from .conftest import QUERY_BOXES, QUERY_CODES, fit_release


class TestCacheBehaviour:
    def test_first_access_misses_then_hits(self, spatial_store):
        store, ids = spatial_store
        service = SynopsisService(store, cache_size=4)
        service.query_many(ids[0], QUERY_BOXES)
        service.query_many(ids[0], QUERY_BOXES)
        assert service.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "resident": 1,
            "batches": 0,  # query_many is the in-process legacy surface;
            "queries": 0,  # batch counters track the wire paths
        }

    def test_lru_eviction_and_reload(self, spatial_store):
        store, ids = spatial_store
        service = SynopsisService(store, cache_size=2)
        answers = {i: service.query_many(i, QUERY_BOXES) for i in ids}
        # Three loads through a 2-slot cache: the first id was evicted.
        assert service.stats()["evictions"] == 1
        assert service.cached_ids() == [ids[1], ids[2]]
        # Touching the evicted id is a fresh miss, with identical answers.
        again = service.query_many(ids[0], QUERY_BOXES)
        assert np.array_equal(again, answers[ids[0]])
        assert service.stats()["misses"] == 4
        assert service.cached_ids() == [ids[2], ids[0]]

    def test_recency_updates_on_hit(self, spatial_store):
        store, ids = spatial_store
        service = SynopsisService(store, cache_size=2)
        service.release(ids[0])
        service.release(ids[1])
        service.release(ids[0])  # refresh id 0 -> id 1 becomes LRU
        service.release(ids[2])
        assert service.cached_ids() == [ids[0], ids[2]]

    def test_cache_size_zero_disables_caching(self, spatial_store):
        store, ids = spatial_store
        service = SynopsisService(store, cache_size=0)
        service.query_many(ids[0], QUERY_BOXES)
        service.query_many(ids[0], QUERY_BOXES)
        assert service.stats() == {
            "hits": 0,
            "misses": 2,
            "evictions": 0,
            "resident": 0,
            "batches": 0,
            "queries": 0,
        }

    def test_negative_cache_size_rejected(self, store):
        with pytest.raises(ValueError, match="cache_size"):
            SynopsisService(store, cache_size=-1)

    def test_unknown_id_propagates(self, store):
        with pytest.raises(StoreError):
            SynopsisService(store).query_many("nope", QUERY_BOXES)

    def test_unknown_ids_do_not_grow_guard_table(self, store):
        # Untrusted clients invent ids freely; a failed lookup must not
        # leave a permanent per-id lock behind.
        service = SynopsisService(store)
        for i in range(5):
            with pytest.raises(StoreError):
                service.release(f"bogus-{i}")
        assert len(service._load_locks) == 0


class TestDispatch:
    def test_spatial_answers_match_release(self, store, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        release_id = store.put(release)
        service = SynopsisService(store)
        assert np.array_equal(
            service.query_many(release_id, QUERY_BOXES),
            release.query_many(QUERY_BOXES),
        )

    def test_sequence_answers_match_release(self, store, sequence_data):
        release, _ = fit_release("pst", None, sequence_data)
        release_id = store.put(release)
        service = SynopsisService(store)
        np.testing.assert_allclose(
            service.query_many(release_id, QUERY_CODES),
            release.query_many(QUERY_CODES),
            rtol=1e-12,
        )

    def test_answer_batch_decodes_json_boxes(self, store, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        release_id = store.put(release)
        service = SynopsisService(store)
        raw = [{"low": list(b.low), "high": list(b.high)} for b in QUERY_BOXES]
        response = service.answer_batch(release_id, raw)
        assert response["answers"] == [
            float(v) for v in release.query_many(QUERY_BOXES)
        ]
        assert response["id"] == release_id
        assert response["method"] == "privtree"
        assert response["count"] == len(QUERY_BOXES)

    def test_answer_batch_decodes_json_codes(self, store, sequence_data):
        release, _ = fit_release("pst", None, sequence_data)
        release_id = store.put(release)
        service = SynopsisService(store)
        assert service.answer_batch(release_id, QUERY_CODES)["answers"] == [
            float(v) for v in release.query_many(QUERY_CODES)
        ]

    def test_mixed_legacy_typed_batch_bit_identical_to_answer(
        self, store, uniform_2d
    ):
        """A batch mixing raw boxes with typed wire documents answers
        bit-identically to in-process `release.answer` on the same
        workload — one dispatch, same floats, scalars as bare floats."""
        from repro.queries import Marginal1D, PointCount, RangeCount, Workload

        release, _ = fit_release("privtree", uniform_2d, None)
        release_id = store.put(release)
        service = SynopsisService(store)
        raw = [
            {"low": list(QUERY_BOXES[0].low), "high": list(QUERY_BOXES[0].high)},
            RangeCount.of(QUERY_BOXES[1]).to_wire(),
            PointCount(point=(0.5, 0.5)).to_wire(),
            Marginal1D.regular(axis=1, n_bins=3, low=0.0, high=1.0).to_wire(),
            {"low": list(QUERY_BOXES[2].low), "high": list(QUERY_BOXES[2].high)},
        ]
        response = service.answer_batch(release_id, raw)
        workload = Workload.of(
            [
                RangeCount.of(QUERY_BOXES[0]),
                RangeCount.of(QUERY_BOXES[1]),
                PointCount(point=(0.5, 0.5)),
                Marginal1D.regular(axis=1, n_bins=3, low=0.0, high=1.0),
                RangeCount.of(QUERY_BOXES[2]),
            ]
        )
        expected = release.answer(workload)
        flat = np.array(
            [
                v
                for entry in response["answers"]
                for v in (entry if isinstance(entry, list) else [entry])
            ]
        )
        assert np.array_equal(flat, expected)
        # Legacy entries stay bare floats, bit-identical to the old wire.
        assert response["answers"][0] == float(release.query_many([QUERY_BOXES[0]])[0])
        assert isinstance(response["answers"][3], list)
        assert response["count"] == 5

    def test_malformed_query_names_index(self, store, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        release_id = store.put(release)
        service = SynopsisService(store)
        good = {"low": [0.0, 0.0], "high": [0.5, 0.5]}
        with pytest.raises(ValueError, match="query 1 is malformed"):
            service.answer_batch(release_id, [good, {"low": [0.0, 0.0]}])
        with pytest.raises(ValueError, match="boxes"):
            service.answer_batch(release_id, [[0, 1]])

    def test_out_of_alphabet_legacy_codes_fail_with_index(
        self, store, sequence_data
    ):
        """Intentional tightening of the legacy wire: an out-of-alphabet
        code now fails validation with the offending index for every
        sequence release (previously the n-gram engine silently answered
        0.0 while the PST raised an unindexed error)."""
        from repro.queries import QueryValidationError

        release, _ = fit_release("ngram", None, sequence_data)
        release_id = store.put(release)
        service = SynopsisService(store)
        size = release.query_domain.size
        with pytest.raises(QueryValidationError, match="workload query 1") as exc:
            service.answer_batch(release_id, [[0], [size]])
        assert exc.value.index == 1

    def test_concurrent_cold_loads_count_one_miss(self, spatial_store):
        # N threads racing on the same cold id: one load, the rest wait on
        # the per-id guard and resolve as hits.
        import threading

        store, ids = spatial_store
        service = SynopsisService(store, cache_size=4)
        results = []

        def worker():
            results.append(service.query_many(ids[0], QUERY_BOXES))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(results) == 6
        assert all(np.array_equal(r, results[0]) for r in results)
        stats = service.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 5

    def test_warm_compiles_flat_engine_on_load(self, store, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        release_id = store.put(release)
        service = SynopsisService(store)
        loaded = service.release(release_id)
        # The cached tree already carries its compiled flat engine.
        assert loaded.tree._flat is not None


class TestBinaryBatch:
    def test_binary_answers_bit_identical_and_counted(self, store, uniform_2d):
        from repro.queries import (
            Workload,
            decode_binary_answers,
            encode_binary_workload,
        )

        release, _ = fit_release("privtree", uniform_2d, None)
        release_id = store.put(release)
        service = SynopsisService(store)
        workload = Workload.ranges(QUERY_BOXES)
        payload = service.answer_batch_binary(
            release_id, encode_binary_workload(workload)
        )
        values, offsets = decode_binary_answers(payload)
        assert np.array_equal(values, release.answer(workload))
        assert offsets[-1] == len(values)
        stats = service.stats()
        assert stats["batches"] == 1
        assert stats["queries"] == len(QUERY_BOXES)

    def test_batch_counters_survive_concurrent_writers(self, store, uniform_2d):
        """The satellite contract: counters never lose increments under
        concurrent batches (plain `+=` on ints would)."""
        import threading

        release, _ = fit_release("privtree", uniform_2d, None)
        release_id = store.put(release)
        service = SynopsisService(store)
        raw = [{"low": list(b.low), "high": list(b.high)} for b in QUERY_BOXES]
        n_threads, n_batches = 8, 25

        def worker():
            for _ in range(n_batches):
                service.answer_batch(release_id, raw)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        stats = service.stats()
        assert stats["batches"] == n_threads * n_batches
        assert stats["queries"] == n_threads * n_batches * len(QUERY_BOXES)
