"""Shared fixtures for the serving subsystem tests."""

from __future__ import annotations

import pytest

from repro.api import from_spec
from repro.datasets import msnbclike
from repro.domains import Box
from repro.serve import ReleaseStore

from ..api.conftest import FAST_PARAMS

QUERY_BOXES = [
    Box((0.1, 0.1), (0.4, 0.5)),
    Box((0.0, 0.0), (1.0, 1.0)),
    Box((0.55, 0.2), (0.85, 0.95)),
]

QUERY_CODES = [[0], [1, 2], [0, 1, 0]]


def fit_release(name, uniform_2d, sequence_data, rng=0):
    """One fitted release per registry method, at the fast test configs."""
    kind, params = FAST_PARAMS[name]
    dataset = uniform_2d if kind == "spatial" else sequence_data
    return from_spec(name, epsilon=1.0, **params).fit(dataset, rng=rng), kind


@pytest.fixture(scope="module")
def sequence_data():
    """A small browsing-history analogue (same config as the API tests)."""
    return msnbclike(800, rng=3)


@pytest.fixture
def store(tmp_path) -> ReleaseStore:
    """An empty store in a fresh temp directory."""
    return ReleaseStore(tmp_path / "store")


@pytest.fixture
def spatial_store(tmp_path, uniform_2d):
    """A store holding three distinct privtree releases (for LRU tests)."""
    store = ReleaseStore(tmp_path / "store")
    ids = []
    for seed in range(3):
        release, _ = fit_release("privtree", uniform_2d, None, rng=seed)
        ids.append(store.put(release, release_id=f"privtree-seed{seed}"))
    return store, ids
