"""The v2 binary artifact codec and its integration into the store."""

import json

import numpy as np
import pytest

from repro.api import release_from_json
from repro.serve import (
    ArtifactError,
    ArtifactIntegrityError,
    ReleaseStore,
    artifact_info,
    read_artifact,
    write_artifact,
)

from ..api.conftest import FAST_PARAMS
from .conftest import QUERY_BOXES, QUERY_CODES, fit_release


def _answers(release, kind):
    if kind == "spatial":
        return release.query_many(QUERY_BOXES)
    return release.query_many(QUERY_CODES)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(FAST_PARAMS))
    def test_every_method_round_trips_bit_identically(
        self, name, tmp_path, uniform_2d, sequence_data
    ):
        release, kind = fit_release(name, uniform_2d, sequence_data)
        path = tmp_path / "release.bin"
        n_bytes = write_artifact(release, path)
        assert n_bytes == path.stat().st_size
        restored = read_artifact(path)
        assert type(restored) is type(release)
        assert restored.method == release.method
        assert restored.epsilon_spent == release.epsilon_spent
        assert np.array_equal(_answers(restored, kind), _answers(release, kind))

    @pytest.mark.parametrize("name", ["privtree", "pst", "ngram", "ag"])
    def test_mmap_answers_match_json_loaded_answers(
        self, name, tmp_path, uniform_2d, sequence_data
    ):
        release, kind = fit_release(name, uniform_2d, sequence_data)
        path = tmp_path / "release.bin"
        write_artifact(release, path)
        from_binary = read_artifact(path)
        from_json = release_from_json(json.loads(json.dumps(release.to_json())))
        assert np.array_equal(
            _answers(from_binary, kind), _answers(from_json, kind)
        )

    def test_json_envelope_survives_binary_round_trip(self, tmp_path, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        path = tmp_path / "release.bin"
        write_artifact(release, path)
        assert read_artifact(path).to_json() == release.to_json()

    def test_artifact_info_reads_header_only(self, tmp_path, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        path = tmp_path / "release.bin"
        n_bytes = write_artifact(release, path)
        info = artifact_info(path)
        assert info["format"] == "repro.release_artifact"
        assert info["version"] == 2
        assert info["kind"] == "spatial-tree"
        assert info["method"] == "privtree"
        assert info["bytes"] == n_bytes
        assert "counts" in info["segments"]


class TestIntegrity:
    @pytest.fixture
    def artifact(self, tmp_path, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        path = tmp_path / "release.bin"
        write_artifact(release, path)
        return path

    def test_truncated_file_rejected(self, artifact):
        data = artifact.read_bytes()
        artifact.write_bytes(data[: len(data) // 2])
        with pytest.raises(ArtifactError):
            read_artifact(artifact)

    def test_bit_flip_in_payload_rejected(self, artifact):
        data = bytearray(artifact.read_bytes())
        data[len(data) // 2] ^= 0x01
        artifact.write_bytes(bytes(data))
        with pytest.raises(ArtifactIntegrityError):
            read_artifact(artifact)

    def test_bit_flip_near_end_rejected(self, artifact):
        data = bytearray(artifact.read_bytes())
        data[-60] ^= 0x80  # inside the last segment, before the footer
        artifact.write_bytes(bytes(data))
        with pytest.raises(ArtifactIntegrityError):
            read_artifact(artifact)

    def test_wrong_magic_rejected(self, artifact):
        data = bytearray(artifact.read_bytes())
        data[:8] = b"NOTREPRO"
        artifact.write_bytes(bytes(data))
        with pytest.raises(ArtifactError):
            read_artifact(artifact)

    def test_integrity_error_is_artifact_and_value_error(self):
        assert issubclass(ArtifactIntegrityError, ArtifactError)
        assert issubclass(ArtifactError, ValueError)


class TestStoreIntegration:
    def test_put_writes_both_forms(self, store, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        release_id = store.put(release, release_id="both")
        assert (store.root / "releases" / "both.json").exists()
        assert (store.root / "releases" / "both.bin").exists()
        entry = store.manifest_entry(release_id)
        assert entry["artifact_format"] == "binary-v2"
        assert (
            entry["artifact_bytes"]
            == (store.root / "releases" / "both.bin").stat().st_size
        )

    def test_get_prefers_binary_artifact(self, store, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        store.put(release, release_id="pref")
        # Corrupt the JSON envelope: a v2-preferring get never parses it.
        (store.root / "releases" / "pref.json").write_text("{not json")
        restored = store.get("pref")
        assert np.array_equal(
            _answers(restored, "spatial"), _answers(release, "spatial")
        )

    def test_v1_only_store_still_loads(self, store, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        store.put(release, release_id="legacy")
        (store.root / "releases" / "legacy.bin").unlink()
        restored = store.get("legacy")
        assert np.array_equal(
            _answers(restored, "spatial"), _answers(release, "spatial")
        )

    def test_migrate_upgrades_v1_entries(self, store, uniform_2d, sequence_data):
        spatial, _ = fit_release("privtree", uniform_2d, None)
        sequence, _ = fit_release("pst", None, sequence_data)
        store.put(spatial, release_id="a")
        store.put(sequence, release_id="b")
        # Simulate a pre-v2 store: drop the binaries and the manifest fields.
        for release_id in ("a", "b"):
            (store.root / "releases" / f"{release_id}.bin").unlink()
        manifest_path = store.root / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        for entry in manifest["releases"].values():
            for key in ("artifact_format", "artifact_bytes", "binary_path"):
                entry.pop(key, None)
        manifest_path.write_text(json.dumps(manifest))

        assert sorted(store.migrate()) == ["a", "b"]
        for release_id in ("a", "b"):
            assert (store.root / "releases" / f"{release_id}.bin").exists()
            assert (
                store.manifest_entry(release_id)["artifact_format"] == "binary-v2"
            )
        # Idempotent: a second run has nothing left to upgrade.
        assert store.migrate() == []

    def test_corrupt_binary_fails_load_loudly(self, store, uniform_2d):
        release, _ = fit_release("privtree", uniform_2d, None)
        store.put(release, release_id="bad")
        path = store.root / "releases" / "bad.bin"
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x04
        path.write_bytes(bytes(data))
        with pytest.raises(ArtifactIntegrityError):
            store.get("bad")
