"""Tests for the geometric mechanism."""

import math

import numpy as np
import pytest

from repro.mechanisms import geometric_mechanism, geometric_noise, geometric_pmf


class TestPmf:
    def test_normalizes(self):
        eps = 0.7
        total = sum(geometric_pmf(k, eps) for k in range(-200, 201))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_symmetric(self):
        assert geometric_pmf(3, 1.0) == pytest.approx(geometric_pmf(-3, 1.0))

    def test_dp_ratio_is_exactly_exp_eps(self):
        # Adjacent outputs differ by exactly e^epsilon in probability: the
        # defining property of the mechanism.
        eps = 0.9
        for k in (0, 1, 5):
            ratio = geometric_pmf(k, eps) / geometric_pmf(k + 1, eps)
            assert ratio == pytest.approx(math.exp(eps))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            geometric_pmf(0, 0.0)
        with pytest.raises(ValueError):
            geometric_pmf(0, 1.0, sensitivity=0.0)


class TestSampling:
    def test_scalar_is_int(self):
        assert isinstance(geometric_noise(1.0, rng=0), int)

    def test_array_is_integer_typed(self):
        noise = geometric_noise(1.0, size=(10,), rng=0)
        assert np.issubdtype(noise.dtype, np.integer)

    def test_empirical_distribution_matches_pmf(self):
        eps = 0.8
        draws = geometric_noise(eps, size=200_000, rng=1)
        for k in (0, 1, -2):
            empirical = float(np.mean(draws == k))
            assert empirical == pytest.approx(geometric_pmf(k, eps), abs=0.01)

    def test_zero_mean(self):
        draws = geometric_noise(0.5, size=100_000, rng=2)
        assert abs(draws.mean()) < 0.1

    def test_tiny_epsilon_pmf_stays_positive(self):
        # The pmf must agree with the sampler about which budgets are
        # representable: positive mass, not an all-zero "distribution".
        assert geometric_pmf(0, 1e-18) > 0.0
        assert geometric_pmf(0, 1e-18) == pytest.approx(5e-19)

    def test_tiny_epsilon_does_not_underflow(self):
        # Regression: p = 1 - e^(-eps) rounded to 0.0 below eps ~ 1e-16 and
        # numpy raised an opaque ValueError from gen.geometric(0.0).  The
        # expm1-based path keeps p positive all the way down.
        assert isinstance(geometric_noise(1e-18, rng=0), int)
        draws = geometric_noise(1e-18, size=(4,), rng=0)
        assert draws.shape == (4,)

    def test_true_underflow_raises_clearly(self):
        # eps/sensitivity underflows to exactly 0.0 in double precision:
        # the error must name the cause, not surface from numpy internals.
        with pytest.raises(ValueError, match="underflow"):
            geometric_noise(1e-300, sensitivity=1e300, rng=0)


class TestMechanism:
    def test_integer_release(self):
        out = geometric_mechanism(42, epsilon=1.0, rng=0)
        assert isinstance(out, int)

    def test_array_release(self):
        counts = np.array([10, 20, 30])
        out = geometric_mechanism(counts, epsilon=1.0, rng=0)
        assert out.shape == counts.shape
        assert np.issubdtype(out.dtype, np.integer)

    def test_rejects_float_counts(self):
        with pytest.raises(ValueError):
            geometric_mechanism(np.array([1.5]), epsilon=1.0, rng=0)

    def test_more_budget_less_noise(self):
        spread = {}
        for eps in (0.1, 4.0):
            outs = geometric_mechanism(
                np.zeros(20_000, dtype=int), epsilon=eps, rng=3
            )
            spread[eps] = outs.std()
        assert spread[4.0] < spread[0.1]
