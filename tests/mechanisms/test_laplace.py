"""Tests for the Laplace distribution utilities and mechanism."""

import math

import numpy as np
import pytest

from repro.mechanisms import (
    laplace_cdf,
    laplace_logcdf,
    laplace_logpdf,
    laplace_logsf,
    laplace_mechanism,
    laplace_noise,
    laplace_pdf,
    laplace_sf,
)


class TestDistribution:
    def test_pdf_peak_at_loc(self):
        assert laplace_pdf(3.0, scale=2.0, loc=3.0) == pytest.approx(1.0 / 4.0)

    def test_pdf_symmetry(self):
        assert laplace_pdf(1.5, 1.0) == pytest.approx(laplace_pdf(-1.5, 1.0))

    def test_cdf_at_loc_is_half(self):
        assert laplace_cdf(0.0, scale=1.0) == pytest.approx(0.5)
        assert laplace_cdf(7.0, scale=3.0, loc=7.0) == pytest.approx(0.5)

    def test_cdf_sf_complementary(self):
        for x in (-5.0, -0.3, 0.0, 0.3, 5.0):
            assert laplace_cdf(x, 1.3) + laplace_sf(x, 1.3) == pytest.approx(1.0)

    def test_cdf_monotone(self):
        xs = np.linspace(-10, 10, 101)
        vals = [laplace_cdf(x, 0.7) for x in xs]
        assert all(a <= b for a, b in zip(vals, vals[1:]))

    def test_known_tail_value(self):
        # Pr[Lap(lam) > lam * ln(beta)] = 1/(2*beta): the Lemma 3.2 quantity.
        beta = 4.0
        lam = 1.7
        assert laplace_sf(lam * math.log(beta), lam) == pytest.approx(1 / (2 * beta))

    def test_log_versions_match_linear(self):
        for x in (-2.0, 0.0, 0.5, 4.0):
            assert laplace_logcdf(x, 1.1) == pytest.approx(math.log(laplace_cdf(x, 1.1)))
            assert laplace_logsf(x, 1.1) == pytest.approx(math.log(laplace_sf(x, 1.1)))
            assert laplace_logpdf(x, 1.1) == pytest.approx(math.log(laplace_pdf(x, 1.1)))

    def test_logsf_deep_tail_no_underflow(self):
        # exp(-2000) underflows to 0 in linear space; log-space must survive.
        val = laplace_logsf(2000.0, 1.0)
        assert val == pytest.approx(math.log(0.5) - 2000.0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            laplace_pdf(0.0, scale=0.0)
        with pytest.raises(ValueError):
            laplace_sf(0.0, scale=-1.0)


class TestSampling:
    def test_scalar_draw(self, rng):
        value = laplace_noise(1.0, rng=rng)
        assert isinstance(value, float)

    def test_array_shape(self, rng):
        arr = laplace_noise(2.0, size=(3, 4), rng=rng)
        assert arr.shape == (3, 4)

    def test_empirical_mean_and_scale(self, rng):
        draws = laplace_noise(2.0, size=200_000, rng=rng)
        assert abs(draws.mean()) < 0.05
        # Var of Lap(b) is 2 b^2 = 8.
        assert draws.var() == pytest.approx(8.0, rel=0.05)

    def test_deterministic_given_seed(self):
        a = laplace_noise(1.0, size=5, rng=42)
        b = laplace_noise(1.0, size=5, rng=42)
        np.testing.assert_allclose(a, b)


class TestMechanism:
    def test_scalar_release(self, rng):
        out = laplace_mechanism(10.0, sensitivity=1.0, epsilon=0.5, rng=rng)
        assert isinstance(out, float)

    def test_vector_release_shape(self, rng):
        out = laplace_mechanism([1.0, 2.0, 3.0], sensitivity=1.0, epsilon=1.0, rng=rng)
        assert out.shape == (3,)

    def test_noise_scale_matches_sensitivity_over_epsilon(self, rng):
        outs = laplace_mechanism(
            np.zeros(100_000), sensitivity=2.0, epsilon=0.5, rng=rng
        )
        # scale = 4 => variance 32.
        assert outs.var() == pytest.approx(32.0, rel=0.05)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            laplace_mechanism(1.0, sensitivity=1.0, epsilon=0.0)
        with pytest.raises(ValueError):
            laplace_mechanism(1.0, sensitivity=0.0, epsilon=1.0)
