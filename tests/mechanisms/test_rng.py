"""Tests for RNG plumbing."""

import numpy as np

from repro.mechanisms import ensure_rng, spawn


class TestEnsureRng:
    def test_seed_gives_generator(self):
        gen = ensure_rng(123)
        assert isinstance(gen, np.random.Generator)

    def test_same_seed_same_stream(self):
        assert ensure_rng(5).random() == ensure_rng(5).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(ensure_rng(1), 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn(ensure_rng(1), 3)
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_spawn_is_reproducible(self):
        a = [g.random() for g in spawn(ensure_rng(9), 3)]
        b = [g.random() for g in spawn(ensure_rng(9), 3)]
        assert a == b
