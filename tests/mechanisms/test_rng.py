"""Tests for RNG plumbing."""

import numpy as np

from repro.mechanisms import ensure_rng, spawn, spawn_streams


class TestEnsureRng:
    def test_seed_gives_generator(self):
        gen = ensure_rng(123)
        assert isinstance(gen, np.random.Generator)

    def test_same_seed_same_stream(self):
        assert ensure_rng(5).random() == ensure_rng(5).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(ensure_rng(1), 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn(ensure_rng(1), 3)
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_spawn_is_reproducible(self):
        a = [g.random() for g in spawn(ensure_rng(9), 3)]
        b = [g.random() for g in spawn(ensure_rng(9), 3)]
        assert a == b


class TestSpawnStreams:
    def test_derivation_is_pinned(self):
        # The federated blinding scheme relies on every party deriving the
        # exact same pair streams from a shared seed.  Pin the derivation to
        # constants so a numpy upgrade or a refactor that silently changes
        # it (and would desynchronize deployed shards) fails loudly.
        first = [
            int(s.integers(0, 1 << 64, dtype=np.uint64))
            for s in spawn_streams(0, 3)
        ]
        assert first == [
            17394127715520444142,
            12492077108140196533,
            15463373330740448354,
        ]

    def test_tuple_seeds_are_pinned(self):
        # EpochLedger keys per-epoch mask streams with (seed, epoch) tuples.
        first = [
            int(s.integers(0, 1 << 64, dtype=np.uint64))
            for s in spawn_streams((7, 3), 3)
        ]
        assert first == [
            5846663287755730008,
            10645348183295220394,
            14009026905839538078,
        ]

    def test_repeated_calls_reproduce_identical_streams(self):
        # Unlike SeedSequence.spawn (which mutates its counter), every call
        # re-derives from scratch: two parties calling at different times
        # still agree.
        a = [g.random() for g in spawn_streams(42, 4)]
        b = [g.random() for g in spawn_streams(42, 4)]
        assert a == b

    def test_child_i_does_not_depend_on_k(self):
        wide = [g.random() for g in spawn_streams(11, 6)]
        narrow = [g.random() for g in spawn_streams(11, 2)]
        assert wide[:2] == narrow

    def test_accepts_seed_sequence(self):
        root = np.random.SeedSequence(5)
        a = [g.random() for g in spawn_streams(root, 2)]
        b = [g.random() for g in spawn_streams(np.random.SeedSequence(5), 2)]
        assert a == b
        # The caller's SeedSequence is left untouched (no counter advance).
        assert root.n_children_spawned == 0

    def test_distinct_seeds_distinct_streams(self):
        a = spawn_streams(1, 1)[0].random()
        b = spawn_streams(2, 1)[0].random()
        assert a != b

    def test_zero_children(self):
        assert spawn_streams(0, 0) == []

