"""Tests for the exponential mechanism."""

import numpy as np
import pytest

from repro.mechanisms import exponential_mechanism, exponential_weights


class TestWeights:
    def test_uniform_scores_give_uniform_weights(self):
        w = exponential_weights([5.0, 5.0, 5.0], sensitivity=1.0, epsilon=1.0)
        np.testing.assert_allclose(w, [1 / 3] * 3)

    def test_weights_sum_to_one(self):
        w = exponential_weights([0.0, 10.0, 3.0], sensitivity=1.0, epsilon=0.7)
        assert w.sum() == pytest.approx(1.0)

    def test_higher_score_higher_weight(self):
        w = exponential_weights([1.0, 2.0, 8.0], sensitivity=1.0, epsilon=1.0)
        assert w[0] < w[1] < w[2]

    def test_exact_two_candidate_ratio(self):
        # weight ratio = exp(eps * (s1 - s0) / (2 * sens))
        eps, sens = 0.8, 2.0
        w = exponential_weights([0.0, 3.0], sensitivity=sens, epsilon=eps)
        assert w[1] / w[0] == pytest.approx(np.exp(eps * 3.0 / (2 * sens)))

    def test_extreme_scores_do_not_overflow(self):
        w = exponential_weights([0.0, 1e6], sensitivity=1.0, epsilon=1.0)
        assert np.isfinite(w).all()
        assert w[1] == pytest.approx(1.0)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            exponential_weights([], sensitivity=1.0, epsilon=1.0)


class TestSelection:
    def test_returns_a_candidate(self, rng):
        choice = exponential_mechanism(
            ["a", "b", "c"], [1.0, 2.0, 3.0], sensitivity=1.0, epsilon=1.0, rng=rng
        )
        assert choice in {"a", "b", "c"}

    def test_strongly_separated_scores_pick_max(self, rng):
        picks = [
            exponential_mechanism(
                [0, 1], [0.0, 1000.0], sensitivity=1.0, epsilon=1.0, rng=rng
            )
            for _ in range(50)
        ]
        assert all(p == 1 for p in picks)

    def test_empirical_frequencies_match_weights(self, rng):
        scores = [0.0, 2.0]
        w = exponential_weights(scores, sensitivity=1.0, epsilon=1.0)
        picks = np.array(
            [
                exponential_mechanism([0, 1], scores, 1.0, 1.0, rng=rng)
                for _ in range(20_000)
            ]
        )
        assert picks.mean() == pytest.approx(w[1], abs=0.02)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            exponential_mechanism(["a"], [1.0, 2.0], sensitivity=1.0, epsilon=1.0)
