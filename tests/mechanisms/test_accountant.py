"""Tests for sequential-composition budget accounting."""

import pytest

from repro.mechanisms import BudgetExceededError, PrivacyAccountant


class TestAccountant:
    def test_initial_state(self):
        acc = PrivacyAccountant(1.0)
        assert acc.spent == 0.0
        assert acc.remaining == 1.0

    def test_spend_accumulates(self):
        acc = PrivacyAccountant(1.0)
        acc.spend(0.3, "tree")
        acc.spend(0.2, "counts")
        assert acc.spent == pytest.approx(0.5)
        assert acc.remaining == pytest.approx(0.5)

    def test_overspend_raises(self):
        acc = PrivacyAccountant(1.0)
        acc.spend(0.9)
        with pytest.raises(BudgetExceededError):
            acc.spend(0.2)

    def test_overspend_leaves_ledger_unchanged(self):
        acc = PrivacyAccountant(1.0)
        acc.spend(0.9)
        with pytest.raises(BudgetExceededError):
            acc.spend(0.2)
        assert acc.spent == pytest.approx(0.9)

    def test_fraction_split_exactly_exhausts(self):
        # Halving twice should not trip the float-tolerance guard.
        acc = PrivacyAccountant(0.3)
        acc.spend_fraction(0.5)
        acc.spend_fraction(0.5)
        assert acc.remaining == pytest.approx(0.0, abs=1e-12)

    def test_exhausted_accountant_admits_nothing(self):
        # Regression: the float tolerance used to let an accountant whose
        # ledger had reached the total accept further sub-tolerance spends
        # (up to 1e-9 * total each, without bound over many calls).
        acc = PrivacyAccountant(1.0)
        acc.spend(1.0)
        assert acc.remaining == 0.0
        for epsilon in (1e-9, 1e-12, 5e-10):
            with pytest.raises(BudgetExceededError):
                acc.spend(epsilon)
        assert acc.spent == 1.0

    def test_exhausted_by_fractions_admits_nothing(self):
        acc = PrivacyAccountant(0.7)
        acc.spend_fraction(0.5)
        acc.spend_fraction(0.5)
        assert acc.remaining == 0.0
        with pytest.raises(BudgetExceededError):
            acc.spend(1e-10)

    def test_tolerance_still_absorbs_final_split_rounding(self):
        # Three thirds can round a hair above the total; the final spend
        # must still be admitted (the tolerance's actual purpose).
        acc = PrivacyAccountant(1.0)
        third = 1.0 / 3.0
        acc.spend(third)
        acc.spend(third)
        acc.spend(third + 2e-16)  # overshoot within 1e-9 * total
        assert acc.spent == pytest.approx(1.0, abs=1e-9)

    def test_ledger_records_labels(self):
        acc = PrivacyAccountant(2.0)
        acc.spend(1.0, "structure")
        acc.spend(0.5, "counts")
        assert acc.ledger == [("structure", 1.0), ("counts", 0.5)]

    def test_ledger_copy_is_defensive(self):
        acc = PrivacyAccountant(2.0)
        acc.spend(1.0, "a")
        acc.ledger.append(("evil", 100.0))
        assert acc.spent == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(0.0)


class TestTransaction:
    def test_commits_on_success(self):
        acc = PrivacyAccountant(1.0)
        with acc.transaction():
            acc.spend(0.4, "a")
            acc.spend(0.1, "b")
        assert acc.spent == pytest.approx(0.5)
        assert [label for label, _ in acc.ledger] == ["a", "b"]

    def test_rolls_back_on_failure(self):
        acc = PrivacyAccountant(1.0)
        acc.spend(0.2, "before")
        with pytest.raises(RuntimeError, match="boom"):
            with acc.transaction():
                acc.spend(0.4, "inside")
                raise RuntimeError("boom")
        assert acc.spent == pytest.approx(0.2)
        assert acc.ledger == [("before", 0.2)]

    def test_rolls_back_on_budget_exceeded(self):
        acc = PrivacyAccountant(1.0)
        with pytest.raises(BudgetExceededError):
            with acc.transaction():
                acc.spend(0.6, "a")
                acc.spend(0.6, "b")
        assert acc.spent == 0.0

    def test_nested_transactions_roll_back_innermost_only(self):
        acc = PrivacyAccountant(1.0)
        with acc.transaction():
            acc.spend(0.3, "outer")
            with pytest.raises(RuntimeError):
                with acc.transaction():
                    acc.spend(0.3, "inner")
                    raise RuntimeError
        assert acc.ledger == [("outer", 0.3)]
        acc = PrivacyAccountant(1.0)
        with pytest.raises(ValueError):
            acc.spend(-0.1)
        with pytest.raises(ValueError):
            acc.spend_fraction(0.0)
        with pytest.raises(ValueError):
            acc.spend_fraction(1.5)


class TestMultiEpochComposition:
    """One accountant across a continual-release series of epochs."""

    EPS = 0.5

    def _run_epochs(self, acc, n):
        for epoch in range(n):
            acc.spend(0.6 * self.EPS, f"epoch {epoch:04d}/privtree/tree structure")
            acc.spend(0.4 * self.EPS, f"epoch {epoch:04d}/privtree/leaf counts")

    def test_epoch_labelled_entries_compose(self):
        acc = PrivacyAccountant(4 * self.EPS)
        self._run_epochs(acc, 4)
        assert acc.spent == pytest.approx(4 * self.EPS)
        # Every entry carries its epoch namespace, and each epoch's entries
        # sum to exactly the per-epoch budget.
        for epoch in range(4):
            prefix = f"epoch {epoch:04d}/"
            entries = [eps for label, eps in acc.ledger if label.startswith(prefix)]
            assert len(entries) == 2
            assert sum(entries) == pytest.approx(self.EPS)

    def test_remaining_is_monotone_across_epochs(self):
        acc = PrivacyAccountant(3 * self.EPS)
        seen = [acc.remaining]
        for epoch in range(3):
            self._run_epochs_from(acc, epoch)
            seen.append(acc.remaining)
        assert seen == sorted(seen, reverse=True)
        assert seen[0] == pytest.approx(3 * self.EPS)
        assert seen[-1] == pytest.approx(0.0)

    def _run_epochs_from(self, acc, epoch):
        acc.spend(0.6 * self.EPS, f"epoch {epoch:04d}/privtree/tree structure")
        acc.spend(0.4 * self.EPS, f"epoch {epoch:04d}/privtree/leaf counts")

    def test_exhaustion_raises_at_the_right_epoch(self):
        # Budget covers exactly two epochs: epoch 2's first spend must be
        # the one that raises, and the rollback leaves epochs 0-1 intact.
        acc = PrivacyAccountant(2 * self.EPS)
        self._run_epochs(acc, 2)
        with pytest.raises(BudgetExceededError):
            with acc.transaction():
                self._run_epochs_from(acc, 2)
        assert acc.spent == pytest.approx(2 * self.EPS)
        labels = [label for label, _ in acc.ledger]
        assert not any(label.startswith("epoch 0002/") for label in labels)
        assert len(labels) == 4
