"""Tests for the shard-side collector."""

import numpy as np
import pytest

from repro.domains import Box
from repro.federated import (
    MASK_DTYPE,
    ROOT_NODE_ID,
    SecureAggregator,
    ShardCollector,
    child_node_id,
)
from repro.spatial import SpatialDataset


def _collectors(dataset, n_shards=2, seed=3, **kwargs):
    shards = [
        SpatialDataset(dataset.points[i::n_shards], dataset.domain, name=f"s{i}")
        for i in range(n_shards)
    ]
    return [
        ShardCollector(i, n_shards, shard, blinding_seed=seed, **kwargs)
        for i, shard in enumerate(shards)
    ], shards


class TestNodeIds:
    def test_child_ids_encode_the_path(self):
        assert child_node_id(ROOT_NODE_ID, 0) == "v1.0"
        assert child_node_id("v1.0", 3) == "v1.0.3"


class TestShardCollector:
    def test_properties(self, uniform_2d):
        collectors, shards = _collectors(uniform_2d, n_shards=3)
        for collector, shard in zip(collectors, shards):
            assert collector.domain == uniform_2d.domain
            assert collector.n_points == shard.n
            assert collector.dims_per_split == 2

    def test_dims_per_split_override(self, uniform_2d):
        collectors, _ = _collectors(uniform_2d, dims_per_split=1)
        assert collectors[0].dims_per_split == 1

    def test_aggregated_root_count_is_global(self, uniform_2d):
        collectors, _ = _collectors(uniform_2d, n_shards=3)
        agg = SecureAggregator(3)
        counts = agg.aggregate([c.blinded_counts([ROOT_NODE_ID]) for c in collectors])
        assert counts.tolist() == [uniform_2d.n]

    def test_split_children_counts_match_geometry(self, clustered_2d):
        # After a split, each child's aggregated count must equal a direct
        # half-open box count over the concatenated points — the collectors'
        # payload windows and the public Box.count_points agree exactly.
        collectors, _ = _collectors(clustered_2d, n_shards=3)
        agg = SecureAggregator(3)
        for c in collectors:
            c.apply_splits([ROOT_NODE_ID])
        child_ids = [child_node_id(ROOT_NODE_ID, j) for j in range(4)]
        counts = agg.aggregate([c.blinded_counts(child_ids) for c in collectors])
        child_boxes = clustered_2d.domain.bisect([0, 1])
        expected = [box.count_points(clustered_2d.points) for box in child_boxes]
        assert counts.tolist() == expected
        assert sum(expected) == clustered_2d.n

    def test_blinded_counts_never_equal_raw_counts(self, clustered_2d):
        # The wire-visible share is count + one-time pad; the raw per-shard
        # count must not appear in it.
        collectors, shards = _collectors(clustered_2d, n_shards=3)
        for c in collectors:
            c.apply_splits([ROOT_NODE_ID])
        ids = [ROOT_NODE_ID] + [child_node_id(ROOT_NODE_ID, j) for j in range(4)]
        boxes = [clustered_2d.domain] + list(clustered_2d.domain.bisect([0, 1]))
        for collector, shard in zip(collectors, shards):
            raw = np.array(
                [box.count_points(shard.points) for box in boxes], dtype=MASK_DTYPE
            )
            share = collector.blinded_counts(ids)
            assert share.dtype == MASK_DTYPE
            assert not np.any(share == raw)

    def test_unknown_node_id_is_a_protocol_error(self, uniform_2d):
        collectors, _ = _collectors(uniform_2d)
        with pytest.raises(KeyError, match="has no node"):
            collectors[0].blinded_counts(["v1.0"])
        with pytest.raises(KeyError, match="split a node before"):
            collectors[0].apply_splits(["v9"])

    def test_empty_shard_participates(self):
        # A collector with zero points still answers every round (its counts
        # are all zero but its masks are still needed for cancellation).
        gen = np.random.default_rng(0)
        pts = gen.uniform(0, 1, size=(40, 2)) * 0.999999
        full = SpatialDataset(pts, Box.unit(2), name="d")
        empty = SpatialDataset(np.empty((0, 2)), Box.unit(2), name="e")
        collectors = [
            ShardCollector(0, 2, full, blinding_seed=1),
            ShardCollector(1, 2, empty, blinding_seed=1),
        ]
        agg = SecureAggregator(2)
        counts = agg.aggregate([c.blinded_counts([ROOT_NODE_ID]) for c in collectors])
        assert counts.tolist() == [40]
