"""Tests for the pairwise-cancelling blinding scheme."""

import numpy as np
import pytest

from repro.federated import MASK_DTYPE, PairwiseBlinder, pair_index


class TestPairIndex:
    def test_enumerates_all_unordered_pairs(self):
        assert pair_index(3) == [(0, 1), (0, 2), (1, 2)]
        assert len(pair_index(5)) == 10

    def test_pairs_are_canonically_ordered(self):
        for i, j in pair_index(6):
            assert i < j


class TestPairwiseBlinder:
    def test_rejects_single_shard(self):
        with pytest.raises(ValueError, match="at least 2 shards"):
            PairwiseBlinder(0, 1, blinding_seed=0)

    @pytest.mark.parametrize("shard_id", [-1, 3, 7])
    def test_rejects_out_of_range_shard_id(self, shard_id):
        with pytest.raises(ValueError, match="shard_id"):
            PairwiseBlinder(shard_id, 3, blinding_seed=0)

    @pytest.mark.parametrize("n_shards", [2, 3, 5])
    def test_masks_cancel_across_all_shards(self, n_shards):
        blinders = [
            PairwiseBlinder(i, n_shards, blinding_seed=42) for i in range(n_shards)
        ]
        total = np.zeros(16, dtype=MASK_DTYPE)
        for b in blinders:
            total += b.masks(16)
        assert np.all(total == 0)

    def test_masks_cancel_over_multiple_rounds(self):
        # Streams advance in lockstep: cancellation must hold round by round,
        # including rounds of different sizes.
        blinders = [PairwiseBlinder(i, 3, blinding_seed=9) for i in range(3)]
        for size in (4, 1, 11):
            total = np.zeros(size, dtype=MASK_DTYPE)
            for b in blinders:
                total += b.masks(size)
            assert np.all(total == 0)

    def test_masks_are_deterministic_in_the_seed(self):
        a = PairwiseBlinder(1, 4, blinding_seed=5).masks(8)
        b = PairwiseBlinder(1, 4, blinding_seed=5).masks(8)
        c = PairwiseBlinder(1, 4, blinding_seed=6).masks(8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_masks_rejects_negative_k(self):
        with pytest.raises(ValueError, match="non-negative"):
            PairwiseBlinder(0, 2, blinding_seed=0).masks(-1)


class TestBlind:
    def test_blinded_share_is_uint64(self):
        share = PairwiseBlinder(0, 2, blinding_seed=0).blind(np.arange(5))
        assert share.dtype == MASK_DTYPE
        assert share.shape == (5,)

    def test_no_share_reveals_the_raw_counts(self):
        # The defining property: an emitted share is the count plus a
        # uniform one-time pad, so it never equals the raw count itself
        # (up to the 2^-64 per-entry collision chance, absent at this seed).
        counts = np.arange(64)
        for shard_id in range(3):
            share = PairwiseBlinder(shard_id, 3, blinding_seed=1).blind(counts)
            assert not np.any(share == counts.astype(MASK_DTYPE))

    def test_sum_of_blinded_shares_recovers_counts(self):
        per_shard = [np.array([3, 0, 7]), np.array([1, 5, 0]), np.array([2, 2, 2])]
        total = np.zeros(3, dtype=MASK_DTYPE)
        for i, counts in enumerate(per_shard):
            total += PairwiseBlinder(i, 3, blinding_seed=13).blind(counts)
        assert np.array_equal(total, np.array([6, 7, 9], dtype=MASK_DTYPE))

    def test_rejects_matrix_counts(self):
        with pytest.raises(ValueError, match="vector"):
            PairwiseBlinder(0, 2, blinding_seed=0).blind(np.zeros((2, 2), dtype=int))

    def test_rejects_float_counts(self):
        with pytest.raises(ValueError, match="integral"):
            PairwiseBlinder(0, 2, blinding_seed=0).blind(np.array([1.5]))

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            PairwiseBlinder(0, 2, blinding_seed=0).blind(np.array([1, -1]))

    def test_empty_round_is_fine(self):
        share = PairwiseBlinder(0, 2, blinding_seed=0).blind(np.array([], dtype=int))
        assert share.shape == (0,)
