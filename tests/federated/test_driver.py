"""Tests for the federated coordinator: bit-identity and protocol hygiene."""

import warnings

import numpy as np
import pytest

from repro.core.privtree import MaxDepthWarning
from repro.federated import (
    MASK_DTYPE,
    FederatedPrivTree,
    SecureAggregator,
    ShardCollector,
    federated_privtree_histogram,
    shard_dataset,
)
from repro.mechanisms import PrivacyAccountant
from repro.spatial import SpatialDataset
from repro.spatial.quadtree import _privtree_histogram
from repro.spatial.serialize import tree_to_dict


class TestShardDataset:
    def test_partitions_preserve_points_and_domain(self, uniform_2d):
        shards = shard_dataset(uniform_2d, 3)
        assert len(shards) == 3
        assert sum(s.n for s in shards) == uniform_2d.n
        for s in shards:
            assert s.domain == uniform_2d.domain
        rebuilt = np.vstack([s.points for s in shards])
        assert sorted(map(tuple, rebuilt)) == sorted(map(tuple, uniform_2d.points))

    def test_rejects_single_shard(self, uniform_2d):
        with pytest.raises(ValueError, match="at least 2"):
            shard_dataset(uniform_2d, 1)


class TestBitIdentity:
    """The headline guarantee: federated == centralized, bit for bit."""

    @pytest.mark.parametrize("n_shards", [2, 3, 5])
    def test_default_parameters(self, clustered_2d, n_shards):
        central = _privtree_histogram(clustered_2d, epsilon=1.0, rng=0)
        federated = federated_privtree_histogram(
            shard_dataset(clustered_2d, n_shards), epsilon=1.0, rng=0
        )
        assert tree_to_dict(federated) == tree_to_dict(central)

    def test_every_knob_turned(self, clustered_2d):
        kwargs = dict(
            epsilon=2.0,
            dims_per_split=1,
            theta=0.5,
            tree_fraction=0.3,
            tuples_per_individual=3,
            count_mechanism="geometric",
            rng=17,
        )
        central = _privtree_histogram(clustered_2d, **kwargs)
        federated = federated_privtree_histogram(
            shard_dataset(clustered_2d, 4), **kwargs
        )
        assert tree_to_dict(federated) == tree_to_dict(central)

    def test_identity_is_invariant_to_the_partition(self, clustered_2d):
        # Any split of the points yields the same release: aggregated counts
        # are partition-invariant and all noise is the coordinator's.
        round_robin = shard_dataset(clustered_2d, 3)
        cut = clustered_2d.n // 2
        lopsided = [
            SpatialDataset(clustered_2d.points[:cut], clustered_2d.domain, name="a"),
            SpatialDataset(clustered_2d.points[cut:], clustered_2d.domain, name="b"),
        ]
        a = federated_privtree_histogram(round_robin, epsilon=1.0, rng=5)
        b = federated_privtree_histogram(lopsided, epsilon=1.0, rng=5)
        assert tree_to_dict(a) == tree_to_dict(b)

    def test_identity_is_invariant_to_the_blinding_seed(self, clustered_2d):
        shards = shard_dataset(clustered_2d, 3)
        a = federated_privtree_histogram(shards, epsilon=1.0, rng=2, blinding_seed=0)
        b = federated_privtree_histogram(shards, epsilon=1.0, rng=2, blinding_seed=123)
        assert tree_to_dict(a) == tree_to_dict(b)

    def test_max_depth_guard_warns_like_the_engine(self, clustered_2d):
        with pytest.warns(MaxDepthWarning):
            federated = federated_privtree_histogram(
                shard_dataset(clustered_2d, 2), epsilon=8.0, rng=0, max_depth=2
            )
        with pytest.warns(MaxDepthWarning):
            central = _privtree_histogram(clustered_2d, epsilon=8.0, rng=0, max_depth=2)
        assert tree_to_dict(federated) == tree_to_dict(central)


class TestAccounting:
    def test_spends_like_the_centralized_fit(self, uniform_2d):
        acct = PrivacyAccountant(1.0)
        federated_privtree_histogram(
            shard_dataset(uniform_2d, 2),
            epsilon=1.0,
            tree_fraction=0.4,
            rng=0,
            accountant=acct,
        )
        assert [label for label, _ in acct.ledger] == [
            "privtree/tree structure",
            "privtree/leaf counts",
        ]
        assert acct.spent == pytest.approx(1.0)

    def test_label_prefix_namespaces_the_ledger(self, uniform_2d):
        acct = PrivacyAccountant(1.0)
        federated_privtree_histogram(
            shard_dataset(uniform_2d, 2),
            epsilon=1.0,
            rng=0,
            accountant=acct,
            label_prefix="epoch 0007/privtree",
        )
        assert [label for label, _ in acct.ledger] == [
            "epoch 0007/privtree/tree structure",
            "epoch 0007/privtree/leaf counts",
        ]


class TestValidation:
    def test_rejects_fewer_than_two_collectors(self, uniform_2d):
        collector = ShardCollector(0, 2, uniform_2d)
        with pytest.raises(ValueError, match="at least 2 collectors"):
            FederatedPrivTree([collector])

    def test_rejects_domain_mismatch(self, uniform_2d):
        half_box = uniform_2d.domain.bisect([0])[0]
        inside = uniform_2d.points[half_box.contains_points(uniform_2d.points)]
        half = SpatialDataset(inside, half_box, name="half")
        with pytest.raises(ValueError, match="global domain"):
            FederatedPrivTree(
                [ShardCollector(0, 2, uniform_2d), ShardCollector(1, 2, half)]
            )

    def test_rejects_dims_per_split_mismatch(self, uniform_2d):
        with pytest.raises(ValueError, match="dims_per_split"):
            FederatedPrivTree(
                [
                    ShardCollector(0, 2, uniform_2d, dims_per_split=1),
                    ShardCollector(1, 2, uniform_2d, dims_per_split=2),
                ]
            )

    def test_rejects_aggregator_size_mismatch(self, uniform_2d):
        collectors = [ShardCollector(i, 2, uniform_2d) for i in range(2)]
        with pytest.raises(ValueError, match="aggregator expects 3"):
            FederatedPrivTree(collectors, SecureAggregator(3))

    @pytest.mark.parametrize(
        "bad",
        [
            {"tree_fraction": 0.0},
            {"tree_fraction": 1.0},
            {"tuples_per_individual": 0},
            {"count_mechanism": "gaussian"},
        ],
    )
    def test_rejects_bad_fit_parameters(self, uniform_2d, bad):
        with pytest.raises(ValueError):
            federated_privtree_histogram(
                shard_dataset(uniform_2d, 2), epsilon=1.0, rng=0, **bad
            )


class _WireTap(ShardCollector):
    """A collector that records everything it puts on the wire."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.emitted: list[np.ndarray] = []
        self.queried: list[list[str]] = []

    def blinded_counts(self, node_ids):
        share = super().blinded_counts(node_ids)
        self.queried.append(list(node_ids))
        self.emitted.append(share.copy())
        return share


class TestNoRawCountExposure:
    def test_full_fit_never_leaks_a_raw_shard_count(self, clustered_2d):
        # Run a whole federated fit through instrumented collectors, then
        # recompute every raw per-shard count the protocol asked about and
        # assert no wire-visible share ever equalled one.
        shards = shard_dataset(clustered_2d, 3)
        taps = [
            _WireTap(i, 3, shard, blinding_seed=21) for i, shard in enumerate(shards)
        ]
        driver = FederatedPrivTree(taps)
        tree = driver.fit_histogram(1.0, rng=0)

        central = _privtree_histogram(clustered_2d, epsilon=1.0, rng=0)
        assert tree_to_dict(tree) == tree_to_dict(central)

        for tap, shard in zip(taps, shards):
            assert tap.emitted, "the protocol must have run rounds"
            for node_ids, share in zip(tap.queried, tap.emitted):
                raw = np.array(
                    [
                        int(tap._lookup(node_id).score())
                        for node_id in node_ids
                    ],
                    dtype=MASK_DTYPE,
                )
                assert share.dtype == MASK_DTYPE
                assert not np.any(share == raw)
