"""Tests for crash-safe checkpointing and bit-identical resume."""

import json

import numpy as np
import pytest

from repro.federated import (
    FaultInjector,
    FaultPlan,
    FederatedPrivTree,
    FitCheckpoint,
    InjectedCoordinatorCrash,
    ShardCollector,
    replay_splits,
    shard_dataset,
)
from repro.federated.checkpoint import restore_rng, rng_state
from repro.federated.errors import CheckpointError
from repro.mechanisms import PrivacyAccountant
from repro.spatial import SpatialDataset
from repro.spatial.serialize import tree_to_dict

N_SHARDS = 3


@pytest.fixture(scope="module")
def small_2d():
    gen = np.random.default_rng(11)
    return SpatialDataset.from_points(gen.uniform(0.0, 100.0, size=(1200, 2)))


def _collectors(dataset):
    return [
        ShardCollector(i, N_SHARDS, shard)
        for i, shard in enumerate(shard_dataset(dataset, N_SHARDS))
    ]


def _fit(dataset, **kwargs):
    return FederatedPrivTree(_collectors(dataset)).fit_histogram(
        1.0, rng=5, **kwargs
    )


class TestRngState:
    def test_roundtrip_resumes_the_stream(self):
        gen = np.random.default_rng(7)
        gen.standard_normal(100)
        state = json.loads(json.dumps(rng_state(gen)))  # survives JSON
        resumed = restore_rng(state)
        assert np.array_equal(gen.standard_normal(50), resumed.standard_normal(50))

    def test_unknown_bit_generator_is_typed(self):
        with pytest.raises(CheckpointError, match="bit generator"):
            restore_rng({"name": "NotAGenerator", "state": {}})


class TestFitCheckpoint:
    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            FitCheckpoint(tmp_path / "absent.json").load()

    def test_garbage_file_is_typed(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="cannot read"):
            FitCheckpoint(path).load()

    def test_wrong_format_is_typed(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something.else", "version": 1}))
        with pytest.raises(CheckpointError, match="not a federated fit"):
            FitCheckpoint(path).load()

    def test_save_refuses_incomplete_state(self, tmp_path):
        with pytest.raises(CheckpointError, match="missing keys"):
            FitCheckpoint(tmp_path / "x.json").save({"phase": "grow"})


class TestCheckpointedFit:
    def test_checkpointing_does_not_change_the_release(self, small_2d, tmp_path):
        plain = _fit(small_2d)
        checkpoint = FitCheckpoint(tmp_path / "fit.json")
        checked = _fit(small_2d, checkpoint=checkpoint)
        assert tree_to_dict(checked) == tree_to_dict(plain)
        state = checkpoint.load()
        assert state["phase"] == "done"
        assert [label for label, _ in state["ledger"]] == [
            "privtree/tree structure",
            "privtree/leaf counts",
        ]

    def test_round_log_commits_each_round_once(self, small_2d, tmp_path):
        checkpoint = FitCheckpoint(tmp_path / "fit.json")
        _fit(small_2d, checkpoint=checkpoint)
        rounds = [entry["round"] for entry in checkpoint.load()["round_log"]]
        assert rounds == sorted(rounds)
        assert len(rounds) == len(set(rounds))

    @pytest.mark.parametrize("crash_round", [0, 2, 6])
    def test_crash_resume_is_bit_identical_with_one_spend(
        self, small_2d, tmp_path, crash_round
    ):
        plain = _fit(small_2d)
        checkpoint = FitCheckpoint(tmp_path / "fit.json")
        crasher = FaultInjector(
            FaultPlan(crash_coordinator_at_round=crash_round), seed=0
        )
        first = PrivacyAccountant(1.0)
        with pytest.raises(InjectedCoordinatorCrash):
            _fit(
                small_2d,
                checkpoint=checkpoint,
                accountant=first,
                fault_injector=crasher,
            )
        # the aborted coordinator's in-memory ledger rolled back ...
        assert first.ledger == []
        # ... but the committed spends survive in the checkpoint.
        state = checkpoint.load()
        assert len(state["ledger"]) == 2

        collectors = _collectors(small_2d)
        replay_splits(
            collectors, [[str(i) for i in r] for r in state["split_rounds"]]
        )
        resumed_accountant = PrivacyAccountant(1.0)
        resumed = FederatedPrivTree(collectors).fit_histogram(
            1.0,
            rng=5,
            checkpoint=checkpoint,
            accountant=resumed_accountant,
            resume=True,
        )
        assert tree_to_dict(resumed) == tree_to_dict(plain)
        assert [label for label, _ in resumed_accountant.ledger] == [
            "privtree/tree structure",
            "privtree/leaf counts",
        ]
        assert resumed_accountant.spent == pytest.approx(1.0, abs=1e-12)

    def test_resume_requires_a_checkpoint(self, small_2d):
        with pytest.raises(CheckpointError, match="requires a checkpoint"):
            _fit(small_2d, resume=True)

    def test_resume_of_a_finished_fit_is_refused(self, small_2d, tmp_path):
        checkpoint = FitCheckpoint(tmp_path / "fit.json")
        _fit(small_2d, checkpoint=checkpoint)
        with pytest.raises(CheckpointError, match="completed fit"):
            _fit(small_2d, checkpoint=checkpoint, resume=True)

    def test_resume_with_different_parameters_is_refused(
        self, small_2d, tmp_path
    ):
        checkpoint = FitCheckpoint(tmp_path / "fit.json")
        crasher = FaultInjector(FaultPlan(crash_coordinator_at_round=0), seed=0)
        with pytest.raises(InjectedCoordinatorCrash):
            _fit(small_2d, checkpoint=checkpoint, fault_injector=crasher)
        with pytest.raises(CheckpointError, match="different"):
            FederatedPrivTree(_collectors(small_2d)).fit_histogram(
                2.0, rng=5, checkpoint=checkpoint, resume=True
            )


class TestTransactionalAccountant:
    def test_restore_replays_a_committed_ledger(self):
        accountant = PrivacyAccountant(1.0)
        accountant.restore([("a", 0.25), ("b", 0.5)])
        assert accountant.ledger == [("a", 0.25), ("b", 0.5)]
        assert accountant.remaining == pytest.approx(0.25)

    def test_restore_refuses_a_dirty_accountant(self):
        accountant = PrivacyAccountant(1.0)
        accountant.spend(0.1, "live")
        with pytest.raises(RuntimeError, match="fresh"):
            accountant.restore([("a", 0.25)])

    def test_restore_over_budget_rolls_back_entirely(self):
        accountant = PrivacyAccountant(1.0)
        with pytest.raises(Exception):
            accountant.restore([("a", 0.8), ("b", 0.8)])
        assert accountant.ledger == []
