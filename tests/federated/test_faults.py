"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.federated.errors import FrameCorruptError, InjectedCoordinatorCrash
from repro.federated.faults import FaultInjector, FaultPlan
from repro.federated.transport import encode_frame, read_frame


def _decode(data: bytes) -> dict:
    chunks = [data[:8], data[8:]]

    def read_exactly(n: int) -> bytes:
        return chunks.pop(0)

    return read_frame(read_exactly)


class TestFaultPlan:
    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(delay_s=-1.0)

    def test_default_plan_is_a_no_op(self):
        injector = FaultInjector(FaultPlan(), seed=0)
        frame = encode_frame({"kind": "heartbeat"})
        assert injector.on_frame(frame) == [frame]
        assert not any(injector.injected.values())


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan(drop=0.3, delay=0.2, duplicate=0.3, corrupt=0.2,
                         delay_s=0.0)
        frames = [encode_frame({"kind": "heartbeat"}) for _ in range(50)]
        a = FaultInjector(plan, seed=42)
        b = FaultInjector(plan, seed=42)
        out_a = [a.on_frame(f) for f in frames]
        out_b = [b.on_frame(f) for f in frames]
        assert out_a == out_b
        assert a.injected == b.injected

    def test_different_seed_different_schedule(self):
        plan = FaultPlan(drop=0.5, delay_s=0.0)
        frames = [encode_frame({"kind": "heartbeat"}) for _ in range(60)]
        a = FaultInjector(plan, seed=1)
        b = FaultInjector(plan, seed=2)
        assert [a.on_frame(f) for f in frames] != [b.on_frame(f) for f in frames]


class TestFaultKinds:
    def test_drop_returns_nothing(self):
        injector = FaultInjector(FaultPlan(drop=1.0), seed=0)
        assert injector.on_frame(encode_frame({"kind": "heartbeat"})) == []
        assert injector.injected["drop"] > 0

    def test_duplicate_returns_two_identical_frames(self):
        injector = FaultInjector(FaultPlan(duplicate=1.0), seed=0)
        frame = encode_frame({"kind": "heartbeat"})
        out = injector.on_frame(frame)
        assert out == [frame, frame]

    def test_corrupt_keeps_framing_but_fails_checksum(self):
        injector = FaultInjector(FaultPlan(corrupt=1.0), seed=0)
        frame = encode_frame({"kind": "heartbeat", "round": 5})
        (corrupted,) = injector.on_frame(frame)
        assert len(corrupted) == len(frame)
        assert corrupted[:8] == frame[:8]  # header untouched: stream parses
        with pytest.raises(FrameCorruptError, match="checksum"):
            _decode(corrupted)

    def test_kill_fires_at_and_after_the_chosen_round(self):
        injector = FaultInjector(
            FaultPlan(kill_collector_at_round={1: 3}), seed=0
        )
        assert not injector.should_kill_collector(1, 2)
        assert injector.should_kill_collector(1, 3)
        assert injector.should_kill_collector(1, 7)
        assert not injector.should_kill_collector(0, 9)

    def test_coordinator_crash_fires_once_reached(self):
        injector = FaultInjector(
            FaultPlan(crash_coordinator_at_round=2), seed=0
        )
        injector.coordinator_tick(0)
        injector.coordinator_tick(1)
        with pytest.raises(InjectedCoordinatorCrash):
            injector.coordinator_tick(2)
        assert injector.injected["crash"] == 1
