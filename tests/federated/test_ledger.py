"""Tests for continual release: epoch ingestion, windows, budget, storage."""

import numpy as np
import pytest

from repro.domains import Box
from repro.federated import EpochLedger, federated_privtree_histogram, shard_dataset
from repro.mechanisms import BudgetExceededError, PrivacyAccountant
from repro.serve import ReleaseStore
from repro.spatial import SpatialDataset
from repro.spatial.serialize import tree_to_dict


def _epoch_shards(epoch, n_shards=3, n=300):
    gen = np.random.default_rng(1000 + epoch)
    pts = gen.uniform(0, 1, size=(n, 2)) * 0.999999
    data = SpatialDataset(pts, Box.unit(2), name=f"epoch{epoch}")
    return shard_dataset(data, n_shards)


@pytest.fixture
def store(tmp_path):
    return ReleaseStore(tmp_path / "store")


def _ledger(store, *, epochs_budget=5, epsilon=0.5, window=2, **kwargs):
    acct = PrivacyAccountant(epochs_budget * epsilon)
    return (
        EpochLedger(
            store,
            acct,
            n_shards=3,
            epsilon_per_epoch=epsilon,
            window=window,
            **kwargs,
        ),
        acct,
    )


class TestIngest:
    def test_rejects_duplicate_epoch(self, store):
        ledger, _ = _ledger(store)
        ledger.ingest(0, _epoch_shards(0))
        with pytest.raises(ValueError, match="already ingested"):
            ledger.ingest(0, _epoch_shards(0))

    def test_rejects_negative_epoch(self, store):
        ledger, _ = _ledger(store)
        with pytest.raises(ValueError, match="non-negative"):
            ledger.ingest(-1, _epoch_shards(0))

    def test_rejects_wrong_shard_count(self, store):
        ledger, _ = _ledger(store)
        with pytest.raises(ValueError, match="3 shards"):
            ledger.ingest(0, _epoch_shards(0, n_shards=2))

    def test_rejects_domain_drift(self, store):
        ledger, _ = _ledger(store)
        ledger.ingest(0, _epoch_shards(0))
        drifted = [
            SpatialDataset(s.points * 0.5, Box.unit(2).bisect([0, 1])[0], name=s.name)
            for s in _epoch_shards(1)
        ]
        with pytest.raises(ValueError, match="ledger-wide domain"):
            ledger.ingest(1, drifted)

    def test_epochs_may_arrive_out_of_order(self, store):
        ledger, _ = _ledger(store)
        ledger.ingest(2, _epoch_shards(2))
        ledger.ingest(0, _epoch_shards(0))
        assert ledger.ingested_epochs() == [0, 2]


class TestRelease:
    def test_three_epoch_series_composes_the_budget(self, store):
        ledger, acct = _ledger(store, epochs_budget=3, epsilon=0.5, window=2)
        remaining = [acct.remaining]
        for epoch in range(3):
            ledger.ingest(epoch, _epoch_shards(epoch))
            ledger.release(epoch, rng=epoch)
            remaining.append(acct.remaining)

        # One epoch's spend per release, composed sequentially.
        assert acct.spent == pytest.approx(1.5)
        assert remaining == [
            pytest.approx(1.5),
            pytest.approx(1.0),
            pytest.approx(0.5),
            pytest.approx(0.0),
        ]
        # Ledger entries are namespaced per epoch; their sums match the
        # per-epoch spend exactly.
        for epoch in range(3):
            labels = [
                (label, eps)
                for label, eps in acct.ledger
                if label.startswith(f"epoch {epoch:04d}/")
            ]
            assert [label for label, _ in labels] == [
                f"epoch {epoch:04d}/privtree/tree structure",
                f"epoch {epoch:04d}/privtree/leaf counts",
            ]
            assert sum(eps for _, eps in labels) == pytest.approx(0.5)

        records = ledger.records
        assert [r.epoch for r in records] == [0, 1, 2]
        assert [r.release_id for r in records] == [
            "epoch-0000",
            "epoch-0001",
            "epoch-0002",
        ]
        assert records[0].window_epochs == (0,)
        assert records[1].window_epochs == (0, 1)
        assert records[2].window_epochs == (1, 2)  # window=2 slides

    def test_release_matches_direct_fit_on_the_window(self, store):
        # The stored artifact is exactly a federated fit over the window's
        # concatenated shard slices — same seed, same blinding derivation.
        ledger, _ = _ledger(store, window=2, blinding_seed=7)
        shards0, shards1 = _epoch_shards(0), _epoch_shards(1)
        ledger.ingest(0, shards0)
        ledger.release(0, rng=0)
        ledger.ingest(1, shards1)
        ledger.release(1, rng=1)

        merged = [
            SpatialDataset(
                np.concatenate([a.points, b.points]), a.domain, name="window"
            )
            for a, b in zip(shards0, shards1)
        ]
        expected = federated_privtree_histogram(
            merged,
            0.5,
            rng=1,
            blinding_seed=(7, 1),
            label_prefix="epoch 0001/privtree",
        )
        stored = store.get("epoch-0001")
        assert stored.method == "privtree_federated"
        assert tree_to_dict(stored.tree) == tree_to_dict(expected)

    def test_budget_exhaustion_raises_at_the_right_epoch(self, store):
        # Budget covers exactly 2 epochs: the third release must fail, spend
        # nothing, and store nothing.
        ledger, acct = _ledger(store, epochs_budget=2, epsilon=0.5)
        for epoch in range(2):
            ledger.ingest(epoch, _epoch_shards(epoch))
            ledger.release(epoch, rng=epoch)
        ledger.ingest(2, _epoch_shards(2))
        spent_before = acct.spent
        with pytest.raises(BudgetExceededError):
            ledger.release(2, rng=2)
        assert acct.spent == pytest.approx(spent_before)  # transaction rollback
        assert "epoch-0002" not in store
        assert [r.epoch for r in ledger.records] == [0, 1]

    def test_release_requires_ingested_data(self, store):
        ledger, _ = _ledger(store)
        with pytest.raises(KeyError, match="no ingested data"):
            ledger.release(0)

    def test_manifest_records_epoch_metadata(self, store):
        ledger, _ = _ledger(store, window=3, fit_params={"theta": 0.25})
        for epoch in range(2):
            ledger.ingest(epoch, _epoch_shards(epoch))
            ledger.release(epoch, rng=epoch)
        entry = store.manifest_entry("epoch-0001")
        assert entry["params"]["epoch"] == 1
        assert entry["params"]["window_epochs"] == [0, 1]
        assert entry["params"]["n_shards"] == 3
        assert entry["params"]["theta"] == 0.25


class TestAsOf:
    def test_as_of_returns_newest_at_or_before(self, store):
        ledger, _ = _ledger(store, epochs_budget=10)
        for epoch in (0, 1, 3):
            ledger.ingest(epoch, _epoch_shards(epoch))
            ledger.release(epoch, rng=epoch)
        assert ledger.as_of(0) == "epoch-0000"
        assert ledger.as_of(2) == "epoch-0001"  # epoch 2 never released
        assert ledger.as_of(3) == "epoch-0003"
        assert ledger.as_of(99) == "epoch-0003"

    def test_as_of_before_first_release_raises(self, store):
        ledger, _ = _ledger(store)
        with pytest.raises(KeyError, match="no release at or before"):
            ledger.as_of(0)

    def test_store_latest_agrees_with_as_of_now(self, store):
        # The serve layer has no EpochLedger object; zero-padded ids make
        # ReleaseStore.latest its "as of now" — it must agree.
        ledger, _ = _ledger(store, epochs_budget=10)
        for epoch in range(4):
            ledger.ingest(epoch, _epoch_shards(epoch))
            ledger.release(epoch, rng=epoch)
        assert store.latest("epoch-") == ledger.as_of(99)


class TestConstruction:
    def test_rejects_bad_parameters(self, store):
        acct = PrivacyAccountant(1.0)
        with pytest.raises(ValueError, match="n_shards"):
            EpochLedger(store, acct, n_shards=1, epsilon_per_epoch=0.5)
        with pytest.raises(ValueError, match="epsilon_per_epoch"):
            EpochLedger(store, acct, n_shards=3, epsilon_per_epoch=0.0)
        with pytest.raises(ValueError, match="window"):
            EpochLedger(store, acct, n_shards=3, epsilon_per_epoch=0.5, window=0)
        with pytest.raises(ValueError, match="invalid release id"):
            EpochLedger(
                store, acct, n_shards=3, epsilon_per_epoch=0.5, prefix="bad/prefix"
            )
