"""Tests for the transport stack: endpoint, channels, retry, failure matrix.

The loopback channel runs the *identical* client logic and frames as the
TCP path (same encode/decode, same endpoint, same retry engine) at memory
speed, so the whole failure matrix lives in tier-1.  One test drives real
sockets to pin the TCP glue itself.
"""

import numpy as np
import pytest

from repro.federated import (
    CollectorCrashError,
    CollectorTimeoutError,
    FaultInjector,
    FaultPlan,
    FederatedPrivTree,
    RoundMismatchError,
    ShardCollector,
    connect_collectors,
    loopback_collectors,
    shard_dataset,
)
from repro.federated.net import CollectorEndpoint, CollectorServer
from repro.federated.transport import RetryPolicy
from repro.mechanisms import PrivacyAccountant
from repro.spatial import SpatialDataset
from repro.spatial.serialize import tree_to_dict

N_SHARDS = 3


@pytest.fixture(scope="module")
def small_2d():
    gen = np.random.default_rng(23)
    return SpatialDataset.from_points(gen.uniform(0.0, 100.0, size=(1200, 2)))


@pytest.fixture(scope="module")
def reference_tree(small_2d):
    collectors = [
        ShardCollector(i, N_SHARDS, shard)
        for i, shard in enumerate(shard_dataset(small_2d, N_SHARDS))
    ]
    return FederatedPrivTree(collectors).fit_histogram(1.0, rng=3)


def _collectors(dataset):
    return [
        ShardCollector(i, N_SHARDS, shard)
        for i, shard in enumerate(shard_dataset(dataset, N_SHARDS))
    ]


class TestLoopbackCleanPath:
    def test_bit_identical_to_in_process(self, small_2d, reference_tree):
        clients = loopback_collectors(_collectors(small_2d), session="clean")
        tree = FederatedPrivTree(clients).fit_histogram(1.0, rng=3)
        assert tree_to_dict(tree) == tree_to_dict(reference_tree)

    def test_key_exchange_replaces_derived_masks(self, small_2d, reference_tree):
        # Collectors start with *different* blinding seeds, which would
        # desync immediately — the DH exchange overrides them with agreed
        # pair seeds, so the fit still works and is still bit-identical.
        collectors = [
            ShardCollector(i, N_SHARDS, shard, blinding_seed=100 + i)
            for i, shard in enumerate(shard_dataset(small_2d, N_SHARDS))
        ]
        clients = loopback_collectors(collectors, session="keyed")
        tree = FederatedPrivTree(clients).fit_histogram(1.0, rng=3)
        assert tree_to_dict(tree) == tree_to_dict(reference_tree)

    def test_client_exposes_collector_surface(self, small_2d):
        clients = loopback_collectors(_collectors(small_2d), session="surface")
        client = clients[0]
        assert client.shard_id == 0
        assert client.domain == small_2d.domain
        assert client.dims_per_split == 2
        client.heartbeat()


class TestFailureMatrix:
    """Drops, delays, duplicates, corruption: retried, never wrong."""

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(drop=0.2, delay_s=0.0),
            FaultPlan(duplicate=0.3, delay_s=0.0),
            FaultPlan(corrupt=0.15, delay_s=0.0),
            FaultPlan(drop=0.15, delay=0.2, duplicate=0.2, corrupt=0.1,
                      delay_s=0.0005),
        ],
        ids=["drops", "duplicates", "corruption", "everything"],
    )
    def test_retriable_faults_keep_bit_identity(
        self, small_2d, reference_tree, plan
    ):
        injector = FaultInjector(plan, seed=17)
        # The loopback injector mutates BOTH directions, so per-attempt
        # failure odds compound; plenty of (cheap, deterministic) retries
        # keep the seeded schedule comfortably inside the budget.
        retry = RetryPolicy(
            attempts=20, timeout_s=0.1, base_backoff_s=1e-4,
            max_backoff_s=1e-3, deadline_s=30.0,
        )
        clients = loopback_collectors(
            _collectors(small_2d), session="matrix", injector=injector,
            retry=retry,
        )
        tree = FederatedPrivTree(clients).fit_histogram(1.0, rng=3)
        assert tree_to_dict(tree) == tree_to_dict(reference_tree)
        assert any(injector.injected.values()), "fault plan never fired"

    def test_killed_collector_aborts_naming_the_shard(self, small_2d):
        injector = FaultInjector(
            FaultPlan(kill_collector_at_round={1: 2}), seed=0
        )
        clients = loopback_collectors(
            _collectors(small_2d), session="kill", injector=injector
        )
        accountant = PrivacyAccountant(1.0)
        with pytest.raises(
            (CollectorCrashError, CollectorTimeoutError), match="shard 1"
        ) as excinfo:
            FederatedPrivTree(clients).fit_histogram(
                1.0, rng=3, accountant=accountant
            )
        assert excinfo.value.shard_id == 1
        assert excinfo.value.round_index == 2
        # aborted round -> transactional rollback, nothing spent
        assert accountant.ledger == []

    def test_duplicated_request_is_served_from_the_round_cache(self, small_2d):
        # Duplicates of a counts_request must NOT advance the mask streams
        # twice — the endpoint replays its cache, keeping all shards in
        # lockstep; bit-identity in the 'duplicates' matrix case above
        # depends on exactly this.
        injector = FaultInjector(FaultPlan(duplicate=1.0, delay_s=0.0), seed=0)
        clients = loopback_collectors(
            _collectors(small_2d), session="dup", injector=injector
        )
        shares = [c.blinded_counts(["v1"]) for c in clients]
        total = np.zeros(1, dtype=np.uint64)
        for share in shares:
            total += share
        assert int(total[0]) == small_2d.n

    def test_replayed_round_with_different_nodes_is_refused(self, small_2d):
        endpoint = CollectorEndpoint(_collectors(small_2d)[0])
        from repro.federated.net import LoopbackChannel, ProtocolClient

        client = ProtocolClient(LoopbackChannel(endpoint), session="replay")
        client.connect()
        client.blinded_counts(["v1"])
        client.sync_round(0)  # rewind, as a resuming coordinator would
        with pytest.raises(RoundMismatchError, match="different node ids"):
            client.blinded_counts(["v1.0"])

    def test_skipping_a_round_is_refused(self, small_2d):
        clients = loopback_collectors(_collectors(small_2d), session="skip")
        client = clients[0]
        client.sync_round(5)
        with pytest.raises(RoundMismatchError, match="round"):
            client.blinded_counts(["v1"])


class TestTcpTransport:
    def test_real_sockets_bit_identical(self, small_2d, reference_tree):
        servers, addresses = [], []
        try:
            for i, shard in enumerate(shard_dataset(small_2d, N_SHARDS)):
                server = CollectorServer(
                    ("127.0.0.1", 0),
                    CollectorEndpoint(ShardCollector(i, N_SHARDS, shard)),
                )
                server.serve_in_thread()
                servers.append(server)
                addresses.append(("127.0.0.1", server.port))
            clients = connect_collectors(addresses, session="tcp-test")
            tree = FederatedPrivTree(clients).fit_histogram(1.0, rng=3)
            for client in clients:
                client.finish()
            assert tree_to_dict(tree) == tree_to_dict(reference_tree)
        finally:
            for server in servers:
                server.shutdown()
                server.server_close()

    def test_reconnect_resumes_the_same_session(self, small_2d):
        shard = shard_dataset(small_2d, N_SHARDS)[0]
        server = CollectorServer(
            ("127.0.0.1", 0),
            CollectorEndpoint(ShardCollector(0, N_SHARDS, shard)),
        )
        server.serve_in_thread()
        try:
            from repro.federated.net import ProtocolClient, TcpChannel

            client = ProtocolClient(
                TcpChannel("127.0.0.1", server.port), session="reconnect"
            )
            client.connect()
            client.channel.close()  # simulate a dropped coordinator socket
            client2 = ProtocolClient(
                TcpChannel("127.0.0.1", server.port), session="reconnect"
            )
            ack = client2.connect()
            assert ack["shard_id"] == 0
            client2.finish()
        finally:
            server.shutdown()
            server.server_close()
