"""Tests for the share-summing aggregator."""

import numpy as np
import pytest

from repro.federated import MASK_DTYPE, PairwiseBlinder, SecureAggregator


def _shares(per_shard_counts, seed=0):
    n = len(per_shard_counts)
    return [
        PairwiseBlinder(i, n, blinding_seed=seed).blind(np.asarray(c))
        for i, c in enumerate(per_shard_counts)
    ]


class TestAggregate:
    def test_recovers_exact_global_counts(self):
        agg = SecureAggregator(3)
        out = agg.aggregate(_shares([[5, 0, 2], [0, 1, 2], [10, 0, 2]]))
        assert out.dtype == np.int64
        assert out.tolist() == [15, 1, 6]

    def test_round_counter_increments(self):
        agg = SecureAggregator(2)
        assert agg.rounds == 0
        agg.aggregate(_shares([[1], [2]]))
        agg.aggregate(
            [
                PairwiseBlinder(0, 2, blinding_seed=0).blind(np.array([3])),
                PairwiseBlinder(1, 2, blinding_seed=0).blind(np.array([4])),
            ]
        )
        assert agg.rounds == 2

    def test_empty_round(self):
        empty = np.array([], dtype=int)
        out = SecureAggregator(2).aggregate(_shares([empty, empty]))
        assert out.shape == (0,)

    def test_rejects_single_shard(self):
        with pytest.raises(ValueError, match="at least 2"):
            SecureAggregator(1)

    def test_rejects_wrong_shard_count(self):
        with pytest.raises(ValueError, match="expected shares from 3"):
            SecureAggregator(3).aggregate(_shares([[1], [2]]))

    def test_rejects_signed_shares(self):
        with pytest.raises(ValueError, match="uint64"):
            SecureAggregator(2).aggregate(
                [np.array([1], dtype=np.int64), np.array([2], dtype=np.uint64)]
            )

    def test_rejects_misaligned_rounds(self):
        good = _shares([[1, 2], [3, 4]])
        with pytest.raises(ValueError, match="must be aligned"):
            SecureAggregator(2).aggregate([good[0], good[1][:1]])

    def test_detects_desynchronized_mask_streams(self):
        # One shard blinds with the wrong seed: the masks no longer cancel,
        # and the wrapped sum lands (with overwhelming probability) in the
        # out-of-range upper half of the ring.
        bad = [
            PairwiseBlinder(0, 2, blinding_seed=0).blind(np.array([1, 2, 3])),
            PairwiseBlinder(1, 2, blinding_seed=99).blind(np.array([4, 5, 6])),
        ]
        with pytest.raises(ValueError, match="out of sync"):
            SecureAggregator(2).aggregate(bad)

    def test_detects_skipped_round(self):
        # Shard 1 answers a round shard 0 never saw: streams are offset.
        b0 = PairwiseBlinder(0, 2, blinding_seed=0)
        b1 = PairwiseBlinder(1, 2, blinding_seed=0)
        b1.masks(3)  # shard 1 burns a round
        with pytest.raises(ValueError, match="out of sync"):
            SecureAggregator(2).aggregate(
                [b0.blind(np.array([1, 2, 3])), b1.blind(np.array([1, 2, 3]))]
            )
