"""Tests for the framed message layer, retry policy, and key exchange."""

import struct

import numpy as np
import pytest

from repro.federated.errors import FrameCorruptError, KeyExchangeError
from repro.federated.transport import (
    FRAME_FORMAT,
    FRAME_KINDS,
    FRAME_VERSION,
    MAX_FRAME_BYTES,
    MODP_GENERATOR,
    MODP_PRIME,
    DiffieHellman,
    RetryPolicy,
    decode_frame,
    derive_pair_seed,
    encode_frame,
    node_ids_digest,
    read_frame,
)


def _roundtrip(message: dict) -> dict:
    data = encode_frame(message)
    body_len, crc = struct.unpack(">II", data[:8])
    assert body_len == len(data) - 8
    return decode_frame(data[8:], crc)


class TestFraming:
    def test_roundtrip_preserves_payload(self):
        message = {"kind": "counts_request", "round": 3, "node_ids": ["v1", "v1.0"]}
        decoded = _roundtrip(message)
        assert decoded["kind"] == "counts_request"
        assert decoded["round"] == 3
        assert decoded["node_ids"] == ["v1", "v1.0"]
        assert decoded["format"] == FRAME_FORMAT
        assert decoded["version"] == FRAME_VERSION

    def test_every_declared_kind_encodes(self):
        for kind in FRAME_KINDS:
            assert _roundtrip({"kind": kind})["kind"] == kind

    def test_unknown_kind_is_refused_at_encode(self):
        with pytest.raises(ValueError, match="kind"):
            encode_frame({"kind": "totally-new-kind"})

    def test_any_flipped_body_byte_is_detected(self):
        data = bytearray(encode_frame({"kind": "heartbeat"}))
        body_len, crc = struct.unpack(">II", data[:8])
        for i in range(8, len(data)):
            corrupted = bytearray(data)
            corrupted[i] ^= 0x41
            with pytest.raises(FrameCorruptError, match="checksum"):
                decode_frame(bytes(corrupted[8:]), crc)

    def test_wrong_version_is_typed(self):
        import json
        import zlib

        body = json.dumps(
            {"format": FRAME_FORMAT, "version": 99, "kind": "heartbeat"}
        ).encode()
        with pytest.raises(FrameCorruptError, match="version"):
            decode_frame(body, zlib.crc32(body))

    def test_wrong_format_is_typed(self):
        import json
        import zlib

        body = json.dumps(
            {"format": "not.this.protocol", "version": 1, "kind": "heartbeat"}
        ).encode()
        with pytest.raises(FrameCorruptError, match="format"):
            decode_frame(body, zlib.crc32(body))

    def test_read_frame_rejects_oversized_header(self):
        header = struct.pack(">II", MAX_FRAME_BYTES + 1, 0)
        chunks = [header]

        def read_exactly(n: int) -> bytes:
            return chunks.pop(0)

        with pytest.raises(FrameCorruptError, match="exceeds"):
            read_frame(read_exactly)

    def test_digest_depends_on_order_and_content(self):
        a = node_ids_digest(["v1", "v1.0"])
        assert a == node_ids_digest(["v1", "v1.0"])
        assert a != node_ids_digest(["v1.0", "v1"])
        assert a != node_ids_digest(["v1"])


class TestRetryPolicy:
    def test_backoffs_are_bounded_full_jitter(self):
        policy = RetryPolicy(
            attempts=5, base_backoff_s=0.1, max_backoff_s=0.4, deadline_s=10
        )
        rng = np.random.default_rng(0)
        delays = list(policy.backoffs(rng.random))
        assert len(delays) == 4  # one fewer than attempts
        for i, delay in enumerate(delays):
            assert 0 <= delay <= min(0.4, 0.1 * 2**i)

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=-1)


class TestDiffieHellman:
    def test_shared_secret_agrees(self):
        a = DiffieHellman(private=1234567)
        b = DiffieHellman(private=7654321)
        assert a.shared_secret(b.public) == b.shared_secret(a.public)

    def test_public_is_group_element(self):
        dh = DiffieHellman(private=99)
        assert dh.public == pow(MODP_GENERATOR, 99, MODP_PRIME)

    def test_out_of_range_peer_is_refused(self):
        dh = DiffieHellman()
        for bogus in (0, 1, MODP_PRIME - 1, MODP_PRIME):
            with pytest.raises(KeyExchangeError):
                dh.shared_secret(bogus)

    def test_pair_seed_is_symmetric_but_session_bound(self):
        a = DiffieHellman(private=3)
        b = DiffieHellman(private=5)
        secret = a.shared_secret(b.public)
        seed = derive_pair_seed(secret, (0, 1), "s1")
        assert seed == derive_pair_seed(secret, (0, 1), "s1")
        assert seed != derive_pair_seed(secret, (0, 2), "s1")
        assert seed != derive_pair_seed(secret, (0, 1), "s2")
