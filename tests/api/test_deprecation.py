"""The legacy free functions warn, and match the new API bit-for-bit."""

import numpy as np
import pytest

from repro.api import from_spec
from repro.baselines import (
    ag_histogram,
    dawa_histogram,
    hierarchy_histogram,
    kdtree_histogram,
    privelet_histogram,
    ug_histogram,
)
from repro.domains import Box
from repro.spatial import privtree_histogram, simpletree_histogram

QUERY = Box((0.15, 0.2), (0.7, 0.85))

#: Legacy function, registry name, legacy kwargs, matching estimator params.
SHIMS = [
    (privtree_histogram, "privtree", {}, {}),
    (simpletree_histogram, "simpletree", {"height": 5, "theta": 0.0}, {"height": 5}),
    (ug_histogram, "ug", {}, {}),
    (ag_histogram, "ag", {}, {}),
    (hierarchy_histogram, "hierarchy", {}, {}),
    (
        dawa_histogram,
        "dawa",
        {"cells_per_dim": 32},
        {"cells_per_dim": 32},
    ),
    (
        privelet_histogram,
        "privelet",
        {"cells_per_dim": 32},
        {"cells_per_dim": 32},
    ),
    (kdtree_histogram, "kdtree", {"height": 4}, {"height": 4}),
]


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "legacy,name,legacy_kwargs,params",
        SHIMS,
        ids=[name for _, name, _, _ in SHIMS],
    )
    def test_warns_and_matches_new_api(
        self, legacy, name, legacy_kwargs, params, uniform_2d
    ):
        with pytest.warns(DeprecationWarning, match=f'"{name}"'):
            old = legacy(uniform_2d, 1.0, rng=np.random.default_rng(11), **legacy_kwargs)
        new = from_spec(name, epsilon=1.0, **params).fit(
            uniform_2d, rng=np.random.default_rng(11)
        )
        # The release surface answers via the flat array engine, whose
        # summation order differs from the recursive traversal by float
        # round-off only — so approx at a far-sub-noise tolerance.
        assert old.range_count(QUERY) == pytest.approx(new.query(QUERY), rel=1e-12)

    @pytest.mark.parametrize(
        "legacy,name",
        [(legacy, name) for legacy, name, _, _ in SHIMS],
        ids=[name for _, name, _, _ in SHIMS],
    )
    def test_warning_names_the_function(self, legacy, name):
        with pytest.warns(DeprecationWarning, match=f"{legacy.__name__}\\(\\) is deprecated"):
            try:
                legacy(None, 1.0)
            except DeprecationWarning:
                raise
            except Exception:
                pass  # the shim warns before the impl validates arguments

    def test_shim_keeps_public_name(self):
        assert privtree_histogram.__name__ == "privtree_histogram"
        assert "Deprecated" in privtree_histogram.__doc__
