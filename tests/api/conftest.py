"""Shared fixtures and per-method fast configurations for the API tests."""

from __future__ import annotations

import pytest

from repro.datasets import msnbclike

#: Registry name -> (input family, fast test parameters).  Every advertised
#: method appears here; a new registration without an entry fails the
#: exhaustiveness check in test_registry.
FAST_PARAMS: dict[str, tuple[str, dict]] = {
    "privtree": ("spatial", {}),
    "privtree_federated": ("spatial", {"n_shards": 3}),
    "simpletree": ("spatial", {"height": 5}),
    "ug": ("spatial", {}),
    "ag": ("spatial", {}),
    "hierarchy": ("spatial", {}),
    "dawa": ("spatial", {"cells_per_dim": 32}),
    "privelet": ("spatial", {"cells_per_dim": 32}),
    "kdtree": ("spatial", {"height": 4}),
    "pst": ("sequence", {"l_top": 8}),
    "ngram": ("sequence", {"l_top": 8, "n_max": 3}),
}


@pytest.fixture(scope="module")
def sequence_data():
    """A small browsing-history analogue."""
    return msnbclike(800, rng=3)
