"""Tests for the method registry: resolution, construction, validation."""

import dataclasses

import pytest

from repro.api import Estimator, Release, from_spec, registry

from .conftest import FAST_PARAMS

ADVERTISED = [
    "privtree",
    "privtree_federated",
    "simpletree",
    "ug",
    "ag",
    "hierarchy",
    "dawa",
    "privelet",
    "kdtree",
    "ngram",
    "pst",
]


class TestNames:
    def test_every_advertised_name_registered(self):
        assert set(ADVERTISED) <= set(registry.names())

    def test_fast_params_cover_registry(self):
        # Every registered method must have a fast test configuration, so
        # the accounting/round-trip suites stay exhaustive as methods land.
        assert set(registry.names()) == set(FAST_PARAMS)

    def test_names_sorted(self):
        assert registry.names() == sorted(registry.names())

    @pytest.mark.parametrize("name", ADVERTISED)
    def test_get_returns_estimator(self, name):
        est = registry.get(name)
        assert isinstance(est, Estimator)
        assert est.name == name
        assert est.kind in ("spatial", "sequence")

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="privtree"):
            registry.get("quadtree-deluxe")


class TestFromSpec:
    def test_configures_fields(self):
        est = from_spec("privtree", epsilon=0.25, theta=2.0)
        assert est.epsilon == 0.25
        assert est.theta == 2.0

    def test_rejects_unknown_params(self):
        with pytest.raises(TypeError, match="unknown parameter"):
            from_spec("privtree", epsilon=1.0, bogus_knob=3)

    def test_rejection_names_valid_params(self):
        with pytest.raises(TypeError, match="tree_fraction"):
            from_spec("privtree", not_a_param=1)

    @pytest.mark.parametrize("name", ADVERTISED)
    def test_all_methods_constructible_with_defaults(self, name):
        est = from_spec(name)
        assert est.epsilon == 1.0

    def test_estimators_are_frozen(self):
        est = from_spec("ug", epsilon=1.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            est.epsilon = 2.0


class TestSpecs:
    def test_specs_describe_every_method(self):
        described = {spec["name"] for spec in registry.specs()}
        assert described == set(registry.names())

    def test_specs_expose_epsilon_default(self):
        for spec in registry.specs():
            assert spec["params"].get("epsilon") == 1.0


class TestFitProducesRelease:
    @pytest.mark.parametrize("name", ADVERTISED)
    def test_fit_returns_release(self, name, uniform_2d, sequence_data):
        kind, params = FAST_PARAMS[name]
        dataset = uniform_2d if kind == "spatial" else sequence_data
        release = from_spec(name, epsilon=1.0, **params).fit(dataset, rng=0)
        assert isinstance(release, Release)
        assert release.method == name
        assert release.epsilon_spent == 1.0
        assert release.size >= 1
