"""Release artifacts: uniform query surface and JSON round-trips."""

import json

import numpy as np
import pytest

from repro.api import (
    Release,
    from_spec,
    load_release,
    release_from_json,
    save_release,
)
from repro.domains import Box

from .conftest import FAST_PARAMS

QUERY_BOXES = [
    Box((0.1, 0.1), (0.4, 0.5)),
    Box((0.0, 0.0), (1.0, 1.0)),
    Box((0.55, 0.2), (0.85, 0.95)),
]


def _release(name, uniform_2d, sequence_data, rng=0):
    kind, params = FAST_PARAMS[name]
    dataset = uniform_2d if kind == "spatial" else sequence_data
    return from_spec(name, epsilon=1.0, **params).fit(dataset, rng=rng), kind


class TestUniformSurface:
    @pytest.mark.parametrize("name", sorted(FAST_PARAMS))
    def test_query_size_and_cost(self, name, uniform_2d, sequence_data):
        release, kind = _release(name, uniform_2d, sequence_data)
        assert release.size >= 1
        assert release.epsilon_spent == 1.0
        if kind == "spatial":
            value = release.query(QUERY_BOXES[0])
        else:
            value = release.query([0, 1])
        assert np.isfinite(value)

    def test_spatial_total_roughly_n(self, uniform_2d):
        release, _ = _release("privtree", uniform_2d, None)
        total = release.query(Box((0.0, 0.0), (1.0, 1.0)))
        assert total == pytest.approx(uniform_2d.n, rel=0.2)

    def test_repr_mentions_method_and_cost(self, uniform_2d):
        release, _ = _release("ug", uniform_2d, None)
        assert "ug" in repr(release)
        assert "epsilon_spent" in repr(release)


class TestJsonRoundTrip:
    @pytest.mark.parametrize("name", sorted(FAST_PARAMS))
    def test_round_trip_preserves_queries(self, name, uniform_2d, sequence_data):
        release, kind = _release(name, uniform_2d, sequence_data)
        document = json.loads(json.dumps(release.to_json()))  # via actual JSON
        restored = release_from_json(document)
        assert type(restored) is type(release)
        assert restored.method == release.method
        assert restored.epsilon_spent == release.epsilon_spent
        assert restored.size == release.size
        if kind == "spatial":
            for box in QUERY_BOXES:
                assert restored.query(box) == pytest.approx(
                    release.query(box), rel=1e-12, abs=1e-9
                )
        else:
            for codes in ([0], [1, 2], [0, 1, 0]):
                assert restored.query(codes) == pytest.approx(
                    release.query(codes), rel=1e-12, abs=1e-9
                )

    def test_from_json_classmethod_dispatches(self, uniform_2d):
        release, _ = _release("kdtree", uniform_2d, None)
        restored = Release.from_json(release.to_json())
        assert type(restored) is type(release)

    def test_save_and_load_file(self, tmp_path, uniform_2d):
        release, _ = _release("privtree", uniform_2d, None)
        path = tmp_path / "release.json"
        save_release(release, path)
        restored = load_release(path)
        assert restored.query(QUERY_BOXES[0]) == pytest.approx(
            release.query(QUERY_BOXES[0])
        )

    def test_header_validation(self):
        with pytest.raises(ValueError, match="not a release"):
            release_from_json({"format": "something-else"})
        with pytest.raises(ValueError, match="version"):
            release_from_json({"format": "repro.release", "version": 99})
        with pytest.raises(ValueError, match="kind"):
            release_from_json(
                {"format": "repro.release", "version": 1, "kind": "nope"}
            )

    def test_missing_provenance_keys_raise(self, uniform_2d):
        """An untrusted document without method / epsilon_spent must fail
        loudly instead of silently defaulting to method="" / 0.0."""
        release, _ = _release("privtree", uniform_2d, None)
        for key in ("method", "epsilon_spent"):
            document = release.to_json()
            del document[key]
            with pytest.raises(ValueError, match=key):
                release_from_json(document)

    def test_default_query_many_returns_float64(self):
        """The fallback batch path must hand the wire layer float64 — the
        HTTP layer JSON-serializes whatever dtype comes back."""

        class MinimalRelease(Release):
            # kind left empty on purpose: not a registered wire artifact.
            @property
            def size(self):
                return 1

            def query(self, q):
                return int(q)  # an int on purpose: the fallback must coerce

            def _payload(self):
                return {}

            @classmethod
            def _from_payload(cls, payload, *, method, epsilon_spent):
                raise NotImplementedError

        release = MinimalRelease(method="minimal", epsilon_spent=0.0)
        answers = release.query_many(iter([1, 2, 3]))
        assert answers.dtype == np.float64
        assert answers.tolist() == [1.0, 2.0, 3.0]

    def test_sequence_release_sampling_survives_round_trip(self, sequence_data):
        release, _ = _release("pst", None, sequence_data)
        restored = release_from_json(release.to_json())
        a = release.sample_dataset(20, rng=5, max_length=15)
        b = restored.sample_dataset(20, rng=5, max_length=15)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
