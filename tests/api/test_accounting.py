"""Every fit debits the shared accountant by exactly its configured ε."""

import pytest

from repro.api import from_spec, registry
from repro.mechanisms import BudgetExceededError, PrivacyAccountant

from .conftest import FAST_PARAMS


def _fit(name, epsilon, accountant, uniform_2d, sequence_data, rng=0):
    kind, params = FAST_PARAMS[name]
    dataset = uniform_2d if kind == "spatial" else sequence_data
    est = from_spec(name, epsilon=epsilon, **params)
    return est.fit(dataset, accountant=accountant, rng=rng)


class TestSharedAccountant:
    @pytest.mark.parametrize("name", sorted(FAST_PARAMS))
    def test_fit_debits_exactly_epsilon(self, name, uniform_2d, sequence_data):
        epsilon = 0.7
        acct = PrivacyAccountant(10.0)
        _fit(name, epsilon, acct, uniform_2d, sequence_data)
        assert acct.spent == pytest.approx(epsilon, rel=1e-12)

    @pytest.mark.parametrize("name", sorted(FAST_PARAMS))
    def test_ledger_entries_are_method_labelled(
        self, name, uniform_2d, sequence_data
    ):
        acct = PrivacyAccountant(10.0)
        _fit(name, 1.0, acct, uniform_2d, sequence_data)
        assert acct.ledger, "fit must record at least one ledger entry"
        for label, eps in acct.ledger:
            assert label.startswith(f"{name}/"), label
            assert eps > 0

    @pytest.mark.parametrize("name", sorted(FAST_PARAMS))
    def test_over_budget_raises(self, name, uniform_2d, sequence_data):
        acct = PrivacyAccountant(0.5)
        with pytest.raises(BudgetExceededError):
            _fit(name, 1.0, acct, uniform_2d, sequence_data)

    def test_pipeline_composes_across_methods(self, uniform_2d, sequence_data):
        # The §3.4 + §4.2 splits of a multi-release pipeline appear as one
        # auditable ledger, and the budget gates the whole pipeline.
        acct = PrivacyAccountant(2.0)
        _fit("privtree", 1.0, acct, uniform_2d, sequence_data, rng=0)
        _fit("pst", 1.0, acct, uniform_2d, sequence_data, rng=1)
        assert acct.spent == pytest.approx(2.0)
        assert acct.remaining == pytest.approx(0.0, abs=1e-9)
        labels = [label for label, _ in acct.ledger]
        assert "privtree/tree structure" in labels
        assert "pst/leaf histograms" in labels
        with pytest.raises(BudgetExceededError):
            _fit("ug", 0.1, acct, uniform_2d, sequence_data)

    def test_failed_fit_refunds_the_shared_budget(self, uniform_2d):
        # AG rejects non-2-d data *after* the budget split would be debited;
        # the fit must roll its spends back so the pipeline can continue.
        from repro.datasets import nyclike

        four_d = nyclike(500, rng=0)
        assert four_d.ndim != 2
        acct = PrivacyAccountant(1.0)
        with pytest.raises(ValueError, match="2-d"):
            from_spec("ag", epsilon=1.0).fit(four_d, accountant=acct, rng=0)
        assert acct.spent == 0.0
        assert acct.ledger == []
        # The refunded budget is still usable.
        from_spec("ug", epsilon=1.0).fit(four_d, accountant=acct, rng=0)
        assert acct.spent == pytest.approx(1.0)

    def test_failed_fit_with_invalid_param_refunds(self, uniform_2d):
        acct = PrivacyAccountant(1.0)
        with pytest.raises(ValueError, match="count_mechanism"):
            from_spec("privtree", epsilon=1.0, count_mechanism="gaussian").fit(
                uniform_2d, accountant=acct, rng=0
            )
        assert acct.spent == 0.0

    def test_private_accountant_created_when_omitted(self, uniform_2d):
        release = from_spec("privtree", epsilon=0.3).fit(uniform_2d, rng=0)
        assert release.epsilon_spent == 0.3

    def test_shared_accountant_does_not_change_results(self, uniform_2d):
        # Threading an external accountant is pure bookkeeping: the release
        # is bit-identical to a fit with the implicit private accountant.
        from repro.domains import Box

        box = Box((0.1, 0.1), (0.6, 0.7))
        alone = from_spec("privtree", epsilon=1.0).fit(uniform_2d, rng=7)
        shared = from_spec("privtree", epsilon=1.0).fit(
            uniform_2d, accountant=PrivacyAccountant(5.0), rng=7
        )
        assert alone.query(box) == shared.query(box)
        assert alone.size == shared.size
