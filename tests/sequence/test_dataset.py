"""Tests for sequence datasets and l_top truncation."""

import numpy as np
import pytest

from repro.sequence import Alphabet, SequenceDataset


@pytest.fixture
def alpha() -> Alphabet:
    return Alphabet(("A", "B"))


@pytest.fixture
def small(alpha) -> SequenceDataset:
    """The Figure 3 dataset: $B&, $AB&, $AAB&, $AAAB&."""
    return SequenceDataset.from_symbols(
        alpha, [["B"], ["A", "B"], ["A", "A", "B"], ["A", "A", "A", "B"]]
    )


class TestSequenceDataset:
    def test_basic_stats(self, small):
        assert small.n == 4
        np.testing.assert_array_equal(small.lengths(), [1, 2, 3, 4])
        assert small.average_length == pytest.approx(2.5)

    def test_n_longer_than(self, small):
        assert small.n_longer_than(3) == 2  # lengths 3 and 4 reach the rule
        assert small.n_longer_than(10) == 0

    def test_length_quantile(self, small):
        # Token lengths (symbols + &) are 2,3,4,5.
        assert small.length_quantile(1.0) == 5

    def test_invalid_codes_rejected(self, alpha):
        with pytest.raises(ValueError):
            SequenceDataset(alphabet=alpha, sequences=(np.array([0, 5]),))
        with pytest.raises(ValueError):
            SequenceDataset(alphabet=alpha, sequences=(np.array([[0], [1]]),))

    def test_empty_sequence_allowed(self, alpha):
        data = SequenceDataset(alphabet=alpha, sequences=(np.array([], dtype=int),))
        assert data.lengths()[0] == 0


class TestTruncation:
    def test_no_truncation_keeps_end_marker(self, small, alpha):
        store = small.truncate(l_top=10)
        assert store.n_truncated == 0
        tokens = store.sequence_tokens(0)
        assert tokens[0] == alpha.start_code
        assert tokens[-1] == alpha.end_code

    def test_truncation_drops_end_marker(self, small, alpha):
        store = small.truncate(l_top=3)
        # Sequences with >= 3 symbols (lengths 3, 4) are truncated.
        assert store.n_truncated == 2
        longest = store.sequence_tokens(3)
        np.testing.assert_array_equal(
            longest, [alpha.start_code, 0, 0, 0]
        )  # $AAA, open-ended

    def test_token_lengths_bounded_by_l_top(self, small):
        store = small.truncate(l_top=3)
        assert (store.token_lengths() <= 3).all()

    def test_symbol_lengths(self, small):
        store = small.truncate(l_top=3)
        np.testing.assert_array_equal(store.symbol_lengths(), [1, 2, 3, 3])

    def test_prediction_positions_count(self, small):
        # Without truncation: each sequence contributes len(symbols)+1
        # prediction positions (symbols plus &): 2+3+4+5 = 14.
        store = small.truncate(l_top=10)
        positions, starts = store.prediction_positions()
        assert len(positions) == 14
        assert len(starts) == 14

    def test_prediction_positions_have_correct_starts(self, small, alpha):
        store = small.truncate(l_top=10)
        positions, starts = store.prediction_positions()
        for pos, start in zip(positions, starts):
            assert store.flat[start] == alpha.start_code
            assert start <= pos

    def test_invalid_l_top(self, small):
        with pytest.raises(ValueError):
            small.truncate(0)

    def test_empty_dataset(self, alpha):
        data = SequenceDataset(alphabet=alpha, sequences=())
        store = data.truncate(5)
        assert store.n == 0
        positions, starts = store.prediction_positions()
        assert len(positions) == 0
