"""Equivalence tests for the flat sequence engines.

Three contracts, mirroring the spatial flat-engine suite:

* vectorized gram/substring counting must equal the frozen dict references
  *exactly* (same keys, same integer counts) across randomized alphabets,
  lengths, truncations and ``n_max``;
* :class:`~repro.sequence.flat.FlatPST` must answer lookup/frequency/size
  exactly like the recursive :class:`PredictionSuffixTree` (frequency is
  the same float ops in the same order, so agreement is bit-level);
* batched generation is *identically distributed* to the scalar reference
  (different stream interleaving), checked on fixed seeds via length- and
  symbol-distribution TVD.
"""

import numpy as np
import pytest

from repro.baselines.ngram import (
    FlatNGram,
    count_grams,
    count_grams_reference,
    ngram_model,
)
from repro.sequence import (
    Alphabet,
    FlatPST,
    PredictionSuffixTree,
    SequenceDataset,
    count_substrings,
    count_substrings_reference,
    exact_pst,
    exact_top_k,
    flatten_pst,
    private_pst,
    top_k_substrings,
)
from repro.sequence.metrics import length_distribution, total_variation_distance
from repro.sequence.windows import max_packable_length


def random_dataset(seed: int, size: int | None = None, n: int = 80) -> SequenceDataset:
    gen = np.random.default_rng(seed)
    size = size or int(gen.integers(1, 7))
    sequences = tuple(
        gen.integers(0, size, size=int(gen.integers(0, 14))).astype(np.int64)
        for _ in range(n)
    )
    return SequenceDataset(alphabet=Alphabet.of_size(size), sequences=sequences)


def random_psts() -> list[PredictionSuffixTree]:
    """A varied set of released PSTs: exact and private, several alphabets."""
    psts = []
    for seed in range(3):
        data = random_dataset(seed, n=150)
        psts.append(exact_pst(data, l_top=8))
        psts.append(private_pst(data, epsilon=2.0, l_top=8, rng=seed))
    psts.append(exact_pst(random_dataset(7, size=1, n=40), l_top=5))
    return psts


class TestCountingEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_gram_counts_match_reference_exactly(self, seed):
        gen = np.random.default_rng(100 + seed)
        data = random_dataset(seed)
        for n_max in (1, 2, 3, 5):
            store = data.truncate(int(gen.integers(1, 16)))
            assert count_grams(store, n_max) == count_grams_reference(store, n_max)

    @pytest.mark.parametrize("seed", range(6))
    def test_substring_counts_match_reference_exactly(self, seed):
        data = random_dataset(seed)
        for max_length in (1, 2, 4, 7):
            assert count_substrings(data, max_length) == (
                count_substrings_reference(data, max_length)
            )

    def test_empty_and_tiny_corpora(self):
        alpha = Alphabet.of_size(3)
        empty = SequenceDataset(alphabet=alpha, sequences=(np.empty(0, np.int64),))
        assert count_substrings(empty, 4) == count_substrings_reference(empty, 4)
        store = empty.truncate(5)
        assert count_grams(store, 3) == count_grams_reference(store, 3)

    def test_counts_are_python_ints(self):
        counts = count_substrings(random_dataset(1), 3)
        assert all(type(v) is int for v in counts.values())

    def test_overflow_falls_back_to_reference(self):
        # n_max beyond the packable window must still answer (via the
        # reference), not crash or silently truncate.
        data = random_dataset(2, size=6, n=20)
        store = data.truncate(30)
        n_max = max_packable_length(data.alphabet.hist_size) + 1
        assert count_grams(store, n_max) == count_grams_reference(store, n_max)

    def test_validation(self):
        data = random_dataset(3)
        with pytest.raises(ValueError):
            count_substrings(data, 0)
        with pytest.raises(ValueError):
            count_substrings_reference(data, 0)
        with pytest.raises(ValueError):
            top_k_substrings(data, 0, 3)
        with pytest.raises(ValueError):
            top_k_substrings(data, 5, 0)


class TestTopKSubstrings:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dict_ranking_exactly(self, seed):
        # The array-native ranking must reproduce sorted-by-(-count, codes)
        # over the full dict table, ties and prefix ordering included.
        data = random_dataset(seed)
        for max_length in (1, 3, 6):
            table = count_substrings_reference(data, max_length)
            expected = sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))
            for k in (1, 7, 10_000):
                assert top_k_substrings(data, k, max_length) == expected[:k]

    def test_exact_top_k_uses_array_ranking(self):
        data = random_dataset(9)
        table = count_substrings_reference(data, 4)
        expected = [
            codes
            for codes, _ in sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))
        ][:12]
        assert exact_top_k(data, 12, max_length=4) == expected
        # Precomputed counts take the historical dict path with equal output.
        assert exact_top_k(data, 12, max_length=4, counts=table) == expected

    def test_empty_corpus(self):
        alpha = Alphabet.of_size(2)
        empty = SequenceDataset(alphabet=alpha, sequences=(np.empty(0, np.int64),))
        assert top_k_substrings(empty, 5, 3) == []


class TestFlatPSTCompilation:
    def test_mirrors_tree(self):
        for pst in random_psts():
            flat = flatten_pst(pst)
            assert flat.size == pst.size
            assert flat.height == pst.height
            contexts = {node.context for node in pst.root.iter_nodes()}
            assert {flat.node_context(i) for i in range(flat.size)} == contexts

    def test_histograms_match_nodes(self):
        pst = random_psts()[0]
        flat = pst.flat()
        by_context = {n.context: n.hist for n in pst.root.iter_nodes()}
        for i in range(flat.size):
            np.testing.assert_array_equal(
                flat.hists[i], by_context[flat.node_context(i)]
            )

    def test_flat_is_cached(self):
        pst = random_psts()[0]
        assert pst.flat() is pst.flat()

    def test_stats_cached_and_correct(self):
        pst = random_psts()[0]
        size = sum(1 for _ in pst.root.iter_nodes())
        height = max(len(n.context) for n in pst.root.iter_nodes())
        assert (pst.size, pst.height) == (size, height)
        assert pst._stats is not None  # filled by one traversal


class TestFlatPSTLookup:
    def test_lookup_matches_recursive(self):
        gen = np.random.default_rng(0)
        for pst in random_psts():
            flat = pst.flat()
            span = pst.alphabet.start_code + 1
            for _ in range(100):
                context = list(gen.integers(0, span, size=int(gen.integers(0, 7))))
                expected = pst.lookup(context).context
                assert flat.node_context(flat.lookup(context)) == expected

    def test_lookup_many_batches(self):
        pst = random_psts()[0]
        flat = pst.flat()
        gen = np.random.default_rng(1)
        contexts = [
            list(gen.integers(0, pst.alphabet.size, size=int(gen.integers(0, 6))))
            for _ in range(64)
        ]
        batched = flat.lookup_many(contexts)
        for ctx, index in zip(contexts, batched):
            assert flat.node_context(int(index)) == pst.lookup(ctx).context

    def test_empty_context_is_root(self):
        flat = random_psts()[0].flat()
        assert flat.lookup([]) == 0

    def test_out_of_range_codes_stop_the_walk(self):
        pst = random_psts()[0]
        flat = pst.flat()
        # A bogus code ends the walk exactly like a missing child does.
        assert flat.node_context(flat.lookup([99, 0])) == pst.lookup([99, 0]).context


class TestFlatPSTFrequency:
    def test_bit_identical_to_recursive(self):
        gen = np.random.default_rng(2)
        for pst in random_psts():
            flat = pst.flat()
            size = pst.alphabet.size
            queries = [
                list(gen.integers(0, size, size=int(gen.integers(1, 8))))
                for _ in range(200)
            ]
            batched = flat.frequency_many(queries)
            recursive = np.array([pst.string_frequency(q) for q in queries])
            np.testing.assert_array_equal(batched, recursive)

    def test_scalar_wrapper(self):
        pst = random_psts()[0]
        flat = pst.flat()
        assert flat.string_frequency([0]) == pst.string_frequency([0])

    def test_rejects_bad_queries(self):
        flat = random_psts()[0].flat()
        with pytest.raises(ValueError):
            flat.frequency_many([[]])
        with pytest.raises(ValueError):
            flat.frequency_many([[flat.alphabet.end_code]])

    def test_top_k_identical_to_recursive(self):
        for pst in random_psts()[:4]:
            assert flat_topk_equal(pst, k=20, max_length=5)


def flat_topk_equal(pst: PredictionSuffixTree, k: int, max_length: int) -> bool:
    return pst.flat().top_k_strings(k, max_length=max_length) == pst.top_k_strings(
        k, max_length=max_length
    )


class TestBatchedGeneration:
    def test_sequences_valid(self):
        pst = random_psts()[0]
        batch = pst.flat().sample_dataset(300, rng=0, max_length=12)
        assert len(batch) == 300
        size = pst.alphabet.size
        for seq in batch:
            assert seq.dtype == np.int64
            assert len(seq) <= 12
            assert ((seq >= 0) & (seq < size)).all()

    def test_distribution_matches_reference(self):
        # Fixed seed: the batched engine must reproduce the scalar
        # reference's law — compare length and unigram distributions of two
        # large samples by TVD (noise floor ~sqrt(bins / n)).
        data = random_dataset(11, size=4, n=400)
        pst = exact_pst(data, l_top=8)
        n = 4000
        batch = pst.flat().sample_dataset(n, rng=123, max_length=10)
        reference = pst.sample_dataset(n, rng=456, max_length=10)
        lengths_tvd = total_variation_distance(
            length_distribution([len(s) for s in batch], max_length=11),
            length_distribution([len(s) for s in reference], max_length=11),
        )
        assert lengths_tvd < 0.12
        flat_syms = np.concatenate([s for s in batch if len(s)])
        ref_syms = np.concatenate([s for s in reference if len(s)])
        sym_tvd = total_variation_distance(
            np.bincount(flat_syms, minlength=4) / flat_syms.size,
            np.bincount(ref_syms, minlength=4) / ref_syms.size,
        )
        assert sym_tvd < 0.08

    def test_deterministic_under_fixed_seed(self):
        flat = random_psts()[0].flat()
        a = flat.sample_dataset(50, rng=9, max_length=10)
        b = flat.sample_dataset(50, rng=9, max_length=10)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_max_length_cap(self):
        flat = random_psts()[0].flat()
        assert all(len(s) <= 3 for s in flat.sample_dataset(100, rng=4, max_length=3))


class TestFlatNGram:
    @pytest.fixture
    def model(self):
        return ngram_model(
            random_dataset(5, size=4, n=400), epsilon=10.0, l_top=10, n_max=3, rng=0
        )

    def test_compiled_and_cached(self, model):
        assert isinstance(model.flat(), FlatNGram)
        assert model.flat() is model.flat()

    def test_unigram_total_cached(self, model):
        expected = sum(v for g, v in model.counts.items() if len(g) == 1)
        assert model.unigram_total() == expected
        assert model._unigram_total == expected

    def test_conditional_row_matches_scalar(self, model):
        gen = np.random.default_rng(3)
        end = model.alphabet.end_code
        for _ in range(30):
            context = tuple(
                int(c) for c in gen.integers(0, 4, size=int(gen.integers(0, 3)))
            )
            row = model.conditional_row(context)
            scalar = [model._conditional(context, c) for c in range(end + 1)]
            np.testing.assert_array_equal(row, scalar)

    def test_sequences_valid(self, model):
        batch = model.flat().sample_dataset(200, rng=1)
        assert len(batch) == 200
        for seq in batch:
            assert len(seq) <= model.l_top
            assert ((seq >= 0) & (seq < model.alphabet.size)).all()

    def test_distribution_matches_reference(self, model):
        n = 3000
        batch = model.flat().sample_dataset(n, rng=21, max_length=10)
        reference = model.sample_dataset(n, rng=42, max_length=10)
        tvd = total_variation_distance(
            length_distribution([len(s) for s in batch], max_length=11),
            length_distribution([len(s) for s in reference], max_length=11),
        )
        assert tvd < 0.12

    def test_unigram_only_model(self):
        model = ngram_model(
            random_dataset(6, size=3, n=200), epsilon=5.0, l_top=6, n_max=1, rng=0
        )
        batch = model.flat().sample_dataset(100, rng=2)
        assert len(batch) == 100
        assert all(((s >= 0) & (s < 3)).all() for s in batch)
