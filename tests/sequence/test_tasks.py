"""Tests for substring counting and exact top-k mining."""

import pytest

from repro.sequence import Alphabet, SequenceDataset, count_substrings, exact_top_k


@pytest.fixture
def alpha() -> Alphabet:
    return Alphabet(("A", "B"))


@pytest.fixture
def data(alpha) -> SequenceDataset:
    # AAB, AB: substrings — A x3, B x2, AA x1, AB x2, AAB x1.
    return SequenceDataset.from_symbols(alpha, [["A", "A", "B"], ["A", "B"]])


class TestCountSubstrings:
    def test_counts_occurrences_not_sequences(self, data):
        counts = count_substrings(data, max_length=3)
        assert counts[(0,)] == 3  # A occurs three times in total
        assert counts[(1,)] == 2
        assert counts[(0, 0)] == 1
        assert counts[(0, 1)] == 2
        assert counts[(0, 0, 1)] == 1

    def test_repeated_occurrences_in_one_sequence(self, alpha):
        data = SequenceDataset.from_symbols(alpha, [["A", "A", "A"]])
        counts = count_substrings(data, max_length=2)
        assert counts[(0,)] == 3
        assert counts[(0, 0)] == 2  # overlapping occurrences both count

    def test_max_length_respected(self, data):
        counts = count_substrings(data, max_length=2)
        assert (0, 0, 1) not in counts

    def test_invalid_max_length(self, data):
        with pytest.raises(ValueError):
            count_substrings(data, max_length=0)


class TestExactTopK:
    def test_ordering(self, data):
        top = exact_top_k(data, k=3)
        assert top[0] == (0,)  # A: 3
        # B and AB tie at 2; lexicographic tiebreak puts (0,1) before (1,).
        assert set(top[1:]) == {(1,), (0, 1)}
        assert top[1] == (0, 1)

    def test_k_larger_than_candidates(self, alpha):
        tiny = SequenceDataset.from_symbols(alpha, [["A"]])
        top = exact_top_k(tiny, k=100)
        assert top == [(0,)]

    def test_deterministic(self, data):
        assert exact_top_k(data, k=5) == exact_top_k(data, k=5)

    def test_invalid_k(self, data):
        with pytest.raises(ValueError):
            exact_top_k(data, k=0)
