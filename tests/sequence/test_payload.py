"""Tests for the PST node payload (Equation 13 score, occurrence filtering)."""

import numpy as np
import pytest

from repro.sequence import (
    Alphabet,
    PSTNodeData,
    SequenceDataset,
    equation_13_score,
)


@pytest.fixture
def alpha() -> Alphabet:
    return Alphabet(("A", "B"))


@pytest.fixture
def store(alpha):
    data = SequenceDataset.from_symbols(
        alpha, [["B"], ["A", "B"], ["A", "A", "B"], ["A", "A", "A", "B"]]
    )
    return data.truncate(l_top=10)


class TestEquation13:
    def test_definition(self):
        assert equation_13_score(np.array([6, 4, 4])) == 8.0

    def test_zero_for_empty(self):
        assert equation_13_score(np.array([0, 0, 0])) == 0.0
        assert equation_13_score(np.array([])) == 0.0

    def test_small_when_dominated(self):
        # Low entropy: one count dominates -> small score (condition C3).
        assert equation_13_score(np.array([100, 1, 0])) == 1.0

    def test_small_when_small_magnitude(self):
        # Small magnitude -> small score (condition C2).
        assert equation_13_score(np.array([1, 1, 1])) == 2.0


class TestPSTNodeData:
    def test_root_score_fig3(self, store):
        root = PSTNodeData.root(store)
        assert root.score() == 8.0  # 14 - 6

    def test_root_hist(self, store):
        np.testing.assert_array_equal(PSTNodeData.root(store).hist(), [6, 4, 4])

    def test_split_produces_fanout_children(self, store, alpha):
        children = PSTNodeData.root(store).split()
        assert len(children) == alpha.pst_fanout  # |I| + 1 = 3
        contexts = {c.context for c in children}
        assert contexts == {(0,), (1,), (alpha.start_code,)}

    def test_children_partition_occurrences(self, store):
        root = PSTNodeData.root(store)
        children = root.split()
        assert sum(len(c.occurrences) for c in children) == len(root.occurrences)

    def test_monotone_score_lemma_4_1(self, store):
        # Lemma 4.1: c(child) <= c(parent), recursively checked.
        frontier = [PSTNodeData.root(store)]
        while frontier:
            node = frontier.pop()
            if not node.can_split() or len(node.context) > 3:
                continue
            for child in node.split():
                assert child.score() <= node.score() + 1e-12
                frontier.append(child)

    def test_start_prefixed_cannot_split(self, store, alpha):
        start_child = [
            c
            for c in PSTNodeData.root(store).split()
            if c.context[0] == alpha.start_code
        ][0]
        assert not start_child.can_split()
        with pytest.raises(ValueError):
            start_child.split()

    def test_grandchild_contexts_prepend(self, store, alpha):
        a_child = PSTNodeData.root(store).split()[0]  # context (A,)
        grand = a_child.split()
        contexts = {g.context for g in grand}
        assert contexts == {
            (0, 0),
            (1, 0),
            (alpha.start_code, 0),
        }

    def test_hist_cached(self, store):
        root = PSTNodeData.root(store)
        assert root.hist() is root.hist()

    def test_truncated_store_counts(self, alpha):
        # $AAAB& truncated at l_top=3 becomes $AAA: the final A has no
        # successor in the histogram sense... it *is* a prediction position
        # whose own preceding context exists; positions = 3 tokens.
        data = SequenceDataset.from_symbols(alpha, [["A", "A", "A", "B"]])
        store = data.truncate(3)
        root = PSTNodeData.root(store)
        # Tokens: $ A A A -> prediction positions are the three As.
        np.testing.assert_array_equal(root.hist(), [3, 0, 0])
