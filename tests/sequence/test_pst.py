"""Tests for the PST: the Figure 3 worked example and query/sampling logic."""

import numpy as np
import pytest

from repro.sequence import (
    Alphabet,
    PredictionSuffixTree,
    SequenceDataset,
    exact_pst,
)


@pytest.fixture
def alpha() -> Alphabet:
    return Alphabet(("A", "B"))


@pytest.fixture
def fig3(alpha) -> SequenceDataset:
    """The paper's Figure 3 dataset: $B&, $AB&, $AAB&, $AAAB&."""
    return SequenceDataset.from_symbols(
        alpha, [["B"], ["A", "B"], ["A", "A", "B"], ["A", "A", "A", "B"]]
    )


@pytest.fixture
def fig3_pst(fig3) -> PredictionSuffixTree:
    return exact_pst(fig3, l_top=10, split_threshold=-1.0, max_context=2)


def hist_of(pst, context_symbols, alpha):
    codes = tuple(alpha.code_of(s) for s in context_symbols)
    for node in pst.root.iter_nodes():
        if node.context == codes:
            return node.hist
    raise AssertionError(f"node {context_symbols} not found")


class TestFigure3:
    def test_root_histogram(self, fig3_pst, alpha):
        # hist(v1): A:6, B:4, &:4
        np.testing.assert_allclose(hist_of(fig3_pst, [], alpha), [6, 4, 4])

    def test_node_a(self, fig3_pst, alpha):
        # hist(v3) with dom = A: A:3, B:3, &:0
        np.testing.assert_allclose(hist_of(fig3_pst, ["A"], alpha), [3, 3, 0])

    def test_node_aa(self, fig3_pst, alpha):
        # hist(v6) with dom = AA: A:1, B:2, &:0
        np.testing.assert_allclose(hist_of(fig3_pst, ["A", "A"], alpha), [1, 2, 0])

    def test_node_start_a(self, fig3_pst, alpha):
        # hist(v5) with dom = $A: A:2, B:1, &:0
        np.testing.assert_allclose(hist_of(fig3_pst, ["$", "A"], alpha), [2, 1, 0])

    def test_node_ba_empty(self, fig3_pst, alpha):
        # hist(v7) with dom = BA: all zero
        np.testing.assert_allclose(hist_of(fig3_pst, ["B", "A"], alpha), [0, 0, 0])

    def test_node_b(self, fig3_pst, alpha):
        # hist(v4) with dom = B: A:0, B:0, &:4
        np.testing.assert_allclose(hist_of(fig3_pst, ["B"], alpha), [0, 0, 4])

    def test_node_start(self, fig3_pst, alpha):
        # hist(v2) with dom = $: A:3, B:1, &:0
        np.testing.assert_allclose(hist_of(fig3_pst, ["$"], alpha), [3, 1, 0])

    def test_query_ab_worked_example(self, fig3_pst):
        # Section 4.1's worked example: freq(AB) = 6 * 3/6 = 3.
        assert fig3_pst.string_frequency_of(["A", "B"]) == pytest.approx(3.0)

    def test_children_partition_occurrences(self, fig3_pst):
        for node in fig3_pst.root.iter_nodes():
            if not node.is_leaf:
                child_sum = sum(c.hist for c in node.children.values())
                np.testing.assert_allclose(child_sum, node.hist)


class TestLookup:
    def test_longest_suffix_match(self, fig3_pst, alpha):
        # Context "AA" should land on the AA node.
        node = fig3_pst.lookup([alpha.code_of("A"), alpha.code_of("A")])
        assert node.context == (alpha.code_of("A"), alpha.code_of("A"))

    def test_unknown_context_falls_back(self, fig3_pst, alpha):
        # Context "AAA": the tree only reaches depth 2, so the walk stops at
        # the longest recorded suffix AA.
        a = alpha.code_of("A")
        node = fig3_pst.lookup([a, a, a])
        assert node.context == (a, a)

    def test_empty_context_is_root(self, fig3_pst):
        assert fig3_pst.lookup([]) is fig3_pst.root


class TestQueries:
    def test_single_symbol_frequency(self, fig3_pst):
        assert fig3_pst.string_frequency_of(["A"]) == pytest.approx(6.0)
        assert fig3_pst.string_frequency_of(["B"]) == pytest.approx(4.0)

    def test_longer_string(self, fig3_pst):
        # freq(AA): 6 * P(A|A) = 6 * 3/6 = 3 (true count: 3).
        assert fig3_pst.string_frequency_of(["A", "A"]) == pytest.approx(3.0)

    def test_zero_probability_string(self, fig3_pst, alpha):
        # "BA" never occurs: after B the histogram gives & only.
        assert fig3_pst.string_frequency_of(["B", "A"]) == pytest.approx(0.0)

    def test_rejects_bad_queries(self, fig3_pst, alpha):
        with pytest.raises(ValueError):
            fig3_pst.string_frequency([])
        with pytest.raises(ValueError):
            fig3_pst.string_frequency([alpha.end_code])


class TestSampling:
    def test_samples_match_support(self, fig3_pst, alpha):
        # The model was built from A*B sequences; samples should be A*B.
        gen = np.random.default_rng(0)
        for _ in range(50):
            seq = fig3_pst.sample_sequence(gen, max_length=20)
            decoded = "".join(alpha.decode(seq))
            assert set(decoded) <= {"A", "B"}
            if "B" in decoded:
                assert decoded.endswith("B")
                assert "BA" not in decoded and "BB" not in decoded

    def test_max_length_cap(self, fig3_pst):
        seq = fig3_pst.sample_sequence(rng=1, max_length=2)
        assert len(seq) <= 2

    def test_sample_dataset_size(self, fig3_pst):
        assert len(fig3_pst.sample_dataset(7, rng=2)) == 7


class TestTopK:
    def test_top1_is_most_frequent_symbol(self, fig3_pst, alpha):
        top = fig3_pst.top_k_strings(1)
        assert top[0][0] == (alpha.code_of("A"),)

    def test_estimates_non_increasing(self, fig3_pst):
        top = fig3_pst.top_k_strings(6)
        ests = [est for _, est in top]
        assert all(a >= b - 1e-9 for a, b in zip(ests, ests[1:]))

    def test_k_results_returned(self, fig3_pst):
        assert len(fig3_pst.top_k_strings(5)) == 5

    def test_invalid_k(self, fig3_pst):
        with pytest.raises(ValueError):
            fig3_pst.top_k_strings(0)


class TestStructureProperties:
    def test_size_and_height(self, fig3_pst):
        # root + children {A, B, $} + grandchildren of A and B (3 each;
        # the $ child cannot split): 1 + 3 + 6 = 10.
        assert fig3_pst.size == 10
        assert fig3_pst.height == 2

    def test_start_prefixed_nodes_are_leaves(self, fig3_pst, alpha):
        for node in fig3_pst.root.iter_nodes():
            if node.context and node.context[0] == alpha.start_code:
                assert node.is_leaf
