"""Tests for the Markov-model API over PSTs."""

import math

import numpy as np
import pytest

from repro.sequence import (
    Alphabet,
    MarkovModel,
    SequenceDataset,
    exact_pst,
    private_pst,
)


@pytest.fixture
def alpha() -> Alphabet:
    return Alphabet(("A", "B"))


@pytest.fixture
def fig3(alpha) -> SequenceDataset:
    return SequenceDataset.from_symbols(
        alpha, [["B"], ["A", "B"], ["A", "A", "B"], ["A", "A", "A", "B"]]
    )


@pytest.fixture
def model(fig3) -> MarkovModel:
    pst = exact_pst(fig3, l_top=10, split_threshold=-1.0, max_context=2)
    return MarkovModel(pst=pst, smoothing=1e-9)


class TestPrediction:
    def test_distribution_sums_to_one(self, model):
        dist = model.predict_distribution([0])
        assert dist.sum() == pytest.approx(1.0)
        assert dist.shape == (3,)  # A, B, &

    def test_after_a_distribution(self, model):
        # hist(A) = [3, 3, 0]: P(A|A) = P(B|A) = 1/2 (tiny smoothing).
        dist = model.predict_distribution([0])
        assert dist[0] == pytest.approx(0.5, abs=1e-6)
        assert dist[1] == pytest.approx(0.5, abs=1e-6)

    def test_after_b_always_ends(self, model):
        # hist(B) = [0, 0, 4]: the next "symbol" is & almost surely.
        dist = model.predict_distribution([1])
        assert dist[2] == pytest.approx(1.0, abs=1e-6)

    def test_start_context(self, model, alpha):
        # hist($) = [3, 1, 0].
        dist = model.predict_after_start()
        assert dist[0] == pytest.approx(0.75, abs=1e-6)
        assert dist[1] == pytest.approx(0.25, abs=1e-6)

    def test_start_marker_only_first(self, model, alpha):
        with pytest.raises(ValueError):
            model.predict_distribution([0, alpha.start_code])

    def test_invalid_codes(self, model):
        with pytest.raises(ValueError):
            model.predict_distribution([99])


class TestLikelihood:
    def test_sequence_probability_decomposes(self, model):
        # P($B&) = P(B|$) * P(&|B) = 0.25 * 1.0.
        ll = model.sequence_log_likelihood([1])
        assert ll == pytest.approx(math.log(0.25), abs=1e-5)

    def test_longer_sequence(self, model):
        # P($AB&) = P(A|$) * P(B|$A) * P(&|AB) = .75 * (1/3) * 1.
        ll = model.sequence_log_likelihood([0, 1])
        assert ll == pytest.approx(math.log(0.75 / 3.0), abs=1e-4)

    def test_dataset_likelihood_sums(self, model, fig3):
        total = model.dataset_log_likelihood(fig3)
        per_seq = sum(model.sequence_log_likelihood(s) for s in fig3.sequences)
        assert total == pytest.approx(per_seq)

    def test_rejects_sentinels_in_sequence(self, model, alpha):
        with pytest.raises(ValueError):
            model.sequence_log_likelihood([alpha.end_code])


class TestPerplexity:
    def test_training_data_perplexity_reasonable(self, model, fig3):
        # A binary-alphabet model cannot beat perplexity 1; the Fig-3 data
        # is almost deterministic, so perplexity should be small.
        perplexity = model.perplexity(fig3)
        assert 1.0 <= perplexity < 2.5

    def test_better_model_lower_perplexity(self, fig3):
        sharp = MarkovModel(
            pst=exact_pst(fig3, l_top=10, split_threshold=-1.0, max_context=2),
            smoothing=1e-6,
        )
        flat = MarkovModel(
            pst=exact_pst(fig3, l_top=10, split_threshold=1e9, max_context=2),
            smoothing=1e-6,
        )
        assert sharp.perplexity(fig3) < flat.perplexity(fig3)

    def test_private_model_perplexity_improves_with_epsilon(self):
        gen = np.random.default_rng(3)
        alpha = Alphabet(("A", "B"))
        seqs = tuple(
            np.array([0] * int(gen.integers(1, 6)) + [1], dtype=np.int64)
            for _ in range(2000)
        )
        data = SequenceDataset(alphabet=alpha, sequences=seqs)
        perps = {}
        for eps in (0.05, 8.0):
            vals = [
                MarkovModel(private_pst(data, eps, l_top=10, rng=s)).perplexity(data)
                for s in range(3)
            ]
            perps[eps] = float(np.mean(vals))
        assert perps[8.0] <= perps[0.05]

    def test_empty_dataset_rejected(self, model, alpha):
        with pytest.raises(ValueError):
            model.perplexity(SequenceDataset(alphabet=alpha, sequences=()))

    def test_alphabet_mismatch_rejected(self, model):
        other = SequenceDataset(
            alphabet=Alphabet.of_size(5), sequences=(np.array([0]),)
        )
        with pytest.raises(ValueError):
            model.dataset_log_likelihood(other)


class TestSmoothing:
    def test_invalid_smoothing(self, model):
        with pytest.raises(ValueError):
            MarkovModel(pst=model.pst, smoothing=0.0)

    def test_smoothing_floors_zero_counts(self, model):
        # After B the histogram has zero A-count; smoothing keeps P(A|B) > 0.
        heavy = MarkovModel(pst=model.pst, smoothing=1.0)
        assert heavy.predict_distribution([1])[0] > 0.0
