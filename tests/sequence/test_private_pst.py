"""Tests for the modified PrivTree PST pipeline (Section 4.2)."""

import numpy as np
import pytest

from repro.sequence import Alphabet, SequenceDataset, exact_pst, private_pst


@pytest.fixture
def alpha() -> Alphabet:
    return Alphabet(("A", "B"))


@pytest.fixture
def markov_data(alpha) -> SequenceDataset:
    """2000 sequences from a 2-state Markov chain with heavy A->A mass."""
    gen = np.random.default_rng(5)
    transition = {0: [0.7, 0.2, 0.1], 1: [0.3, 0.4, 0.3]}  # A, B, stop
    initial = [0.8, 0.2]
    seqs = []
    for _ in range(2000):
        seq = [int(gen.choice(2, p=initial))]
        while len(seq) < 30:
            step = int(gen.choice(3, p=transition[seq[-1]]))
            if step == 2:
                break
            seq.append(step)
        seqs.append(np.asarray(seq))
    return SequenceDataset(alphabet=alpha, sequences=tuple(seqs), name="markov")


class TestPrivatePST:
    def test_histograms_nonnegative(self, markov_data):
        pst = private_pst(markov_data, epsilon=1.0, l_top=30, rng=0)
        for node in pst.root.iter_nodes():
            assert (node.hist >= 0).all()

    def test_internal_hist_is_child_sum(self, markov_data):
        # Before clamping internal = sum of leaves; after clamping the root
        # can only have grown. Verify consistency within clamping tolerance.
        pst = private_pst(markov_data, epsilon=1.0, l_top=30, rng=0)
        for node in pst.root.iter_nodes():
            if not node.is_leaf:
                child_sum = sum(c.hist for c in node.children.values())
                assert (node.hist <= child_sum + 1e-9).all()

    def test_total_mass_in_right_ballpark(self, markov_data):
        # Root magnitude ~ total prediction positions (symbols + &).
        pst = private_pst(markov_data, epsilon=1.0, l_top=30, rng=1)
        exact_total = sum(len(s) + 1 for s in markov_data.sequences)
        assert pst.root.magnitude == pytest.approx(exact_total, rel=0.25)

    def test_deterministic_given_seed(self, markov_data):
        a = private_pst(markov_data, epsilon=0.5, l_top=30, rng=42)
        b = private_pst(markov_data, epsilon=0.5, l_top=30, rng=42)
        assert a.size == b.size
        np.testing.assert_allclose(a.root.hist, b.root.hist)

    def test_deeper_model_with_more_budget(self, markov_data):
        sizes = {}
        for eps in (0.1, 8.0):
            sizes[eps] = np.mean(
                [
                    private_pst(markov_data, epsilon=eps, l_top=30, rng=s).size
                    for s in range(5)
                ]
            )
        assert sizes[8.0] >= sizes[0.1]

    def test_high_epsilon_approaches_exact_frequencies(self, markov_data, alpha):
        pst = private_pst(markov_data, epsilon=200.0, l_top=30, rng=0)
        exact_count = sum(
            (np.asarray(s) == alpha.code_of("A")).sum() for s in markov_data.sequences
        )
        assert pst.string_frequency_of(["A"]) == pytest.approx(
            float(exact_count), rel=0.05
        )

    def test_sampling_produces_valid_sequences(self, markov_data, alpha):
        pst = private_pst(markov_data, epsilon=2.0, l_top=30, rng=3)
        for seq in pst.sample_dataset(20, rng=4, max_length=30):
            assert all(0 <= c < alpha.size for c in seq)
            assert len(seq) <= 30


class TestExactPST:
    def test_threshold_controls_size(self, markov_data):
        big = exact_pst(markov_data, l_top=30, split_threshold=0.0, max_context=4)
        small = exact_pst(markov_data, l_top=30, split_threshold=500.0, max_context=4)
        assert small.size < big.size

    def test_no_noise_in_exact_pst(self, markov_data, alpha):
        pst = exact_pst(markov_data, l_top=30, split_threshold=0.0, max_context=4)
        counts = pst.root.hist
        exact_a = sum(
            (np.asarray(s) == alpha.code_of("A")).sum() for s in markov_data.sequences
        )
        assert counts[alpha.code_of("A")] == exact_a
