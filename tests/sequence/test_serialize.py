"""Tests for PST serialization."""

import json

import numpy as np
import pytest

from repro.sequence import (
    Alphabet,
    SequenceDataset,
    load_pst,
    private_pst,
    pst_from_dict,
    pst_to_dict,
    save_pst,
)


@pytest.fixture
def model():
    alpha = Alphabet(("A", "B"))
    gen = np.random.default_rng(4)
    seqs = tuple(
        gen.choice(2, size=int(gen.integers(1, 10))).astype(np.int64)
        for _ in range(500)
    )
    data = SequenceDataset(alphabet=alpha, sequences=seqs, name="ser")
    return private_pst(data, epsilon=2.0, l_top=12, rng=0)


class TestRoundTrip:
    def test_structure_preserved(self, model):
        restored = pst_from_dict(pst_to_dict(model))
        assert restored.size == model.size
        assert restored.height == model.height
        assert restored.alphabet == model.alphabet

    def test_histograms_preserved(self, model):
        restored = pst_from_dict(pst_to_dict(model))
        np.testing.assert_allclose(restored.root.hist, model.root.hist)

    def test_query_answers_preserved(self, model):
        restored = pst_from_dict(pst_to_dict(model))
        for codes in [(0,), (1,), (0, 1), (1, 1, 0)]:
            assert restored.string_frequency(codes) == pytest.approx(
                model.string_frequency(codes)
            )

    def test_sampling_identical_given_seed(self, model):
        restored = pst_from_dict(pst_to_dict(model))
        a = model.sample_sequence(rng=5, max_length=20)
        b = restored.sample_sequence(rng=5, max_length=20)
        np.testing.assert_array_equal(a, b)

    def test_file_roundtrip(self, model, tmp_path):
        path = tmp_path / "pst.json"
        save_pst(model, path)
        restored = load_pst(path)
        assert restored.size == model.size
        # The document must be plain JSON with a header.
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro.prediction_suffix_tree"
        assert doc["alphabet"] == ["A", "B"]


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            pst_from_dict({"format": "nope", "version": 1})

    def test_wrong_version_rejected(self, model):
        doc = pst_to_dict(model)
        doc["version"] = 0
        with pytest.raises(ValueError):
            pst_from_dict(doc)


def _doc(root, alphabet=("A", "B")):
    return {
        "format": "repro.prediction_suffix_tree",
        "version": 1,
        "alphabet": list(alphabet),
        "root": root,
    }


class TestMalformedDocuments:
    """Untrusted PST artifacts must fail at load with clear errors."""

    def test_non_finite_hist_rejected(self):
        for bad in (float("nan"), float("inf")):
            root = {"context": [], "hist": [1.0, 2.0, bad]}
            with pytest.raises(ValueError, match="non-finite histogram"):
                pst_from_dict(_doc(root))

    def test_wrong_hist_width_rejected(self):
        # Alphabet ("A", "B") predicts over I u {&}: exactly 3 entries.
        root = {"context": [], "hist": [1.0, 2.0]}
        with pytest.raises(ValueError, match="3"):
            pst_from_dict(_doc(root))

    def test_non_numeric_hist_rejected(self):
        root = {"context": [], "hist": ["many", 1.0, 2.0]}
        with pytest.raises(ValueError, match="numeric 'hist'"):
            pst_from_dict(_doc(root))

    def test_child_context_must_extend_parent(self):
        root = {
            "context": [],
            "hist": [1.0, 2.0, 3.0],
            "children": {"0": {"context": [1], "hist": [1.0, 1.0, 1.0]}},
        }
        with pytest.raises(ValueError, match="does not\\s+extend"):
            pst_from_dict(_doc(root))

    def test_non_integer_child_key_rejected(self):
        root = {
            "context": [],
            "hist": [1.0, 2.0, 3.0],
            "children": {"zero": {"context": [0], "hist": [1.0, 1.0, 1.0]}},
        }
        with pytest.raises(ValueError, match="non-integer child key"):
            pst_from_dict(_doc(root))

    def test_missing_root_rejected(self):
        doc = _doc({"context": [], "hist": [1.0, 1.0, 1.0]})
        del doc["root"]
        with pytest.raises(ValueError, match="root"):
            pst_from_dict(doc)

    def test_missing_or_bad_alphabet_rejected(self):
        doc = _doc({"context": [], "hist": [1.0, 1.0, 1.0]})
        del doc["alphabet"]
        with pytest.raises(ValueError, match="alphabet"):
            pst_from_dict(doc)
        bad = _doc({"context": [], "hist": [1.0]})
        bad["alphabet"] = 7
        with pytest.raises(ValueError, match="alphabet"):
            pst_from_dict(bad)

    def test_valid_nested_document_still_loads(self, model):
        restored = pst_from_dict(json.loads(json.dumps(pst_to_dict(model))))
        assert restored.size == model.size
