"""Tests for PST serialization."""

import json

import numpy as np
import pytest

from repro.sequence import (
    Alphabet,
    SequenceDataset,
    load_pst,
    private_pst,
    pst_from_dict,
    pst_to_dict,
    save_pst,
)


@pytest.fixture
def model():
    alpha = Alphabet(("A", "B"))
    gen = np.random.default_rng(4)
    seqs = tuple(
        gen.choice(2, size=int(gen.integers(1, 10))).astype(np.int64)
        for _ in range(500)
    )
    data = SequenceDataset(alphabet=alpha, sequences=seqs, name="ser")
    return private_pst(data, epsilon=2.0, l_top=12, rng=0)


class TestRoundTrip:
    def test_structure_preserved(self, model):
        restored = pst_from_dict(pst_to_dict(model))
        assert restored.size == model.size
        assert restored.height == model.height
        assert restored.alphabet == model.alphabet

    def test_histograms_preserved(self, model):
        restored = pst_from_dict(pst_to_dict(model))
        np.testing.assert_allclose(restored.root.hist, model.root.hist)

    def test_query_answers_preserved(self, model):
        restored = pst_from_dict(pst_to_dict(model))
        for codes in [(0,), (1,), (0, 1), (1, 1, 0)]:
            assert restored.string_frequency(codes) == pytest.approx(
                model.string_frequency(codes)
            )

    def test_sampling_identical_given_seed(self, model):
        restored = pst_from_dict(pst_to_dict(model))
        a = model.sample_sequence(rng=5, max_length=20)
        b = restored.sample_sequence(rng=5, max_length=20)
        np.testing.assert_array_equal(a, b)

    def test_file_roundtrip(self, model, tmp_path):
        path = tmp_path / "pst.json"
        save_pst(model, path)
        restored = load_pst(path)
        assert restored.size == model.size
        # The document must be plain JSON with a header.
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro.prediction_suffix_tree"
        assert doc["alphabet"] == ["A", "B"]


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            pst_from_dict({"format": "nope", "version": 1})

    def test_wrong_version_rejected(self, model):
        doc = pst_to_dict(model)
        doc["version"] = 0
        with pytest.raises(ValueError):
            pst_from_dict(doc)
