"""Tests for alphabets and symbol encoding."""

import numpy as np
import pytest

from repro.sequence import Alphabet, END_SYMBOL, START_SYMBOL


class TestAlphabet:
    def test_codes_layout(self):
        alpha = Alphabet(("A", "B", "C"))
        assert alpha.size == 3
        assert alpha.end_code == 3
        assert alpha.start_code == 4
        assert alpha.hist_size == 4
        assert alpha.pst_fanout == 4

    def test_code_roundtrip(self):
        alpha = Alphabet(("x", "y"))
        for sym in ("x", "y", END_SYMBOL, START_SYMBOL):
            assert alpha.symbol_of(alpha.code_of(sym)) == sym

    def test_encode_decode(self):
        alpha = Alphabet(("a", "b"))
        codes = alpha.encode(["a", "b", "a"])
        np.testing.assert_array_equal(codes, [0, 1, 0])
        assert alpha.decode(codes) == ["a", "b", "a"]

    def test_encode_rejects_sentinels(self):
        alpha = Alphabet(("a",))
        with pytest.raises(ValueError):
            alpha.encode(["a", END_SYMBOL])

    def test_unknown_symbol(self):
        alpha = Alphabet(("a",))
        with pytest.raises(KeyError):
            alpha.code_of("z")
        with pytest.raises(KeyError):
            alpha.symbol_of(99)

    def test_of_size(self):
        alpha = Alphabet.of_size(7)
        assert alpha.size == 7
        assert len(set(alpha.symbols)) == 7

    def test_invalid_alphabets(self):
        with pytest.raises(ValueError):
            Alphabet(())
        with pytest.raises(ValueError):
            Alphabet(("a", "a"))
        with pytest.raises(ValueError):
            Alphabet(("a", END_SYMBOL))
        with pytest.raises(ValueError):
            Alphabet.of_size(0)
