"""Tests for sequence task metrics."""

import numpy as np
import pytest

from repro.sequence import (
    length_distribution,
    top_k_precision,
    total_variation_distance,
)


class TestPrecision:
    def test_perfect_match(self):
        exact = [(0,), (1,), (0, 1)]
        assert top_k_precision(exact, exact) == 1.0

    def test_partial_match(self):
        exact = [(0,), (1,), (2,), (3,)]
        returned = [(0,), (1,), (9,), (8,)]
        assert top_k_precision(exact, returned) == pytest.approx(0.5)

    def test_no_match(self):
        assert top_k_precision([(0,)], [(1,)]) == 0.0

    def test_empty_exact_rejected(self):
        with pytest.raises(ValueError):
            top_k_precision([], [(0,)])


class TestLengthDistribution:
    def test_simple_histogram(self):
        dist = length_distribution([1, 1, 2, 3], max_length=4)
        np.testing.assert_allclose(dist, [0, 0.5, 0.25, 0.25, 0])

    def test_clamping_above_max(self):
        dist = length_distribution([1, 10], max_length=3)
        assert dist[3] == pytest.approx(0.5)

    def test_sums_to_one(self):
        gen = np.random.default_rng(0)
        dist = length_distribution(gen.integers(0, 20, 100), max_length=25)
        assert dist.sum() == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            length_distribution([], max_length=5)


class TestTotalVariation:
    def test_identical_distributions(self):
        p = np.array([0.5, 0.5])
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation_distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)

    def test_known_value(self):
        assert total_variation_distance(
            np.array([0.6, 0.4]), np.array([0.4, 0.6])
        ) == pytest.approx(0.2)

    def test_symmetry(self, rng):
        p = rng.dirichlet(np.ones(8))
        q = rng.dirichlet(np.ones(8))
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([0.5, 0.5]), np.array([1.0]))
        with pytest.raises(ValueError):
            total_variation_distance(np.array([0.9, 0.3]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            total_variation_distance(np.array([1.5, -0.5]), np.array([0.5, 0.5]))
