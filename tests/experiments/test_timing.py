"""Tests for the Table 4 timing harness."""

from repro.experiments import format_seconds, run_privtree_timing


class TestTiming:
    def test_columns_and_positive_times(self):
        res = run_privtree_timing(
            dataset_names=["beijing", "msnbc"],
            epsilons=[0.4],
            n_reps=1,
            dataset_n=2_000,
            rng=0,
        )
        assert res.columns == ["beijing", "msnbc"]
        assert all(v > 0 for col in res.columns for v in res.values[col])

    def test_table_formats_seconds(self):
        res = run_privtree_timing(
            dataset_names=["beijing"],
            epsilons=[0.4],
            n_reps=1,
            dataset_n=2_000,
            rng=0,
        )
        assert "s" in res.to_table(format_seconds)
