"""`repro bench --compare` against incomplete or malformed baselines.

The perf surface grows over time, so a freshly added case is routinely
absent from the committed baseline; old or hand-edited baselines may also
hold garbage where a case dict is expected.  The compare path must warn
and keep going in every such case — a KeyError here would turn "we added
a benchmark" into a red CI run.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.perf import (
    REGRESSION_THRESHOLD,
    bench_regression_failures,
    compare_bench_results,
)


def _results(**cases: float) -> dict:
    return {"cases": {name: {"optimized_s": s} for name, s in cases.items()}}


class TestCompareBenchResults:
    def test_case_missing_from_baseline_is_listed_as_new(self):
        table, n_regressions = compare_bench_results(
            _results(old=0.010, brand_new=0.5), _results(old=0.010)
        )
        assert n_regressions == 0
        assert "brand_new" in table
        assert "(new case)" in table
        assert "no case regressed" in table

    @pytest.mark.parametrize(
        "baseline",
        [
            {},
            {"cases": None},
            {"cases": []},
            {"config": {"n_points": 1}},
            [],
            "junk",
            None,
        ],
    )
    def test_malformed_baseline_documents_never_crash(self, baseline):
        table, n_regressions = compare_bench_results(_results(a=0.01), baseline)
        assert n_regressions == 0
        assert "(new case)" in table

    @pytest.mark.parametrize(
        "entry",
        [
            0.010,  # bare number where a case dict is expected
            {"optimized_s": "fast"},
            {"optimized_s": True},
            {"optimized_s": None},
            {"reference_s": 0.010},  # no optimized_s at all
            None,
        ],
    )
    def test_malformed_baseline_entries_read_as_missing(self, entry):
        baseline = {"cases": {"a": entry}}
        table, n_regressions = compare_bench_results(_results(a=0.01), baseline)
        assert n_regressions == 0
        assert "(new case)" in table

    def test_regression_still_flagged_alongside_a_new_case(self):
        results = _results(slow=0.030, brand_new=0.5)
        baseline = _results(slow=0.010)
        table, n_regressions = compare_bench_results(results, baseline)
        assert n_regressions == 1
        assert "WARNING" in table
        assert "(new case)" in table
        assert REGRESSION_THRESHOLD < 0.030 / 0.010

    def test_case_missing_from_current_run_is_listed(self):
        table, n_regressions = compare_bench_results(
            _results(a=0.01), _results(a=0.01, retired=0.02)
        )
        assert n_regressions == 0
        assert "retired" in table
        assert "(missing from current run)" in table


class TestBenchRegressionFailures:
    def test_missing_and_malformed_cases_never_fail_the_gate(self):
        results = _results(brand_new=10.0, mangled=10.0)
        baseline = {"cases": {"mangled": {"optimized_s": "oops"}}}
        assert bench_regression_failures(results, baseline, 1.5) == []

    def test_real_regression_still_fails(self):
        results = _results(slow=0.030, brand_new=10.0)
        baseline = _results(slow=0.010)
        failures = bench_regression_failures(results, baseline, 1.5)
        assert [name for name, _ in failures] == ["slow"]
        assert failures[0][1] == pytest.approx(3.0)

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            bench_regression_failures(_results(a=0.01), _results(a=0.01), 0.0)


class TestBenchCompareCLIWarning:
    """`repro bench --compare` warns (exit 0) on a baseline missing a case."""

    FAKE = {
        "config": {"n_points": 100},
        "cases": {
            "old_case": {"optimized_s": 0.010},
            "new_case": {"optimized_s": 0.020},
        },
    }

    def test_warns_and_gate_stays_green(self, monkeypatch, capsys, tmp_path):
        monkeypatch.setattr(
            "repro.experiments.run_perf_bench", lambda **kwargs: dict(self.FAKE)
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"cases": {"old_case": {"optimized_s": 0.010}}}))
        code = main(
            ["bench", "--compare", str(baseline), "--fail-above", "1.5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "WARNING: baseline" in out
        assert "no entry for new_case" in out
        assert "regenerate the baseline" in out
        assert "regression gate passed" in out

    def test_no_warning_when_baseline_is_complete(self, monkeypatch, capsys, tmp_path):
        monkeypatch.setattr(
            "repro.experiments.run_perf_bench", lambda **kwargs: dict(self.FAKE)
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(self.FAKE))
        code = main(["bench", "--compare", str(baseline)])
        out = capsys.readouterr().out
        assert code == 0
        assert "WARNING: baseline" not in out
