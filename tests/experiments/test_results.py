"""Tests for the sweep-result container and formatting."""

import math

import pytest

from repro.experiments import (
    SweepResult,
    format_float,
    format_percent,
    format_seconds,
)


class TestFormatting:
    def test_percent(self):
        assert format_percent(0.0234) == "2.34%"
        assert format_percent(1.5) == "150.00%"

    def test_seconds(self):
        assert format_seconds(0.0012) == "0.0012s"
        assert format_seconds(1.234) == "1.234s"

    def test_float(self):
        assert format_float(0.5) == "0.5000"


class TestSweepResult:
    @pytest.fixture
    def result(self) -> SweepResult:
        res = SweepResult(
            title="demo", row_label="epsilon", rows=[0.1, 0.8], columns=[]
        )
        res.add_column("A", [0.5, 0.25])
        res.add_column("B", [0.4, 0.2])
        return res

    def test_add_column_validates_length(self, result):
        with pytest.raises(ValueError):
            result.add_column("C", [1.0])

    def test_value_lookup(self, result):
        assert result.value("A", 0.8) == 0.25

    def test_table_contains_all_cells(self, result):
        table = result.to_table(format_percent)
        assert "demo" in table
        assert "50.00%" in table
        assert "20.00%" in table
        assert "epsilon" in table
        assert "A" in table and "B" in table

    def test_table_renders_nan_as_dash(self, result):
        result.add_column("C", [float("nan"), 0.1])
        table = result.to_table(format_percent)
        assert "--" in table

    def test_replacing_column_keeps_single_header(self, result):
        result.add_column("A", [0.9, 0.8])
        assert result.columns.count("A") == 1
        assert result.value("A", 0.1) == 0.9

    def test_rows_preserved(self, result):
        assert result.rows == [0.1, 0.8]
