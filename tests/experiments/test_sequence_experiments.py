"""Light end-to-end runs of the sequence experiment harness."""

import numpy as np

from repro.experiments import (
    run_frequency_error_experiment,
    run_length_distribution_experiment,
    run_ngram_height_ablation,
    run_topk_experiment,
)

LIGHT = dict(epsilons=[0.2, 1.6], n_reps=1, dataset_n=3_000, rng=0)


class TestFrequencyErrorExperiment:
    def test_columns_and_rows(self):
        res = run_frequency_error_experiment("msnbc", n_queries=30, **LIGHT)
        assert res.columns == ["PrivTree", "N-gram"]
        assert res.rows == [0.2, 1.6]

    def test_errors_non_negative_and_finite(self):
        res = run_frequency_error_experiment("msnbc", n_queries=30, **LIGHT)
        for col in res.columns:
            assert all(np.isfinite(v) and v >= 0.0 for v in res.values[col])

    def test_matches_manual_workload_scoring(self):
        """The sweep's number is exactly the unified metric over the typed
        workload (same answer path as the serving layer)."""
        from repro.api import from_spec
        from repro.datasets import SEQUENCE_DATASETS
        from repro.mechanisms.rng import ensure_rng, spawn
        from repro.queries import (
            SMOOTHING_FRACTION,
            StringFrequency,
            Workload,
            workload_error,
        )
        from repro.sequence.tasks import top_k_substrings

        res = run_frequency_error_experiment(
            "msnbc", n_queries=20, epsilons=[0.8], n_reps=1, dataset_n=2_000, rng=7
        )
        spec = SEQUENCE_DATASETS["msnbc"]
        gen = ensure_rng(7)
        dataset = spec.make(2_000, rng=gen)
        ranked = top_k_substrings(dataset, 20, 8)
        workload = Workload.of([StringFrequency(codes=c) for c, _ in ranked])
        exacts = np.asarray([count for _, count in ranked], dtype=float)
        # Replay the sweep's rng stream: one spawn per (method, epsilon).
        rep_rng = next(iter(spawn(ensure_rng(gen.integers(2**32)), 1)))
        release = from_spec("pst", epsilon=0.8, l_top=spec.l_top).fit(
            dataset, rng=rep_rng
        )
        expected = workload_error(
            release, workload, exacts, SMOOTHING_FRACTION * dataset.n
        )
        assert res.value("PrivTree", 0.8) == expected


class TestTopkExperiment:
    def test_columns_and_rows(self):
        res = run_topk_experiment("msnbc", k=20, **LIGHT)
        assert res.columns == ["Truncate", "PrivTree", "N-gram", "EM"]
        assert res.rows == [0.2, 1.6]

    def test_precisions_are_probabilities(self):
        res = run_topk_experiment("msnbc", k=20, **LIGHT)
        for col in res.columns:
            assert all(0.0 <= v <= 1.0 for v in res.values[col])

    def test_truncate_constant_across_epsilon(self):
        res = run_topk_experiment("mooc", k=20, **LIGHT)
        truncate = res.values["Truncate"]
        assert truncate[0] == truncate[1]

    def test_privtree_beats_em_at_high_epsilon(self):
        res = run_topk_experiment("msnbc", k=20, **LIGHT)
        assert res.value("PrivTree", 1.6) >= res.value("EM", 1.6)


class TestLengthDistributionExperiment:
    def test_columns(self):
        res = run_length_distribution_experiment(
            "msnbc", n_synthetic=500, **LIGHT
        )
        assert res.columns == ["Truncate", "PrivTree", "N-gram"]

    def test_tvds_in_unit_interval(self):
        res = run_length_distribution_experiment(
            "msnbc", n_synthetic=500, **LIGHT
        )
        for col in res.columns:
            assert all(0.0 <= v <= 1.0 for v in res.values[col])

    def test_truncate_tvd_positive(self):
        # Truncation removes tail mass, so its TVD must be visible (> 0).
        res = run_length_distribution_experiment(
            "msnbc", n_synthetic=500, **LIGHT
        )
        assert res.values["Truncate"][0] > 0.0


class TestNgramHeightAblation:
    def test_columns(self):
        res = run_ngram_height_ablation("msnbc", k=20, heights=(3, 5), **LIGHT)
        assert res.columns == ["h=3", "h=5"]

    def test_values_finite(self):
        res = run_ngram_height_ablation("msnbc", k=20, heights=(3, 5), **LIGHT)
        for col in res.columns:
            assert all(np.isfinite(res.values[col]))
