"""The load generator and the synthetic serving-scale histogram."""

import json
import threading

import numpy as np
import pytest

from repro.api import from_spec
from repro.experiments import LoadError, run_load
from repro.experiments.perf import synthetic_flat_histogram
from repro.serve import ReleaseStore, SynopsisHTTPServer
from repro.spatial.flat import FlatHistogram


class TestSyntheticFlatHistogram:
    def test_node_count_is_complete_quadtree(self):
        flat = synthetic_flat_histogram(depth=2)
        assert flat.lows.shape[0] == (4**3 - 1) // 3  # 21 nodes

    def test_children_tile_their_parent(self):
        flat = synthetic_flat_histogram(depth=3)
        m = flat.lows.shape[0]
        for node in range(m):
            start, stop = flat.child_offsets[node], flat.child_offsets[node + 1]
            children = flat.child_index[start:stop]
            if len(children) == 0:
                continue
            assert len(children) == 4
            # Each child sits inside the parent, and their areas sum to it.
            assert (flat.lows[children] >= flat.lows[node] - 1e-12).all()
            assert (flat.highs[children] <= flat.highs[node] + 1e-12).all()
            extents = flat.highs[children] - flat.lows[children]
            parent_extent = flat.highs[node] - flat.lows[node]
            assert np.isclose(extents.prod(axis=1).sum(), parent_extent.prod())

    def test_round_trips_through_pointer_tree(self):
        flat = synthetic_flat_histogram(depth=2)
        rebuilt = FlatHistogram.from_tree(flat.to_tree())
        # Layout changes (level-order -> pre-order) but the histogram is
        # the same: total count and root box are preserved.
        assert rebuilt.lows.shape == flat.lows.shape
        assert np.isclose(rebuilt.counts.sum(), flat.counts.sum())
        assert np.array_equal(rebuilt.lows[0], flat.lows[0])
        assert np.array_equal(rebuilt.highs[0], flat.highs[0])


@pytest.fixture
def running_server(tmp_path, uniform_2d):
    release = from_spec("privtree", epsilon=1.0).fit(uniform_2d, rng=0)
    store = ReleaseStore(tmp_path / "store")
    release_id = store.put(release, release_id="load-target")
    httpd = SynopsisHTTPServer(("127.0.0.1", 0), store, cache_size=2, quiet=True)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd.server_address[1], release_id, release
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)


class TestRunLoad:
    def test_counts_and_latency_fields(self, running_server):
        port, release_id, _ = running_server
        payload = json.dumps(
            {"queries": [{"low": [0.2, 0.2], "high": [0.6, 0.6]}] * 5}
        ).encode()
        result = run_load(
            "127.0.0.1",
            port,
            release_id,
            payload,
            content_type="application/json",
            queries_per_batch=5,
            clients=2,
            batches_per_client=3,
            timeout_s=30.0,
        )
        assert result.clients == 2
        assert result.batches == 6
        assert result.queries == 30
        assert result.queries_per_s > 0
        assert 0 < result.p50_ms <= result.p99_ms
        assert result.to_json()["queries"] == 30

    def test_non_200_raises_load_error(self, running_server):
        port, _, _ = running_server
        payload = json.dumps({"queries": []}).encode()
        with pytest.raises(LoadError):
            run_load(
                "127.0.0.1",
                port,
                "no-such-release",
                payload,
                content_type="application/json",
                queries_per_batch=0,
                clients=1,
                batches_per_client=1,
                timeout_s=10.0,
            )

    def test_rejects_nonpositive_concurrency(self, running_server):
        port, release_id, _ = running_server
        with pytest.raises(ValueError):
            run_load(
                "127.0.0.1",
                port,
                release_id,
                b"{}",
                content_type="application/json",
                queries_per_batch=1,
                clients=0,
            )

    def test_rejects_nonpositive_batches(self, running_server):
        port, release_id, _ = running_server
        with pytest.raises(ValueError, match="batches_per_client"):
            run_load(
                "127.0.0.1",
                port,
                release_id,
                b"{}",
                content_type="application/json",
                queries_per_batch=1,
                batches_per_client=0,
            )

    def test_error_names_the_status_and_body(self, running_server):
        port, _, _ = running_server
        with pytest.raises(LoadError) as excinfo:
            run_load(
                "127.0.0.1",
                port,
                "no-such-release",
                json.dumps({"queries": []}).encode(),
                content_type="application/json",
                queries_per_batch=0,
                clients=1,
                batches_per_client=1,
                timeout_s=10.0,
            )
        cause = excinfo.value.__cause__
        assert isinstance(cause, LoadError)
        assert "404" in str(cause)
        assert "no-such-release" in str(cause)


class TestRunLoadTransportFailures:
    def test_connection_refused_raises_load_error(self):
        import socket

        # Bind-and-close to find a port with nothing listening on it.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(LoadError, match="client\\(s\\) failed") as excinfo:
            run_load(
                "127.0.0.1",
                dead_port,
                "any",
                b"{}",
                content_type="application/json",
                queries_per_batch=1,
                clients=2,
                batches_per_client=1,
                timeout_s=5.0,
            )
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_truncated_response_body_raises_load_error(self):
        import socket

        # A one-shot stub server that advertises a 512-byte binary body,
        # sends 10 bytes, and hangs up: the client's drain must surface
        # the truncation as a LoadError, never report a throughput.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def one_truncated_response():
            conn, _ = listener.accept()
            conn.recv(65536)  # the request; content is irrelevant
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/octet-stream\r\n"
                b"Content-Length: 512\r\n"
                b"\r\n" + b"\x00" * 10
            )
            conn.close()

        server = threading.Thread(target=one_truncated_response, daemon=True)
        server.start()
        try:
            with pytest.raises(LoadError) as excinfo:
                run_load(
                    "127.0.0.1",
                    port,
                    "truncated",
                    b"\x00" * 4,
                    content_type="application/octet-stream",
                    queries_per_batch=1,
                    clients=1,
                    batches_per_client=2,
                    timeout_s=5.0,
                )
        finally:
            server.join(timeout=5)
            listener.close()
        import http.client

        assert isinstance(
            excinfo.value.__cause__, (http.client.IncompleteRead, OSError)
        )
