"""Light end-to-end runs of the spatial experiment harness."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER_EPSILONS,
    run_ag_gridsize_ablation,
    run_fanout_ablation,
    run_hierarchy_height_ablation,
    run_range_query_experiment,
    run_ug_gridsize_ablation,
    spatial_method_registry,
)

LIGHT = dict(epsilons=[0.2, 1.6], n_reps=1, n_queries=30, dataset_n=6_000, rng=0)


class TestMethodRegistry:
    def test_2d_includes_ag_and_hierarchy(self):
        methods = spatial_method_registry(2)
        assert {"PrivTree", "UG", "DAWA", "Privelet", "AG", "Hierarchy"} == set(
            methods
        )

    def test_4d_excludes_2d_only_methods(self):
        methods = spatial_method_registry(4)
        assert "AG" not in methods
        assert "Hierarchy" not in methods
        assert "PrivTree" in methods


class TestRangeQueryExperiment:
    def test_full_method_set_on_gowalla(self):
        res = run_range_query_experiment("gowalla", "medium", **LIGHT)
        assert set(res.columns) == set(spatial_method_registry(2))
        assert res.rows == [0.2, 1.6]
        for col in res.columns:
            assert all(np.isfinite(res.values[col]))

    def test_4d_dataset(self):
        res = run_range_query_experiment("beijing", "large", **LIGHT)
        assert "AG" not in res.columns
        assert all(v >= 0 for v in res.values["PrivTree"])

    def test_paper_epsilons_default(self):
        assert PAPER_EPSILONS == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]


class TestAblations:
    def test_fanout_ablation_2d(self):
        res = run_fanout_ablation("gowalla", "medium", **LIGHT)
        assert set(res.columns) == {"beta=2^2", "beta=2^1"}

    def test_fanout_ablation_4d(self):
        res = run_fanout_ablation("beijing", "medium", **LIGHT)
        assert set(res.columns) == {"beta=2^4", "beta=2^2", "beta=2^1"}

    def test_ug_ablation_columns(self):
        res = run_ug_gridsize_ablation(
            "gowalla", "medium", size_factors=(1 / 3, 1.0, 3.0), **LIGHT
        )
        assert res.columns == ["r=0.333333", "r=1", "r=3"]

    def test_ag_ablation_rejects_4d(self):
        with pytest.raises(ValueError):
            run_ag_gridsize_ablation("nyc", "medium", **LIGHT)

    def test_ag_ablation_runs_2d(self):
        res = run_ag_gridsize_ablation(
            "gowalla", "medium", size_factors=(1.0, 3.0), **LIGHT
        )
        assert len(res.columns) == 2

    def test_hierarchy_ablation(self):
        res = run_hierarchy_height_ablation(
            "gowalla", "medium", heights=(3, 5), **LIGHT
        )
        assert res.columns == ["h=3", "h=5"]

    def test_hierarchy_ablation_rejects_4d(self):
        with pytest.raises(ValueError):
            run_hierarchy_height_ablation("beijing", "medium", **LIGHT)
