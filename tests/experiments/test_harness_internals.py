"""Tests for experiment-harness internals that figures silently rely on."""

import numpy as np

from repro.baselines.ngram import count_grams
from repro.experiments.sequence_tasks import _truncated_dataset
from repro.sequence import Alphabet, SequenceDataset


class TestTruncatedDataset:
    def test_lengths_capped(self):
        alpha = Alphabet.of_size(3)
        seqs = tuple(
            np.array([0] * n, dtype=np.int64) for n in (2, 5, 9, 12)
        )
        data = SequenceDataset(alphabet=alpha, sequences=seqs)
        truncated = _truncated_dataset(data, l_top=6)
        assert list(truncated.lengths()) == [2, 5, 6, 6]

    def test_short_sequences_untouched(self):
        alpha = Alphabet.of_size(2)
        seqs = (np.array([0, 1, 0], dtype=np.int64),)
        data = SequenceDataset(alphabet=alpha, sequences=seqs)
        truncated = _truncated_dataset(data, l_top=10)
        np.testing.assert_array_equal(truncated.sequences[0], [0, 1, 0])

    def test_no_sentinels_leak(self):
        alpha = Alphabet.of_size(2)
        seqs = tuple(np.zeros(8, dtype=np.int64) for _ in range(4))
        data = SequenceDataset(alphabet=alpha, sequences=seqs)
        truncated = _truncated_dataset(data, l_top=5)
        for seq in truncated.sequences:
            assert (seq < alpha.size).all()


class TestCountGrams:
    def test_simple_counts(self):
        alpha = Alphabet(("A", "B"))
        data = SequenceDataset.from_symbols(alpha, [["A", "A", "B"]])
        grams = count_grams(data.truncate(10), n_max=2)
        assert grams[(0,)] == 2
        assert grams[(0, 0)] == 1
        assert grams[(0, 1)] == 1
        # Terminal grams include &.
        assert grams[(1, alpha.end_code)] == 1

    def test_end_marker_only_terminal(self):
        alpha = Alphabet(("A",))
        data = SequenceDataset.from_symbols(alpha, [["A", "A"]])
        grams = count_grams(data.truncate(10), n_max=3)
        assert all(alpha.end_code not in g[:-1] for g in grams)

    def test_truncated_sequences_have_no_end_gram(self):
        alpha = Alphabet(("A",))
        data = SequenceDataset.from_symbols(alpha, [["A"] * 10])
        grams = count_grams(data.truncate(4), n_max=2)
        assert (0, alpha.end_code) not in grams
        assert grams[(0,)] == 4

    def test_matches_brute_force_on_random_data(self):
        gen = np.random.default_rng(0)
        alpha = Alphabet.of_size(3)
        seqs = tuple(
            gen.integers(0, 3, size=int(gen.integers(1, 8))).astype(np.int64)
            for _ in range(40)
        )
        data = SequenceDataset(alphabet=alpha, sequences=seqs)
        store = data.truncate(10)
        grams = count_grams(store, n_max=3)
        # Brute force: enumerate windows over [symbols..., &] per sequence.
        brute: dict[tuple[int, ...], int] = {}
        for i in range(store.n):
            body = [int(c) for c in store.sequence_tokens(i)[1:]]
            for start in range(len(body)):
                for length in range(1, min(3, len(body) - start) + 1):
                    gram = tuple(body[start : start + length])
                    if alpha.end_code in gram[:-1]:
                        continue
                    brute[gram] = brute.get(gram, 0) + 1
        assert grams == brute
