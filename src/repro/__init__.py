"""repro — a reproduction of PrivTree (Zhang, Xiao, Xie; SIGMOD 2016).

Differentially private hierarchical decompositions without a pre-defined
recursion-depth limit, applied to spatial histograms and Markov models over
sequence data, together with the baselines and experiments of the paper.

Quickstart::

    import numpy as np
    from repro import SpatialDataset, privtree_histogram
    from repro.domains import Box

    points = np.random.default_rng(0).normal(0.5, 0.1, size=(10_000, 2))
    data = SpatialDataset(points.clip(0, 0.999), Box.unit(2), name="demo")
    synopsis = privtree_histogram(data, epsilon=1.0, rng=0)
    print(synopsis.range_count(Box((0.4, 0.4), (0.6, 0.6))))
"""

from .core import (
    DecompositionTree,
    PrivTreeParams,
    TreeNode,
    privtree,
    simpletree,
)
from .mechanisms import PrivacyAccountant, ensure_rng
from .sequence import (
    Alphabet,
    PredictionSuffixTree,
    SequenceDataset,
    private_pst,
)
from .spatial import (
    HistogramTree,
    SpatialDataset,
    average_relative_error,
    generate_workload,
    privtree_histogram,
    simpletree_histogram,
)

__version__ = "1.0.0"

__all__ = [
    "Alphabet",
    "DecompositionTree",
    "HistogramTree",
    "PredictionSuffixTree",
    "PrivTreeParams",
    "PrivacyAccountant",
    "SequenceDataset",
    "SpatialDataset",
    "TreeNode",
    "average_relative_error",
    "ensure_rng",
    "generate_workload",
    "private_pst",
    "privtree",
    "privtree_histogram",
    "simpletree",
    "simpletree_histogram",
    "__version__",
]
