"""repro — a reproduction of PrivTree (Zhang, Xiao, Xie; SIGMOD 2016).

Differentially private hierarchical decompositions without a pre-defined
recursion-depth limit, applied to spatial histograms and Markov models over
sequence data, together with the baselines and experiments of the paper.

The public surface is the unified estimator/release API of :mod:`repro.api`:
every method — PrivTree, the grid baselines, the sequence models — is an
:class:`~repro.api.Estimator` resolved by name from a registry, and every
``fit`` debits a shared :class:`PrivacyAccountant` and returns a
:class:`~repro.api.Release` that answers queries and round-trips through
JSON.

Quickstart::

    import numpy as np
    from repro import SpatialDataset, from_spec
    from repro.domains import Box

    points = np.random.default_rng(0).normal(0.5, 0.1, size=(10_000, 2))
    data = SpatialDataset(points.clip(0, 0.999), Box.unit(2), name="demo")
    release = from_spec("privtree", epsilon=1.0).fit(data, rng=0)
    print(release.query(Box((0.4, 0.4), (0.6, 0.6))))
    print(release.epsilon_spent, release.size)

The historical free functions (``privtree_histogram`` and friends) remain
importable as deprecated shims that produce identical results.
"""

from . import api, federated, queries, serve
from .api import Estimator, Release, from_spec
from .queries import Workload
from .core import (
    DecompositionTree,
    PrivTreeParams,
    TreeNode,
    privtree,
    simpletree,
)
from .mechanisms import BudgetExceededError, PrivacyAccountant, ensure_rng
from .sequence import (
    Alphabet,
    PredictionSuffixTree,
    SequenceDataset,
    private_pst,
)
from .spatial import (
    HistogramTree,
    SpatialDataset,
    average_relative_error,
    generate_workload,
    privtree_histogram,
    simpletree_histogram,
)

__version__ = "1.3.0"

__all__ = [
    "Alphabet",
    "BudgetExceededError",
    "DecompositionTree",
    "Estimator",
    "HistogramTree",
    "PredictionSuffixTree",
    "PrivTreeParams",
    "PrivacyAccountant",
    "Release",
    "SequenceDataset",
    "SpatialDataset",
    "TreeNode",
    "Workload",
    "api",
    "average_relative_error",
    "ensure_rng",
    "federated",
    "from_spec",
    "generate_workload",
    "private_pst",
    "privtree",
    "privtree_histogram",
    "queries",
    "serve",
    "simpletree",
    "simpletree_histogram",
    "__version__",
]
