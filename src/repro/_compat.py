"""Deprecation plumbing for the legacy free-function surface.

The public API of this package is now :mod:`repro.api` — estimators resolved
from a registry whose ``fit`` produces a :class:`~repro.api.Release`.  The
historical free functions (``privtree_histogram``, ``ug_histogram``, ...)
remain importable from their original locations as thin shims that emit a
:class:`DeprecationWarning` and delegate to the shared implementation, so
old call sites keep producing bit-identical results.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable, TypeVar

__all__ = ["deprecated_shim"]

F = TypeVar("F", bound=Callable)


def deprecated_shim(impl: F, public_name: str, registry_name: str) -> F:
    """Wrap ``impl`` as the deprecated public function ``public_name``.

    The shim forwards all arguments unchanged (results are identical to the
    new API under the same rng) and points callers at the registry entry
    that replaces it.
    """
    message = (
        f"{public_name}() is deprecated; use "
        f'repro.api.from_spec("{registry_name}", epsilon=...).fit(dataset, rng=...) '
        f"instead"
    )

    @functools.wraps(impl)
    def shim(*args, **kwargs):
        warnings.warn(message, DeprecationWarning, stacklevel=2)
        return impl(*args, **kwargs)

    shim.__name__ = public_name
    shim.__qualname__ = public_name
    shim.__doc__ = (
        f"Deprecated: use ``repro.api.from_spec({registry_name!r}, ...)``.\n\n"
        + (impl.__doc__ or "")
    )
    return shim
