"""The :class:`Workload` container: an ordered batch of typed queries.

A workload is what the paper's evaluation actually measures — a batch of
queries answered together.  The container keeps query order, validates
every element against a release domain in one pass, and compiles
homogeneous runs into the contiguous encodings the flat engines consume
(see :mod:`repro.queries.answer`), so ``release.answer(workload)`` is one
vectorized dispatch instead of N scalar calls.

Answers come back as one flat ``float64`` vector — each query contributes
``result_size(domain)`` consecutive entries (1 for scalar queries,
``n_bins`` for marginals, ``hist_size`` for next-symbol rows); use
:meth:`Workload.split` to recover the per-query groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from ..domains.box import Box
from .types import Query, QueryValidationError, RangeCount, StringFrequency

__all__ = ["Workload"]


@dataclass(frozen=True)
class Workload:
    """An ordered, immutable batch of typed queries."""

    queries: tuple[Query, ...]

    def __post_init__(self) -> None:
        queries = tuple(self.queries)
        for i, query in enumerate(queries):
            if not isinstance(query, Query):
                raise TypeError(
                    f"workload element {i} is {type(query).__name__}, not a Query"
                )
        object.__setattr__(self, "queries", queries)

    # -- construction ---------------------------------------------------

    @staticmethod
    def of(queries: Sequence[Query]) -> "Workload":
        """A workload from any sequence of typed queries."""
        return Workload(tuple(queries))

    @staticmethod
    def ranges(boxes: Sequence[Box]) -> "Workload":
        """The classic spatial workload: one :class:`RangeCount` per box.

        The direct migration of ``release.query_many(boxes)``:
        ``release.answer(Workload.ranges(boxes))`` returns the same
        floats in the same order.
        """
        return Workload(tuple(RangeCount.of(box) for box in boxes))

    @staticmethod
    def strings(code_lists: Sequence[Sequence[int]]) -> "Workload":
        """The classic sequence workload: one :class:`StringFrequency` per
        coded string (the migration of ``query_many(code_lists)``)."""
        return Workload(tuple(StringFrequency(codes=tuple(c)) for c in code_lists))

    @staticmethod
    def coerce(value: Any) -> "Workload":
        """A workload from a workload, a single query, or a query sequence."""
        if isinstance(value, Workload):
            return value
        if isinstance(value, Query):
            return Workload((value,))
        return Workload.of(tuple(value))

    # -- container protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> Query:
        return self.queries[index]

    # -- introspection ---------------------------------------------------

    @property
    def type_tags(self) -> tuple[str, ...]:
        """The distinct query type tags present, in first-appearance order."""
        seen: dict[str, None] = {}
        for query in self.queries:
            seen.setdefault(query.type_tag, None)
        return tuple(seen)

    @property
    def families(self) -> tuple[str, ...]:
        """The input families present (``"spatial"`` / ``"sequence"``)."""
        seen: dict[str, None] = {}
        for query in self.queries:
            seen.setdefault(query.family, None)
        return tuple(seen)

    def validate(self, domain: Any) -> None:
        """Validate every query against a release domain.

        Raises :class:`~repro.queries.QueryValidationError` naming the
        first offending query's position.
        """
        for i, query in enumerate(self.queries):
            try:
                query.validate(domain)
            except QueryValidationError as exc:
                raise QueryValidationError(
                    f"workload query {i}: {exc}", index=i
                ) from None

    def result_sizes(self, domain: Any) -> np.ndarray:
        """Per-query answer lengths over ``domain`` (``intp`` vector)."""
        return np.asarray(
            [query.result_size(domain) for query in self.queries], dtype=np.intp
        )

    def result_size(self, domain: Any) -> int:
        """Total length of the flat answer vector over ``domain``."""
        return int(self.result_sizes(domain).sum())

    def split(self, answers: np.ndarray, domain: Any) -> list[np.ndarray]:
        """Cut a flat answer vector back into per-query answer arrays."""
        sizes = self.result_sizes(domain)
        answers = np.asarray(answers)
        if answers.shape != (int(sizes.sum()),):
            raise ValueError(
                f"answers has shape {answers.shape}, workload expects "
                f"({int(sizes.sum())},)"
            )
        return np.split(answers, np.cumsum(sizes)[:-1])

    def group_answers(self, answers: np.ndarray, domain: Any) -> list[Any]:
        """Per-query JSON-ready answers: a bare ``float`` for scalar
        queries, a ``list[float]`` for vector queries (marginals,
        next-symbol rows).

        This is the one definition of the wire response shape — the HTTP
        service and the ``repro query`` CLI both encode through it.
        """
        out: list[Any] = []
        for query, group in zip(self.queries, self.split(answers, domain)):
            if query.vector_result:
                out.append([float(v) for v in group])
            else:
                out.append(float(group[0]))
        return out

    # -- wire form --------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        """The versioned plain-JSON workload document."""
        from .wire import WIRE_VERSION, WORKLOAD_FORMAT

        return {
            "format": WORKLOAD_FORMAT,
            "version": WIRE_VERSION,
            "queries": [query.to_wire() for query in self.queries],
        }

    @staticmethod
    def from_wire(data: Any) -> "Workload":
        """Inverse of :meth:`to_wire` (see :func:`repro.queries.wire.
        workload_from_wire`)."""
        from .wire import workload_from_wire

        return workload_from_wire(data)

    def __repr__(self) -> str:
        tags = ", ".join(self.type_tags) or "empty"
        return f"<Workload n={len(self.queries)} types=[{tags}]>"
