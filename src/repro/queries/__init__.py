"""First-class queries and workloads: typed, validated, versioned, batched.

The query subsystem makes the paper's evaluation objects — range counts
over spatial decompositions, string statistics over sequence models —
first-class values shared by the library, the experiments, the CLI, and
the HTTP service:

* :mod:`~repro.queries.types` — the six frozen query types with
  ``validate(domain)`` and a versioned wire form;
* :mod:`~repro.queries.workload` — the ordered :class:`Workload` batch
  container;
* :mod:`~repro.queries.answer` — compilation to the flat engines and the
  single vectorized dispatch behind :meth:`repro.api.Release.answer`;
* :mod:`~repro.queries.wire` — the plain-JSON codec, including the
  legacy raw box/code-list forms (one deprecation cycle);
* :mod:`~repro.queries.metrics` — workload mean/max relative error.

Example::

    from repro.queries import Marginal1D, RangeCount, Workload

    workload = Workload.of([
        RangeCount(low=(0.1, 0.1), high=(0.4, 0.5)),
        Marginal1D.regular(axis=0, n_bins=8, low=0.0, high=1.0),
    ])
    answers = release.answer(workload)          # one flat float64 vector
    per_query = workload.split(answers, release.query_domain)
"""

from .answer import UnsupportedQueryTypeError, answer_workload, supported_query_types
from .binary import (
    BINARY_ANSWERS_CONTENT_TYPE,
    BINARY_WIRE_CONTENT_TYPE,
    PackedRangeCounts,
    decode_binary_answers,
    decode_binary_workload,
    encode_binary_answers,
    encode_binary_workload,
)
from .metrics import (
    SMOOTHING_FRACTION,
    WorkloadScore,
    relative_errors,
    score_workload,
    workload_error,
)
from .types import (
    Marginal1D,
    NextSymbolDistribution,
    PointCount,
    PrefixCount,
    Query,
    QueryValidationError,
    RangeCount,
    StringFrequency,
    query_type_registry,
)
from .wire import (
    QueryDecodeError,
    decode_query_batch,
    query_from_wire,
    workload_from_wire,
)
from .workload import Workload

__all__ = [
    "BINARY_ANSWERS_CONTENT_TYPE",
    "BINARY_WIRE_CONTENT_TYPE",
    "Marginal1D",
    "NextSymbolDistribution",
    "PackedRangeCounts",
    "PointCount",
    "PrefixCount",
    "Query",
    "QueryDecodeError",
    "QueryValidationError",
    "RangeCount",
    "SMOOTHING_FRACTION",
    "StringFrequency",
    "UnsupportedQueryTypeError",
    "Workload",
    "WorkloadScore",
    "answer_workload",
    "decode_binary_answers",
    "decode_binary_workload",
    "decode_query_batch",
    "encode_binary_answers",
    "encode_binary_workload",
    "query_from_wire",
    "query_type_registry",
    "relative_errors",
    "score_workload",
    "supported_query_types",
    "workload_error",
    "workload_from_wire",
]
