"""Batch compilation and dispatch: one vectorized answer path per family.

``answer_workload(release, workload)`` is the single answering routine
behind :meth:`repro.api.Release.answer`, the HTTP service, the CLI, and
the experiment sweeps:

* spatial releases — every query compiles to axis-aligned boxes
  (:meth:`~repro.queries.types.SpatialQuery.to_boxes`), the whole batch
  is answered by **one** ``range_count_many`` call on the release's flat
  engine, and the per-box answers land in each query's slots;
* PST releases — queries are grouped by type and each group runs one
  batched :class:`~repro.sequence.flat.FlatPST` pass
  (``frequency_many`` / ``prefix_frequency_many`` / ``conditional_rows``);
* n-gram releases — answered from the released count dictionary (the
  model's native engine; there is no array form of a dict walk).

Answers always come back as one flat ``float64`` vector in workload
order; :meth:`~repro.queries.Workload.split` recovers per-query groups.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .types import (
    Marginal1D,
    NextSymbolDistribution,
    PointCount,
    PrefixCount,
    Query,
    QueryValidationError,
    RangeCount,
    StringFrequency,
)
from .workload import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.base import Release

__all__ = [
    "UnsupportedQueryTypeError",
    "answer_workload",
    "compile_spatial_boxes",
    "supported_query_types",
]


class UnsupportedQueryTypeError(QueryValidationError):
    """The release cannot answer a query type present in the workload."""


def supported_query_types(release: "Release") -> tuple[type[Query], ...]:
    """The query classes ``release`` can answer, in wire-tag order.

    Capability is per *instance*, not just per class: a PST released
    without a ``$`` context node (tiny budgets may never split on the
    start sentinel) has no sequence-start statistics, so it drops
    :class:`PrefixCount` rather than silently answering occurrence counts.
    """
    from ..api.releases import NGramRelease, SequenceRelease, SpatialRelease

    if isinstance(release, SpatialRelease):
        return (RangeCount, PointCount, Marginal1D)
    if isinstance(release, SequenceRelease):
        # Probed on the flat child table (has_start_context) so mmap-loaded
        # releases never materialize the pointer model for a capability check.
        if not release.has_start_context():
            return (StringFrequency, NextSymbolDistribution)
        return (StringFrequency, PrefixCount, NextSymbolDistribution)
    if isinstance(release, NGramRelease):
        return (StringFrequency, NextSymbolDistribution)
    return ()


def _check_supported(release: "Release", workload: Workload) -> None:
    supported = supported_query_types(release)
    for i, query in enumerate(workload):
        if not isinstance(query, supported):
            names = ", ".join(cls.type_tag for cls in supported) or "none"
            raise UnsupportedQueryTypeError(
                f"workload query {i}: {type(release).__name__} "
                f"({release.method!r}) does not answer {query.type_tag!r} "
                f"queries; supported types: {names}",
                index=i,
            )


def compile_spatial_boxes(workload: Workload, domain) -> list:
    """The range-count boxes of a spatial workload, in answer-slot order.

    Each compiled box is exactly one slot of the flat answer vector, and
    ``to_boxes`` order matches workload order, so the batched box answers
    *are* the flat answers — no reassembly needed.
    """
    boxes = []
    for query in workload:
        boxes.extend(query.to_boxes(domain))
    return boxes


def _answer_spatial(release, workload: Workload, domain) -> np.ndarray:
    """Compile every spatial query to boxes; one batched range-count call."""
    boxes = compile_spatial_boxes(workload, domain)
    if not boxes:
        return np.empty(0, dtype=np.float64)
    return np.asarray(release.range_count_many(boxes), dtype=np.float64)


def _answer_pst(release, workload: Workload, domain) -> np.ndarray:
    """Group by type; one batched FlatPST pass per group present."""
    flat = release.flat()
    offsets = np.concatenate(([0], np.cumsum(workload.result_sizes(domain))))
    out = np.zeros(int(offsets[-1]), dtype=np.float64)

    freq_idx = [i for i, q in enumerate(workload) if isinstance(q, StringFrequency)]
    if freq_idx:
        answers = flat.frequency_many([workload[i].codes for i in freq_idx])
        out[offsets[freq_idx]] = answers

    prefix_idx = [i for i, q in enumerate(workload) if isinstance(q, PrefixCount)]
    if prefix_idx:
        answers = flat.prefix_frequency_many([workload[i].codes for i in prefix_idx])
        out[offsets[prefix_idx]] = answers

    next_idx = [
        i for i, q in enumerate(workload) if isinstance(q, NextSymbolDistribution)
    ]
    if next_idx:
        rows = flat.conditional_rows(
            [workload[i].context for i in next_idx],
            anchored=np.asarray([workload[i].anchored for i in next_idx]),
        )
        for j, i in enumerate(next_idx):
            out[offsets[i] : offsets[i + 1]] = rows[j]
    return out


def _answer_ngram(release, workload: Workload, domain) -> np.ndarray:
    """Answer from the released gram dictionary (the model's native walk)."""
    model = release.model
    offsets = np.concatenate(([0], np.cumsum(workload.result_sizes(domain))))
    out = np.zeros(int(offsets[-1]), dtype=np.float64)
    for i, query in enumerate(workload):
        if isinstance(query, StringFrequency):
            out[offsets[i]] = model.string_frequency(query.codes)
        else:  # NextSymbolDistribution
            if query.anchored:
                # Dropping the anchor would answer with a materially
                # different (occurrence-based) distribution; fail loudly
                # like PrefixCount does for the same missing-$ condition.
                raise UnsupportedQueryTypeError(
                    f"workload query {i}: the n-gram baseline has no "
                    "sequence-start ($) statistics; anchored next-symbol "
                    "queries are unavailable",
                    index=i,
                )
            out[offsets[i] : offsets[i + 1]] = model.conditional_row(query.context)
    return out


def answer_workload(release: "Release", workload: Workload) -> np.ndarray:
    """Answer a validated workload with one vectorized dispatch per family.

    Validates every query against the release's ``query_domain`` first
    (raising :class:`~repro.queries.QueryValidationError` with the
    offending index), then routes the whole batch to the release family's
    batched engine.  Returns the flat ``float64`` answer vector.
    """
    from ..api.releases import NGramRelease, SequenceRelease, SpatialRelease

    workload = Workload.coerce(workload)
    _check_supported(release, workload)
    domain = release.query_domain
    workload.validate(domain)
    if isinstance(release, SpatialRelease):
        return _answer_spatial(release, workload, domain)
    if isinstance(release, SequenceRelease):
        return _answer_pst(release, workload, domain)
    if isinstance(release, NGramRelease):
        return _answer_ngram(release, workload, domain)
    raise UnsupportedQueryTypeError(
        f"{type(release).__name__} does not support the typed query API"
    )
