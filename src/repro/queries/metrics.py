"""Unified workload accuracy metrics (Section 6.1's measure, generalized).

The paper scores a synopsis by the *relative error* of each workload
answer against the exact answer, with a smoothing floor:

    RE = |estimate - exact| / max(exact, smoothing)

where ``smoothing`` is 0.1% of the dataset cardinality (§6.1, following
Qardaji et al. / Privelet).  This module applies that measure to any
typed :class:`~repro.queries.Workload` against any release, reporting
both the mean (the paper's headline number) and the max (the tail a
serving SLO cares about) in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..spatial.metrics import SMOOTHING_FRACTION
from .workload import Workload

__all__ = [
    "SMOOTHING_FRACTION",
    "WorkloadScore",
    "relative_errors",
    "score_workload",
    "workload_error",
]


@dataclass(frozen=True)
class WorkloadScore:
    """Mean and max relative error of one workload evaluation."""

    mean_error: float
    max_error: float
    n_answers: int

    def __float__(self) -> float:
        return self.mean_error


def relative_errors(
    estimates: np.ndarray, exacts: np.ndarray, smoothing: float
) -> np.ndarray:
    """Per-answer smoothed relative errors (vectorized §6.1 measure)."""
    estimates = np.asarray(estimates, dtype=float)
    exacts = np.asarray(exacts, dtype=float)
    if estimates.shape != exacts.shape:
        raise ValueError(
            f"shape mismatch: {estimates.shape} estimates vs {exacts.shape} exacts"
        )
    if estimates.size == 0:
        raise ValueError("workload must contain at least one answer")
    if smoothing <= 0:
        raise ValueError(f"smoothing must be positive, got {smoothing!r}")
    return np.abs(estimates - exacts) / np.maximum(exacts, smoothing)


def _estimates(synopsis: Any, workload: Workload | Sequence[Any]) -> np.ndarray:
    """The synopsis's flat answers for ``workload``.

    Releases answer through the typed path; plain synopsis objects (the
    ablation builders may return bare trees or grids) fall back to their
    batched ``range_count_many`` or a scalar ``range_count`` loop over the
    workload's compiled boxes.
    """
    from .answer import compile_spatial_boxes
    from .types import RangeCount

    answer = getattr(synopsis, "answer", None)
    if answer is not None:
        return np.asarray(answer(workload), dtype=float)
    workload = Workload.coerce(workload)
    domain = getattr(synopsis, "query_domain", None)
    if domain is None and any(not isinstance(q, RangeCount) for q in workload):
        raise ValueError(
            "a synopsis without a query_domain can only score range-count "
            "workloads (point/marginal queries compile against the domain)"
        )
    boxes = compile_spatial_boxes(workload, domain)
    batched = getattr(synopsis, "range_count_many", None)
    if batched is not None:
        return np.asarray(batched(boxes), dtype=float)
    return np.array([synopsis.range_count(box) for box in boxes])


def score_workload(
    synopsis: Any,
    workload: Workload | Sequence[Any],
    exacts: np.ndarray,
    smoothing: float,
) -> WorkloadScore:
    """Mean/max relative error of ``synopsis`` on a precomputed workload.

    ``exacts`` is the flat vector of exact answers (one per answer slot,
    matching :meth:`Workload.result_size`); experiments compute it once
    per sweep and reuse it across methods, budgets, and repetitions.
    """
    errors = relative_errors(_estimates(synopsis, workload), exacts, smoothing)
    return WorkloadScore(
        mean_error=float(errors.mean()),
        max_error=float(errors.max()),
        n_answers=int(errors.size),
    )


def workload_error(
    synopsis: Any,
    workload: Workload | Sequence[Any],
    exacts: np.ndarray,
    smoothing: float,
) -> float:
    """The paper's headline number: mean relative error over the workload."""
    return score_workload(synopsis, workload, exacts, smoothing).mean_error
