"""The versioned plain-JSON wire codec for queries and workloads.

A single query travels as::

    {"format": "repro.query", "version": 1, "type": "range_count",
     "low": [0.1, 0.2], "high": [0.4, 0.5]}

and a workload as::

    {"format": "repro.workload", "version": 1, "queries": [<query>, ...]}

:func:`decode_query_batch` is the serving layer's single entry point: it
accepts a mixed list of typed wire queries and the legacy raw forms
(``{"low": ..., "high": ...}`` boxes and bare symbol-code lists — kept
for one deprecation cycle, decoded to :class:`~repro.queries.RangeCount`
/ :class:`~repro.queries.StringFrequency` with a
:class:`DeprecationWarning`), and reports malformed entries with the
offending batch index so HTTP clients get a structured 400.
"""

from __future__ import annotations

import warnings
from typing import Any, Sequence

from .types import (
    Query,
    QueryValidationError,
    RangeCount,
    StringFrequency,
    query_type_registry,
)
from .workload import Workload

__all__ = [
    "QueryDecodeError",
    "WIRE_FORMAT",
    "WIRE_VERSION",
    "WORKLOAD_FORMAT",
    "decode_query_batch",
    "query_from_wire",
    "workload_from_wire",
]

WIRE_FORMAT = "repro.query"
WORKLOAD_FORMAT = "repro.workload"
WIRE_VERSION = 1

_LEGACY_DEPRECATION = (
    "raw query batches (bare boxes / code lists) are deprecated; send typed "
    '{"format": "repro.query", ...} documents instead'
)


class QueryDecodeError(ValueError):
    """A query document failed to decode or validate.

    ``index`` is the offending position within the submitted batch (or
    ``None`` for a standalone document), so front-ends can return a
    structured error instead of an opaque whole-batch failure.
    """

    def __init__(self, message: str, *, index: int | None = None) -> None:
        super().__init__(message)
        self.index = index


def query_from_wire(data: Any) -> Query:
    """Rebuild one typed query from its ``to_wire`` document."""
    if not isinstance(data, dict):
        raise QueryDecodeError(
            f"a query document must be a JSON object, got {type(data).__name__}"
        )
    if data.get("format") != WIRE_FORMAT:
        raise QueryDecodeError(f"not a query document: format={data.get('format')!r}")
    version = data.get("version")
    if version != WIRE_VERSION:
        raise QueryDecodeError(f"unsupported query version {version!r}")
    tag = data.get("type")
    if not isinstance(tag, str):
        raise QueryDecodeError(f"query type must be a string, got {tag!r}")
    query_cls = query_type_registry().get(tag)
    if query_cls is None:
        known = ", ".join(sorted(query_type_registry()))
        raise QueryDecodeError(f"unknown query type {tag!r}; known types: {known}")
    try:
        return query_cls._from_wire_payload(data)
    except QueryValidationError as exc:
        raise QueryDecodeError(f"invalid {tag} query: {exc}") from None
    except (KeyError, TypeError, ValueError) as exc:
        raise QueryDecodeError(f"malformed {tag} query document ({exc})") from None


def workload_from_wire(data: Any) -> Workload:
    """Rebuild a :class:`Workload` from its ``to_wire`` document."""
    if not isinstance(data, dict):
        raise QueryDecodeError(
            f"a workload document must be a JSON object, got {type(data).__name__}"
        )
    if data.get("format") != WORKLOAD_FORMAT:
        raise QueryDecodeError(
            f"not a workload document: format={data.get('format')!r}"
        )
    version = data.get("version")
    if version != WIRE_VERSION:
        raise QueryDecodeError(f"unsupported workload version {version!r}")
    entries = data.get("queries")
    if not isinstance(entries, list):
        raise QueryDecodeError('a workload document needs a "queries" list')
    queries = []
    for i, entry in enumerate(entries):
        try:
            queries.append(query_from_wire(entry))
        except QueryDecodeError as exc:
            raise QueryDecodeError(f"workload query {i}: {exc}", index=i) from None
    return Workload(tuple(queries))


def _decode_legacy(raw: Any, spatial: bool) -> Query:
    """One legacy raw entry -> typed query (box dict or bare code list)."""
    if spatial:
        if not isinstance(raw, dict):
            raise QueryDecodeError(
                'a raw spatial query must be a {"low": [...], "high": [...]} box'
            )
        return RangeCount(low=tuple(raw["low"]), high=tuple(raw["high"]))
    if isinstance(raw, (str, bytes)):
        # Iterating "12" would silently yield codes [1, 2].
        raise QueryDecodeError("a string is not a code list")
    return StringFrequency(codes=tuple(raw))


def decode_query_batch(raw_queries: Sequence[Any], *, spatial: bool) -> Workload:
    """Decode a mixed typed/legacy JSON batch into a :class:`Workload`.

    Entries carrying ``{"format": "repro.query", ...}`` decode through
    :func:`query_from_wire`; anything else is treated as the legacy raw
    form for the release's family (boxes when ``spatial``, code lists
    otherwise) and triggers one :class:`DeprecationWarning` per batch.
    Legacy entries decode to the scalar query types, so their answers
    stay bare floats, bit-identical to the historical wire.  Raises
    :class:`QueryDecodeError` with the offending index on the first
    malformed entry.
    """
    queries: list[Query] = []
    warned = False
    for i, raw in enumerate(raw_queries):
        is_typed = isinstance(raw, dict) and raw.get("format") == WIRE_FORMAT
        try:
            if is_typed:
                queries.append(query_from_wire(raw))
            else:
                if not warned:
                    warnings.warn(_LEGACY_DEPRECATION, DeprecationWarning, stacklevel=2)
                    warned = True
                queries.append(_decode_legacy(raw, spatial))
        except (KeyError, TypeError, ValueError) as exc:
            expected = (
                '{"low": [...], "high": [...]} boxes'
                if spatial
                else "lists of integer symbol codes"
            )
            raise QueryDecodeError(
                f"query {i} is malformed ({exc}); this release answers {expected} "
                f'or typed {{"format": "{WIRE_FORMAT}", ...}} documents',
                index=i,
            ) from None
    return Workload(tuple(queries))
