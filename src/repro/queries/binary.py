"""The packed binary wire form for workload batches (v1).

The JSON codec (:mod:`repro.queries.wire`) pays a Python dict hop per
query; a 10k-box batch spends more time in ``json.loads`` and
``RangeCount.__post_init__`` than in the flat engine answering it.  The
binary form packs a batch as homogeneous *sections* — a query-type tag
byte plus fixed-width little-endian operand columns — so the decoder is a
handful of ``np.frombuffer`` views, and an all-range-count payload decodes
straight into the ``(n, d)`` bound matrices
:meth:`~repro.spatial.flat.FlatHistogram.range_count_arrays` wants,
without building a single query object.

Request layout (all integers little-endian)::

    magic    4 bytes  b"RPWB"
    version  uint8    1
    pad      uint8
    n_sect   uint16   number of sections
    sections, each:
        tag      uint8    query-type code (see _TAG_CODES)
        pad      uint8
        width    uint16   operand width (ndim for spatial tags, else 0)
        count    uint32   queries in this section
        columns  type-specific fixed-width arrays (see _read_section)

Workload order is section order: a mixed batch is encoded as runs of
consecutive same-type queries, so answers come back in exactly the
submitted order, like the JSON wire.

Response layout::

    magic    4 bytes  b"RPAB"
    version  uint8    1
    pad      3 bytes
    n_query  uint32
    n_value  uint32
    offsets  uint32[n_query + 1]   per-query slots into the value vector
    values   float64[n_value]      the exact `Release.answer` floats

Answers travel as raw IEEE-754 doubles, so served values are trivially
bit-identical to in-process answers — no repr round-trip involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .types import (
    Marginal1D,
    NextSymbolDistribution,
    PointCount,
    PrefixCount,
    Query,
    QueryValidationError,
    RangeCount,
    StringFrequency,
)
from .wire import QueryDecodeError
from .workload import Workload

__all__ = [
    "BINARY_ANSWERS_CONTENT_TYPE",
    "BINARY_WIRE_CONTENT_TYPE",
    "BINARY_WIRE_VERSION",
    "PackedRangeCounts",
    "decode_binary_answers",
    "decode_binary_workload",
    "encode_binary_answers",
    "encode_binary_workload",
]

BINARY_WIRE_VERSION = 1
BINARY_WIRE_CONTENT_TYPE = "application/x-repro-workload"
BINARY_ANSWERS_CONTENT_TYPE = "application/x-repro-answers"

_REQ_MAGIC = b"RPWB"
_RESP_MAGIC = b"RPAB"

_TAG_CODES: dict[str, int] = {
    "range_count": 1,
    "point_count": 2,
    "marginal1d": 3,
    "string_frequency": 4,
    "prefix_count": 5,
    "next_symbol_distribution": 6,
}
_TAG_NAMES = {code: name for name, code in _TAG_CODES.items()}


@dataclass(frozen=True)
class PackedRangeCounts:
    """A decoded all-range-count batch kept in columnar form.

    The serving fast path: ``(n, d)`` bound matrices that go straight to
    ``range_count_arrays`` with no per-query objects.  ``validate``
    applies exactly the checks the typed path applies (finiteness,
    positive extent at construction; dimensionality against the domain),
    and :meth:`to_workload` materializes the equivalent typed workload
    for releases without a columnar engine.
    """

    q_lows: np.ndarray
    q_highs: np.ndarray

    def __len__(self) -> int:
        return int(self.q_lows.shape[0])

    @property
    def ndim(self) -> int:
        return int(self.q_lows.shape[1])

    def validate(self, domain) -> None:
        """Vectorized equivalent of per-query construction + validation."""
        from ..domains.box import Box

        if not isinstance(domain, Box):
            raise QueryValidationError(
                "a packed range-count batch validates against a Box domain, "
                f"got {type(domain).__name__}"
            )
        finite = np.isfinite(self.q_lows) & np.isfinite(self.q_highs)
        if not finite.all():
            index = int(np.nonzero(~finite.all(axis=1))[0][0])
            raise QueryValidationError(
                f"query {index}: bounds must contain only finite values",
                index=index,
            )
        ordered = (self.q_lows < self.q_highs).all(axis=1)
        if not ordered.all():
            index = int(np.nonzero(~ordered)[0][0])
            raise QueryValidationError(
                f"query {index}: degenerate extent (low must be < high)",
                index=index,
            )
        if self.ndim != domain.ndim:
            raise QueryValidationError(
                f"queries have {self.ndim} dims but the release domain has "
                f"{domain.ndim}"
            )

    def to_workload(self) -> Workload:
        """The equivalent typed workload (for non-columnar engines)."""
        return Workload(
            tuple(
                RangeCount(low=tuple(low), high=tuple(high))
                for low, high in zip(self.q_lows, self.q_highs)
            )
        )


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _encode_section(tag: str, queries: list[Query], out: list[bytes]) -> None:
    count = len(queries)
    if tag == "range_count":
        lows = np.asarray([q.low for q in queries], dtype="<f8")
        highs = np.asarray([q.high for q in queries], dtype="<f8")
        width = lows.shape[1]
        cols = [lows.tobytes(), highs.tobytes()]
    elif tag == "point_count":
        points = np.asarray([q.point for q in queries], dtype="<f8")
        fractions = np.asarray([q.cell_fraction for q in queries], dtype="<f8")
        width = points.shape[1]
        cols = [points.tobytes(), fractions.tobytes()]
    elif tag == "marginal1d":
        axes = np.asarray([q.axis for q in queries], dtype="<u4")
        n_edges = np.asarray([len(q.edges) for q in queries], dtype="<u4")
        edges = np.asarray(
            [e for q in queries for e in q.edges], dtype="<f8"
        )
        width = 0
        cols = [axes.tobytes(), n_edges.tobytes(), edges.tobytes()]
    elif tag in ("string_frequency", "prefix_count"):
        lengths = np.asarray([len(q.codes) for q in queries], dtype="<u4")
        codes = np.asarray([c for q in queries for c in q.codes], dtype="<i8")
        width = 0
        cols = [lengths.tobytes(), codes.tobytes()]
    elif tag == "next_symbol_distribution":
        anchored = np.asarray([q.anchored for q in queries], dtype="u1")
        lengths = np.asarray([len(q.context) for q in queries], dtype="<u4")
        codes = np.asarray(
            [c for q in queries for c in q.context], dtype="<i8"
        )
        width = 0
        cols = [anchored.tobytes(), lengths.tobytes(), codes.tobytes()]
    else:  # pragma: no cover - guarded by _TAG_CODES lookup
        raise QueryDecodeError(f"query type {tag!r} has no binary encoding")
    out.append(
        np.asarray(
            [(_TAG_CODES[tag], 0, width, count)],
            dtype=[("tag", "u1"), ("pad", "u1"), ("width", "<u2"), ("count", "<u4")],
        ).tobytes()
    )
    out.extend(cols)


def encode_binary_workload(workload: Workload | Sequence[Query]) -> bytes:
    """Encode a workload as the packed binary wire form.

    Consecutive same-type queries become one section, so any workload
    round-trips with its order intact; an all-one-type batch is a single
    section and decodes columnar.
    """
    workload = Workload.coerce(workload)
    sections: list[tuple[str, list[Query]]] = []
    for query in workload:
        tag = query.type_tag
        if tag not in _TAG_CODES:
            raise QueryDecodeError(f"query type {tag!r} has no binary encoding")
        if sections and sections[-1][0] == tag:
            sections[-1][1].append(query)
        else:
            sections.append((tag, [query]))
    if len(sections) > 0xFFFF:
        raise QueryDecodeError(
            f"workload needs {len(sections)} sections; the binary wire "
            "carries at most 65535 (batch same-type queries together)"
        )
    out: list[bytes] = [
        _REQ_MAGIC,
        bytes([BINARY_WIRE_VERSION, 0]),
        np.uint16(len(sections)).astype("<u2").tobytes(),
    ]
    for tag, queries in sections:
        _encode_section(tag, queries, out)
    return b"".join(out)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


class _Cursor:
    """Bounds-checked sequential reads over the payload buffer."""

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, n: int, what: str) -> memoryview:
        if self.pos + n > len(self.buf):
            raise QueryDecodeError(
                f"binary workload is truncated reading {what} "
                f"(need {n} bytes at offset {self.pos}, have "
                f"{len(self.buf) - self.pos})"
            )
        view = memoryview(self.buf)[self.pos : self.pos + n]
        self.pos += n
        return view

    def array(self, dtype: str, count: int, what: str) -> np.ndarray:
        dt = np.dtype(dtype)
        return np.frombuffer(self.take(dt.itemsize * count, what), dtype=dt)


def _read_section(cur: _Cursor) -> tuple[str, int, list]:
    head = cur.array(
        [("tag", "u1"), ("pad", "u1"), ("width", "<u2"), ("count", "<u4")],
        1,
        "section header",
    )[0]
    tag = _TAG_NAMES.get(int(head["tag"]))
    if tag is None:
        raise QueryDecodeError(f"unknown binary query tag {int(head['tag'])}")
    width = int(head["width"])
    count = int(head["count"])
    if tag in ("range_count", "point_count") and width == 0:
        raise QueryDecodeError(f"{tag} section declares zero-width operands")
    if tag == "range_count":
        lows = cur.array("<f8", count * width, "range lows").reshape(count, width)
        highs = cur.array("<f8", count * width, "range highs").reshape(count, width)
        return tag, count, [lows, highs]
    if tag == "point_count":
        points = cur.array("<f8", count * width, "points").reshape(count, width)
        fractions = cur.array("<f8", count, "cell fractions")
        return tag, count, [points, fractions]
    if tag == "marginal1d":
        axes = cur.array("<u4", count, "axes")
        n_edges = cur.array("<u4", count, "edge counts")
        edges = cur.array("<f8", int(n_edges.sum()), "edges")
        return tag, count, [axes, n_edges, edges]
    if tag in ("string_frequency", "prefix_count"):
        lengths = cur.array("<u4", count, "code lengths")
        codes = cur.array("<i8", int(lengths.sum()), "codes")
        return tag, count, [lengths, codes]
    # next_symbol_distribution
    anchored = cur.array("u1", count, "anchor flags")
    lengths = cur.array("<u4", count, "context lengths")
    codes = cur.array("<i8", int(lengths.sum()), "codes")
    return tag, count, [anchored, lengths, codes]


def _materialize(tag: str, count: int, cols: list, queries: list[Query]) -> None:
    """Typed query objects for one section (the non-columnar path)."""
    try:
        if tag == "range_count":
            lows, highs = cols
            for i in range(count):
                queries.append(
                    RangeCount(low=tuple(lows[i]), high=tuple(highs[i]))
                )
        elif tag == "point_count":
            points, fractions = cols
            for i in range(count):
                queries.append(
                    PointCount(
                        point=tuple(points[i]), cell_fraction=float(fractions[i])
                    )
                )
        elif tag == "marginal1d":
            axes, n_edges, edges = cols
            offsets = np.concatenate(([0], np.cumsum(n_edges, dtype=np.int64)))
            for i in range(count):
                queries.append(
                    Marginal1D(
                        axis=int(axes[i]),
                        edges=tuple(edges[offsets[i] : offsets[i + 1]]),
                    )
                )
        elif tag in ("string_frequency", "prefix_count"):
            lengths, codes = cols
            cls = StringFrequency if tag == "string_frequency" else PrefixCount
            offsets = np.concatenate(([0], np.cumsum(lengths, dtype=np.int64)))
            for i in range(count):
                queries.append(
                    cls(codes=tuple(int(c) for c in codes[offsets[i] : offsets[i + 1]]))
                )
        else:  # next_symbol_distribution
            anchored, lengths, codes = cols
            offsets = np.concatenate(([0], np.cumsum(lengths, dtype=np.int64)))
            for i in range(count):
                queries.append(
                    NextSymbolDistribution(
                        context=tuple(
                            int(c) for c in codes[offsets[i] : offsets[i + 1]]
                        ),
                        anchored=bool(anchored[i]),
                    )
                )
    except QueryValidationError as exc:
        raise QueryDecodeError(
            f"query {len(queries)}: invalid {tag} operands ({exc})",
            index=len(queries),
        ) from None


def decode_binary_workload(payload: bytes) -> PackedRangeCounts | Workload:
    """Decode a binary batch; columnar fast form when it's all range counts.

    A payload whose only section is ``range_count`` returns a
    :class:`PackedRangeCounts` (zero query objects built); anything else
    returns a typed :class:`Workload` equivalent to the JSON decode of
    the same queries.  Raises :class:`~repro.queries.wire.QueryDecodeError`
    on malformed bytes.
    """
    if len(payload) < 8 or payload[:4] != _REQ_MAGIC:
        raise QueryDecodeError(
            "not a binary workload payload (bad magic); send "
            f"Content-Type {BINARY_WIRE_CONTENT_TYPE} only with the packed "
            "binary encoding"
        )
    version = payload[4]
    if version != BINARY_WIRE_VERSION:
        raise QueryDecodeError(f"unsupported binary wire version {version}")
    n_sections = int(np.frombuffer(payload[6:8], dtype="<u2")[0])
    cur = _Cursor(payload)
    cur.pos = 8
    sections = [_read_section(cur) for _ in range(n_sections)]
    if cur.pos != len(payload):
        raise QueryDecodeError(
            f"binary workload has {len(payload) - cur.pos} trailing bytes"
        )
    if len(sections) == 1 and sections[0][0] == "range_count":
        lows, highs = sections[0][2]
        return PackedRangeCounts(
            q_lows=np.ascontiguousarray(lows), q_highs=np.ascontiguousarray(highs)
        )
    queries: list[Query] = []
    for tag, count, cols in sections:
        _materialize(tag, count, cols, queries)
    return Workload(tuple(queries))


# ----------------------------------------------------------------------
# Answers
# ----------------------------------------------------------------------


def encode_binary_answers(values: np.ndarray, offsets: np.ndarray) -> bytes:
    """Pack a flat answer vector + per-query slot offsets as raw doubles."""
    values = np.ascontiguousarray(values, dtype="<f8")
    offsets = np.ascontiguousarray(offsets, dtype="<u4")
    n_queries = offsets.shape[0] - 1
    head = np.asarray(
        [(n_queries, values.shape[0])], dtype=[("q", "<u4"), ("v", "<u4")]
    )
    return b"".join(
        [
            _RESP_MAGIC,
            bytes([BINARY_WIRE_VERSION, 0, 0, 0]),
            head.tobytes(),
            offsets.tobytes(),
            values.tobytes(),
        ]
    )


def decode_binary_answers(payload: bytes) -> tuple[np.ndarray, np.ndarray]:
    """``(values, offsets)`` from a binary answer payload (client side)."""
    if len(payload) < 16 or payload[:4] != _RESP_MAGIC:
        raise QueryDecodeError("not a binary answers payload (bad magic)")
    if payload[4] != BINARY_WIRE_VERSION:
        raise QueryDecodeError(f"unsupported binary answers version {payload[4]}")
    cur = _Cursor(payload)
    cur.pos = 8
    head = cur.array([("q", "<u4"), ("v", "<u4")], 1, "answer header")[0]
    offsets = cur.array("<u4", int(head["q"]) + 1, "offsets")
    values = cur.array("<f8", int(head["v"]), "values")
    if cur.pos != len(payload):
        raise QueryDecodeError(
            f"binary answers payload has {len(payload) - cur.pos} trailing bytes"
        )
    return values, offsets
