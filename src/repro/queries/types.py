"""First-class query types: the six questions a release can answer.

The paper evaluates synopses on *workloads* — batches of range-count
queries for spatial decompositions (§6.1), string-frequency lookups for
the sequence variant (§6.2).  This module makes those workload elements
typed, validated, versioned values instead of raw boxes and code lists:

Spatial (answered from the box geometry of the released decomposition):

* :class:`RangeCount` — how many points fall in an axis-aligned box.
* :class:`PointCount` — how many points fall in a small probe cell
  centred on a location (a "how busy is it right here" query).
* :class:`Marginal1D` — an axis-aligned interval histogram: one count
  per ``[edges[i], edges[i+1])`` slab along one axis, full extent in
  every other dimension.

Sequence (answered from the released Markov model):

* :class:`StringFrequency` — the Equation (12) estimate of how often a
  string occurs in the input.
* :class:`PrefixCount` — how many input *sequences start with* a string
  (the Equation (12) chain anchored at the ``$`` start sentinel).
* :class:`NextSymbolDistribution` — ``P(· | context)`` over ``I ∪ {&}``,
  the model's one-step predictive distribution.

Every query is a frozen dataclass: structural invariants (finiteness,
ordering, shapes) are checked at construction, while release-specific
invariants are checked by ``validate(domain)`` against the release's
:attr:`~repro.api.Release.query_domain` (a :class:`~repro.domains.Box`
for spatial releases, an :class:`~repro.sequence.Alphabet` for sequence
releases).  ``result_size(domain)`` gives the number of scalar answers
the query contributes to a flat answer vector (1 for the scalar types,
``n_bins`` for marginals, ``hist_size`` for next-symbol rows).

Wire serialization (``to_wire`` / ``query_from_wire``) lives in
:mod:`repro.queries.wire`; batch compilation and dispatch in
:mod:`repro.queries.answer`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from ..domains.box import Box
from ..sequence.alphabet import Alphabet

__all__ = [
    "Marginal1D",
    "NextSymbolDistribution",
    "PointCount",
    "PrefixCount",
    "Query",
    "QueryValidationError",
    "RangeCount",
    "StringFrequency",
    "query_type_registry",
]

#: Side length of a :class:`PointCount` probe cell, as a fraction of the
#: domain extent per dimension (the default "right here" resolution).
DEFAULT_CELL_FRACTION = 1.0 / 1024.0

#: type tag -> Query subclass, populated by ``Query.__init_subclass__``.
_QUERY_TYPES: dict[str, type["Query"]] = {}


class QueryValidationError(ValueError):
    """A query failed structural or domain validation.

    ``index`` is the offending position within a workload (``None`` for a
    standalone query), so batch front-ends can report which entry failed.
    """

    def __init__(self, message: str, *, index: int | None = None) -> None:
        super().__init__(message)
        self.index = index


def query_type_registry() -> dict[str, type["Query"]]:
    """Wire type tag -> query class, for codec dispatch and introspection."""
    return dict(_QUERY_TYPES)


def _finite_floats(values: Any, label: str) -> tuple[float, ...]:
    """Coerce to a tuple of finite floats or raise with the field name."""
    try:
        out = tuple(float(v) for v in values)
    except (TypeError, ValueError) as exc:
        raise QueryValidationError(f"{label} must be a sequence of numbers ({exc})")
    if not out:
        raise QueryValidationError(f"{label} must be non-empty")
    if not all(math.isfinite(v) for v in out):
        raise QueryValidationError(f"{label} must contain only finite values")
    return out


def _code_tuple(values: Any, label: str) -> tuple[int, ...]:
    """Coerce to a tuple of non-negative ints or raise with the field name."""
    if isinstance(values, (str, bytes)):
        # Iterating "12" would silently yield codes [1, 2].
        raise QueryValidationError(f"{label} must be a list of symbol codes, not a string")
    try:
        out = tuple(int(v) for v in values)
    except (TypeError, ValueError) as exc:
        raise QueryValidationError(f"{label} must be a sequence of integers ({exc})")
    if any(c < 0 for c in out):
        raise QueryValidationError(f"{label} must contain non-negative symbol codes")
    return out


def _require_box(domain: Any, query: "Query") -> Box:
    if not isinstance(domain, Box):
        raise QueryValidationError(
            f"{type(query).__name__} is a spatial query; it validates against a "
            f"Box domain, got {type(domain).__name__}"
        )
    return domain


def _require_alphabet(domain: Any, query: "Query") -> Alphabet:
    if not isinstance(domain, Alphabet):
        raise QueryValidationError(
            f"{type(query).__name__} is a sequence query; it validates against an "
            f"Alphabet domain, got {type(domain).__name__}"
        )
    return domain


class Query(abc.ABC):
    """A typed, validated question answerable by a released synopsis."""

    #: Wire tag (``"range_count"``, ...); unique per concrete query type.
    type_tag: ClassVar[str] = ""
    #: Input family the query applies to: ``"spatial"`` or ``"sequence"``.
    family: ClassVar[str] = ""
    #: Whether the answer is a vector (histogram/distribution) rather than
    #: a scalar — wire responses encode vector answers as JSON lists.
    vector_result: ClassVar[bool] = False

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.type_tag:
            existing = _QUERY_TYPES.get(cls.type_tag)
            if existing is not None and existing is not cls:
                raise ValueError(f"duplicate query type tag {cls.type_tag!r}")
            _QUERY_TYPES[cls.type_tag] = cls

    @abc.abstractmethod
    def validate(self, domain: Any) -> None:
        """Check the query against a release's ``query_domain``.

        Raises :class:`QueryValidationError` when the query cannot be
        answered over ``domain`` (wrong dimensionality, out-of-alphabet
        codes, ...).  Structural invariants are already enforced at
        construction; this adds only the domain-dependent checks.
        """

    def result_size(self, domain: Any) -> int:
        """Number of scalar answers this query contributes (default 1)."""
        return 1

    @abc.abstractmethod
    def _wire_payload(self) -> dict[str, Any]:
        """The type-specific fields of the wire form."""

    @classmethod
    @abc.abstractmethod
    def _from_wire_payload(cls, data: dict[str, Any]) -> "Query":
        """Inverse of :meth:`_wire_payload`."""

    def to_wire(self) -> dict[str, Any]:
        """The versioned plain-JSON wire form (see :mod:`repro.queries.wire`)."""
        from .wire import WIRE_FORMAT, WIRE_VERSION

        return {
            "format": WIRE_FORMAT,
            "version": WIRE_VERSION,
            "type": self.type_tag,
            **self._wire_payload(),
        }


# ----------------------------------------------------------------------
# Spatial queries
# ----------------------------------------------------------------------


class SpatialQuery(Query):
    """Base of the box-geometry queries; compiles to one or more boxes."""

    family = "spatial"

    @abc.abstractmethod
    def to_boxes(self, domain: Box) -> list[Box]:
        """The range-count boxes whose answers make up this query's answer.

        The returned boxes are answered in order by the release's batched
        range-count engine; ``result_size`` boxes come back per query.
        """


@dataclass(frozen=True)
class RangeCount(SpatialQuery):
    """How many points fall inside the axis-aligned box ``[low, high)``."""

    low: tuple[float, ...]
    high: tuple[float, ...]

    type_tag: ClassVar[str] = "range_count"

    def __post_init__(self) -> None:
        low = _finite_floats(self.low, "low")
        high = _finite_floats(self.high, "high")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)
        if len(low) != len(high):
            raise QueryValidationError(
                f"low has {len(low)} dims but high has {len(high)}"
            )
        for lo, hi in zip(low, high):
            if not lo < hi:
                raise QueryValidationError(f"degenerate extent [{lo}, {hi})")

    @staticmethod
    def of(box: Box) -> "RangeCount":
        """The range-count query for an existing :class:`Box`."""
        return RangeCount(low=box.low, high=box.high)

    @property
    def box(self) -> Box:
        """The query region as a :class:`Box`."""
        return Box(self.low, self.high)

    @property
    def ndim(self) -> int:
        return len(self.low)

    def validate(self, domain: Any) -> None:
        box = _require_box(domain, self)
        if self.ndim != box.ndim:
            raise QueryValidationError(
                f"query has {self.ndim} dims but the release domain has {box.ndim}"
            )

    def to_boxes(self, domain: Box) -> list[Box]:
        return [self.box]

    def _wire_payload(self) -> dict[str, Any]:
        return {"low": list(self.low), "high": list(self.high)}

    @classmethod
    def _from_wire_payload(cls, data: dict[str, Any]) -> "RangeCount":
        return cls(low=tuple(data["low"]), high=tuple(data["high"]))


@dataclass(frozen=True)
class PointCount(SpatialQuery):
    """How many points fall in a small probe cell centred on ``point``.

    The probe cell's side along dimension ``d`` is ``cell_fraction`` of
    the release domain's extent along ``d``, clipped to the domain, so
    ``PointCount(p)`` equals the :class:`RangeCount` of that cell — a
    well-defined "estimated count right here" under the §2.2 uniformity
    assumption regardless of how the release partitions space.
    """

    point: tuple[float, ...]
    cell_fraction: float = DEFAULT_CELL_FRACTION

    type_tag: ClassVar[str] = "point_count"

    def __post_init__(self) -> None:
        object.__setattr__(self, "point", _finite_floats(self.point, "point"))
        fraction = float(self.cell_fraction)
        if not (math.isfinite(fraction) and 0.0 < fraction <= 1.0):
            raise QueryValidationError(
                f"cell_fraction must be in (0, 1], got {self.cell_fraction!r}"
            )
        object.__setattr__(self, "cell_fraction", fraction)

    @property
    def ndim(self) -> int:
        return len(self.point)

    def validate(self, domain: Any) -> None:
        box = _require_box(domain, self)
        if self.ndim != box.ndim:
            raise QueryValidationError(
                f"query has {self.ndim} dims but the release domain has {box.ndim}"
            )
        for p, lo, hi in zip(self.point, box.low, box.high):
            if not lo <= p <= hi:
                raise QueryValidationError(
                    f"point coordinate {p} outside the release domain [{lo}, {hi}]"
                )

    def to_boxes(self, domain: Box) -> list[Box]:
        half = np.asarray(domain.extents) * (self.cell_fraction / 2.0)
        point = np.asarray(self.point)
        low = np.maximum(point - half, domain.low)
        high = np.minimum(point + half, domain.high)
        collapsed = ~(low < high)
        if collapsed.any():
            # Float-resolution guard: at coordinates much larger than the
            # probe size, point ± half rounds back onto the point.  Fall
            # back to the smallest representable box around the point,
            # kept inside the domain (which always spans at least one ulp).
            p = point[collapsed]
            dom_lo = np.asarray(domain.low)[collapsed]
            dom_hi = np.asarray(domain.high)[collapsed]
            hi = np.minimum(np.nextafter(p, np.inf), dom_hi)
            lo = np.maximum(np.minimum(p, np.nextafter(hi, -np.inf)), dom_lo)
            high[collapsed] = hi
            low[collapsed] = lo
        return [Box.from_arrays(low, high)]

    def _wire_payload(self) -> dict[str, Any]:
        return {"point": list(self.point), "cell_fraction": self.cell_fraction}

    @classmethod
    def _from_wire_payload(cls, data: dict[str, Any]) -> "PointCount":
        return cls(
            point=tuple(data["point"]),
            cell_fraction=data.get("cell_fraction", DEFAULT_CELL_FRACTION),
        )


@dataclass(frozen=True)
class Marginal1D(SpatialQuery):
    """An interval histogram along one axis (a 1-d marginal of the data).

    Bin ``i`` counts the points whose coordinate along ``axis`` falls in
    ``[edges[i], edges[i+1])``, with full domain extent in every other
    dimension — ``len(edges) - 1`` scalar answers per query.
    """

    axis: int
    edges: tuple[float, ...]

    type_tag: ClassVar[str] = "marginal1d"
    vector_result: ClassVar[bool] = True

    def __post_init__(self) -> None:
        axis = int(self.axis)
        if axis < 0:
            raise QueryValidationError(f"axis must be >= 0, got {self.axis!r}")
        object.__setattr__(self, "axis", axis)
        edges = _finite_floats(self.edges, "edges")
        object.__setattr__(self, "edges", edges)
        if len(edges) < 2:
            raise QueryValidationError("edges must contain at least two boundaries")
        if any(a >= b for a, b in zip(edges, edges[1:])):
            raise QueryValidationError("edges must be strictly increasing")

    @staticmethod
    def regular(axis: int, n_bins: int, low: float, high: float) -> "Marginal1D":
        """A marginal with ``n_bins`` equal-width bins over ``[low, high)``."""
        if n_bins < 1:
            raise QueryValidationError(f"n_bins must be >= 1, got {n_bins!r}")
        return Marginal1D(axis=axis, edges=tuple(np.linspace(low, high, n_bins + 1)))

    @property
    def n_bins(self) -> int:
        """Number of histogram bins (scalar answers) this query yields."""
        return len(self.edges) - 1

    def validate(self, domain: Any) -> None:
        box = _require_box(domain, self)
        if self.axis >= box.ndim:
            raise QueryValidationError(
                f"axis {self.axis} out of range for a {box.ndim}-d release domain"
            )

    def result_size(self, domain: Any) -> int:
        return self.n_bins

    def to_boxes(self, domain: Box) -> list[Box]:
        boxes = []
        for lo, hi in zip(self.edges, self.edges[1:]):
            low = list(domain.low)
            high = list(domain.high)
            low[self.axis] = lo
            high[self.axis] = hi
            boxes.append(Box(tuple(low), tuple(high)))
        return boxes

    def _wire_payload(self) -> dict[str, Any]:
        return {"axis": self.axis, "edges": list(self.edges)}

    @classmethod
    def _from_wire_payload(cls, data: dict[str, Any]) -> "Marginal1D":
        return cls(axis=data["axis"], edges=tuple(data["edges"]))


# ----------------------------------------------------------------------
# Sequence queries
# ----------------------------------------------------------------------


class SequenceQuery(Query):
    """Base of the Markov-model queries over coded symbol strings."""

    family = "sequence"


@dataclass(frozen=True)
class _CodesQuery(SequenceQuery):
    """Shared body of the queries keyed by a non-empty plain-symbol string.

    Dataclass equality still distinguishes the concrete types (``__eq__``
    compares classes), so a :class:`StringFrequency` never equals a
    :class:`PrefixCount` with the same codes.
    """

    codes: tuple[int, ...]

    def __post_init__(self) -> None:
        codes = _code_tuple(self.codes, "codes")
        if not codes:
            raise QueryValidationError("codes must be non-empty")
        object.__setattr__(self, "codes", codes)

    def validate(self, domain: Any) -> None:
        alphabet = _require_alphabet(domain, self)
        for c in self.codes:
            if c >= alphabet.size:
                raise QueryValidationError(
                    f"symbol code {c} outside the release alphabet "
                    f"(size {alphabet.size}; sentinels are not queryable)"
                )

    def _wire_payload(self) -> dict[str, Any]:
        return {"codes": list(self.codes)}

    @classmethod
    def _from_wire_payload(cls, data: dict[str, Any]) -> "_CodesQuery":
        return cls(codes=tuple(data["codes"]))


@dataclass(frozen=True)
class StringFrequency(_CodesQuery):
    """Estimated number of occurrences of a string (Equation (12)).

    ``codes`` are plain symbol codes (no sentinels); the estimate counts
    occurrences anywhere within the input sequences.
    """

    type_tag: ClassVar[str] = "string_frequency"


@dataclass(frozen=True)
class PrefixCount(_CodesQuery):
    """Estimated number of input sequences that *start with* a string.

    The Equation (12) chain anchored at the ``$`` start sentinel: the
    first factor is the ``$``-context histogram's count of ``codes[0]``
    (how many sequences open with that symbol), and each further symbol
    multiplies by ``P(codes[i] | $ codes[:i])`` from the longest released
    context.  Supported only by releases that actually model sequence
    starts: the n-gram baseline has no ``$`` statistics and rejects it,
    and so does a PST whose released tree never split on the start
    sentinel (check ``release.supported_query_types()``).
    """

    type_tag: ClassVar[str] = "prefix_count"


@dataclass(frozen=True)
class NextSymbolDistribution(SequenceQuery):
    """The model's one-step predictive distribution ``P(· | context)``.

    Returns ``hist_size`` probabilities over ``I ∪ {&}`` (ordinary symbols
    plus the end marker), resolved from the longest released suffix of
    ``context``.  An empty context asks for the unconditional next-symbol
    law; ``anchored=True`` prepends the ``$`` start sentinel, conditioning
    on the context being the *whole* sequence so far.  Anchoring is
    PST-only (the n-gram baseline has no ``$`` statistics and rejects it)
    and resolves by the PST's native longest-suffix backoff: when no
    released context includes the sentinel, the answer equals the
    unanchored lookup.
    """

    context: tuple[int, ...] = ()
    anchored: bool = False

    type_tag: ClassVar[str] = "next_symbol_distribution"
    vector_result: ClassVar[bool] = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "context", _code_tuple(self.context, "context"))
        object.__setattr__(self, "anchored", bool(self.anchored))

    def validate(self, domain: Any) -> None:
        alphabet = _require_alphabet(domain, self)
        for c in self.context:
            if c >= alphabet.size:
                raise QueryValidationError(
                    f"context code {c} outside the release alphabet "
                    f"(size {alphabet.size}; sentinels are not queryable)"
                )

    def result_size(self, domain: Any) -> int:
        return _require_alphabet(domain, self).hist_size

    def _wire_payload(self) -> dict[str, Any]:
        return {"context": list(self.context), "anchored": self.anchored}

    @classmethod
    def _from_wire_payload(cls, data: dict[str, Any]) -> "NextSymbolDistribution":
        return cls(
            context=tuple(data.get("context", ())),
            anchored=data.get("anchored", False),
        )
