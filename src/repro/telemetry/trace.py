"""Tracing: nestable spans with wall/CPU time, JSONL and Chrome export.

A :class:`Tracer` collects :class:`SpanRecord` entries in memory.  The
module-level :func:`span` / :func:`event` helpers dispatch to the
globally installed tracer, or do nothing when tracing is disabled —
instrumented call sites stay in place at a cost of one attribute load
and a ``None`` check.

Span records carry wall-clock duration (``perf_counter``), CPU time
consumed by the calling thread (``thread_time``), the process/thread
ids, and a parent span id maintained per thread, so nested spans form a
tree that survives the flat JSONL export.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "SpanRecord",
    "Tracer",
    "current_tracer",
    "disable",
    "enable",
    "event",
    "read_jsonl",
    "span",
    "summarize_records",
    "to_chrome_trace",
    "write_jsonl",
]


@dataclass
class SpanRecord:
    """One finished span or point event, ready for export."""

    name: str
    start_s: float  # epoch seconds (time.time) at entry
    wall_s: float  # duration; 0.0 for point events
    cpu_s: float  # thread CPU time consumed inside the span
    pid: int
    tid: int
    span_id: int
    parent_id: int | None
    kind: str = "span"  # "span" | "event"
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> dict[str, Any]:
        record = {
            "kind": self.kind,
            "name": self.name,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "pid": self.pid,
            "tid": self.tid,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_wire(cls, record: dict[str, Any]) -> "SpanRecord":
        return cls(
            name=record["name"],
            start_s=record["start_s"],
            wall_s=record.get("wall_s", 0.0),
            cpu_s=record.get("cpu_s", 0.0),
            pid=record.get("pid", 0),
            tid=record.get("tid", 0),
            span_id=record.get("span_id", 0),
            parent_id=record.get("parent_id"),
            kind=record.get("kind", "span"),
            attrs=record.get("attrs", {}) or {},
        )


class _NoopSpan:
    """Singleton context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _Span:
    """Live span handle; becomes a :class:`SpanRecord` on exit."""

    __slots__ = (
        "_tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "_start_epoch",
        "_start_wall",
        "_start_cpu",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict[str, Any],
        span_id: int,
        parent_id: int | None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._tracer._push(self.span_id)
        self._start_epoch = time.time()
        self._start_wall = time.perf_counter()
        self._start_cpu = time.thread_time()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        wall = time.perf_counter() - self._start_wall
        cpu = time.thread_time() - self._start_cpu
        self._tracer._pop()
        if exc_type is not None:
            self.attrs.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        self._tracer._record(
            SpanRecord(
                name=self.name,
                start_s=self._start_epoch,
                wall_s=wall,
                cpu_s=cpu,
                pid=os.getpid(),
                tid=threading.get_ident(),
                span_id=self.span_id,
                parent_id=self.parent_id,
                kind="span",
                attrs=self.attrs,
            )
        )


class Tracer:
    """Collects span/event records in memory; thread-safe."""

    def __init__(self) -> None:
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._stack = threading.local()

    # -- per-thread parent stack ---------------------------------------
    def _push(self, span_id: int) -> None:
        stack = getattr(self._stack, "ids", None)
        if stack is None:
            stack = self._stack.ids = []
        stack.append(span_id)

    def _pop(self) -> None:
        stack = getattr(self._stack, "ids", None)
        if stack:
            stack.pop()

    def _parent(self) -> int | None:
        stack = getattr(self._stack, "ids", None)
        return stack[-1] if stack else None

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # -- public API ----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _Span:
        return _Span(self, name, attrs, next(self._ids), self._parent())

    def event(self, name: str, **attrs: Any) -> SpanRecord:
        record = SpanRecord(
            name=name,
            start_s=time.time(),
            wall_s=0.0,
            cpu_s=0.0,
            pid=os.getpid(),
            tid=threading.get_ident(),
            span_id=next(self._ids),
            parent_id=self._parent(),
            kind="event",
            attrs=attrs,
        )
        self._record(record)
        return record

    @property
    def records(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def export_jsonl(self, path: str | os.PathLike) -> int:
        """Write collected records as JSON-lines; returns the count."""
        return write_jsonl(self.records, path)


# ----------------------------------------------------------------------
# Global tracer: None means tracing is disabled (the fast path).
# ----------------------------------------------------------------------
_tracer: Tracer | None = None


def enable(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) globally and return it."""
    global _tracer
    _tracer = tracer if tracer is not None else Tracer()
    return _tracer


def disable() -> None:
    """Remove the global tracer; span()/event() become no-ops again."""
    global _tracer
    _tracer = None


def current_tracer() -> Tracer | None:
    return _tracer


def span(name: str, **attrs: Any):
    """Open a span on the global tracer, or a shared no-op when disabled."""
    tracer = _tracer
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> SpanRecord | None:
    """Record a point event on the global tracer; no-op when disabled."""
    tracer = _tracer
    if tracer is None:
        return None
    return tracer.event(name, **attrs)


# ----------------------------------------------------------------------
# Export / import helpers
# ----------------------------------------------------------------------
def write_jsonl(records: Iterable[SpanRecord], path: str | os.PathLike) -> int:
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_wire(), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | os.PathLike) -> list[SpanRecord]:
    records: list[SpanRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(SpanRecord.from_wire(json.loads(line)))
    return records


def to_chrome_trace(records: Iterable[SpanRecord]) -> dict[str, Any]:
    """Convert records to the Chrome ``trace_event`` JSON format.

    Spans become ``"X"`` (complete) events with microsecond timestamps;
    point events become ``"i"`` (instant) events.  Load the result at
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events: list[dict[str, Any]] = []
    for record in records:
        args = dict(record.attrs)
        args["cpu_ms"] = round(record.cpu_s * 1e3, 6)
        entry: dict[str, Any] = {
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ts": record.start_s * 1e6,
            "pid": record.pid,
            "tid": record.tid,
            "args": args,
        }
        if record.kind == "event":
            entry["ph"] = "i"
            entry["s"] = "t"
        else:
            entry["ph"] = "X"
            entry["dur"] = record.wall_s * 1e6
        events.append(entry)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def summarize_records(records: Iterable[SpanRecord]) -> list[dict[str, Any]]:
    """Aggregate records by name: count, total/mean wall, total CPU."""
    totals: dict[str, dict[str, Any]] = {}
    for record in records:
        entry = totals.setdefault(
            record.name,
            {"name": record.name, "kind": record.kind, "count": 0,
             "wall_s": 0.0, "cpu_s": 0.0},
        )
        entry["count"] += 1
        entry["wall_s"] += record.wall_s
        entry["cpu_s"] += record.cpu_s
    for entry in totals.values():
        entry["mean_ms"] = (entry["wall_s"] / entry["count"]) * 1e3
    return sorted(totals.values(), key=lambda e: -e["wall_s"])
