"""repro.telemetry — zero-dependency tracing, metrics, and profiling.

Three pillars:

* :mod:`repro.telemetry.trace` — nestable ``span()`` context managers and
  point-in-time ``event()`` records with wall/CPU timings, exportable as
  JSON-lines and as Chrome ``trace_event`` files (``repro trace``).
* :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms in a :class:`MetricsRegistry`, cheap enough to be always on
  and renderable in the Prometheus text exposition format.
* :mod:`repro.telemetry.slab` — a mmap'd per-worker slab so metrics from
  forked serve workers can be aggregated by any process that can read
  the slab directory.

Tracing is off by default: the module-level :func:`span` and
:func:`event` helpers are no-ops until :func:`enable` installs a
:class:`Tracer`, so instrumented hot paths cost a dict build and a
``None`` check per call site.

Privacy contract: instrumentation must never record raw data points or
unblinded counts.  Span/event attributes are limited to *shapes* (node
counts, query counts, depths, round indices), timings, and privacy-ledger
entries (epsilon amounts and labels) that are already public outputs of
the mechanism.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
)
from .slab import aggregate_slabs, read_slabs
from .trace import (
    SpanRecord,
    Tracer,
    current_tracer,
    disable,
    enable,
    event,
    read_jsonl,
    span,
    summarize_records,
    to_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "aggregate_slabs",
    "current_tracer",
    "disable",
    "enable",
    "event",
    "get_registry",
    "read_jsonl",
    "read_slabs",
    "render_prometheus",
    "span",
    "summarize_records",
    "to_chrome_trace",
    "write_jsonl",
]
