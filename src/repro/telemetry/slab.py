"""Per-worker mmap'd metric slabs for cross-process aggregation.

Each forked serve worker binds its :class:`~repro.telemetry.metrics.MetricsRegistry`
to a slab directory.  The worker owns two files keyed by its pid:

* ``slab-<pid>.schema.json`` — slot layout (metric name, type, offset,
  histogram bounds), written atomically at bind time and on late
  metric registration.
* ``slab-<pid>.dat`` — raw little-endian float64 slots, mmap'd
  ``MAP_SHARED`` so every metric update is immediately visible to any
  process that reads the file.

Because each pid writes only its own pair of files there are no
cross-process write races; a scraper (the parent's ``/metrics``
handler, or the smoke script) reads every schema in the directory and
sums the slots by metric name.  Reads are lock-free and may observe a
histogram mid-update (count bumped, sum not yet) — fine for
monitoring, never used for correctness.
"""

from __future__ import annotations

import glob
import json
import mmap
import os
import struct
import threading
from typing import Any, Sequence

__all__ = ["SlabWriter", "aggregate_slabs", "read_slabs"]

_SLOT = struct.Struct("<d")


class SlabWriter:
    """Owns this process's slab files and serves slot writes."""

    def __init__(self, directory: str, metrics: Sequence[Any], pid: int | None = None) -> None:
        self.directory = directory
        self.pid = os.getpid() if pid is None else pid
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._slots: list[dict[str, Any]] = []
        self.offsets: list[int] = []
        offset = 0
        for metric in metrics:
            self.offsets.append(offset)
            self._slots.append(_slot_entry(metric, offset))
            offset += metric.n_slots
        self.total_slots = offset
        self._data_path = os.path.join(directory, f"slab-{self.pid}.dat")
        self._schema_path = os.path.join(directory, f"slab-{self.pid}.schema.json")
        self._open_data(self.total_slots)
        self._write_schema()

    def _open_data(self, total_slots: int) -> None:
        size = max(total_slots, 1) * _SLOT.size
        with open(self._data_path, "wb") as handle:
            handle.truncate(size)
        self._file = open(self._data_path, "r+b")
        self._mmap = mmap.mmap(self._file.fileno(), size)

    def _write_schema(self) -> None:
        schema = {
            "pid": self.pid,
            "total_slots": self.total_slots,
            "slots": self._slots,
        }
        tmp = self._schema_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(schema, handle)
        os.replace(tmp, self._schema_path)

    def write(self, slot: int, value: float) -> None:
        with self._lock:
            _SLOT.pack_into(self._mmap, slot * _SLOT.size, value)

    def extend(self, metric: Any) -> int:
        """Append slots for a metric registered after bind; returns its offset."""
        with self._lock:
            offset = self.total_slots
            self._slots.append(_slot_entry(metric, offset))
            self.total_slots += metric.n_slots
            new_size = self.total_slots * _SLOT.size
            self._mmap.close()
            self._file.truncate(new_size)
            self._mmap = mmap.mmap(self._file.fileno(), new_size)
        self._write_schema()
        return offset

    def close(self) -> None:
        with self._lock:
            self._mmap.close()
            self._file.close()


def _slot_entry(metric: Any, offset: int) -> dict[str, Any]:
    entry = {
        "name": metric.name,
        "type": type(metric).__name__.lower(),
        "offset": offset,
    }
    bounds = getattr(metric, "bounds", None)
    if bounds is not None:
        entry["bounds"] = list(bounds)
    return entry


def read_slabs(directory: str) -> list[dict[str, Any]]:
    """Read every per-pid slab in ``directory``.

    Returns ``[{"pid": int, "metrics": snapshot}, ...]`` where the
    snapshot uses the same structure as
    :meth:`repro.telemetry.metrics.MetricsRegistry.snapshot`.  Slabs
    whose schema or data file is unreadable (a worker mid-startup or
    just torn down) are skipped.
    """
    results: list[dict[str, Any]] = []
    for schema_path in sorted(glob.glob(os.path.join(directory, "slab-*.schema.json"))):
        try:
            with open(schema_path, "r", encoding="utf-8") as handle:
                schema = json.load(handle)
            data_path = schema_path.replace(".schema.json", ".dat")
            with open(data_path, "rb") as handle:
                raw = handle.read()
        except (OSError, json.JSONDecodeError):
            continue
        needed = schema.get("total_slots", 0) * _SLOT.size
        if len(raw) < needed:
            # Worker is mid-extend; take what is consistent and move on.
            continue
        snapshot: dict[str, dict[str, Any]] = {}
        for slot in schema.get("slots", []):
            offset = slot["offset"]
            kind = slot["type"]
            if kind in ("counter", "gauge"):
                snapshot[slot["name"]] = {
                    "type": kind,
                    "value": _SLOT.unpack_from(raw, offset * _SLOT.size)[0],
                }
            elif kind == "histogram":
                bounds = slot.get("bounds", [])
                n_buckets = len(bounds) + 1
                count = _SLOT.unpack_from(raw, offset * _SLOT.size)[0]
                total = _SLOT.unpack_from(raw, (offset + 1) * _SLOT.size)[0]
                counts = [
                    _SLOT.unpack_from(raw, (offset + 2 + i) * _SLOT.size)[0]
                    for i in range(n_buckets)
                ]
                snapshot[slot["name"]] = {
                    "type": "histogram",
                    "bounds": bounds,
                    "counts": counts,
                    "sum": total,
                    "count": count,
                }
        results.append({"pid": schema.get("pid"), "metrics": snapshot})
    return results


def aggregate_slabs(directory: str) -> dict[str, Any]:
    """Sum every worker slab in ``directory`` by metric name.

    Returns ``{"pids": [...], "metrics": merged_snapshot}``.
    """
    from .metrics import merge_snapshots

    slabs = read_slabs(directory)
    merged = merge_snapshots(slab["metrics"] for slab in slabs)
    return {"pids": sorted(s["pid"] for s in slabs), "metrics": merged}
