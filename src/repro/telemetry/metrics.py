"""Metrics: counters, gauges, fixed-bucket histograms, text exposition.

A :class:`MetricsRegistry` hands out get-or-create metric instances.
Every mutation is a couple of float ops under a per-metric lock, cheap
enough to leave on unconditionally.  A registry can be bound to a
mmap'd per-worker slab (:mod:`repro.telemetry.slab`) so forked serve
workers expose their values to the parent — or any scraper — without a
cross-process call.

The snapshot structure shared by in-process registries and slab
aggregation::

    {name: {"type": "counter", "value": 3.0}
     | {"type": "gauge", "value": 7.0}
     | {"type": "histogram", "bounds": [...], "counts": [...],
        "sum": 1.5, "count": 12}}

``render_prometheus`` turns any such snapshot into the Prometheus text
exposition format served on ``GET /metrics``.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_SIZE_BOUNDS",
    "get_registry",
    "render_prometheus",
]

# Seconds; tuned for sub-ms cache hits up to multi-second cold loads.
DEFAULT_LATENCY_BOUNDS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)
# Batch sizes / queue depths: powers of four up to ~64k.
DEFAULT_SIZE_BOUNDS = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0)


class _Metric:
    """Base: name, lock, optional slab binding (offset into a mmap)."""

    __slots__ = ("name", "help", "_lock", "_slab", "_offset")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._slab = None  # SlabWriter, set by MetricsRegistry.bind_slab
        self._offset = 0

    def _bind(self, slab: Any, offset: int) -> None:
        with self._lock:
            self._slab = slab
            self._offset = offset
            self._flush_locked()

    def _flush_locked(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing float counter."""

    __slots__ = ("_value",)
    n_slots = 1

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount
            if self._slab is not None:
                self._slab.write(self._offset, self._value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _flush_locked(self) -> None:
        if self._slab is not None:
            self._slab.write(self._offset, self._value)

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge(_Metric):
    """Point-in-time float value (cache size, frontier width, ...)."""

    __slots__ = ("_value",)
    n_slots = 1

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if self._slab is not None:
                self._slab.write(self._offset, self._value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            if self._slab is not None:
                self._slab.write(self._offset, self._value)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _flush_locked(self) -> None:
        if self._slab is not None:
            self._slab.write(self._offset, self._value)

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram(_Metric):
    """Fixed-bucket histogram with cumulative-on-render semantics.

    ``bounds`` are inclusive upper bounds; an implicit +Inf bucket
    catches the tail.  Internally buckets are stored *non*-cumulative
    (one increment per observe) so per-worker slabs can be summed
    slot-wise; the exposition renders them cumulatively as Prometheus
    expects.

    Slab layout per histogram: ``[count, sum, bucket_0..bucket_n]``
    (n = len(bounds) + 1 including +Inf).
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS,
        help: str = "",
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} bounds must be strictly increasing")
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bound")
        self.bounds = bounds
        self._counts = [0.0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0.0

    @property
    def n_slots(self) -> int:
        return 2 + len(self.bounds) + 1

    def observe(self, value: float) -> None:
        value = float(value)
        index = _bucket_index(self.bounds, value)
        with self._lock:
            self._counts[index] += 1.0
            self._sum += value
            self._count += 1.0
            if self._slab is not None:
                self._slab.write(self._offset, self._count)
                self._slab.write(self._offset + 1, self._sum)
                self._slab.write(self._offset + 2 + index, self._counts[index])

    def _flush_locked(self) -> None:
        if self._slab is not None:
            self._slab.write(self._offset, self._count)
            self._slab.write(self._offset + 1, self._sum)
            for i, count in enumerate(self._counts):
                self._slab.write(self._offset + 2 + i, count)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


def _bucket_index(bounds: Sequence[float], value: float) -> int:
    # Linear scan: bucket lists are short and this avoids bisect edge
    # cases around the inclusive upper bound.
    for i, bound in enumerate(bounds):
        if value <= bound:
            return i
    return len(bounds)


class MetricsRegistry:
    """Get-or-create registry of named metrics; snapshot + exposition."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()
        self._slab = None

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS,
        help: str = "",
    ) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, bounds=bounds, help=help)
                self._register_locked(metric)
            elif not isinstance(metric, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def _get_or_create(self, name: str, cls: type, help: str = "") -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help=help)
                self._register_locked(metric)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def _register_locked(self, metric: _Metric) -> None:
        self._metrics[metric.name] = metric
        if self._slab is not None:
            # Late registration after bind: extend the slab in place.
            offset = self._slab.extend(metric)
            metric._bind(self._slab, offset)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            metrics = list(self._metrics.values())
        return {m.name: m.snapshot() for m in sorted(metrics, key=lambda m: m.name)}

    def render_text(self) -> str:
        return render_prometheus(self.snapshot())

    def bind_slab(self, directory: str, pid: int | None = None) -> None:
        """Mirror every metric (current and future) into a per-worker
        mmap'd slab under ``directory``; see :mod:`repro.telemetry.slab`."""
        from .slab import SlabWriter

        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
            writer = SlabWriter(directory, metrics, pid=pid)
            self._slab = writer
        for metric, offset in zip(metrics, writer.offsets):
            metric._bind(writer, offset)


def render_prometheus(snapshot: dict[str, dict[str, Any]]) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["type"]
        lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(f"{name} {_fmt(entry['value'])}")
        elif kind == "histogram":
            cumulative = 0.0
            bounds = list(entry["bounds"]) + [math.inf]
            for bound, count in zip(bounds, entry["counts"]):
                cumulative += count
                label = "+Inf" if math.isinf(bound) else _fmt(bound)
                lines.append(f'{name}_bucket{{le="{label}"}} {_fmt(cumulative)}')
            lines.append(f"{name}_sum {_fmt(entry['sum'])}")
            lines.append(f"{name}_count {_fmt(entry['count'])}")
        else:  # pragma: no cover - future-proofing
            raise ValueError(f"unknown metric type {kind!r} for {name}")
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def merge_snapshots(
    snapshots: Iterable[dict[str, dict[str, Any]]],
) -> dict[str, dict[str, Any]]:
    """Sum per-worker snapshots by metric name.

    Counters and histograms add; gauges add too (documented — a summed
    gauge like cache size is the fleet-wide total).  Histograms with
    mismatched bounds raise, since slot-wise addition would be wrong.
    """
    merged: dict[str, dict[str, Any]] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            have = merged.get(name)
            if have is None:
                merged[name] = {
                    key: (list(value) if isinstance(value, list) else value)
                    for key, value in entry.items()
                }
                continue
            if have["type"] != entry["type"]:
                raise ValueError(f"metric {name!r} type mismatch across workers")
            if entry["type"] in ("counter", "gauge"):
                have["value"] += entry["value"]
            else:
                if list(have["bounds"]) != list(entry["bounds"]):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ across workers"
                    )
                have["counts"] = [
                    a + b for a, b in zip(have["counts"], entry["counts"])
                ]
                have["sum"] += entry["sum"]
                have["count"] += entry["count"]
    return merged


# ----------------------------------------------------------------------
# Default process-wide registry for library-level counters (federated
# transport retries, heartbeats, ...).  Services that need isolation
# (e.g. SynopsisService) construct their own registry instead.
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _default_registry
