"""Command-line interface: run any registered method, or the paper's experiments.

Examples::

    repro run --method privtree --dataset road --epsilon 1.0 --out release.json
    repro run --method pst --dataset msnbc --param l_top=15
    repro query --release release.json --workload workload.json --out answers.json
    repro methods
    repro store put --store synopses/ --method privtree --dataset gowalla
    repro store ls --store synopses/
    repro store get --store synopses/ RELEASE_ID --out release.json
    repro federated-fit --shards 3 --dataset gowalla --epsilon 1.0
    repro federated-fit --shards 3 --dataset gowalla --epochs 4 --store epochs/
    repro serve --store synopses/ --port 8000
    repro figure5 --dataset road --band medium --reps 3
    repro figure6 --dataset msnbc --k 100
    repro figure7 --dataset mooc
    repro table4
    repro bench --out BENCH_perf.json
    repro svt
    repro datasets

``run`` resolves ``--method`` from :mod:`repro.api.registry`, fits it on a
registered dataset, prints the release summary plus the privacy-budget
ledger, and optionally writes the release JSON.  ``store put`` fits the
same way but persists the release into a :class:`~repro.serve.ReleaseStore`
directory; ``serve`` answers batched queries against such a store over
HTTP.  The ``figure*`` / ``table*`` commands print the corresponding
paper-style table; ``--n`` scales the synthetic dataset, ``--epsilons``
overrides the sweep.
"""

from __future__ import annotations

import argparse
import ast
import json
from typing import Sequence

from .experiments import (
    format_float,
    format_percent,
    format_seconds,
    run_length_distribution_experiment,
    run_privtree_timing,
    run_range_query_experiment,
    run_topk_experiment,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of the PrivTree paper (SIGMOD 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n", type=int, default=None, help="dataset cardinality")
        p.add_argument("--reps", type=int, default=1, help="repetitions per cell")
        p.add_argument("--seed", type=int, default=0, help="experiment seed")
        p.add_argument(
            "--epsilons",
            type=float,
            nargs="+",
            default=None,
            help="privacy budgets to sweep",
        )

    def fit_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--method", required=True, help="registry name (see `repro methods`)")
        p.add_argument("--dataset", required=True, help="dataset name (see `repro datasets`)")
        p.add_argument("--epsilon", type=float, default=1.0, help="privacy budget")
        p.add_argument("--n", type=int, default=None, help="dataset cardinality")
        p.add_argument("--seed", type=int, default=0, help="rng seed")
        p.add_argument(
            "--param",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="extra estimator parameter (repeatable), e.g. --param theta=0.5",
        )

    run = sub.add_parser("run", help="fit one registered method on one dataset")
    fit_args(run)
    run.add_argument("--out", default=None, help="write the release JSON here")
    run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a telemetry trace of the fit as JSON-lines here "
        "(inspect/convert with `repro trace`)",
    )

    sub.add_parser("methods", help="list the registered estimator methods")

    query_p = sub.add_parser(
        "query", help="answer a typed workload against a saved release"
    )
    query_p.add_argument(
        "--release",
        required=True,
        help="release JSON file (from `repro run --out` or `repro store get --out`)",
    )
    query_p.add_argument(
        "--workload",
        required=True,
        help='workload JSON document ({"format": "repro.workload", ...})',
    )
    query_p.add_argument(
        "--out", default=None, help="write the answers JSON here"
    )

    store = sub.add_parser("store", help="persist and inspect releases in a directory store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_put = store_sub.add_parser("put", help="fit a method and persist the release")
    store_put.add_argument("--store", required=True, help="store directory (created if missing)")
    fit_args(store_put)
    store_put.add_argument(
        "--id", default=None, dest="release_id",
        help="explicit release id (default: method + content hash)",
    )
    store_ls = store_sub.add_parser("ls", help="list the stored releases")
    store_ls.add_argument("--store", required=True, help="store directory")
    store_migrate = store_sub.add_parser(
        "migrate", help="write v2 binary artifacts for pre-v2 store entries"
    )
    store_migrate.add_argument("--store", required=True, help="store directory")
    store_get = store_sub.add_parser("get", help="reload one stored release")
    store_get.add_argument("--store", required=True, help="store directory")
    store_get.add_argument("release_id", help="release id (see `repro store ls`)")
    store_get.add_argument("--out", default=None, help="copy the release JSON here")

    fed = sub.add_parser(
        "federated-fit",
        help="fit PrivTree over K blinded shard collectors (optionally per epoch)",
    )
    fed.add_argument(
        "--shards", type=int, default=3, help="number of shard collectors"
    )
    fed.add_argument(
        "--dataset", required=True, help="spatial dataset name (see `repro datasets`)"
    )
    fed.add_argument(
        "--epsilon",
        type=float,
        default=1.0,
        help="privacy budget (per epoch when --epochs > 1)",
    )
    fed.add_argument(
        "--n", type=int, default=None, help="dataset cardinality (per epoch)"
    )
    fed.add_argument("--seed", type=int, default=0, help="rng seed")
    fed.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="extra fit parameter (repeatable), e.g. --param theta=0.5",
    )
    fed.add_argument(
        "--epochs",
        type=int,
        default=1,
        help="continual release: ingest and release this many epochs",
    )
    fed.add_argument(
        "--window",
        type=int,
        default=3,
        help="sliding-window width in epochs (with --epochs)",
    )
    fed.add_argument(
        "--store",
        default=None,
        help="persist the release(s) into this store directory "
        "(required when --epochs > 1)",
    )
    fed.add_argument(
        "--out", default=None, help="write the (final) release JSON here"
    )
    fed.add_argument(
        "--transport",
        default="inproc",
        choices=["inproc", "tcp"],
        help="inproc: collectors in this process; tcp: real collector "
        "processes behind the framed TCP protocol",
    )
    fed.add_argument(
        "--collectors",
        default=None,
        metavar="HOST:PORT,...",
        help="with --transport tcp: connect to these running collector "
        "servers instead of spawning `repro collector-serve` subprocesses",
    )
    fed.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a crash-safe checkpoint here after every committed round",
    )
    fed.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted fit from --checkpoint (bit-identical "
        "to an uninterrupted fit; the budget is restored, never re-spent)",
    )
    fed.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="probe collector liveness between rounds at this interval "
        "(0 probes every round); a stalled collector trips the per-round "
        "deadline instead of hanging the next aggregation",
    )
    fed.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a telemetry trace of the fit as JSON-lines here "
        "(per-round spans, collector timings, accountant spend events)",
    )

    coll = sub.add_parser(
        "collector-serve",
        help="run one shard's data collector as a long-lived TCP server",
    )
    coll.add_argument(
        "--dataset", required=True, help="spatial dataset name (see `repro datasets`)"
    )
    coll.add_argument("--n", type=int, default=None, help="dataset cardinality")
    coll.add_argument(
        "--seed", type=int, default=0, help="dataset seed (must match the coordinator)"
    )
    coll.add_argument(
        "--shard-id", type=int, required=True, help="this collector's shard index"
    )
    coll.add_argument(
        "--n-shards", type=int, required=True, help="total number of shards"
    )
    coll.add_argument("--host", default="127.0.0.1", help="bind address")
    coll.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks a free one)"
    )

    serve_p = sub.add_parser("serve", help="answer batched queries against a store over HTTP")
    serve_p.add_argument("--store", required=True, help="store directory")
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument("--port", type=int, default=8000, help="bind port")
    serve_p.add_argument(
        "--cache", type=int, default=8, help="LRU bound on resident releases"
    )
    serve_p.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logs"
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="pre-fork this many serving processes sharing one listening "
        "socket (default 1: a single threaded server)",
    )

    fig5 = sub.add_parser("figure5", help="range-count relative error")
    fig5.add_argument("--dataset", default="road", choices=["road", "gowalla", "nyc", "beijing"])
    fig5.add_argument("--band", default="medium", choices=["small", "medium", "large"])
    fig5.add_argument("--queries", type=int, default=100)
    common(fig5)

    fig6 = sub.add_parser("figure6", help="top-k frequent-string precision")
    fig6.add_argument("--dataset", default="msnbc", choices=["mooc", "msnbc"])
    fig6.add_argument("--k", type=int, default=100)
    common(fig6)

    fig7 = sub.add_parser("figure7", help="sequence-length distribution TVD")
    fig7.add_argument("--dataset", default="msnbc", choices=["mooc", "msnbc"])
    fig7.add_argument("--synthetic", type=int, default=2000)
    common(fig7)

    table4 = sub.add_parser("table4", help="PrivTree running time")
    common(table4)

    bench = sub.add_parser(
        "bench", help="perf micro-benchmarks (hot paths vs. reference engines)"
    )
    bench.add_argument("--n", type=int, default=200_000, help="dataset cardinality")
    bench.add_argument("--queries", type=int, default=1_000, help="workload size")
    bench.add_argument(
        "--band", default="medium", choices=["small", "medium", "large"]
    )
    bench.add_argument("--epsilon", type=float, default=1.0, help="privacy budget")
    bench.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    bench.add_argument("--seed", type=int, default=0, help="rng seed")
    bench.add_argument(
        "--sequences",
        type=int,
        default=200_000,
        help="sequence-corpus cardinality (MSNBC-scale default: ~1M tokens)",
    )
    bench.add_argument(
        "--synthetic",
        type=int,
        default=20_000,
        help="synthetic sequences per generation case",
    )
    bench.add_argument(
        "--out",
        default="BENCH_perf.json",
        help="machine-readable results path (default: BENCH_perf.json)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE_JSON",
        help="print a regression table vs. a committed BENCH_perf.json "
        "(warns when a case slows down >20%%; never fails the run "
        "unless --fail-above is also given)",
    )
    bench.add_argument(
        "--fail-above",
        type=float,
        default=None,
        metavar="RATIO",
        help="with --compare: exit non-zero when any case slows down past "
        "RATIO times its baseline (CI gates at 1.5)",
    )

    trace_p = sub.add_parser(
        "trace", help="summarize or convert a telemetry trace (JSONL)"
    )
    trace_p.add_argument(
        "trace_file", help="JSON-lines trace written by a --trace flag"
    )
    trace_p.add_argument(
        "--chrome",
        default=None,
        metavar="OUT_JSON",
        help="also write a Chrome trace_event file "
        "(open in chrome://tracing or ui.perfetto.dev)",
    )

    sub.add_parser("svt", help="SVT privacy-loss counterexamples")
    sub.add_parser("datasets", help="dataset characteristics (Tables 2-3)")
    return parser


def _parse_param(text: str) -> tuple[str, object]:
    """Parse one ``--param key=value`` (value via literal_eval, else string)."""
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise SystemExit(f"--param expects KEY=VALUE, got {text!r}")
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key, value


def _fit_release(args: argparse.Namespace):
    """Shared fit path of ``run`` and ``store put``.

    Returns ``(release, estimator, dataset, accountant)`` or exits with a
    usage error.
    """
    from .api import registry
    from .datasets import SEQUENCE_DATASETS, SPATIAL_DATASETS
    from .mechanisms import PrivacyAccountant

    all_specs = {**SPATIAL_DATASETS, **SEQUENCE_DATASETS}
    if args.dataset not in all_specs:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; choose from {', '.join(sorted(all_specs))}"
        )
    spec = all_specs[args.dataset]
    params = dict(_parse_param(p) for p in args.param)
    if "epsilon" in params:
        raise SystemExit("set the privacy budget with --epsilon, not --param epsilon=")
    try:
        estimator_cls = registry.get_class(args.method)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    if (
        spec.kind == "sequence"
        and "l_top" in estimator_cls.param_names()
        and "l_top" not in params
        and spec.l_top is not None
    ):
        params["l_top"] = spec.l_top
    if estimator_cls.kind != spec.kind:
        raise SystemExit(
            f"method {args.method!r} expects {estimator_cls.kind} data but "
            f"dataset {args.dataset!r} is {spec.kind}"
        )
    try:
        estimator = registry.from_spec(args.method, epsilon=args.epsilon, **params)
    except TypeError as exc:
        raise SystemExit(str(exc)) from None

    dataset = spec.make(args.n, rng=args.seed)
    accountant = PrivacyAccountant(args.epsilon)
    release = estimator.fit(dataset, accountant=accountant, rng=args.seed)
    return release, estimator, dataset, accountant


def _run_method(args: argparse.Namespace) -> str:
    from .api import save_release

    release, estimator, dataset, accountant = _fit_release(args)
    lines = [
        f"method   : {args.method} ({type(estimator).__name__})",
        f"dataset  : {args.dataset} (n={dataset.n:,})",
        f"release  : {type(release).__name__}, size={release.size:,}",
        f"epsilon  : {release.epsilon_spent:g} spent of {accountant.total_epsilon:g}",
        "ledger   :",
    ]
    for label, eps in accountant.ledger:
        lines.append(f"  {label:30s} {eps:.6g}")
    if args.out:
        save_release(release, args.out)
        lines.append(f"release written to {args.out}")
    return "\n".join(lines)


def _run_query(args: argparse.Namespace) -> str:
    from .api import load_release
    from .queries import QueryDecodeError, QueryValidationError, workload_from_wire

    try:
        release = load_release(args.release)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"cannot load release {args.release!r}: {exc}") from None
    try:
        with open(args.workload) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read workload {args.workload!r}: {exc}") from None
    try:
        workload = workload_from_wire(document)
        flat = release.answer(workload)
    except (QueryDecodeError, QueryValidationError) as exc:
        raise SystemExit(f"invalid workload: {exc}") from None

    answers = workload.group_answers(flat, release.query_domain)

    lines = [
        f"release  : {type(release).__name__} ({release.method}), size={release.size:,}",
        f"workload : {len(workload)} queries "
        f"[{', '.join(workload.type_tags)}], {flat.shape[0]} answers",
    ]
    preview = 20
    for i, (query, answer) in enumerate(zip(workload, answers)):
        if i == preview:
            lines.append(f"  ... {len(workload) - preview} more (use --out)")
            break
        shown = (
            "[" + ", ".join(f"{v:g}" for v in answer) + "]"
            if isinstance(answer, list)
            else f"{answer:g}"
        )
        lines.append(f"  {i:4d} {query.type_tag:24s} {shown}")
    if args.out:
        from ._io import atomic_write_text

        atomic_write_text(
            args.out,
            json.dumps(
                {
                    "method": release.method,
                    "count": len(answers),
                    "answers": answers,
                }
            ),
        )
        lines.append(f"answers written to {args.out}")
    return "\n".join(lines)


def _run_store(args: argparse.Namespace) -> str:
    from .serve import ReleaseStore, StoreError

    if args.store_command == "put":
        if args.release_id is not None:
            try:
                # Fail a bad --id before the (possibly minutes-long) fit.
                ReleaseStore.validate_id(args.release_id)
            except ValueError as exc:
                raise SystemExit(str(exc)) from None
        # Fit first: a usage error must not leave an empty store behind.
        release, estimator, dataset, _ = _fit_release(args)
        store = ReleaseStore(args.store)
        release_id = store.put(
            release,
            release_id=args.release_id,
            dataset=f"{args.dataset}(n={dataset.n})",
            params=estimator.params(),
        )
        entry = store.manifest_entry(release_id)
        return (
            f"stored {release_id}\n"
            f"  method={entry['method']} kind={entry['kind']} "
            f"size={entry['size']:,} epsilon_spent={entry['epsilon_spent']:g}\n"
            f"  {store.root / entry['path']}"
        )
    # ls / get / migrate operate on an existing store only: never
    # materialize a store at a mistyped path.
    try:
        store = ReleaseStore(args.store, create=False)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from None
    if args.store_command == "migrate":
        upgraded = store.migrate()
        if not upgraded:
            return f"store {store.root}: all entries already have binary artifacts"
        return "\n".join(
            [f"store {store.root}: wrote {len(upgraded)} binary artifact(s)"]
            + [f"  {release_id}" for release_id in upgraded]
        )
    if args.store_command == "ls":
        entries = store.entries()
        if not entries:
            return f"store {store.root} is empty"
        lines = [
            f"{'id':34s} {'method':11s} {'kind':22s} {'size':>9s} "
            f"{'epsilon':>8s} {'format':>9s} {'bytes':>11s}  dataset"
        ]
        for e in entries:
            # Pre-v2 manifests have no artifact fields; report what the
            # store would actually serve (JSON unless the .bin exists).
            fmt = e.get("artifact_format", "json-v1")
            n_bytes = e.get("artifact_bytes")
            if n_bytes is None:
                json_path = store.root / e["path"]
                n_bytes = json_path.stat().st_size if json_path.exists() else 0
            lines.append(
                f"{e['id']:34s} {e['method']:11s} {e['kind']:22s} "
                f"{e['size']:>9,d} {e['epsilon_spent']:>8g} {fmt:>9s} "
                f"{n_bytes:>11,d}  {e['dataset']}"
            )
        return "\n".join(lines)
    # get
    try:
        release = store.get(args.release_id)
        entry = store.manifest_entry(args.release_id)
    except StoreError as exc:
        raise SystemExit(str(exc.args[0])) from None
    lines = [
        f"release  : {type(release).__name__}, size={release.size:,}",
        f"method   : {entry['method']} ({entry['kind']})",
        f"epsilon  : {release.epsilon_spent:g}",
        f"dataset  : {entry['dataset']}",
        f"created  : {entry['created_at']}",
    ]
    if args.out:
        from .api import save_release

        save_release(release, args.out)
        lines.append(f"release written to {args.out}")
    return "\n".join(lines)


def _collector_command() -> list[str]:
    """The argv prefix that runs this CLI in a subprocess."""
    import shutil as _shutil
    import sys as _sys

    if _shutil.which("repro"):
        return ["repro"]
    return [
        _sys.executable,
        "-c",
        "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
    ]


def _spawn_collector_procs(args: argparse.Namespace) -> tuple[list, list[tuple[str, int]]]:
    """One ``repro collector-serve`` subprocess per shard; parse READY lines.

    Each collector regenerates its shard deterministically from the
    dataset name + seed (round-robin sharding is a pure function of
    those), so no points ever cross the process boundary.
    """
    import os
    import subprocess

    import repro as _repro

    # The children must import the same repro the parent is running (it
    # may be a source checkout rather than an installed package).
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(_repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    command = _collector_command()
    procs, addresses = [], []
    try:
        for shard_id in range(args.shards):
            argv = command + [
                "collector-serve",
                "--dataset", args.dataset,
                "--seed", str(args.seed),
                "--shard-id", str(shard_id),
                "--n-shards", str(args.shards),
                "--port", "0",
            ]
            if args.n is not None:
                argv += ["--n", str(args.n)]
            proc = subprocess.Popen(
                argv, stdout=subprocess.PIPE, text=True, bufsize=1, env=env
            )
            procs.append(proc)
        for shard_id, proc in enumerate(procs):
            line = proc.stdout.readline().strip()
            if not line.startswith("READY "):
                raise SystemExit(
                    f"collector {shard_id} failed to start (got {line!r})"
                )
            fields = dict(kv.split("=", 1) for kv in line.split()[1:])
            addresses.append(("127.0.0.1", int(fields["port"])))
    except BaseException:
        for proc in procs:
            proc.terminate()
        raise
    return procs, addresses


def _run_federated_fit(args: argparse.Namespace) -> str:
    from .api import SpatialTreeRelease, save_release
    from .datasets import SPATIAL_DATASETS
    from .federated import (
        EpochLedger,
        FederatedPrivTree,
        FitCheckpoint,
        ShardCollector,
        connect_collectors,
        replay_splits,
        shard_dataset,
    )
    from .mechanisms import PrivacyAccountant
    from .serve import ReleaseStore

    if args.shards < 2:
        raise SystemExit(f"--shards must be at least 2, got {args.shards}")
    if args.epochs < 1:
        raise SystemExit(f"--epochs must be at least 1, got {args.epochs}")
    if args.dataset not in SPATIAL_DATASETS:
        raise SystemExit(
            f"unknown spatial dataset {args.dataset!r}; choose from "
            f"{', '.join(sorted(SPATIAL_DATASETS))}"
        )
    if args.epochs > 1 and (
        args.transport != "inproc" or args.checkpoint or args.resume
    ):
        raise SystemExit(
            "--transport tcp / --checkpoint / --resume apply to single-epoch "
            "fits; the epoch ledger drives its own in-process fits"
        )
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint")
    spec = SPATIAL_DATASETS[args.dataset]
    params = dict(_parse_param(p) for p in args.param)
    if "epsilon" in params:
        raise SystemExit("set the privacy budget with --epsilon, not --param epsilon=")

    if args.epochs == 1:
        dataset = spec.make(args.n, rng=args.seed)
        accountant = PrivacyAccountant(args.epsilon)
        checkpoint = FitCheckpoint(args.checkpoint) if args.checkpoint else None
        procs: list = []
        clients = None
        try:
            if args.transport == "tcp":
                if args.collectors:
                    addresses = []
                    for spec_str in args.collectors.split(","):
                        host, _, port = spec_str.strip().rpartition(":")
                        addresses.append((host or "127.0.0.1", int(port)))
                    if len(addresses) != args.shards:
                        raise SystemExit(
                            f"--collectors names {len(addresses)} servers "
                            f"but --shards is {args.shards}"
                        )
                else:
                    procs, addresses = _spawn_collector_procs(args)
                session = f"{args.dataset}-seed{args.seed}"
                clients = connect_collectors(addresses, session=session)
                driver = FederatedPrivTree(clients)
            else:
                collectors = [
                    ShardCollector(
                        i, args.shards, shard, blinding_seed=args.seed
                    )
                    for i, shard in enumerate(
                        shard_dataset(dataset, args.shards)
                    )
                ]
                if args.resume:
                    state = checkpoint.load()
                    replay_splits(
                        collectors,
                        [[str(i) for i in r] for r in state["split_rounds"]],
                    )
                driver = FederatedPrivTree(collectors)
            try:
                tree = driver.fit_histogram(
                    args.epsilon,
                    rng=args.seed,
                    accountant=accountant,
                    checkpoint=checkpoint,
                    resume=args.resume,
                    heartbeat_interval=args.heartbeat_interval,
                    **params,
                )
            except TypeError as exc:
                raise SystemExit(str(exc)) from None
        finally:
            if clients is not None:
                for client in clients:
                    client.finish()
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=10)
        release = SpatialTreeRelease(
            tree, method="privtree_federated", epsilon_spent=args.epsilon
        )
        lines = [
            f"federated fit: {args.shards} shard collectors "
            f"({args.transport}), secure aggregation",
            f"dataset  : {args.dataset} (n={dataset.n:,}, round-robin sharded)",
            f"release  : {type(release).__name__}, size={release.size:,}",
            f"epsilon  : {release.epsilon_spent:g} spent of {accountant.total_epsilon:g}",
            "ledger   :",
        ]
        for label, eps in accountant.ledger:
            lines.append(f"  {label:30s} {eps:.6g}")
        if checkpoint is not None:
            lines.append(f"checkpoint: {checkpoint.path} (phase=done)")
        if args.store:
            store = ReleaseStore(args.store)
            release_id = store.put(
                release,
                dataset=f"{args.dataset}(n={dataset.n})",
                params={"n_shards": args.shards, **params},
            )
            lines.append(f"stored as {release_id} in {store.root}")
        if args.out:
            save_release(release, args.out)
            lines.append(f"release written to {args.out}")
        return "\n".join(lines)

    # Continual release: one ingest + one sliding-window release per epoch,
    # all paid from one shared accountant.
    if not args.store:
        raise SystemExit("--epochs > 1 persists an epoch series: --store is required")
    store = ReleaseStore(args.store)
    accountant = PrivacyAccountant(args.epsilon * args.epochs)
    try:
        ledger = EpochLedger(
            store,
            accountant,
            n_shards=args.shards,
            epsilon_per_epoch=args.epsilon,
            window=args.window,
            blinding_seed=args.seed,
            fit_params=params,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    lines = [
        f"continual release: {args.epochs} epochs x {args.shards} shards, "
        f"window={args.window}, epsilon/epoch={args.epsilon:g}",
    ]
    for epoch in range(args.epochs):
        data = spec.make(args.n, rng=args.seed + epoch)
        ledger.ingest(epoch, shard_dataset(data, args.shards))
        try:
            ledger.release(epoch, rng=args.seed + epoch)
        except TypeError as exc:
            raise SystemExit(str(exc)) from None
    for record in ledger.records:
        window = ",".join(str(t) for t in record.window_epochs)
        lines.append(
            f"  epoch {record.epoch:4d} -> {record.release_id}  "
            f"window=[{window}]  n={record.n_points:,}  "
            f"epsilon={record.epsilon:g}"
        )
    lines.append(
        f"budget   : {accountant.spent:g} spent of {accountant.total_epsilon:g} "
        f"({accountant.remaining:g} remaining)"
    )
    lines.append(f"store    : {store.root} ({len(store)} release(s))")
    if args.out:
        save_release(store.get(ledger.as_of(args.epochs - 1)), args.out)
        lines.append(f"latest release written to {args.out}")
    return "\n".join(lines)


def _run_collector_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .datasets import SPATIAL_DATASETS
    from .federated import ShardCollector, shard_dataset
    from .federated.net import CollectorEndpoint, CollectorServer

    if args.n_shards < 2:
        raise SystemExit(f"--n-shards must be at least 2, got {args.n_shards}")
    if not 0 <= args.shard_id < args.n_shards:
        raise SystemExit(
            f"--shard-id must be in [0, {args.n_shards}), got {args.shard_id}"
        )
    if args.dataset not in SPATIAL_DATASETS:
        raise SystemExit(
            f"unknown spatial dataset {args.dataset!r}; choose from "
            f"{', '.join(sorted(SPATIAL_DATASETS))}"
        )
    dataset = SPATIAL_DATASETS[args.dataset].make(args.n, rng=args.seed)
    shard = shard_dataset(dataset, args.n_shards)[args.shard_id]
    collector = ShardCollector(
        args.shard_id, args.n_shards, shard, blinding_seed=args.seed
    )
    server = CollectorServer((args.host, args.port), CollectorEndpoint(collector))

    def _stop(signum: int, frame: object) -> None:
        # shutdown() blocks until serve_forever returns, so it must run
        # off the signal-handling (main) thread to avoid a deadlock.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    print(
        f"READY shard={args.shard_id} port={server.port} n={shard.n}",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from .serve import ReleaseStore, serve

    try:
        store = ReleaseStore(args.store, create=False)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from None
    workers = getattr(args, "workers", 1)
    print(
        f"serving {len(store)} release(s) from {store.root} "
        f"on http://{args.host}:{args.port} "
        f"(cache={args.cache}, workers={workers}) — Ctrl-C stops",
        flush=True,
    )
    serve(
        store,
        args.host,
        args.port,
        cache_size=args.cache,
        quiet=args.quiet,
        workers=workers,
    )
    return 0


def _run_methods() -> str:
    from .api import registry

    lines = ["Registered methods (repro run --method NAME ...)"]
    for spec in registry.specs():
        params = ", ".join(f"{k}={v!r}" for k, v in spec["params"].items())
        lines.append(f"  {spec['name']:11s} {spec['kind']:9s} {spec['summary']}")
        lines.append(f"  {'':11s} {'':9s} params: {params}")
    return "\n".join(lines)


def _run_bench(args: argparse.Namespace) -> tuple[str, int]:
    from .experiments import (
        bench_regression_failures,
        compare_bench_results,
        run_perf_bench,
        write_bench_json,
    )

    if args.fail_above is not None and not args.compare:
        raise SystemExit("--fail-above requires --compare BASELINE_JSON")
    if args.fail_above is not None and args.fail_above <= 1.0:
        raise SystemExit(
            f"--fail-above must exceed 1.0 (a slowdown factor), got {args.fail_above}"
        )
    baseline = None
    if args.compare:
        # Load the baseline up front so a bad path fails before the
        # multi-minute benchmark run, not after it.
        try:
            with open(args.compare) as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(
                f"cannot read --compare baseline {args.compare!r}: {exc}"
            ) from None

    results = run_perf_bench(
        n_points=args.n,
        n_queries=args.queries,
        band=args.band,
        epsilon=args.epsilon,
        repeats=args.repeats,
        rng=args.seed,
        n_sequences=args.sequences,
        n_synthetic=args.synthetic,
    )
    lines = [
        f"perf bench (n={args.n:,}, {args.queries:,} {args.band} queries, "
        f"{args.sequences:,} sequences, best of {args.repeats})",
    ]
    for name, case in results["cases"].items():
        line = f"  {name:20s} {case['optimized_s']*1e3:9.1f} ms"
        if "reference_s" in case:
            line += (
                f"   reference {case['reference_s']*1e3:9.1f} ms"
                f"   speedup {case['speedup']:5.1f}x"
            )
        lines.append(line)
    if args.out:
        write_bench_json(results, args.out)
        lines.append(f"results written to {args.out}")
    code = 0
    if baseline is not None:
        table, _ = compare_bench_results(results, baseline)
        lines.append(f"comparison vs {args.compare}:")
        lines.append(table)
        baseline_cases = baseline.get("cases")
        baseline_names = set(baseline_cases) if isinstance(baseline_cases, dict) else set()
        missing = sorted(set(results["cases"]) - baseline_names)
        if missing:
            # A case added since the baseline was committed has nothing to
            # compare against — warn instead of failing (and never KeyError).
            lines.append(
                f"WARNING: baseline {args.compare} has no entry for "
                f"{', '.join(missing)}; comparison skipped for new case(s) — "
                f"regenerate the baseline with `repro bench --out {args.compare}`"
            )
        if args.fail_above is not None:
            failures = bench_regression_failures(results, baseline, args.fail_above)
            if failures:
                lines.append(
                    f"FAIL: {len(failures)} case(s) slower than "
                    f"{args.fail_above:g}x the baseline:"
                )
                for name, ratio in failures:
                    lines.append(f"  {name:22s} {ratio:6.2f}x")
                code = 1
            else:
                lines.append(
                    f"regression gate passed (no case above {args.fail_above:g}x)"
                )
    return "\n".join(lines), code


def _with_trace(args: argparse.Namespace, fn) -> str:
    """Run a fit handler, recording a telemetry trace when --trace is set."""
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return fn(args)
    from . import telemetry

    tracer = telemetry.enable()
    try:
        result = fn(args)
    finally:
        telemetry.disable()
    count = tracer.export_jsonl(trace_path)
    return result + (
        f"\ntrace    : {count} record(s) written to {trace_path} "
        "(inspect with `repro trace`)"
    )


def _run_trace(args: argparse.Namespace) -> str:
    from .telemetry import read_jsonl, summarize_records, to_chrome_trace

    try:
        records = read_jsonl(args.trace_file)
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        raise SystemExit(
            f"cannot read trace {args.trace_file!r}: {exc}"
        ) from None
    lines = [f"trace: {len(records)} record(s) from {args.trace_file}"]
    if records:
        lines.append(
            f"  {'name':32s} {'count':>7s} {'total ms':>10s} "
            f"{'mean ms':>9s} {'cpu ms':>9s}"
        )
        for entry in summarize_records(records):
            lines.append(
                f"  {entry['name']:32s} {entry['count']:7d} "
                f"{entry['wall_s'] * 1e3:10.2f} {entry['mean_ms']:9.3f} "
                f"{entry['cpu_s'] * 1e3:9.2f}"
            )
    if args.chrome:
        from ._io import atomic_write_text

        atomic_write_text(args.chrome, json.dumps(to_chrome_trace(records)))
        lines.append(
            f"chrome trace written to {args.chrome} "
            "(open in chrome://tracing or ui.perfetto.dev)"
        )
    return "\n".join(lines)


def _run_svt() -> str:
    from .experiments import SweepResult
    from .svt import (
        binary_svt_log_ratio,
        improved_svt_log_ratio_bound,
        vanilla_svt_log_ratio,
    )

    lam = 2.0
    ks = [2, 4, 8, 16, 32, 64]
    result = SweepResult(
        title="SVT privacy loss at the claimed scale (lambda=2, eps=1)",
        row_label="k",
        rows=[float(k) for k in ks],
        columns=[],
    )
    result.add_column("BinarySVT", [binary_svt_log_ratio(k, lam) for k in ks])
    result.add_column("VanillaSVT", [vanilla_svt_log_ratio(k, lam) for k in ks])
    result.add_column("claimed", [2.0] * len(ks))
    result.add_column("Improved bound", [improved_svt_log_ratio_bound(lam)] * len(ks))
    return result.to_table(format_float)


def _run_datasets() -> str:
    from .datasets import SEQUENCE_DATASETS, SPATIAL_DATASETS

    lines = ["Datasets (paper scale -> default synthetic substitute)"]
    for spec in list(SPATIAL_DATASETS.values()) + list(SEQUENCE_DATASETS.values()):
        lines.append(
            f"  {spec.name:8s} {spec.kind:8s} paper n={spec.paper_cardinality:>9,d} "
            f"default n={spec.default_cardinality:>7,d}  {spec.description}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        print(_with_trace(args, _run_method))
    elif args.command == "methods":
        print(_run_methods())
    elif args.command == "query":
        print(_run_query(args))
    elif args.command == "store":
        print(_run_store(args))
    elif args.command == "federated-fit":
        print(_with_trace(args, _run_federated_fit))
    elif args.command == "collector-serve":
        return _run_collector_serve(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "figure5":
        result = run_range_query_experiment(
            args.dataset,
            args.band,
            epsilons=args.epsilons,
            n_reps=args.reps,
            n_queries=args.queries,
            dataset_n=args.n,
            rng=args.seed,
        )
        print(result.to_table(format_percent))
    elif args.command == "figure6":
        result = run_topk_experiment(
            args.dataset,
            k=args.k,
            epsilons=args.epsilons,
            n_reps=args.reps,
            dataset_n=args.n,
            rng=args.seed,
        )
        print(result.to_table(format_float))
    elif args.command == "figure7":
        result = run_length_distribution_experiment(
            args.dataset,
            epsilons=args.epsilons,
            n_reps=args.reps,
            n_synthetic=args.synthetic,
            dataset_n=args.n,
            rng=args.seed,
        )
        print(result.to_table(format_float))
    elif args.command == "table4":
        result = run_privtree_timing(
            epsilons=args.epsilons,
            n_reps=args.reps,
            dataset_n=args.n,
            rng=args.seed,
        )
        print(result.to_table(format_seconds))
    elif args.command == "bench":
        text, code = _run_bench(args)
        print(text)
        return code
    elif args.command == "trace":
        print(_run_trace(args))
    elif args.command == "svt":
        print(_run_svt())
    elif args.command == "datasets":
        print(_run_datasets())
    return 0


if __name__ == "__main__":  # pragma: no cover - `python -m repro.cli`
    import sys

    sys.exit(main())
