"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro figure5 --dataset road --band medium --reps 3
    python -m repro figure6 --dataset msnbc --k 100
    python -m repro figure7 --dataset mooc
    python -m repro table4
    python -m repro svt
    python -m repro datasets

Each command prints the corresponding paper-style table; ``--n`` scales the
synthetic dataset, ``--epsilons`` overrides the sweep.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from .experiments import (
    format_float,
    format_percent,
    format_seconds,
    run_length_distribution_experiment,
    run_privtree_timing,
    run_range_query_experiment,
    run_topk_experiment,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of the PrivTree paper (SIGMOD 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n", type=int, default=None, help="dataset cardinality")
        p.add_argument("--reps", type=int, default=1, help="repetitions per cell")
        p.add_argument("--seed", type=int, default=0, help="experiment seed")
        p.add_argument(
            "--epsilons",
            type=float,
            nargs="+",
            default=None,
            help="privacy budgets to sweep",
        )

    fig5 = sub.add_parser("figure5", help="range-count relative error")
    fig5.add_argument("--dataset", default="road", choices=["road", "gowalla", "nyc", "beijing"])
    fig5.add_argument("--band", default="medium", choices=["small", "medium", "large"])
    fig5.add_argument("--queries", type=int, default=100)
    common(fig5)

    fig6 = sub.add_parser("figure6", help="top-k frequent-string precision")
    fig6.add_argument("--dataset", default="msnbc", choices=["mooc", "msnbc"])
    fig6.add_argument("--k", type=int, default=100)
    common(fig6)

    fig7 = sub.add_parser("figure7", help="sequence-length distribution TVD")
    fig7.add_argument("--dataset", default="msnbc", choices=["mooc", "msnbc"])
    fig7.add_argument("--synthetic", type=int, default=2000)
    common(fig7)

    table4 = sub.add_parser("table4", help="PrivTree running time")
    common(table4)

    sub.add_parser("svt", help="SVT privacy-loss counterexamples")
    sub.add_parser("datasets", help="dataset characteristics (Tables 2-3)")
    return parser


def _run_svt() -> str:
    from .experiments import SweepResult
    from .svt import (
        binary_svt_log_ratio,
        improved_svt_log_ratio_bound,
        vanilla_svt_log_ratio,
    )

    lam = 2.0
    ks = [2, 4, 8, 16, 32, 64]
    result = SweepResult(
        title="SVT privacy loss at the claimed scale (lambda=2, eps=1)",
        row_label="k",
        rows=[float(k) for k in ks],
        columns=[],
    )
    result.add_column("BinarySVT", [binary_svt_log_ratio(k, lam) for k in ks])
    result.add_column("VanillaSVT", [vanilla_svt_log_ratio(k, lam) for k in ks])
    result.add_column("claimed", [2.0] * len(ks))
    result.add_column("Improved bound", [improved_svt_log_ratio_bound(lam)] * len(ks))
    return result.to_table(format_float)


def _run_datasets() -> str:
    from .datasets import SEQUENCE_DATASETS, SPATIAL_DATASETS

    lines = ["Datasets (paper scale -> default synthetic substitute)"]
    for spec in list(SPATIAL_DATASETS.values()) + list(SEQUENCE_DATASETS.values()):
        lines.append(
            f"  {spec.name:8s} {spec.kind:8s} paper n={spec.paper_cardinality:>9,d} "
            f"default n={spec.default_cardinality:>7,d}  {spec.description}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figure5":
        result = run_range_query_experiment(
            args.dataset,
            args.band,
            epsilons=args.epsilons,
            n_reps=args.reps,
            n_queries=args.queries,
            dataset_n=args.n,
            rng=args.seed,
        )
        print(result.to_table(format_percent))
    elif args.command == "figure6":
        result = run_topk_experiment(
            args.dataset,
            k=args.k,
            epsilons=args.epsilons,
            n_reps=args.reps,
            dataset_n=args.n,
            rng=args.seed,
        )
        print(result.to_table(format_float))
    elif args.command == "figure7":
        result = run_length_distribution_experiment(
            args.dataset,
            epsilons=args.epsilons,
            n_reps=args.reps,
            n_synthetic=args.synthetic,
            dataset_n=args.n,
            rng=args.seed,
        )
        print(result.to_table(format_float))
    elif args.command == "table4":
        result = run_privtree_timing(
            epsilons=args.epsilons,
            n_reps=args.reps,
            dataset_n=args.n,
            rng=args.seed,
        )
        print(result.to_table(format_seconds))
    elif args.command == "svt":
        print(_run_svt())
    elif args.command == "datasets":
        print(_run_datasets())
    return 0
