"""Differentially private k-means via PrivTree coarsening.

Section 1 motivates the decomposition problem with private data mining:
"first coarsen the input data and inject noise into it, then use the
modified data to derive mining results."  This module realizes that recipe:

* :func:`privtree_kmeans` — build a PrivTree histogram (the only step that
  touches the data; all of ε is spent there), then run weighted Lloyd
  iterations on the leaf centroids with the noisy counts as weights.
  Everything after the release is postprocessing, so the whole procedure is
  ε-DP by construction.
* :func:`dplloyd_kmeans` — the classical interactive baseline (Su et al.):
  each Lloyd iteration publishes noisy cluster sums and sizes, splitting ε
  across iterations.

``kmeans_cost`` evaluates both against the exact data for experiments.
"""

from __future__ import annotations

import numpy as np

from ..mechanisms.rng import RngLike, ensure_rng
from ..spatial.dataset import SpatialDataset
from ..spatial.histogram_tree import HistogramTree
from ..spatial.quadtree import _privtree_histogram

__all__ = ["privtree_kmeans", "dplloyd_kmeans", "kmeans_cost"]


def _weighted_lloyd(
    points: np.ndarray,
    weights: np.ndarray,
    k: int,
    iterations: int,
    gen: np.random.Generator,
) -> np.ndarray:
    """Standard Lloyd iterations on weighted points (no privacy needed)."""
    positive = weights > 0
    pts = points[positive]
    wts = weights[positive]
    if pts.shape[0] == 0:
        raise ValueError("no positive-weight points to cluster")
    # Weighted k-means++ seeding: the first seed follows the weights, each
    # further seed follows weight x squared-distance-to-nearest-seed.
    seeds = [int(gen.choice(pts.shape[0], p=wts / wts.sum()))]
    for _ in range(min(k, pts.shape[0]) - 1):
        d2 = ((pts[:, None, :] - pts[seeds][None, :, :]) ** 2).sum(axis=2).min(axis=1)
        prob = wts * d2
        total = prob.sum()
        if total <= 0:
            seeds.append(int(gen.choice(pts.shape[0], p=wts / wts.sum())))
        else:
            seeds.append(int(gen.choice(pts.shape[0], p=prob / total)))
    centers = pts[seeds].copy()
    if centers.shape[0] < k:  # duplicate seeds if fewer cells than k
        extra = gen.choice(pts.shape[0], size=k - centers.shape[0])
        centers = np.vstack([centers, pts[extra]])
    for _ in range(iterations):
        distances = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assign = distances.argmin(axis=1)
        for j in range(k):
            mask = assign == j
            mass = wts[mask].sum()
            if mass > 0:
                centers[j] = (pts[mask] * wts[mask, None]).sum(axis=0) / mass
    return centers


def privtree_kmeans(
    dataset: SpatialDataset,
    k: int,
    epsilon: float,
    iterations: int = 10,
    rng: RngLike = None,
    synopsis: HistogramTree | None = None,
) -> np.ndarray:
    """ε-DP k-means centers via PrivTree coarsening.

    Spends all of ``epsilon`` on one :func:`privtree_histogram` release,
    then clusters the leaf centers weighted by their noisy counts — pure
    postprocessing.  A pre-built ``synopsis`` can be supplied to reuse an
    existing release (no additional privacy cost).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k!r}")
    gen = ensure_rng(rng)
    if synopsis is None:
        synopsis = _privtree_histogram(dataset, epsilon, rng=gen)
    leaves = [n for n in synopsis.root.iter_nodes() if n.is_leaf]
    centers = np.array([leaf.box.center for leaf in leaves])
    weights = np.array([max(leaf.count, 0.0) for leaf in leaves])
    return _weighted_lloyd(centers, weights, k, iterations, gen)


def dplloyd_kmeans(
    dataset: SpatialDataset,
    k: int,
    epsilon: float,
    iterations: int = 5,
    rng: RngLike = None,
) -> np.ndarray:
    """The interactive DPLloyd baseline.

    Each iteration publishes, per cluster, a noisy point count (sensitivity
    1) and a noisy coordinate sum (sensitivity = the domain diameter per
    axis); the budget is split evenly across iterations and halved between
    the two statistics.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k!r}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations!r}")
    if not epsilon > 0:
        raise ValueError(f"epsilon must be positive, got {epsilon!r}")
    gen = ensure_rng(rng)
    pts = dataset.points
    low = np.asarray(dataset.domain.low)
    extent = np.asarray(dataset.domain.extents)
    eps_iter = epsilon / iterations
    count_scale = 1.0 / (eps_iter / 2.0)
    # Coordinate sums have per-axis sensitivity = extent of that axis.
    sum_scales = extent * dataset.ndim / (eps_iter / 2.0)

    centers = gen.uniform(low, low + extent, size=(k, dataset.ndim))
    for _ in range(iterations):
        distances = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assign = distances.argmin(axis=1)
        for j in range(k):
            mask = assign == j
            noisy_count = mask.sum() + gen.laplace(0.0, count_scale)
            noisy_sum = pts[mask].sum(axis=0) + gen.laplace(
                0.0, sum_scales, size=dataset.ndim
            )
            if noisy_count > 1.0:
                centers[j] = np.clip(noisy_sum / noisy_count, low, low + extent)
    return centers


def kmeans_cost(dataset: SpatialDataset, centers: np.ndarray) -> float:
    """Mean squared distance of each point to its nearest center (NICV)."""
    centers = np.asarray(centers, dtype=float)
    if centers.ndim != 2 or centers.shape[1] != dataset.ndim:
        raise ValueError(
            f"centers must be (k, {dataset.ndim}), got {centers.shape}"
        )
    distances = ((dataset.points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    return float(distances.min(axis=1).mean())
