"""Downstream applications built on the released synopses (Section 1)."""

from .kmeans import dplloyd_kmeans, kmeans_cost, privtree_kmeans

__all__ = ["dplloyd_kmeans", "kmeans_cost", "privtree_kmeans"]
