"""The method registry: names -> estimator factories.

Every method of the paper is addressable by a short name, so experiment
harnesses, the CLI, and downstream services can resolve methods from
configuration instead of importing free functions::

    from repro.api import registry

    est = registry.get("privtree")                     # default config
    est = registry.from_spec("privtree", epsilon=0.5)  # configured
    registry.names()  # ['ag', 'dawa', 'hierarchy', ...]
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Type

from .base import Estimator

__all__ = ["register", "get", "get_class", "from_spec", "names", "specs"]

_REGISTRY: dict[str, Type[Estimator]] = {}


def register(cls: Type[Estimator]) -> Type[Estimator]:
    """Class decorator: add an estimator class under its ``name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty `name`")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"method name {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_loaded() -> None:
    # The built-in estimators register themselves on import; delay it so
    # `import repro.api.registry` alone never forms an import cycle.
    if not _REGISTRY:
        from . import estimators  # noqa: F401


def names() -> list[str]:
    """All registered method names, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_class(name: str) -> Type[Estimator]:
    """The estimator class registered under ``name``."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown method {name!r}; registered methods: {', '.join(names())}"
        ) from None


def from_spec(name: str, **params: Any) -> Estimator:
    """Construct a configured estimator from its registry name.

    Unknown parameters are rejected with the estimator's valid field names,
    so typos fail loudly instead of silently running at defaults.
    """
    cls = get_class(name)
    valid = set(cls.param_names())
    unknown = sorted(set(params) - valid)
    if unknown:
        raise TypeError(
            f"unknown parameter(s) for method {name!r}: {', '.join(unknown)}; "
            f"valid parameters: {', '.join(sorted(valid))}"
        )
    return cls(**params)


def get(name: str, **params: Any) -> Estimator:
    """A configured estimator instance (alias of :func:`from_spec`)."""
    return from_spec(name, **params)


def specs() -> list[dict[str, Any]]:
    """One describing dict per registered method (name, kind, parameters)."""
    _ensure_loaded()
    out = []
    for name in names():
        cls = _REGISTRY[name]
        out.append(
            {
                "name": name,
                "kind": cls.kind,
                "summary": (cls.__doc__ or "").strip().splitlines()[0],
                "params": {
                    f.name: f.default
                    for f in dataclasses.fields(cls)
                    if f.default is not dataclasses.MISSING
                },
            }
        )
    return out


def iter_estimators(kind: str | None = None) -> Iterable[Type[Estimator]]:
    """Registered estimator classes, optionally filtered by input family."""
    _ensure_loaded()
    for name in names():
        cls = _REGISTRY[name]
        if kind is None or cls.kind == kind:
            yield cls
