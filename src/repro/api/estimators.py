"""Registered estimators wrapping every method of the paper.

Each estimator is a frozen dataclass config plus a ``fit`` that (1) debits
the accountant by exactly ``epsilon`` — recording the method's internal
budget split as labelled ledger entries — and (2) delegates to the shared
implementation the legacy free functions also use, so results are
bit-identical to the historical surface under the same rng.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..baselines.ag import AG_ALPHA, _ag_histogram
from ..baselines.dawa import DAWA_RHO, _dawa_histogram
from ..baselines.hierarchy import _hierarchy_histogram
from ..baselines.kdtree import _kdtree_histogram
from ..baselines.ngram import ngram_model
from ..baselines.privelet import _privelet_histogram
from ..baselines.ug import _ug_histogram
from ..core.privtree import DEFAULT_MAX_DEPTH
from ..federated.driver import federated_privtree_histogram, shard_dataset
from ..mechanisms.accountant import PrivacyAccountant
from ..mechanisms.rng import RngLike, ensure_rng
from ..sequence.dataset import SequenceDataset
from ..sequence.private_pst import private_pst
from ..spatial.dataset import SpatialDataset
from ..spatial.quadtree import _privtree_histogram, _simpletree_histogram
from .base import Estimator
from .registry import register
from .releases import (
    AdaptiveGridRelease,
    GridRelease,
    NGramRelease,
    SequenceRelease,
    SpatialTreeRelease,
)

__all__ = [
    "AGEstimator",
    "DawaEstimator",
    "FederatedPrivTreeEstimator",
    "HierarchyEstimator",
    "KDTreeEstimator",
    "NGramEstimator",
    "PSTEstimator",
    "PriveletEstimator",
    "PrivTreeEstimator",
    "SimpleTreeEstimator",
    "UGEstimator",
]


@register
@dataclass(frozen=True)
class PrivTreeEstimator(Estimator):
    """Algorithm 2 + §3.4 noisy leaf counts — the paper's main method."""

    name = "privtree"
    kind = "spatial"

    epsilon: float = 1.0
    theta: float = 0.0
    tree_fraction: float = 0.5
    dims_per_split: int | None = None
    tuples_per_individual: int = 1
    count_mechanism: str = "laplace"
    max_depth: int | None = DEFAULT_MAX_DEPTH

    def fit(
        self,
        dataset: SpatialDataset,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: RngLike = None,
    ) -> SpatialTreeRelease:
        acct = self._accountant(accountant)
        with acct.transaction():
            tree = _privtree_histogram(
                dataset,
                self.epsilon,
                dims_per_split=self.dims_per_split,
                theta=self.theta,
                tree_fraction=self.tree_fraction,
                tuples_per_individual=self.tuples_per_individual,
                count_mechanism=self.count_mechanism,
                rng=ensure_rng(rng),
                max_depth=self.max_depth,
                accountant=acct,
            )
        return SpatialTreeRelease(tree, method=self.name, epsilon_spent=self.epsilon)


@register
@dataclass(frozen=True)
class FederatedPrivTreeEstimator(Estimator):
    """PrivTree fitted over ``n_shards`` blinded collectors (PrivCount-style).

    Same decomposition, same budget split, same noise stream as
    :class:`PrivTreeEstimator` — the release is bit-identical to the
    centralized fit under the same ``rng`` — but the per-node counts are
    recovered by secure aggregation of additively blinded shard shares, so
    no party ever holds a raw per-shard histogram.  ``fit`` shards the given
    dataset round-robin across in-process collectors; distributed callers
    build their own :class:`~repro.federated.ShardCollector` ring and drive
    :class:`~repro.federated.FederatedPrivTree` directly.
    """

    name = "privtree_federated"
    kind = "spatial"

    epsilon: float = 1.0
    n_shards: int = 3
    theta: float = 0.0
    tree_fraction: float = 0.5
    dims_per_split: int | None = None
    tuples_per_individual: int = 1
    count_mechanism: str = "laplace"
    max_depth: int | None = DEFAULT_MAX_DEPTH
    #: Root seed of the pairwise blinding streams.  Results do not depend on
    #: it (masks cancel exactly); it only decorrelates the shares.
    blinding_seed: int = 0

    def fit(
        self,
        dataset: SpatialDataset,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: RngLike = None,
    ) -> SpatialTreeRelease:
        acct = self._accountant(accountant)
        with acct.transaction():
            tree = federated_privtree_histogram(
                shard_dataset(dataset, self.n_shards),
                self.epsilon,
                dims_per_split=self.dims_per_split,
                theta=self.theta,
                tree_fraction=self.tree_fraction,
                tuples_per_individual=self.tuples_per_individual,
                count_mechanism=self.count_mechanism,
                rng=ensure_rng(rng),
                max_depth=self.max_depth,
                accountant=acct,
                blinding_seed=self.blinding_seed,
                label_prefix=self.name,
            )
        return SpatialTreeRelease(tree, method=self.name, epsilon_spent=self.epsilon)


@register
@dataclass(frozen=True)
class SimpleTreeEstimator(Estimator):
    """Algorithm 1: fixed-height noisy decomposition (scale ``h/ε``)."""

    name = "simpletree"
    kind = "spatial"

    epsilon: float = 1.0
    height: int = 8
    theta: float = 0.0
    dims_per_split: int | None = None

    def fit(
        self,
        dataset: SpatialDataset,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: RngLike = None,
    ) -> SpatialTreeRelease:
        acct = self._accountant(accountant)
        with acct.transaction():
            tree = _simpletree_histogram(
                dataset,
                self.epsilon,
                height=self.height,
                theta=self.theta,
                dims_per_split=self.dims_per_split,
                rng=ensure_rng(rng),
                accountant=acct,
            )
        return SpatialTreeRelease(tree, method=self.name, epsilon_spent=self.epsilon)


@register
@dataclass(frozen=True)
class UGEstimator(Estimator):
    """The uniform-grid baseline (Qardaji et al.)."""

    name = "ug"
    kind = "spatial"

    epsilon: float = 1.0
    size_factor: float = 1.0

    def fit(
        self,
        dataset: SpatialDataset,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: RngLike = None,
    ) -> GridRelease:
        acct = self._accountant(accountant)
        with acct.transaction():
            acct.spend(self.epsilon, "ug/cell counts")
            grid = _ug_histogram(
                dataset, self.epsilon, size_factor=self.size_factor, rng=ensure_rng(rng)
            )
        return GridRelease(grid, method=self.name, epsilon_spent=self.epsilon)


@register
@dataclass(frozen=True)
class AGEstimator(Estimator):
    """The two-level adaptive-grid baseline (2-d only)."""

    name = "ag"
    kind = "spatial"

    epsilon: float = 1.0
    alpha: float = AG_ALPHA
    size_factor: float = 1.0

    def fit(
        self,
        dataset: SpatialDataset,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: RngLike = None,
    ) -> AdaptiveGridRelease:
        acct = self._accountant(accountant)
        with acct.transaction():
            acct.spend(self.alpha * self.epsilon, "ag/level-1 grid")
            acct.spend((1.0 - self.alpha) * self.epsilon, "ag/level-2 grids")
            synopsis = _ag_histogram(
                dataset,
                self.epsilon,
                alpha=self.alpha,
                size_factor=self.size_factor,
                rng=ensure_rng(rng),
            )
        return AdaptiveGridRelease(synopsis, method=self.name, epsilon_spent=self.epsilon)


@register
@dataclass(frozen=True)
class HierarchyEstimator(Estimator):
    """The fixed-hierarchy baseline with constrained inference."""

    name = "hierarchy"
    kind = "spatial"

    epsilon: float = 1.0
    height: int = 3
    leaf_cells_exponent: int = 6

    def fit(
        self,
        dataset: SpatialDataset,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: RngLike = None,
    ) -> GridRelease:
        acct = self._accountant(accountant)
        levels = self.height - 1
        with acct.transaction():
            for level in range(1, levels + 1):
                acct.spend(self.epsilon / levels, f"hierarchy/level {level}")
            synopsis = _hierarchy_histogram(
                dataset,
                self.epsilon,
                height=self.height,
                leaf_cells_exponent=self.leaf_cells_exponent,
                rng=ensure_rng(rng),
            )
        return GridRelease(
            synopsis.leaf_grid,
            method=self.name,
            epsilon_spent=self.epsilon,
            meta={"levels": synopsis.levels, "branchings": list(synopsis.branchings)},
        )


@register
@dataclass(frozen=True)
class DawaEstimator(Estimator):
    """The DAWA-lite baseline: private partition + bucket counts."""

    name = "dawa"
    kind = "spatial"

    epsilon: float = 1.0
    cells_per_dim: int | None = None
    rho: float = DAWA_RHO

    def fit(
        self,
        dataset: SpatialDataset,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: RngLike = None,
    ) -> GridRelease:
        acct = self._accountant(accountant)
        with acct.transaction():
            acct.spend(self.rho * self.epsilon, "dawa/partition")
            acct.spend((1.0 - self.rho) * self.epsilon, "dawa/bucket counts")
            synopsis = _dawa_histogram(
                dataset,
                self.epsilon,
                cells_per_dim=self.cells_per_dim,
                rho=self.rho,
                rng=ensure_rng(rng),
            )
        return GridRelease(
            synopsis.grid,
            method=self.name,
            epsilon_spent=self.epsilon,
            meta={"boundaries": [int(b) for b in synopsis.boundaries]},
        )


@register
@dataclass(frozen=True)
class PriveletEstimator(Estimator):
    """The Privelet baseline: noisy Haar wavelet coefficients."""

    name = "privelet"
    kind = "spatial"

    epsilon: float = 1.0
    cells_per_dim: int | None = None

    def fit(
        self,
        dataset: SpatialDataset,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: RngLike = None,
    ) -> GridRelease:
        acct = self._accountant(accountant)
        with acct.transaction():
            acct.spend(self.epsilon, "privelet/wavelet coefficients")
            synopsis = _privelet_histogram(
                dataset,
                self.epsilon,
                cells_per_dim=self.cells_per_dim,
                rng=ensure_rng(rng),
            )
        return GridRelease(synopsis.grid, method=self.name, epsilon_spent=self.epsilon)


@register
@dataclass(frozen=True)
class KDTreeEstimator(Estimator):
    """The private k-d tree baseline (exponential-mechanism splits)."""

    name = "kdtree"
    kind = "spatial"

    epsilon: float = 1.0
    height: int = 7
    split_fraction: float = 0.3

    def fit(
        self,
        dataset: SpatialDataset,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: RngLike = None,
    ) -> SpatialTreeRelease:
        acct = self._accountant(accountant)
        with acct.transaction():
            acct.spend(self.split_fraction * self.epsilon, "kdtree/split positions")
            acct.spend((1.0 - self.split_fraction) * self.epsilon, "kdtree/leaf counts")
            tree = _kdtree_histogram(
                dataset,
                self.epsilon,
                height=self.height,
                split_fraction=self.split_fraction,
                rng=ensure_rng(rng),
            )
        return SpatialTreeRelease(tree, method=self.name, epsilon_spent=self.epsilon)


@register
@dataclass(frozen=True)
class PSTEstimator(Estimator):
    """The modified PrivTree for Markov models (§4.2) — name ``"pst"``."""

    name = "pst"
    kind = "sequence"

    epsilon: float = 1.0
    l_top: int = 20
    theta: float = 0.0
    max_depth: int | None = DEFAULT_MAX_DEPTH

    def fit(
        self,
        dataset: SequenceDataset,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: RngLike = None,
    ) -> SequenceRelease:
        acct = self._accountant(accountant)
        with acct.transaction():
            model = private_pst(
                dataset,
                self.epsilon,
                self.l_top,
                theta=self.theta,
                rng=ensure_rng(rng),
                max_depth=self.max_depth,
                accountant=acct,
            )
        return SequenceRelease(model, method=self.name, epsilon_spent=self.epsilon)


@register
@dataclass(frozen=True)
class NGramEstimator(Estimator):
    """The n-gram sequence baseline (Chen et al.)."""

    name = "ngram"
    kind = "sequence"

    epsilon: float = 1.0
    l_top: int = 20
    n_max: int = 5
    #: Optional precomputed :func:`repro.baselines.count_grams` cache so an
    #: ε sweep over one dataset counts grams only once (not privacy-relevant:
    #: the exact counts never leave the fit).
    gram_counts: Mapping[tuple[int, ...], int] | None = field(
        default=None, repr=False, compare=False
    )

    def fit(
        self,
        dataset: SequenceDataset,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: RngLike = None,
    ) -> NGramRelease:
        acct = self._accountant(accountant)
        with acct.transaction():
            for level in range(1, self.n_max + 1):
                acct.spend(self.epsilon / self.n_max, f"ngram/level {level}")
            model = ngram_model(
                dataset,
                self.epsilon,
                self.l_top,
                n_max=self.n_max,
                rng=ensure_rng(rng),
                gram_counts=self.gram_counts,
            )
        return NGramRelease(model, method=self.name, epsilon_spent=self.epsilon)
