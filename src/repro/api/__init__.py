"""The unified estimator/release API — one surface for every method.

The paper's core contribution is one engine behind many workloads; this
package makes that the programming model:

* :class:`Estimator` — a configured method.  ``fit(dataset, *, accountant,
  rng)`` consumes privacy budget and returns a release.  Resolve one by
  name with :func:`from_spec` (see :mod:`repro.api.registry`).
* :class:`Release` — the publishable artifact: one vectorized
  ``answer(workload)`` over the typed queries of :mod:`repro.queries`
  (plus the legacy ``query(...)``/``query_many`` scalar surface), uniform
  ``size``, ``epsilon_spent``, and a ``to_json`` /
  :func:`release_from_json` round-trip.
* ``registry`` — names like ``"privtree"``, ``"ug"``, ``"ag"``,
  ``"hierarchy"``, ``"dawa"``, ``"privelet"``, ``"kdtree"``,
  ``"simpletree"``, ``"ngram"``, ``"pst"`` mapped to estimator factories.

Example — two releases drawn from one shared budget::

    from repro.api import from_spec
    from repro.mechanisms import PrivacyAccountant

    accountant = PrivacyAccountant(2.0)
    hist = from_spec("privtree", epsilon=1.0).fit(points, accountant=accountant, rng=0)
    grid = from_spec("ug", epsilon=1.0).fit(points, accountant=accountant, rng=1)
    accountant.ledger   # every internal budget split, labelled
    hist.query(box)     # noisy range count
    hist.to_json()      # ship it
"""

from . import registry
from .base import Estimator, Release, load_release, release_from_json, save_release
from .estimators import (
    AGEstimator,
    DawaEstimator,
    FederatedPrivTreeEstimator,
    HierarchyEstimator,
    KDTreeEstimator,
    NGramEstimator,
    PriveletEstimator,
    PrivTreeEstimator,
    PSTEstimator,
    SimpleTreeEstimator,
    UGEstimator,
)
from .registry import from_spec, get, get_class, names
from .releases import (
    AdaptiveGridRelease,
    GridRelease,
    NGramRelease,
    SequenceRelease,
    SpatialRelease,
    SpatialTreeRelease,
)

__all__ = [
    "AGEstimator",
    "AdaptiveGridRelease",
    "DawaEstimator",
    "Estimator",
    "FederatedPrivTreeEstimator",
    "GridRelease",
    "HierarchyEstimator",
    "KDTreeEstimator",
    "NGramEstimator",
    "NGramRelease",
    "PSTEstimator",
    "PriveletEstimator",
    "PrivTreeEstimator",
    "Release",
    "SequenceRelease",
    "SimpleTreeEstimator",
    "SpatialRelease",
    "SpatialTreeRelease",
    "UGEstimator",
    "from_spec",
    "get",
    "get_class",
    "load_release",
    "names",
    "registry",
    "release_from_json",
    "save_release",
]
