"""The two protocols of the unified API: :class:`Estimator` and :class:`Release`.

One engine, many workloads (the paper's framing, made literal): an
*estimator* is a configured private-release method — PrivTree, a grid
baseline, a sequence model — whose ``fit(dataset, *, accountant, rng)``
consumes privacy budget and returns a *release*, the publishable artifact.
Releases answer queries, know what they cost, and round-trip through plain
JSON so a curator can ship them to consumers who do not have this package's
internals.

Every estimator debits a :class:`~repro.mechanisms.PrivacyAccountant` by
exactly its configured ``epsilon``; composed pipelines pass one shared
accountant through several ``fit`` calls and read the §3.4 / §4.2 budget
splits back as explicit ledger entries.
"""

from __future__ import annotations

import abc
import dataclasses
import json
from pathlib import Path
from typing import Any, ClassVar

import numpy as np

from .._io import atomic_write_text
from ..mechanisms.accountant import PrivacyAccountant

__all__ = ["Estimator", "Release", "release_from_json", "load_release", "save_release"]

_FORMAT = "repro.release"
_VERSION = 1

#: kind -> Release subclass, populated by ``Release.__init_subclass__``.
_RELEASE_KINDS: dict[str, type["Release"]] = {}


class Release(abc.ABC):
    """A published differentially private artifact.

    Uniform surface across workloads: :meth:`answer` evaluates a typed
    :class:`~repro.queries.Workload` in one vectorized dispatch (validated
    against :attr:`query_domain`), ``query(...)``/``query_many`` keep the
    legacy scalar surface (range counts for spatial synopses, string
    frequencies for sequence models) with bit-identical results, ``size``
    counts released components, ``epsilon_spent`` records the budget the
    artifact cost, and ``to_json`` / :func:`release_from_json` round-trip
    the artifact through a plain-JSON envelope.
    """

    #: Serialization tag; each concrete release declares a unique one.
    kind: ClassVar[str] = ""

    def __init__(self, *, method: str, epsilon_spent: float) -> None:
        self.method = method
        self.epsilon_spent = float(epsilon_spent)

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.kind:
            existing = _RELEASE_KINDS.get(cls.kind)
            if existing is not None and existing is not cls:
                raise ValueError(f"duplicate release kind {cls.kind!r}")
            _RELEASE_KINDS[cls.kind] = cls

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of released components (nodes, cells, grams, ...)."""

    @abc.abstractmethod
    def query(self, *args: Any, **kwargs: Any) -> float:
        """Answer the release's native query type.

        Legacy scalar surface; prefer :meth:`answer` with a typed
        :class:`~repro.queries.Workload` for batches.
        """

    def query_many(self, queries: Any) -> np.ndarray:
        """Answer a batch of native queries as a ``float64`` vector.

        Legacy batch surface (see :meth:`answer` for the typed path).
        Subclasses with compiled batch engines override this; the default
        loops over :meth:`query` into a preallocated output.  Overrides
        **must** return ``float64`` — the HTTP layer JSON-serializes
        whatever dtype comes back, and only ``float64`` round-trips
        losslessly through the wire.
        """
        queries = list(queries)
        out = np.empty(len(queries), dtype=np.float64)
        for i, q in enumerate(queries):
            out[i] = self.query(q)
        return out

    @property
    def query_domain(self) -> Any:
        """The domain typed queries validate against.

        A :class:`~repro.domains.Box` for spatial releases, an
        :class:`~repro.sequence.Alphabet` for sequence releases.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a query domain"
        )

    def answer(self, workload: Any) -> np.ndarray:
        """Answer a typed :class:`~repro.queries.Workload` in one dispatch.

        ``workload`` may be a :class:`~repro.queries.Workload`, a single
        :class:`~repro.queries.Query`, or a sequence of queries.  Every
        query is validated against :attr:`query_domain`; the whole batch
        is then compiled onto the release's batched engine (one vectorized
        call per query family — no per-query Python loop for the flat
        engines).  Returns one flat ``float64`` vector in workload order;
        each query contributes ``result_size`` consecutive entries (1 for
        the scalar types), so ``Workload.split`` recovers per-query
        groups.
        """
        from ..queries.answer import answer_workload

        return answer_workload(self, workload)

    def supported_query_types(self) -> tuple[type, ...]:
        """The :class:`~repro.queries.Query` classes this release answers."""
        from ..queries.answer import supported_query_types

        return supported_query_types(self)

    def warm(self) -> None:
        """Compile any lazy batch-query engines now (no-op by default).

        The serving layer calls this once at load time so the first query
        against a cached release does not pay the compile cost.
        """

    @abc.abstractmethod
    def _payload(self) -> dict[str, Any]:
        """The kind-specific body of the JSON document."""

    @classmethod
    @abc.abstractmethod
    def _from_payload(
        cls, payload: dict[str, Any], *, method: str, epsilon_spent: float
    ) -> "Release":
        """Inverse of :meth:`_payload`."""

    def to_json(self) -> dict[str, Any]:
        """Plain-JSON envelope: header + method + cost + payload."""
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "kind": self.kind,
            "method": self.method,
            "epsilon_spent": self.epsilon_spent,
            "payload": self._payload(),
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Release":
        """Rebuild any release from its :meth:`to_json` document."""
        return release_from_json(data)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} method={self.method!r} "
            f"size={self.size} epsilon_spent={self.epsilon_spent:g}>"
        )


def release_from_json(data: dict[str, Any]) -> Release:
    """Rebuild a :class:`Release` from its ``to_json`` document."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a release document: {data.get('format')!r}")
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported release version {data.get('version')!r}")
    kind = data.get("kind")
    release_cls = _RELEASE_KINDS.get(kind)
    if release_cls is None:
        raise ValueError(f"unknown release kind {kind!r}")
    # An untrusted document missing its provenance must fail loudly, like
    # every other loader validation — a silently defaulted method="" /
    # epsilon_spent=0.0 would misreport what the artifact is and cost.
    for key in ("method", "epsilon_spent"):
        if key not in data:
            raise ValueError(f"release document is missing the {key!r} key")
    return release_cls._from_payload(
        data["payload"],
        method=str(data["method"]),
        epsilon_spent=float(data["epsilon_spent"]),
    )


def save_release(release: Release, path: str | Path) -> None:
    """Write a release to a JSON file (atomically: temp file + rename)."""
    atomic_write_text(path, json.dumps(release.to_json()))


def load_release(path: str | Path) -> Release:
    """Read a release back from a JSON file."""
    return release_from_json(json.loads(Path(path).read_text()))


class Estimator(abc.ABC):
    """A configured private-release method.

    Concrete estimators are frozen dataclasses whose fields are the
    method's hyper-parameters (always including ``epsilon``, the total
    budget the method consumes).  Construct directly, or by name through
    the registry::

        est = repro.api.from_spec("privtree", epsilon=0.5)
        release = est.fit(dataset, rng=0)

    ``fit`` debits the given accountant by exactly ``epsilon`` (creating a
    private single-use accountant when none is passed) and raises
    :class:`~repro.mechanisms.BudgetExceededError` when the shared budget
    cannot cover it.
    """

    #: Registry name ("privtree", "ug", ...); set by concrete classes.
    name: ClassVar[str] = ""
    #: Input family: "spatial" or "sequence".
    kind: ClassVar[str] = ""

    # Concrete dataclasses define: epsilon: float
    epsilon: float

    @abc.abstractmethod
    def fit(
        self,
        dataset: Any,
        *,
        accountant: PrivacyAccountant | None = None,
        rng: Any = None,
    ) -> Release:
        """Consume ``epsilon`` from ``accountant`` and build the release."""

    def _accountant(self, accountant: PrivacyAccountant | None) -> PrivacyAccountant:
        """The accountant ``fit`` debits: the shared one, or a private one."""
        if accountant is not None:
            return accountant
        return PrivacyAccountant(self.epsilon)

    @classmethod
    def param_names(cls) -> tuple[str, ...]:
        """The configurable field names of this estimator."""
        return tuple(f.name for f in dataclasses.fields(cls))

    def params(self) -> dict[str, Any]:
        """The configured parameters as a plain dict."""
        return dataclasses.asdict(self)
