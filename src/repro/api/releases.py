"""Concrete :class:`~repro.api.Release` artifacts for every workload.

Spatial releases answer ``query(box)`` range counts; sequence releases
answer ``query(codes)`` string frequencies.  Serialization reuses the
published schemas of :mod:`repro.spatial.serialize` and
:mod:`repro.sequence.serialize` where they exist (tree and PST payloads are
byte-compatible with those modules), and adds plain grid payloads for the
grid-shaped baselines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from ..baselines.ag import AdaptiveGrid
from ..baselines.grid import UniformGrid
from ..baselines.ngram import NGramModel
from ..domains.box import Box
from ..sequence.alphabet import Alphabet
from ..sequence.pst import PredictionSuffixTree
from ..sequence.serialize import pst_from_dict, pst_to_dict
from ..spatial.histogram_tree import HistogramTree
from ..spatial.serialize import tree_from_dict, tree_to_dict
from .base import Release

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sequence.flat import FlatPST
    from ..spatial.flat import FlatHistogram

__all__ = [
    "AdaptiveGridRelease",
    "GridRelease",
    "NGramRelease",
    "SequenceRelease",
    "SpatialRelease",
    "SpatialTreeRelease",
]


class SpatialRelease(Release):
    """Base of the spatial artifacts: ``query`` is a range count.

    Typed queries (:class:`~repro.queries.RangeCount`,
    :class:`~repro.queries.PointCount`, :class:`~repro.queries.Marginal1D`)
    all compile to boxes and answer through :meth:`range_count_many` via
    :meth:`~repro.api.Release.answer`.
    """

    @property
    def query_domain(self) -> Box:
        """The released domain typed queries validate against."""
        raise NotImplementedError

    def query(self, box: Box) -> float:
        """The noisy number of points inside ``box``."""
        return self.range_count(box)

    def range_count(self, box: Box) -> float:
        """Alias of :meth:`query` (the historical synopsis surface)."""
        raise NotImplementedError

    def range_count_many(self, boxes: Sequence[Box]) -> np.ndarray:
        """Answer a whole workload; subclasses override with batched engines."""
        return np.array([self.range_count(box) for box in boxes])

    def query_many(self, queries: Sequence[Box]) -> np.ndarray:
        """Uniform batch surface: a spatial batch is a box workload."""
        return self.range_count_many(queries)


class SpatialTreeRelease(SpatialRelease):
    """A released hierarchical synopsis (PrivTree, SimpleTree, k-d tree).

    Backed by either the pointer-based :class:`HistogramTree` or a
    pre-compiled :class:`~repro.spatial.flat.FlatHistogram` (the v2 binary
    artifacts hand over mmap-backed flat arrays).  Queries always run on
    the flat engine; the pointer tree is materialized lazily on first
    :attr:`tree` access, so an mmap-loaded release answers workloads
    without ever rebuilding node objects.
    """

    kind = "spatial-tree"

    def __init__(
        self,
        tree: HistogramTree | None = None,
        *,
        method: str,
        epsilon_spent: float,
        flat: "FlatHistogram | None" = None,
    ) -> None:
        super().__init__(method=method, epsilon_spent=epsilon_spent)
        if tree is None and flat is None:
            raise ValueError("SpatialTreeRelease needs a tree or a flat synopsis")
        self._tree = tree
        self._flat = flat

    @property
    def tree(self) -> HistogramTree:
        """The pointer-based tree (materialized from the flat form on demand)."""
        if self._tree is None:
            self._tree = self._flat.to_tree()
            self._tree._flat = self._flat  # share the compiled engine
        return self._tree

    def flat(self) -> "FlatHistogram":
        """The compiled flat synopsis engine (cached)."""
        if self._flat is None:
            self._flat = self._tree.flat()
        return self._flat

    @property
    def size(self) -> int:
        if self._tree is not None:
            return self._tree.size
        return self._flat.size

    @property
    def leaf_count(self) -> int:
        """Number of leaves of the released tree."""
        if self._tree is not None:
            return self._tree.leaf_count
        return self._flat.leaf_count

    @property
    def height(self) -> int:
        """Height of the released tree."""
        if self._tree is not None:
            return self._tree.height
        return self._flat.height

    @property
    def query_domain(self) -> Box:
        if self._tree is not None:
            return self._tree.root.box
        flat = self._flat
        return Box.from_arrays(flat.lows[0], flat.highs[0])

    def range_count(self, box: Box) -> float:
        # Answered by the compiled flat synopsis; the pointer-based
        # traversal remains available as tree.range_count.
        return self.flat().range_count(box)

    def range_count_many(self, boxes: Sequence[Box]) -> np.ndarray:
        """Vectorized workload evaluation via the flat synopsis."""
        return self.flat().range_count_many(boxes)

    def range_count_arrays(self, q_lows: np.ndarray, q_highs: np.ndarray) -> np.ndarray:
        """Columnar workload evaluation (packed bound matrices, no Boxes)."""
        return self.flat().range_count_arrays(q_lows, q_highs)

    def warm(self) -> None:
        """Compile (and cache) the flat synopsis engine."""
        self.flat()

    def to_grid(self, shape: tuple[int, ...]) -> np.ndarray:
        """Rasterize the synopsis (see :meth:`HistogramTree.to_grid`)."""
        return self.tree.to_grid(shape)

    def _payload(self) -> dict[str, Any]:
        return tree_to_dict(self.tree)

    @classmethod
    def _from_payload(
        cls, payload: dict[str, Any], *, method: str, epsilon_spent: float
    ) -> "SpatialTreeRelease":
        return cls(tree_from_dict(payload), method=method, epsilon_spent=epsilon_spent)


def _grid_to_dict(grid: UniformGrid) -> dict[str, Any]:
    return {
        "low": list(grid.domain.low),
        "high": list(grid.domain.high),
        "shape": list(grid.shape),
        "counts": [float(v) for v in grid.counts.ravel()],
    }


def _grid_from_dict(data: Mapping[str, Any]) -> UniformGrid:
    domain = Box(tuple(data["low"]), tuple(data["high"]))
    counts = np.asarray(data["counts"], dtype=float).reshape(tuple(data["shape"]))
    return UniformGrid(domain=domain, counts=counts)


class GridRelease(SpatialRelease):
    """A released flat grid of noisy cell estimates (UG, Privelet, ...).

    ``meta`` carries method-specific extras that survive the round-trip —
    DAWA's bucket boundaries, Hierarchy's level structure — without
    changing how queries are answered (always from the cell grid).
    """

    kind = "spatial-grid"

    def __init__(
        self,
        grid: UniformGrid,
        *,
        method: str,
        epsilon_spent: float,
        meta: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(method=method, epsilon_spent=epsilon_spent)
        self.grid = grid
        self.meta = dict(meta or {})

    @property
    def size(self) -> int:
        return self.grid.n_cells

    @property
    def query_domain(self) -> Box:
        return self.grid.domain

    def range_count(self, box: Box) -> float:
        return self.grid.range_count(box)

    def _payload(self) -> dict[str, Any]:
        out = _grid_to_dict(self.grid)
        if self.meta:
            out["meta"] = self.meta
        return out

    @classmethod
    def _from_payload(
        cls, payload: dict[str, Any], *, method: str, epsilon_spent: float
    ) -> "GridRelease":
        return cls(
            _grid_from_dict(payload),
            method=method,
            epsilon_spent=epsilon_spent,
            meta=payload.get("meta"),
        )


class AdaptiveGridRelease(SpatialRelease):
    """The released AG synopsis: level-1 grid plus refined subgrids."""

    kind = "spatial-adaptive-grid"

    def __init__(
        self, synopsis: AdaptiveGrid, *, method: str, epsilon_spent: float
    ) -> None:
        super().__init__(method=method, epsilon_spent=epsilon_spent)
        self.synopsis = synopsis

    @property
    def size(self) -> int:
        return self.synopsis.n_cells

    @property
    def query_domain(self) -> Box:
        return self.synopsis.level1.domain

    def range_count(self, box: Box) -> float:
        return self.synopsis.range_count(box)

    def _payload(self) -> dict[str, Any]:
        return {
            "level1": _grid_to_dict(self.synopsis.level1),
            "subgrids": [
                {"index": list(index), "grid": _grid_to_dict(grid)}
                for index, grid in sorted(self.synopsis.subgrids.items())
            ],
        }

    @classmethod
    def _from_payload(
        cls, payload: dict[str, Any], *, method: str, epsilon_spent: float
    ) -> "AdaptiveGridRelease":
        synopsis = AdaptiveGrid(
            level1=_grid_from_dict(payload["level1"]),
            subgrids={
                tuple(int(i) for i in entry["index"]): _grid_from_dict(entry["grid"])
                for entry in payload.get("subgrids", [])
            },
        )
        return cls(synopsis, method=method, epsilon_spent=epsilon_spent)


class SequenceRelease(Release):
    """A released private Markov model (the modified-PrivTree PST).

    ``query(codes)`` estimates how many input sequences contain the coded
    string; generation and mining run on the compiled
    :class:`~repro.sequence.flat.FlatPST` engine (cached on the model), the
    recursive walks remain available on ``release.model``.
    """

    kind = "sequence-pst"

    def __init__(
        self,
        model: PredictionSuffixTree | None = None,
        *,
        method: str,
        epsilon_spent: float,
        flat: "FlatPST | None" = None,
    ) -> None:
        super().__init__(method=method, epsilon_spent=epsilon_spent)
        if model is None and flat is None:
            raise ValueError("SequenceRelease needs a model or a flat engine")
        self._model = model
        self._flat = flat

    @property
    def model(self) -> PredictionSuffixTree:
        """The pointer-based PST (materialized from the flat form on demand)."""
        if self._model is None:
            self._model = self._flat.to_pst()
            self._model._flat = self._flat  # share the compiled engine
        return self._model

    def flat(self) -> "FlatPST":
        """The compiled flat PST engine (cached)."""
        if self._flat is None:
            self._flat = self._model.flat()
        return self._flat

    @property
    def size(self) -> int:
        if self._model is not None:
            return self._model.size
        return self._flat.size

    @property
    def height(self) -> int:
        """Longest released context length."""
        if self._model is not None:
            return self._model.height
        return self._flat.height

    @property
    def query_domain(self) -> Alphabet:
        if self._model is not None:
            return self._model.alphabet
        return self._flat.alphabet

    def has_start_context(self) -> bool:
        """Whether the released tree carries sequence-start ($) statistics.

        Checked on the flat child table so an mmap-loaded release never
        materializes the pointer model just to answer a capability probe.
        """
        flat = self.flat()
        return bool(flat.child_table[0, flat.alphabet.start_code] >= 0)

    def query(self, codes: Sequence[int]) -> float:
        """Estimated frequency of the coded string (flat engine; numerically
        identical to ``model.string_frequency``)."""
        return self.flat().string_frequency(codes)

    def query_many(self, queries: Sequence[Sequence[int]]) -> np.ndarray:
        """Estimated frequencies for a whole batch of coded strings."""
        return self.flat().frequency_many(queries)

    def warm(self) -> None:
        """Compile (and cache) the flat PST engine."""
        self.flat()

    def top_k_strings(self, k: int, max_length: int = 12):
        """The model's ``k`` most frequent strings (mining task, §6.2).

        Batched frequency scoring; explores and returns exactly what the
        recursive ``model.top_k_strings`` would.
        """
        return self.flat().top_k_strings(k, max_length=max_length)

    def sample_sequence(self, rng=None, max_length: int | None = None):
        """Draw one synthetic sequence from the model."""
        return self.model.sample_sequence(rng, max_length)

    def sample_dataset(self, n: int, rng=None, max_length: int | None = None):
        """Draw ``n`` synthetic sequences (generation task, §6.2).

        Batched lockstep generation — identically distributed to the
        per-sequence loop, but a seed yields a different (equally valid)
        sample because the RNG stream interleaves across sequences.
        """
        return self.flat().sample_dataset(n, rng=rng, max_length=max_length)

    def _payload(self) -> dict[str, Any]:
        return pst_to_dict(self.model)

    @classmethod
    def _from_payload(
        cls, payload: dict[str, Any], *, method: str, epsilon_spent: float
    ) -> "SequenceRelease":
        return cls(pst_from_dict(payload), method=method, epsilon_spent=epsilon_spent)


class NGramRelease(Release):
    """The released n-gram baseline model."""

    kind = "sequence-ngram"

    def __init__(self, model: NGramModel, *, method: str, epsilon_spent: float) -> None:
        super().__init__(method=method, epsilon_spent=epsilon_spent)
        self.model = model

    @property
    def size(self) -> int:
        return len(self.model.counts)

    @property
    def query_domain(self) -> Alphabet:
        return self.model.alphabet

    def query(self, codes: Sequence[int]) -> float:
        """Estimated frequency of the coded string."""
        return self.model.string_frequency(tuple(int(c) for c in codes))

    def warm(self) -> None:
        """Compile the flat n-gram engine when the model supports it."""
        try:
            self.model.flat()
        except OverflowError:
            pass  # uncompilable contexts: sampling falls back to the loop

    def top_k_strings(self, k: int, max_length: int = 12):
        """The model's ``k`` most frequent strings."""
        return self.model.top_k_strings(k, max_length=max_length)

    def sample_sequence(self, rng=None, max_length: int | None = None):
        """Draw one synthetic sequence from the model."""
        return self.model.sample_sequence(rng, max_length)

    def sample_dataset(self, n: int, rng=None, max_length: int | None = None):
        """Draw ``n`` synthetic sequences.

        Batched lockstep generation on the compiled :class:`~repro.
        baselines.ngram.FlatNGram` (identically distributed to the scalar
        loop, different fixed-seed stream interleaving); falls back to the
        per-sequence loop when the model's contexts cannot be compiled to
        packed ``int64`` keys.
        """
        try:
            engine = self.model.flat()
        except OverflowError:
            return self.model.sample_dataset(n, rng=rng, max_length=max_length)
        return engine.sample_dataset(n, rng=rng, max_length=max_length)

    def _payload(self) -> dict[str, Any]:
        return {
            "alphabet": list(self.model.alphabet.symbols),
            "n_max": self.model.n_max,
            "l_top": self.model.l_top,
            "grams": [
                {"gram": list(gram), "count": float(count)}
                for gram, count in sorted(self.model.counts.items())
            ],
        }

    @classmethod
    def _from_payload(
        cls, payload: dict[str, Any], *, method: str, epsilon_spent: float
    ) -> "NGramRelease":
        model = NGramModel(
            alphabet=Alphabet(tuple(payload["alphabet"])),
            n_max=int(payload["n_max"]),
            l_top=int(payload["l_top"]),
            counts={
                tuple(int(c) for c in entry["gram"]): float(entry["count"])
                for entry in payload.get("grams", [])
            },
        )
        return cls(model, method=method, epsilon_spent=epsilon_spent)
