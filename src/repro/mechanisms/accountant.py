"""Sequential-composition budget accounting (Lemma 2.1 of the paper).

A :class:`PrivacyAccountant` tracks the ε spent by a pipeline of mechanisms
and refuses to exceed a total budget.  The PrivTree applications use it to
make the §3.4 / §4.2 budget splits explicit and auditable.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..telemetry import event as _event

__all__ = ["BudgetExceededError", "PrivacyAccountant"]


class BudgetExceededError(RuntimeError):
    """Raised when a spend would push total ε above the configured budget."""


@dataclass
class PrivacyAccountant:
    """Tracks cumulative ε under sequential composition.

    Parameters
    ----------
    total_epsilon:
        The overall privacy budget.  Each :meth:`spend` call draws from it;
        once exhausted further spends raise :class:`BudgetExceededError`.
    """

    total_epsilon: float
    _ledger: list[tuple[str, float]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self.total_epsilon > 0:
            raise ValueError(
                f"total_epsilon must be positive, got {self.total_epsilon!r}"
            )

    @property
    def spent(self) -> float:
        """Total ε consumed so far."""
        return sum(eps for _, eps in self._ledger)

    @property
    def remaining(self) -> float:
        """Budget still available (never negative)."""
        return max(0.0, self.total_epsilon - self.spent)

    @property
    def ledger(self) -> list[tuple[str, float]]:
        """Copy of the (label, ε) spend history."""
        return list(self._ledger)

    def spend(self, epsilon: float, label: str = "") -> float:
        """Consume ``epsilon`` from the budget and return it.

        A tiny relative tolerance absorbs float rounding when a caller splits
        the budget into fractions that should sum exactly to the total.  The
        tolerance only stretches a *final* split-fraction spend whose
        rounded sum overshoots the total; once the ledger has reached the
        full budget (``remaining == 0``) every further spend is refused —
        an exhausted accountant must never admit another mechanism.
        """
        if not epsilon > 0:
            raise ValueError(f"epsilon must be positive, got {epsilon!r}")
        remaining = self.total_epsilon - self.spent
        tolerance = 1e-9 * self.total_epsilon
        if remaining <= 0 or epsilon > remaining + tolerance:
            raise BudgetExceededError(
                f"spending {epsilon:.6g} would exceed budget: "
                f"{self.spent:.6g} of {self.total_epsilon:.6g} already used"
            )
        self._ledger.append((label, epsilon))
        # Ledger entries are public mechanism outputs (labels + epsilon
        # amounts), safe to mirror into a trace for reconciliation.
        _event("accountant.spend", label=label, epsilon=epsilon)
        return epsilon

    def spend_fraction(self, fraction: float, label: str = "") -> float:
        """Consume ``fraction`` of the *total* budget and return the ε spent."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
        return self.spend(fraction * self.total_epsilon, label)

    def restore(self, entries: list[tuple[str, float]]) -> None:
        """Adopt a previously committed ledger (resume path).

        A resumed fit must account for the ε its crashed predecessor
        already spent *without spending it again* — restoring replays the
        persisted entries into a fresh accountant, validating each against
        the budget, but is refused on an accountant that has any spends of
        its own (mixing live and restored history would hide a
        double-spend instead of surfacing it).
        """
        if self._ledger:
            raise RuntimeError(
                f"cannot restore into an accountant with {len(self._ledger)} "
                "existing spend(s); restore requires a fresh accountant"
            )
        with self.transaction():
            for label, epsilon in entries:
                self.spend(float(epsilon), str(label))

    @contextmanager
    def transaction(self) -> Iterator["PrivacyAccountant"]:
        """Roll back spends made inside the block if it raises.

        A pipeline step that fails before anything is released should not
        leave its ε debited from a shared budget; wrapping the step keeps
        the ledger atomic (a :class:`BudgetExceededError` raised by a spend
        inside the block also rolls back the block's earlier spends).
        """
        mark = len(self._ledger)
        try:
            yield self
        except BaseException:
            rolled_back = len(self._ledger) - mark
            del self._ledger[mark:]
            if rolled_back:
                _event("accountant.rollback", n_entries=rolled_back)
            raise
