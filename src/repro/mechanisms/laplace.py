"""The Laplace distribution and the Laplace mechanism.

The Laplace mechanism (Dwork et al., TCC 2006) releases ``f(D) + Lap(scale)``
and satisfies ``(S(f)/scale)``-differential privacy, where ``S(f)`` is the L1
sensitivity of ``f``.  Besides sampling, this module provides the exact tail
probabilities of the Laplace distribution, which the PrivTree privacy analysis
(``repro.core.analysis``) and the SVT counterexamples (``repro.svt.attack``)
rely on.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .rng import RngLike, ensure_rng

__all__ = [
    "laplace_pdf",
    "laplace_cdf",
    "laplace_sf",
    "laplace_logpdf",
    "laplace_logcdf",
    "laplace_logsf",
    "laplace_noise",
    "laplace_mechanism",
]


def _check_scale(scale: float) -> None:
    if not scale > 0:
        raise ValueError(f"Laplace scale must be positive, got {scale!r}")


def laplace_pdf(x: float, scale: float, loc: float = 0.0) -> float:
    """Density of ``Lap(scale)`` centred at ``loc`` (Equation (1) of the paper)."""
    _check_scale(scale)
    return math.exp(-abs(x - loc) / scale) / (2.0 * scale)


def laplace_cdf(x: float, scale: float, loc: float = 0.0) -> float:
    """``Pr[loc + Lap(scale) <= x]``, exact."""
    _check_scale(scale)
    z = (x - loc) / scale
    if z <= 0:
        return 0.5 * math.exp(z)
    return 1.0 - 0.5 * math.exp(-z)


def laplace_sf(x: float, scale: float, loc: float = 0.0) -> float:
    """``Pr[loc + Lap(scale) > x]``, exact (survival function)."""
    _check_scale(scale)
    z = (x - loc) / scale
    if z >= 0:
        return 0.5 * math.exp(-z)
    return 1.0 - 0.5 * math.exp(z)


def laplace_logpdf(x: float, scale: float, loc: float = 0.0) -> float:
    """Log-density of ``Lap(scale)`` centred at ``loc``."""
    _check_scale(scale)
    return -abs(x - loc) / scale - math.log(2.0 * scale)


def laplace_logcdf(x: float, scale: float, loc: float = 0.0) -> float:
    """``ln Pr[loc + Lap(scale) <= x]`` computed without underflow."""
    _check_scale(scale)
    z = (x - loc) / scale
    if z <= 0:
        return math.log(0.5) + z
    return math.log1p(-0.5 * math.exp(-z))


def laplace_logsf(x: float, scale: float, loc: float = 0.0) -> float:
    """``ln Pr[loc + Lap(scale) > x]`` computed without underflow."""
    _check_scale(scale)
    z = (x - loc) / scale
    if z >= 0:
        return math.log(0.5) - z
    return math.log1p(-0.5 * math.exp(z))


def laplace_noise(
    scale: float, size: int | tuple[int, ...] | None = None, rng: RngLike = None
) -> float | np.ndarray:
    """Draw i.i.d. ``Lap(scale)`` noise.

    Returns a scalar when ``size`` is ``None``, otherwise an array of the
    requested shape.
    """
    _check_scale(scale)
    gen = ensure_rng(rng)
    if size is None:
        return float(gen.laplace(0.0, scale))
    return gen.laplace(0.0, scale, size=size)


def laplace_mechanism(
    values: float | Sequence[float] | np.ndarray,
    sensitivity: float,
    epsilon: float,
    rng: RngLike = None,
) -> float | np.ndarray:
    """Release ``values`` under ε-DP via the Laplace mechanism.

    ``values`` is the exact output of a function with L1 sensitivity
    ``sensitivity`` over the *whole vector*; noise of scale
    ``sensitivity / epsilon`` is added to every entry.
    """
    if not epsilon > 0:
        raise ValueError(f"epsilon must be positive, got {epsilon!r}")
    if not sensitivity > 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity!r}")
    scale = sensitivity / epsilon
    if np.isscalar(values):
        return float(values) + laplace_noise(scale, rng=rng)
    arr = np.asarray(values, dtype=float)
    return arr + laplace_noise(scale, size=arr.shape, rng=rng)
