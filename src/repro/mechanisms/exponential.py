"""The exponential mechanism (McSherry & Talwar, FOCS 2007).

Selects one element from a finite candidate set with probability proportional
to ``exp(eps * score / (2 * sensitivity))``.  Used by the EM baseline for
top-k frequent-string mining (Section 6.2 of the paper).
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from .rng import RngLike, ensure_rng

__all__ = ["exponential_mechanism", "exponential_weights"]

T = TypeVar("T")


def exponential_weights(
    scores: Sequence[float] | np.ndarray, sensitivity: float, epsilon: float
) -> np.ndarray:
    """Normalized selection probabilities of the exponential mechanism.

    Computed in log-space with the max subtracted, so widely spread scores do
    not overflow.
    """
    if not epsilon > 0:
        raise ValueError(f"epsilon must be positive, got {epsilon!r}")
    if not sensitivity > 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity!r}")
    arr = np.asarray(scores, dtype=float)
    if arr.size == 0:
        raise ValueError("candidate set must be non-empty")
    logits = (epsilon / (2.0 * sensitivity)) * arr
    logits -= logits.max()
    weights = np.exp(logits)
    return weights / weights.sum()


def exponential_mechanism(
    candidates: Sequence[T],
    scores: Sequence[float] | np.ndarray,
    sensitivity: float,
    epsilon: float,
    rng: RngLike = None,
) -> T:
    """Privately select one candidate, scores being a function of the data.

    The guarantee is ε-DP provided each candidate's score changes by at most
    ``sensitivity`` between neighboring datasets.
    """
    if len(candidates) != len(scores):
        raise ValueError(
            f"{len(candidates)} candidates but {len(scores)} scores"
        )
    weights = exponential_weights(scores, sensitivity, epsilon)
    gen = ensure_rng(rng)
    index = int(gen.choice(len(weights), p=weights))
    return candidates[index]
