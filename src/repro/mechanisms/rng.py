"""Random-number-generator plumbing.

Every randomized routine in this library accepts either a seed or a
:class:`numpy.random.Generator` and never touches numpy's global state, so
results are reproducible by construction.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Anything accepted where randomness is needed: a seed, a Generator, or
#: ``None`` for OS entropy.
RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (so callers can thread
    one generator through a whole experiment); passing an integer seeds a new
    PCG64 generator; passing ``None`` draws entropy from the OS.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used by experiments that run repetitions in a loop: each repetition gets
    its own stream, so adding or removing repetitions does not perturb the
    others.
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
