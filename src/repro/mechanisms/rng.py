"""Random-number-generator plumbing.

Every randomized routine in this library accepts either a seed or a
:class:`numpy.random.Generator` and never touches numpy's global state, so
results are reproducible by construction.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

#: Anything accepted where randomness is needed: a seed, a Generator, or
#: ``None`` for OS entropy.
RngLike = Union[None, int, np.random.Generator]

#: Anything accepted where a *derivable* seed is needed (child-stream
#: derivation): a seed integer, an entropy sequence, or ``None``.
SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (so callers can thread
    one generator through a whole experiment); passing an integer seeds a new
    PCG64 generator; passing ``None`` draws entropy from the OS.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used by experiments that run repetitions in a loop: each repetition gets
    its own stream, so adding or removing repetitions does not perturb the
    others.
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def spawn_streams(seed: SeedLike, k: int) -> list[np.random.Generator]:
    """Derive ``k`` deterministic child streams from a root ``seed``.

    Unlike :func:`spawn`, which consumes spawn state from a live generator
    (so repeated calls yield *different* children), this derives the children
    from the seed itself via :class:`numpy.random.SeedSequence` — calling it
    twice with the same seed reproduces the identical streams.  That property
    is what distributed parties need: every shard collector and every
    blinding pair can re-derive its stream from the shared seed alone,
    without coordinating generator state.

    ``seed`` may be an integer, an entropy sequence, or an existing
    ``SeedSequence`` (``None`` draws fresh OS entropy, which is of course
    not reproducible).  Child ``i`` of a given seed is stable across calls
    and independent of ``k``: asking for more streams extends the list
    without perturbing the earlier ones.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k!r}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    # Spawn from a private copy: SeedSequence.spawn mutates spawn state, and
    # determinism here must not depend on who derived streams before us.
    fresh = np.random.SeedSequence(
        entropy=root.entropy, spawn_key=root.spawn_key, pool_size=root.pool_size
    )
    return [np.random.default_rng(s) for s in fresh.spawn(k)]
