"""Differential-privacy primitives: noise distributions, mechanisms, budgets."""

from .accountant import BudgetExceededError, PrivacyAccountant
from .exponential import exponential_mechanism, exponential_weights
from .geometric import geometric_mechanism, geometric_noise, geometric_pmf
from .laplace import (
    laplace_cdf,
    laplace_logcdf,
    laplace_logpdf,
    laplace_logsf,
    laplace_mechanism,
    laplace_noise,
    laplace_pdf,
    laplace_sf,
)
from .rng import RngLike, SeedLike, ensure_rng, spawn, spawn_streams

__all__ = [
    "BudgetExceededError",
    "PrivacyAccountant",
    "RngLike",
    "SeedLike",
    "ensure_rng",
    "exponential_mechanism",
    "exponential_weights",
    "geometric_mechanism",
    "geometric_noise",
    "geometric_pmf",
    "laplace_cdf",
    "laplace_logcdf",
    "laplace_logpdf",
    "laplace_logsf",
    "laplace_mechanism",
    "laplace_noise",
    "laplace_pdf",
    "laplace_sf",
    "spawn",
    "spawn_streams",
]
