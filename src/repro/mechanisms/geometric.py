"""The geometric mechanism — the integer-valued Laplace analogue.

For counting queries whose answers are integers, the two-sided geometric
distribution (Ghosh, Roughgarden, Sundararajan; STOC 2009) gives ε-DP with
integer outputs and is universally utility-optimal for counts.  Provided as
an alternative noise source for the leaf counts of released histograms
(useful when consumers require integral counts).
"""

from __future__ import annotations

import math

import numpy as np

from .rng import RngLike, ensure_rng

__all__ = [
    "geometric_noise",
    "geometric_noise_interleaved",
    "geometric_mechanism",
    "geometric_pmf",
]


def _check_alpha(epsilon: float, sensitivity: float) -> float:
    if not epsilon > 0:
        raise ValueError(f"epsilon must be positive, got {epsilon!r}")
    if not sensitivity > 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity!r}")
    return math.exp(-epsilon / sensitivity)


def _success_probability(epsilon: float, sensitivity: float) -> float:
    """The geometric success probability ``p = 1 - e^(-ε/Δ)``.

    Computed via ``-expm1(-ε/Δ)`` so that tiny budgets (ε/Δ down to the
    subnormal range) keep ``p > 0`` instead of rounding ``e^(-ε/Δ)`` to
    ``1.0`` and handing numpy an invalid ``p = 0.0``.
    """
    _check_alpha(epsilon, sensitivity)
    p = -math.expm1(-epsilon / sensitivity)
    if not p > 0.0:
        raise ValueError(
            f"epsilon/sensitivity = {epsilon / sensitivity!r} is too small: "
            "the geometric success probability 1 - e^(-eps/sens) underflows "
            "to 0.0 in double precision"
        )
    return p


def geometric_pmf(k: int, epsilon: float, sensitivity: float = 1.0) -> float:
    """``Pr[noise = k]`` for the two-sided geometric with ratio e^(-ε/Δ).

    Written in terms of ``p = 1 - alpha`` (via ``expm1``, like the
    samplers) so the mass stays positive at the tiny budgets
    :func:`geometric_noise` supports instead of rounding to an all-zero
    "pmf".
    """
    alpha = _check_alpha(epsilon, sensitivity)
    p = _success_probability(epsilon, sensitivity)
    return p / (2.0 - p) * alpha ** abs(int(k))


def geometric_noise(
    epsilon: float,
    sensitivity: float = 1.0,
    size: int | tuple[int, ...] | None = None,
    rng: RngLike = None,
) -> int | np.ndarray:
    """Draw two-sided geometric noise with ratio ``alpha = e^(-ε/Δ)``.

    Sampled as the difference of two i.i.d. geometric variables, which has
    exactly the two-sided geometric law.

    .. note:: the success probability is computed as ``-expm1(-ε/Δ)`` so
       tiny budgets no longer underflow to an invalid ``p = 0``.  This can
       differ from the historical ``1 - exp(-ε/Δ)`` in the last ulp, so a
       fixed seed may draw different (identically distributed) noise than
       pre-1.2 releases at some ε.
    """
    p = _success_probability(epsilon, sensitivity)
    gen = ensure_rng(rng)
    shape = (1,) if size is None else size
    # numpy's geometric counts trials (support 1, 2, ...); shift to 0-based.
    plus = gen.geometric(p, size=shape) - 1
    minus = gen.geometric(p, size=shape) - 1
    noise = plus - minus
    if size is None:
        return int(noise[0])
    return noise


def geometric_noise_interleaved(
    epsilon: float,
    n: int,
    sensitivity: float = 1.0,
    rng: RngLike = None,
) -> np.ndarray:
    """``n`` two-sided geometric draws in one batched RNG request.

    Stream-compatible with ``n`` successive scalar :func:`geometric_noise`
    calls: the scalar path alternates one "plus" and one "minus" geometric
    draw per sample, and a C-ordered ``(n, 2)`` request consumes the
    underlying stream in exactly that interleaved order, so the returned
    noise is bit-identical to the historical per-value loop.
    """
    p = _success_probability(epsilon, sensitivity)
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n!r}")
    gen = ensure_rng(rng)
    draws = gen.geometric(p, size=(n, 2)) - 1
    return draws[:, 0] - draws[:, 1]


def geometric_mechanism(
    values: int | np.ndarray,
    epsilon: float,
    sensitivity: float = 1.0,
    rng: RngLike = None,
) -> int | np.ndarray:
    """Release integer counts under ε-DP with integer noise."""
    if np.isscalar(values):
        return int(values) + geometric_noise(epsilon, sensitivity, rng=rng)
    arr = np.asarray(values)
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValueError("geometric mechanism requires integer counts")
    return arr + geometric_noise(epsilon, sensitivity, size=arr.shape, rng=rng)
