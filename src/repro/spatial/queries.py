"""Range-count query workloads (Section 6.1).

The paper evaluates three workloads per dataset — *small*, *medium*, *large*
— whose query regions cover [0.01%, 0.1%), [0.1%, 1%) and [1%, 10%) of the
data domain respectively.  :func:`generate_workload` reproduces that: each
query is a box of random volume fraction in the band, random aspect ratio,
placed uniformly inside the domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..domains.box import Box
from ..mechanisms.rng import RngLike, ensure_rng

__all__ = ["QUERY_BANDS", "QueryBand", "generate_workload", "random_query"]


@dataclass(frozen=True)
class QueryBand:
    """A named band of query-region volume fractions ``[lo, hi)``."""

    name: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not 0 < self.lo < self.hi <= 1:
            raise ValueError(f"invalid band [{self.lo}, {self.hi})")


#: The paper's three workload bands.
QUERY_BANDS: dict[str, QueryBand] = {
    "small": QueryBand("small", 1e-4, 1e-3),
    "medium": QueryBand("medium", 1e-3, 1e-2),
    "large": QueryBand("large", 1e-2, 1e-1),
}


def random_query(domain: Box, band: QueryBand, rng: RngLike = None) -> Box:
    """One random range-count query covering a ``band`` fraction of ``domain``.

    The volume fraction is log-uniform in the band; the per-dimension side
    fractions are split with a random Dirichlet weighting so queries have
    varied aspect ratios; the position is uniform among feasible placements.
    """
    gen = ensure_rng(rng)
    d = domain.ndim
    log_fraction = gen.uniform(np.log(band.lo), np.log(band.hi))
    # Split log f across dimensions: side_i = f^{w_i}, sum(w) = 1, each
    # side fraction capped at 1 by construction since log f < 0 and w_i >= 0.
    weights = gen.dirichlet(np.ones(d))
    side_fractions = np.exp(weights * log_fraction)
    extents = np.asarray(domain.extents)
    sides = side_fractions * extents
    lows = np.asarray(domain.low) + gen.uniform(0.0, 1.0, size=d) * (extents - sides)
    return Box.from_arrays(lows, lows + sides)


def generate_workload(
    domain: Box,
    band: QueryBand | str,
    n_queries: int,
    rng: RngLike = None,
) -> list[Box]:
    """A workload of ``n_queries`` random queries in the given band.

    Each query is distributed exactly as :func:`random_query`, but all
    log-fractions, Dirichlet weights, and placements are drawn in three
    batched RNG calls instead of a per-query Python loop.  (The batched
    calls interleave the underlying stream differently, so a seed produces a
    different — identically distributed — workload than ``n_queries``
    successive :func:`random_query` calls.)
    """
    if isinstance(band, str):
        band = QUERY_BANDS[band]
    gen = ensure_rng(rng)
    if n_queries <= 0:
        return []
    d = domain.ndim
    log_fractions = gen.uniform(np.log(band.lo), np.log(band.hi), size=n_queries)
    weights = gen.dirichlet(np.ones(d), size=n_queries)  # (n, d)
    placements = gen.uniform(0.0, 1.0, size=(n_queries, d))
    side_fractions = np.exp(weights * log_fractions[:, None])
    extents = np.asarray(domain.extents)
    sides = side_fractions * extents
    lows = np.asarray(domain.low) + placements * (extents - sides)
    highs = lows + sides
    return [
        Box.from_arrays(lows[i], highs[i]) for i in range(n_queries)
    ]
