"""Serialization of released spatial synopses.

A private synopsis is the artifact a curator actually *publishes*, so it
must survive a round-trip to disk.  The JSON schema is deliberately plain —
boxes and counts, no library internals — so third-party consumers can parse
it without this package.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..domains.box import Box
from .histogram_tree import HistogramNode, HistogramTree

__all__ = ["tree_to_dict", "tree_from_dict", "save_tree", "load_tree"]

_FORMAT = "repro.histogram_tree"
_VERSION = 1


def _node_to_dict(node: HistogramNode) -> dict[str, Any]:
    out: dict[str, Any] = {
        "low": list(node.box.low),
        "high": list(node.box.high),
        "count": node.count,
    }
    if node.children:
        out["children"] = [_node_to_dict(c) for c in node.children]
    return out


def _node_from_dict(data: dict[str, Any]) -> HistogramNode:
    box = Box(tuple(data["low"]), tuple(data["high"]))
    children = [_node_from_dict(c) for c in data.get("children", [])]
    return HistogramNode(box=box, count=float(data["count"]), children=children)


def tree_to_dict(tree: HistogramTree) -> dict[str, Any]:
    """Plain-JSON representation of a released histogram tree."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "root": _node_to_dict(tree.root),
    }


def tree_from_dict(data: dict[str, Any]) -> HistogramTree:
    """Inverse of :func:`tree_to_dict` (validates the header)."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a histogram-tree document: {data.get('format')!r}")
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    return HistogramTree(root=_node_from_dict(data["root"]))


def save_tree(tree: HistogramTree, path: str | Path) -> None:
    """Write a synopsis to a JSON file."""
    Path(path).write_text(json.dumps(tree_to_dict(tree)))


def load_tree(path: str | Path) -> HistogramTree:
    """Read a synopsis back from a JSON file."""
    return tree_from_dict(json.loads(Path(path).read_text()))
