"""Serialization of released spatial synopses.

A private synopsis is the artifact a curator actually *publishes*, so it
must survive a round-trip to disk.  The JSON schema is deliberately plain —
boxes and counts, no library internals — so third-party consumers can parse
it without this package.

Loading validates the document: artifacts crossing a process boundary (the
release store, the HTTP query service) are untrusted input, and a malformed
box or count must fail here with a clear :class:`ValueError`, not deep
inside flat-engine query math.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from .._io import atomic_write_text
from ..domains.box import Box
from .histogram_tree import HistogramNode, HistogramTree

__all__ = ["tree_to_dict", "tree_from_dict", "save_tree", "load_tree"]

_FORMAT = "repro.histogram_tree"
_VERSION = 1


def _node_to_dict(node: HistogramNode) -> dict[str, Any]:
    out: dict[str, Any] = {
        "low": list(node.box.low),
        "high": list(node.box.high),
        "count": node.count,
    }
    if node.children:
        out["children"] = [_node_to_dict(c) for c in node.children]
    return out


def _load_box(data: dict[str, Any]) -> Box:
    try:
        low = tuple(float(x) for x in data["low"])
        high = tuple(float(x) for x in data["high"])
    except (KeyError, TypeError, ValueError):
        raise ValueError(
            f"node must carry numeric 'low'/'high' coordinate lists, "
            f"got low={data.get('low')!r} high={data.get('high')!r}"
        ) from None
    if len(low) != len(high) or not low:
        raise ValueError(
            f"box extents disagree: low has {len(low)} dims, high has {len(high)}"
        )
    for lo, hi in zip(low, high):
        if not (math.isfinite(lo) and math.isfinite(hi)):
            raise ValueError(f"non-finite box coordinate in [{lo!r}, {hi!r})")
        if not lo < hi:
            raise ValueError(f"invalid box extent [{lo!r}, {hi!r}): low must be < high")
    return Box(low, high)


def _node_from_dict(data: dict[str, Any], parent_box: Box | None = None) -> HistogramNode:
    box = _load_box(data)
    if parent_box is not None:
        if box.ndim != parent_box.ndim:
            raise ValueError(
                f"child box has {box.ndim} dims but its parent has {parent_box.ndim}"
            )
        if not parent_box.contains_box(box):
            raise ValueError(
                f"child box [{box.low}, {box.high}) escapes its parent "
                f"[{parent_box.low}, {parent_box.high})"
            )
    try:
        count = float(data["count"])
    except (KeyError, TypeError, ValueError):
        raise ValueError(
            f"node must carry a numeric 'count', got {data.get('count')!r}"
        ) from None
    if not math.isfinite(count):
        raise ValueError(f"non-finite node count {count!r}")
    children = [_node_from_dict(c, box) for c in data.get("children", [])]
    return HistogramNode(box=box, count=count, children=children)


def tree_to_dict(tree: HistogramTree) -> dict[str, Any]:
    """Plain-JSON representation of a released histogram tree."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "root": _node_to_dict(tree.root),
    }


def tree_from_dict(data: dict[str, Any]) -> HistogramTree:
    """Inverse of :func:`tree_to_dict` (validates header and geometry).

    Raises :class:`ValueError` on malformed documents: inverted or
    non-finite boxes, children escaping their parent box, non-finite
    counts.
    """
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a histogram-tree document: {data.get('format')!r}")
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    if "root" not in data:
        raise ValueError("histogram-tree document has no 'root' node")
    return HistogramTree(root=_node_from_dict(data["root"]))


def save_tree(tree: HistogramTree, path: str | Path) -> None:
    """Write a synopsis to a JSON file (atomically: temp file + rename)."""
    atomic_write_text(path, json.dumps(tree_to_dict(tree)))


def load_tree(path: str | Path) -> HistogramTree:
    """Read a synopsis back from a JSON file."""
    return tree_from_dict(json.loads(Path(path).read_text()))
