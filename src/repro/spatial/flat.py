"""Flat, array-backed view of a released histogram tree.

A :class:`FlatHistogram` compiles a :class:`~repro.spatial.histogram_tree.
HistogramTree` into a structure-of-arrays synopsis: node boxes as ``(m, d)``
``lows`` / ``highs`` matrices, counts as an ``(m,)`` vector, and the topology
as pre-order ``parents`` plus CSR-style child offsets.  Range-count queries
are then pure NumPy instead of a Python traversal.

Why no traversal is needed: the §2.2 top-down answer is

* the count of every *maximal* fully-covered node — i.e. covered nodes whose
  parent is not covered ("covered" is downward-closed, so maximality is a
  single parent lookup), plus
* the uniformity fraction of every partially-covered leaf.

Both conditions are per-node predicates given the parent array, so one
vectorized pass over all nodes — or a broadcast over (queries × nodes) for a
whole workload — replaces per-query pointer chasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..domains.box import Box
from .histogram_tree import HistogramNode, HistogramTree

__all__ = ["FlatHistogram", "flatten_tree"]


@dataclass(frozen=True)
class FlatHistogram:
    """A structure-of-arrays spatial synopsis (pre-order node layout).

    Attributes
    ----------
    lows, highs:
        ``(m, d)`` box bounds, nodes in pre-order.
    counts:
        ``(m,)`` noisy node counts.
    parents:
        ``(m,)`` pre-order index of each node's parent (``-1`` for the root).
    child_offsets, child_index:
        CSR topology: node ``i``'s children are
        ``child_index[child_offsets[i]:child_offsets[i + 1]]`` (pre-order
        indices, left to right).
    """

    lows: np.ndarray
    highs: np.ndarray
    counts: np.ndarray
    parents: np.ndarray
    child_offsets: np.ndarray
    child_index: np.ndarray

    @property
    def size(self) -> int:
        """Total number of nodes."""
        return int(self.counts.shape[0])

    @property
    def ndim(self) -> int:
        """Dimensionality of the node boxes."""
        return int(self.lows.shape[1])

    @property
    def is_leaf(self) -> np.ndarray:
        """Boolean leaf mask (no children in the CSR topology)."""
        return np.diff(self.child_offsets) == 0

    @property
    def leaf_count(self) -> int:
        """Number of leaves."""
        return int(self.is_leaf.sum())

    @property
    def total_count(self) -> float:
        """The (noisy) total number of points — the root's count."""
        return float(self.counts[0])

    @property
    def volumes(self) -> np.ndarray:
        """Per-node box volumes."""
        return np.prod(self.highs - self.lows, axis=1)

    @property
    def height(self) -> int:
        """Depth of the deepest node (root = 0), one CSR pass per level."""
        frontier = np.zeros(1, dtype=np.intp)
        height = 0
        while True:
            starts = self.child_offsets[frontier]
            widths = self.child_offsets[frontier + 1] - starts
            total = int(widths.sum())
            if total == 0:
                return height
            shifts = np.repeat(np.cumsum(widths) - widths, widths)
            frontier = self.child_index[
                np.repeat(starts, widths) + np.arange(total) - shifts
            ]
            height += 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def from_tree(tree: HistogramTree) -> "FlatHistogram":
        """Compile a released :class:`HistogramTree` into flat arrays."""
        nodes = list(tree.root.iter_nodes())  # pre-order
        m = len(nodes)
        d = tree.root.box.ndim
        lows = np.empty((m, d))
        highs = np.empty((m, d))
        counts = np.empty(m)
        parents = np.full(m, -1, dtype=np.intp)
        n_children = np.empty(m, dtype=np.intp)
        index_of = {id(node): i for i, node in enumerate(nodes)}
        for i, node in enumerate(nodes):
            lows[i] = node.box.low
            highs[i] = node.box.high
            counts[i] = node.count
            n_children[i] = len(node.children)
            for child in node.children:
                parents[index_of[id(child)]] = i
        child_offsets = np.concatenate(([0], np.cumsum(n_children)))
        child_index = np.empty(int(child_offsets[-1]), dtype=np.intp)
        cursor = child_offsets[:-1].copy()
        for i in range(1, m):
            p = parents[i]
            child_index[cursor[p]] = i
            cursor[p] += 1
        return FlatHistogram(
            lows=lows,
            highs=highs,
            counts=counts,
            parents=parents,
            child_offsets=child_offsets,
            child_index=child_index,
        )

    def to_tree(self) -> HistogramTree:
        """Reconstruct the pointer-based :class:`HistogramTree`."""
        m = self.size
        released: list[HistogramNode | None] = [None] * m
        offsets = self.child_offsets
        for i in range(m - 1, -1, -1):
            children = [
                released[j] for j in self.child_index[offsets[i] : offsets[i + 1]]
            ]
            released[i] = HistogramNode(
                box=Box.from_arrays(self.lows[i], self.highs[i]),
                count=float(self.counts[i]),
                children=children,
            )
        return HistogramTree(root=released[0])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_count(self, query: Box) -> float:
        """Answer one range-count query (vectorized §2.2 semantics)."""
        return float(self.range_count_many([query])[0])

    def range_count_many(self, queries: Sequence[Box] | Iterable[Box]) -> np.ndarray:
        """Answer a whole workload at once.

        Runs the §2.2 traversal for every query simultaneously: the frontier
        is a flat array of (query, node) pairs, advanced one tree level per
        iteration with pure-NumPy coverage/overlap tests, so the visited
        (query, node) pairs are exactly those of the recursive traversal but
        the per-node Python cost is gone.  Returns answers in workload
        order; equivalent (to float round-off) to calling
        :meth:`range_count` per query, ~an order of magnitude faster on
        thousand-query workloads.
        """
        queries = list(queries)
        n_queries = len(queries)
        if n_queries == 0:
            return np.empty(0)
        d = self.ndim
        for q in queries:
            if q.ndim != d:
                raise ValueError(
                    f"query has {q.ndim} dims but the synopsis has {d}"
                )
        q_lows = np.array([q.low for q in queries])
        q_highs = np.array([q.high for q in queries])
        return self.range_count_arrays(q_lows, q_highs)

    def range_count_arrays(self, q_lows: np.ndarray, q_highs: np.ndarray) -> np.ndarray:
        """Answer ``(n, d)`` low/high bound arrays directly.

        The columnar entry point behind :meth:`range_count_many`: callers
        that already hold packed bound matrices (the binary wire codec, the
        bench harness) skip building per-query :class:`Box` objects.  The
        traversal and answers are identical.
        """
        q_lows = np.ascontiguousarray(q_lows, dtype=float)
        q_highs = np.ascontiguousarray(q_highs, dtype=float)
        if q_lows.shape != q_highs.shape or q_lows.ndim != 2:
            raise ValueError("query bounds must be matching (n, d) matrices")
        n_queries = q_lows.shape[0]
        if n_queries == 0:
            return np.empty(0)
        if q_lows.shape[1] != self.ndim:
            raise ValueError(
                f"queries have {q_lows.shape[1]} dims but the synopsis has "
                f"{self.ndim}"
            )
        counts = self.counts
        volumes = self.volumes
        leaf = self.is_leaf
        child_offsets = self.child_offsets
        child_index = self.child_index

        answers = np.zeros(n_queries)
        # Frontier of (query, node) pairs, all queries at the root.
        query_ids = np.arange(n_queries, dtype=np.intp)
        node_ids = np.zeros(n_queries, dtype=np.intp)
        while node_ids.size:
            node_low = self.lows[node_ids]
            node_high = self.highs[node_ids]
            q_low = q_lows[query_ids]
            q_high = q_highs[query_ids]
            overlap = np.minimum(node_high, q_high) - np.maximum(node_low, q_low)
            intersects = np.all(overlap > 0, axis=1)
            covered = np.all((node_low >= q_low) & (node_high <= q_high), axis=1)
            # Fully-covered nodes contribute their count (covered implies
            # intersecting: boxes have positive volume).
            if covered.any():
                answers += np.bincount(
                    query_ids[covered],
                    weights=counts[node_ids[covered]],
                    minlength=n_queries,
                )
            # Partially-covered leaves contribute a uniformity fraction.
            partial = intersects & ~covered & leaf[node_ids]
            if partial.any():
                fractions = (
                    np.prod(overlap[partial], axis=1) / volumes[node_ids[partial]]
                )
                answers += np.bincount(
                    query_ids[partial],
                    weights=counts[node_ids[partial]] * fractions,
                    minlength=n_queries,
                )
            # Descend into intersecting, uncovered internal nodes.
            descend = intersects & ~covered & ~leaf[node_ids]
            parents_q = query_ids[descend]
            parents_n = node_ids[descend]
            starts = child_offsets[parents_n]
            n_children = child_offsets[parents_n + 1] - starts
            total = int(n_children.sum())
            if total == 0:
                break
            query_ids = np.repeat(parents_q, n_children)
            # Ragged ranges: element j of pair i maps to child_index[starts_i + j].
            shifts = np.repeat(np.cumsum(n_children) - n_children, n_children)
            node_ids = child_index[
                np.repeat(starts, n_children) + np.arange(total) - shifts
            ]
        return answers


def flatten_tree(tree: HistogramTree) -> FlatHistogram:
    """Alias of :meth:`FlatHistogram.from_tree`."""
    return FlatHistogram.from_tree(tree)
