"""The released spatial synopsis: a tree of boxes with noisy counts.

This is the public artifact a data curator would actually publish — it holds
no raw points, only sub-domains and noisy counts.  Range-count queries are
answered with the top-down traversal of Section 2.2: fully-covered nodes
contribute their count, partially-covered leaves contribute a
uniformity-based fraction of theirs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..domains.box import Box

__all__ = ["HistogramNode", "HistogramTree"]


@dataclass
class HistogramNode:
    """A released node: sub-domain, noisy count, children."""

    box: Box
    count: float
    children: list["HistogramNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children

    def iter_nodes(self) -> Iterator["HistogramNode"]:
        """All nodes of the subtree, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))


@dataclass
class HistogramTree:
    """A private spatial synopsis supporting range-count queries.

    Structural statistics (``size``, ``leaf_count``, ``height``) and the
    array-backed query engine (:meth:`flat`) are computed lazily on first
    access and cached: released trees are never mutated after construction,
    and experiments read these per trial.
    """

    root: HistogramNode
    _stats: tuple[int, int, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _flat: "FlatHistogram | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def _compute_stats(self) -> tuple[int, int, int]:
        """(size, leaf_count, height) in one iterative traversal."""
        if self._stats is None:
            size = leaves = height = 0
            stack = [(self.root, 0)]
            while stack:
                node, depth = stack.pop()
                size += 1
                if node.is_leaf:
                    leaves += 1
                    if depth > height:
                        height = depth
                else:
                    stack.extend((child, depth + 1) for child in node.children)
            self._stats = (size, leaves, height)
        return self._stats

    @property
    def size(self) -> int:
        """Total number of nodes."""
        return self._compute_stats()[0]

    @property
    def leaf_count(self) -> int:
        """Number of leaves."""
        return self._compute_stats()[1]

    @property
    def height(self) -> int:
        """Number of levels minus one (root-only tree has height 0)."""
        return self._compute_stats()[2]

    @property
    def total_count(self) -> float:
        """The (noisy) total number of points."""
        return self.root.count

    def flat(self) -> "FlatHistogram":
        """The compiled array-backed synopsis (built once, then cached)."""
        if self._flat is None:
            from .flat import FlatHistogram

            self._flat = FlatHistogram.from_tree(self)
        return self._flat

    def range_count(self, query: Box) -> float:
        """Answer a range-count query via the §2.2 traversal.

        This is the reference pointer-chasing implementation;
        :meth:`flat` answers the same queries from contiguous arrays
        (``tree.flat().range_count(q)``) and should be preferred on hot
        paths, especially for whole workloads via ``range_count_many``.
        """
        answer = 0.0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(query):
                continue
            if query.contains_box(node.box):
                answer += node.count
            elif node.is_leaf:
                answer += node.count * node.box.overlap_fraction(query)
            else:
                stack.extend(node.children)
        return answer

    def range_count_many(self, queries) -> "np.ndarray":
        """Answer a whole workload via the flat engine (see :mod:`.flat`)."""
        return self.flat().range_count_many(queries)

    def leaf_boxes(self) -> list[Box]:
        """The sub-domains of all leaves (the decomposition's cells)."""
        return [n.box for n in self.root.iter_nodes() if n.is_leaf]

    def to_grid(self, shape: tuple[int, ...]) -> "np.ndarray":
        """Rasterize the synopsis onto a regular grid of the given shape.

        Each cell receives every overlapping leaf's count weighted by the
        overlapped volume fraction (the same uniformity assumption as
        :meth:`range_count`), so the raster's total equals the tree's total.
        Useful for handing the release to grid-based downstream tools.
        """
        import numpy as np

        if len(shape) != self.root.box.ndim:
            raise ValueError(
                f"shape has {len(shape)} axes but the tree is "
                f"{self.root.box.ndim}-d"
            )
        if any(s < 1 for s in shape):
            raise ValueError(f"grid shape {shape} has an empty axis")
        domain = self.root.box
        grid = np.zeros(shape)
        edges = [
            np.linspace(domain.low[d], domain.high[d], shape[d] + 1)
            for d in range(domain.ndim)
        ]
        for leaf in (n for n in self.root.iter_nodes() if n.is_leaf):
            slices, weights = [], []
            for d in range(domain.ndim):
                lo, hi = leaf.box.low[d], leaf.box.high[d]
                first = max(int(np.searchsorted(edges[d], lo, side="right")) - 1, 0)
                last = min(int(np.searchsorted(edges[d], hi, side="left")), shape[d])
                if last <= first:
                    slices = []
                    break
                cell_lo = edges[d][first:last]
                cell_hi = edges[d][first + 1 : last + 1]
                overlap = np.minimum(cell_hi, hi) - np.maximum(cell_lo, lo)
                weights.append(overlap / (hi - lo))
                slices.append(slice(first, last))
            if not slices:
                continue
            block = weights[0]
            for w in weights[1:]:
                block = np.multiply.outer(block, w)
            grid[tuple(slices)] += leaf.count * block
        return grid
