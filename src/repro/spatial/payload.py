"""The spatial node payload fed to the PrivTree / SimpleTree engines.

A :class:`SpatialNodeData` pairs a box with the points it contains.  Its
score is the point count — exactly the ``c(v)`` of the paper — and splitting
bisects the box and partitions the points among the children, so building a
tree never re-scans the full dataset.

The number of dimensions bisected per split controls the fanout β:

* ``dims_per_split = d``  →  β = 2^d (the quadtree/hexadecatree default);
* ``dims_per_split = i < d``  →  β = 2^i with dimensions rotated round-robin,
  the configuration of the Figure 8 fanout ablation.

Storage layout
--------------
All payloads of one decomposition share a single read-only coordinate array
plus one mutable permutation of row indices; a payload is just a
``[start, stop)`` window into that permutation.  :meth:`split` computes every
point's child in one vectorized pass — packing the per-dimension
``coord >= midpoint`` bits into a child index — and then reorders its window
in place so each child is again a contiguous slice.  Nothing is ever copied,
``score()`` is ``stop - start``, and a whole PrivTree build performs one
O(m)-vectorized pass per split instead of β = 2^d separate
``contains_points`` scans with β materialized sub-arrays.
"""

from __future__ import annotations

import numpy as np

from ..domains.box import Box
from .dataset import SpatialDataset

__all__ = ["SpatialNodeData"]


class SpatialNodeData:
    """Box + contained points + round-robin split cursor.

    ``points`` may be any ``(n, d)`` array; it is stored unmodified and
    shared (never copied) with every descendant produced by :meth:`split`.
    """

    __slots__ = (
        "box",
        "dims_per_split",
        "next_dim",
        "_coords",
        "_order",
        "_start",
        "_stop",
        "_children",
    )

    def __init__(
        self,
        box: Box,
        points: np.ndarray | None = None,
        dims_per_split: int | None = None,
        next_dim: int = 0,
        *,
        _coords: np.ndarray | None = None,
        _order: np.ndarray | None = None,
        _start: int = 0,
        _stop: int | None = None,
    ) -> None:
        self.box = box
        if dims_per_split is None:
            dims_per_split = box.ndim
        self.dims_per_split = dims_per_split
        self.next_dim = next_dim
        if _coords is None:
            pts = np.asarray(
                points if points is not None else np.empty((0, box.ndim)),
                dtype=float,
            )
            if pts.ndim != 2 or pts.shape[1] != box.ndim:
                raise ValueError(
                    f"points must have shape (n, {box.ndim}), got {pts.shape}"
                )
            _coords = pts
            _order = np.arange(pts.shape[0], dtype=np.intp)
            _start, _stop = 0, pts.shape[0]
        self._coords = _coords
        self._order = _order
        self._start = _start
        self._stop = self._coords.shape[0] if _stop is None else _stop
        self._children: list["SpatialNodeData"] | None = None

    @staticmethod
    def root(dataset: SpatialDataset, dims_per_split: int | None = None) -> "SpatialNodeData":
        """Payload covering the whole domain of ``dataset``."""
        d = dataset.ndim
        if dims_per_split is None:
            dims_per_split = d
        if not 1 <= dims_per_split <= d:
            raise ValueError(
                f"dims_per_split must be in [1, {d}], got {dims_per_split}"
            )
        return SpatialNodeData(
            box=dataset.domain,
            points=dataset.points,
            dims_per_split=dims_per_split,
        )

    @property
    def points(self) -> np.ndarray:
        """The node's points, materialized as an ``(m, d)`` array."""
        return self._coords[self._order[self._start : self._stop]]

    @property
    def fanout(self) -> int:
        """β — the number of children each split produces."""
        return 2 ** self.dims_per_split

    def _split_dims(self) -> list[int]:
        d = self.box.ndim
        return [(self.next_dim + j) % d for j in range(self.dims_per_split)]

    def score(self) -> float:
        """The point count ``c(v)``."""
        return float(self._stop - self._start)

    def can_split(self) -> bool:
        """Splittable until float resolution makes a midpoint degenerate."""
        return self.box.can_bisect(self._split_dims())

    def split(self) -> list["SpatialNodeData"]:
        """Bisect the scheduled dimensions and partition the points.

        Children come back in the lexicographic order of
        :meth:`~repro.domains.box.Box.bisect` and partition this node's
        window of the shared permutation.  Splitting is memoized: the window
        is reordered in place, so recomputing the partition from a
        second call would scramble the slices handed to the first call's
        children.
        """
        if self._children is not None:
            return self._children
        dims = self._split_dims()
        children_boxes = self.box.bisect(dims)
        d = self.box.ndim
        next_dim = (self.next_dim + self.dims_per_split) % d

        segment = self._order[self._start : self._stop]
        pts = self._coords[segment]
        # One pass over midpoint comparisons: child index = the per-dimension
        # "above the midpoint" bits packed most-significant-first, matching
        # Box.bisect's lexicographic child order (bit 0 = lower half, with the
        # half-open convention putting coord == midpoint in the upper child).
        child_idx = np.zeros(segment.shape[0], dtype=np.intp)
        for dim in dims:
            mid = (self.box.low[dim] + self.box.high[dim]) / 2.0
            child_idx = (child_idx << 1) | (pts[:, dim] >= mid)
        # Stable counting order keeps each child's points in the parent's
        # relative order, exactly like the historical per-child boolean masks.
        self._order[self._start : self._stop] = segment[
            np.argsort(child_idx, kind="stable")
        ]
        counts = np.bincount(child_idx, minlength=len(children_boxes))
        bounds = (self._start + np.concatenate(([0], np.cumsum(counts)))).tolist()
        self._children = [
            SpatialNodeData(
                box=child_box,
                dims_per_split=self.dims_per_split,
                next_dim=next_dim,
                _coords=self._coords,
                _order=self._order,
                _start=bounds[i],
                _stop=bounds[i + 1],
            )
            for i, child_box in enumerate(children_boxes)
        ]
        return self._children

    @staticmethod
    def split_many(
        payloads: list["SpatialNodeData"],
    ) -> list[list["SpatialNodeData"]]:
        """Split every payload of one tree level in a single vectorized pass.

        The decomposition engines hand over all nodes chosen to split at the
        current depth.  Those payloads share one coordinate/permutation store
        and one round-robin cursor, so their child indices can be computed by
        one concatenated midpoint comparison and one stable key sort instead
        of per-node numpy calls.  Falls back to node-by-node :meth:`split`
        when the payloads do not share a store (or were split already).

        Returns one child list per payload, in input order — element ``i`` is
        exactly ``payloads[i].split()``.
        """
        if not payloads:
            return []
        first = payloads[0]
        if any(
            p._coords is not first._coords
            or p._order is not first._order
            or p._children is not None
            or p.dims_per_split != first.dims_per_split
            or p.next_dim != first.next_dim
            for p in payloads
        ):
            return [p.split() for p in payloads]

        dims = first._split_dims()
        k = len(dims)
        fanout = 2**k
        n = len(payloads)
        sizes = [p._stop - p._start for p in payloads]
        rows = np.concatenate([p._order[p._start : p._stop] for p in payloads])
        pts = first._coords[rows]
        sizes_arr = np.asarray(sizes, dtype=np.intp)
        mids = np.array(
            [
                [(p.box.low[dim] + p.box.high[dim]) / 2.0 for dim in dims]
                for p in payloads
            ]
        )
        mids_per_point = np.repeat(mids, sizes_arr, axis=0)
        child_idx = np.zeros(rows.shape[0], dtype=np.intp)
        for j, dim in enumerate(dims):
            child_idx = (child_idx << 1) | (pts[:, dim] >= mids_per_point[:, j])
        # Sort once by (node, child): stable, so each child keeps its points
        # in the parent's relative order, exactly like node-by-node split().
        key = np.repeat(np.arange(n, dtype=np.intp), sizes_arr) * fanout + child_idx
        rows_sorted = rows[np.argsort(key, kind="stable")]
        counts = np.bincount(key, minlength=n * fanout).reshape(n, fanout)
        offsets = np.cumsum(counts, axis=1)

        results: list[list["SpatialNodeData"]] = []
        pos = 0
        for i, parent in enumerate(payloads):
            size = sizes[i]
            parent._order[parent._start : parent._stop] = rows_sorted[pos : pos + size]
            pos += size
            bounds = [parent._start] + (parent._start + offsets[i]).tolist()
            next_dim = (parent.next_dim + parent.dims_per_split) % parent.box.ndim
            parent._children = [
                SpatialNodeData(
                    box=child_box,
                    dims_per_split=parent.dims_per_split,
                    next_dim=next_dim,
                    _coords=parent._coords,
                    _order=parent._order,
                    _start=bounds[j],
                    _stop=bounds[j + 1],
                )
                for j, child_box in enumerate(parent.box.bisect(dims))
            ]
            results.append(parent._children)
        return results
