"""The spatial node payload fed to the PrivTree / SimpleTree engines.

A :class:`SpatialNodeData` pairs a box with the points it contains.  Its
score is the point count — exactly the ``c(v)`` of the paper — and splitting
bisects the box and partitions the points among the children, so building a
tree never re-scans the full dataset.

The number of dimensions bisected per split controls the fanout β:

* ``dims_per_split = d``  →  β = 2^d (the quadtree/hexadecatree default);
* ``dims_per_split = i < d``  →  β = 2^i with dimensions rotated round-robin,
  the configuration of the Figure 8 fanout ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..domains.box import Box
from .dataset import SpatialDataset

__all__ = ["SpatialNodeData"]


@dataclass
class SpatialNodeData:
    """Box + contained points + round-robin split cursor."""

    box: Box
    points: np.ndarray
    dims_per_split: int
    next_dim: int = 0

    @staticmethod
    def root(dataset: SpatialDataset, dims_per_split: int | None = None) -> "SpatialNodeData":
        """Payload covering the whole domain of ``dataset``."""
        d = dataset.ndim
        if dims_per_split is None:
            dims_per_split = d
        if not 1 <= dims_per_split <= d:
            raise ValueError(
                f"dims_per_split must be in [1, {d}], got {dims_per_split}"
            )
        return SpatialNodeData(
            box=dataset.domain,
            points=dataset.points,
            dims_per_split=dims_per_split,
        )

    @property
    def fanout(self) -> int:
        """β — the number of children each split produces."""
        return 2 ** self.dims_per_split

    def _split_dims(self) -> list[int]:
        d = self.box.ndim
        return [(self.next_dim + j) % d for j in range(self.dims_per_split)]

    def score(self) -> float:
        """The point count ``c(v)``."""
        return float(self.points.shape[0])

    def can_split(self) -> bool:
        """Splittable until float resolution makes a midpoint degenerate."""
        return self.box.can_bisect(self._split_dims())

    def split(self) -> list["SpatialNodeData"]:
        """Bisect the scheduled dimensions and partition the points."""
        dims = self._split_dims()
        children_boxes = self.box.bisect(dims)
        d = self.box.ndim
        next_dim = (self.next_dim + self.dims_per_split) % d
        children = []
        for child_box in children_boxes:
            mask = child_box.contains_points(self.points)
            children.append(
                SpatialNodeData(
                    box=child_box,
                    points=self.points[mask],
                    dims_per_split=self.dims_per_split,
                    next_dim=next_dim,
                )
            )
        return children
