"""Private spatial decompositions: PrivTree and SimpleTree end-to-end.

``privtree_histogram`` is the full §3.3 + §3.4 pipeline:

1. spend ε·tree_fraction on the PrivTree structure (Algorithm 2);
2. spend the rest on Laplace-perturbed leaf counts (sensitivity 1: each point
   lies in exactly one leaf);
3. rebuild intermediate counts as sums of their leaves.

``simpletree_histogram`` is the Algorithm 1 baseline: the per-node noisy
counts it computed *are* the release (scale ``h/ε``).
"""

from __future__ import annotations

import numpy as np

from .._compat import deprecated_shim
from ..core.node import TreeNode
from ..core.params import PrivTreeParams
from ..core.privtree import DEFAULT_MAX_DEPTH, privtree
from ..core.simpletree import simpletree_for_epsilon
from ..mechanisms.accountant import PrivacyAccountant
from ..mechanisms.geometric import geometric_noise_interleaved
from ..mechanisms.laplace import laplace_noise
from ..mechanisms.rng import RngLike, ensure_rng
from .dataset import SpatialDataset
from .histogram_tree import HistogramNode, HistogramTree
from .payload import SpatialNodeData

__all__ = ["privtree_histogram", "privtree_decomposition", "simpletree_histogram"]


def privtree_decomposition(
    dataset: SpatialDataset,
    epsilon: float,
    dims_per_split: int | None = None,
    theta: float = 0.0,
    rng: RngLike = None,
    max_depth: int | None = DEFAULT_MAX_DEPTH,
):
    """Run PrivTree on spatial data, spending all of ``epsilon`` on structure.

    Returns the internal decomposition tree (no counts released).  Useful
    when the caller wants the partition itself, e.g. for private k-means
    coarsening; most users want :func:`privtree_histogram` instead.
    """
    root = SpatialNodeData.root(dataset, dims_per_split)
    params = PrivTreeParams.calibrate(epsilon, fanout=root.fanout, theta=theta)
    return privtree(root, params, rng=rng, max_depth=max_depth)


def _privtree_histogram(
    dataset: SpatialDataset,
    epsilon: float,
    dims_per_split: int | None = None,
    theta: float = 0.0,
    tree_fraction: float = 0.5,
    tuples_per_individual: int = 1,
    count_mechanism: str = "laplace",
    rng: RngLike = None,
    max_depth: int | None = DEFAULT_MAX_DEPTH,
    accountant: PrivacyAccountant | None = None,
) -> HistogramTree:
    """The full ε-DP PrivTree synopsis of §3.3–§3.4.

    Parameters
    ----------
    dataset:
        The sensitive point set.
    epsilon:
        Total privacy budget; split ``tree_fraction`` / ``1 - tree_fraction``
        between structure and leaf counts (½/½ in the paper).
    dims_per_split:
        Dimensions bisected per split (fanout β = 2^dims_per_split); defaults
        to all dimensions — the standard quadtree setting.
    theta:
        Split threshold (0 per §3.4).
    tuples_per_individual:
        The §3.5 multi-leaf extension for user-level privacy: if one
        individual can contribute up to ``x`` points (e.g. trajectory
        check-ins), both the split scores and the leaf counts scale their
        noise by ``x``, protecting the individual's whole record.
    count_mechanism:
        ``"laplace"`` (the paper's choice) or ``"geometric"`` — the latter
        releases *integer* leaf counts via the two-sided geometric
        mechanism at the same ε.
    accountant:
        An external :class:`PrivacyAccountant` to debit (the §3.4 split is
        recorded as two ledger entries summing to ``epsilon``); a private
        one with budget ``epsilon`` is created when omitted.
    """
    if tuples_per_individual < 1:
        raise ValueError(
            f"tuples_per_individual must be >= 1, got {tuples_per_individual!r}"
        )
    if count_mechanism not in ("laplace", "geometric"):
        raise ValueError(
            f"count_mechanism must be 'laplace' or 'geometric', got {count_mechanism!r}"
        )
    if not 0 < tree_fraction < 1:
        raise ValueError(f"tree_fraction must be in (0, 1), got {tree_fraction!r}")
    gen = ensure_rng(rng)
    if accountant is None:
        accountant = PrivacyAccountant(epsilon)
    eps_tree = accountant.spend(tree_fraction * epsilon, "privtree/tree structure")
    eps_counts = accountant.spend(
        (1.0 - tree_fraction) * epsilon, "privtree/leaf counts"
    )

    root = SpatialNodeData.root(dataset, dims_per_split)
    params = PrivTreeParams.calibrate(
        eps_tree,
        fanout=root.fanout,
        sensitivity=float(tuples_per_individual),
        theta=theta,
    )
    tree = privtree(root, params, rng=gen, max_depth=max_depth)

    # Leaf-count sensitivity: an individual's x points land in at most x
    # leaves.  All leaf perturbations are drawn in one batched RNG call, in
    # the DFS left-to-right leaf order of the historical per-leaf loop (both
    # batch shapes consume the stream identically, so counts are unchanged).
    nodes = tree.nodes()
    leaves = [node for node in nodes if node.is_leaf]
    exact = np.array([leaf.payload.score() for leaf in leaves], dtype=float)
    if count_mechanism == "laplace":
        count_scale = tuples_per_individual / eps_counts
        noisy = exact + laplace_noise(count_scale, size=len(leaves), rng=gen)
    else:
        noisy = exact.astype(np.int64) + geometric_noise_interleaved(
            eps_counts,
            len(leaves),
            sensitivity=float(tuples_per_individual),
            rng=gen,
        )
    leaf_counts = {id(leaf): float(value) for leaf, value in zip(leaves, noisy)}
    return _release_histogram(nodes, leaf_counts)


def _release_histogram(
    nodes: list[TreeNode[SpatialNodeData]],
    leaf_counts: dict[int, float],
) -> HistogramTree:
    """Assemble the released tree: leaves get ``leaf_counts``, internal
    nodes the sum of their children (reverse pre-order, so no recursion)."""
    released: dict[int, HistogramNode] = {}
    for node in reversed(nodes):
        children = [released[id(c)] for c in node.children]
        if node.is_leaf:
            count = leaf_counts[id(node)]
        else:
            count = sum(c.count for c in children)
        released[id(node)] = HistogramNode(
            box=node.payload.box, count=count, children=children
        )
    return HistogramTree(root=released[id(nodes[0])])


def _simpletree_histogram(
    dataset: SpatialDataset,
    epsilon: float,
    height: int,
    theta: float,
    dims_per_split: int | None = None,
    rng: RngLike = None,
    accountant: PrivacyAccountant | None = None,
) -> HistogramTree:
    """The Algorithm 1 baseline synopsis with noise scale ``h/ε``."""
    if accountant is not None:
        accountant.spend(epsilon, "simpletree/node counts")
    root = SpatialNodeData.root(dataset, dims_per_split)
    tree = simpletree_for_epsilon(root, epsilon, theta=theta, height=height, rng=rng)
    released: dict[int, HistogramNode] = {}
    for node in reversed(tree.nodes()):
        released[id(node)] = HistogramNode(
            box=node.payload.box,
            count=float(node.noisy_score),
            children=[released[id(c)] for c in node.children],
        )
    return HistogramTree(root=released[id(tree.root)])


privtree_histogram = deprecated_shim(_privtree_histogram, "privtree_histogram", "privtree")
simpletree_histogram = deprecated_shim(
    _simpletree_histogram, "simpletree_histogram", "simpletree"
)
