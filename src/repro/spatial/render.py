"""ASCII rendering of spatial data and decompositions (Figures 1 and 4).

The paper visualizes its datasets (Figure 4) and illustrates how the
decomposition adapts to density (Figure 1).  Terminal-friendly equivalents:

* :func:`render_density` — a character raster of point density;
* :func:`render_leaf_depth` — the decomposition's leaf depth per raster
  cell (digits; deeper = denser region), the textual analogue of drawing
  the quadtree's boxes.
"""

from __future__ import annotations

import numpy as np

from .dataset import SpatialDataset
from .histogram_tree import HistogramTree

__all__ = ["render_density", "render_leaf_depth"]

#: Density ramp from empty to dense.
_RAMP = " .:-=+*#%@"


def _projected_counts(dataset: SpatialDataset, width: int, height: int) -> np.ndarray:
    pts = dataset.points
    if dataset.ndim > 2:
        pts = pts[:, :2]  # project onto the first two axes
    lo = np.asarray(dataset.domain.low[:2])
    hi = np.asarray(dataset.domain.high[:2])
    if pts.shape[0] == 0:
        return np.zeros((height, width))
    norm = (pts - lo) / (hi - lo)
    cols = np.clip((norm[:, 0] * width).astype(int), 0, width - 1)
    rows = np.clip((norm[:, 1] * height).astype(int), 0, height - 1)
    counts = np.zeros((height, width))
    np.add.at(counts, (rows, cols), 1.0)
    return counts


def render_density(dataset: SpatialDataset, width: int = 64, height: int = 24) -> str:
    """A Figure 4-style density raster (first two axes for d > 2)."""
    if width < 1 or height < 1:
        raise ValueError("raster dimensions must be positive")
    counts = _projected_counts(dataset, width, height)
    peak = counts.max()
    lines = []
    for r in range(height - 1, -1, -1):  # y grows upward
        if peak <= 0:
            lines.append(" " * width)
            continue
        # Log scaling keeps filaments visible next to dense cores.
        level = np.log1p(counts[r]) / np.log1p(peak)
        chars = [(_RAMP[min(int(v * (len(_RAMP) - 1)), len(_RAMP) - 1)]) for v in level]
        lines.append("".join(chars))
    return "\n".join(lines)


def render_leaf_depth(
    tree: HistogramTree, width: int = 64, height: int = 24
) -> str:
    """Leaf depth per raster cell — how the decomposition adapts (Figure 1).

    Requires a 2-d synopsis.  Depths above 9 print as ``+``.
    """
    if tree.root.box.ndim != 2:
        raise ValueError("leaf-depth rendering requires a 2-d decomposition")
    if width < 1 or height < 1:
        raise ValueError("raster dimensions must be positive")
    lo = np.asarray(tree.root.box.low)
    hi = np.asarray(tree.root.box.high)
    lines = []
    for r in range(height - 1, -1, -1):
        row = []
        y = lo[1] + (r + 0.5) / height * (hi[1] - lo[1])
        for c in range(width):
            x = lo[0] + (c + 0.5) / width * (hi[0] - lo[0])
            depth = _depth_at(tree, (x, y))
            row.append(str(depth) if depth <= 9 else "+")
        lines.append("".join(row))
    return "\n".join(lines)


def _depth_at(tree: HistogramTree, point: tuple[float, float]) -> int:
    pt = np.asarray([point])
    node = tree.root
    depth = 0
    while node.children:
        for child in node.children:
            if child.box.contains_points(pt)[0]:
                node = child
                depth += 1
                break
        else:
            break
    return depth
