"""Spatial point datasets (the ``D`` of Sections 2.2 and 3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..domains.box import Box

__all__ = ["SpatialDataset"]


@dataclass(frozen=True)
class SpatialDataset:
    """A set of points in a box-shaped domain.

    Attributes
    ----------
    points:
        ``(n, d)`` float array.  Points outside ``domain`` are rejected at
        construction: the decomposition's root must cover all of ``D``.
    domain:
        The data space Ω.
    name:
        Optional label used in experiment reports.
    """

    points: np.ndarray
    domain: Box
    name: str = "unnamed"

    def __post_init__(self) -> None:
        pts = np.asarray(self.points, dtype=float)
        if pts.ndim != 2:
            raise ValueError(f"points must be 2-d (n, d), got shape {pts.shape}")
        if pts.shape[1] != self.domain.ndim:
            raise ValueError(
                f"points have {pts.shape[1]} dims but domain has {self.domain.ndim}"
            )
        if pts.shape[0] > 0 and not self.domain.contains_points(pts).all():
            raise ValueError("some points fall outside the domain")
        object.__setattr__(self, "points", pts)

    @staticmethod
    def from_points(points: np.ndarray, name: str = "unnamed", padding: float = 1e-9) -> "SpatialDataset":
        """Wrap raw points, taking their bounding box as the domain."""
        return SpatialDataset(
            points=np.asarray(points, dtype=float),
            domain=Box.bounding(points, padding=padding),
            name=name,
        )

    @property
    def n(self) -> int:
        """Cardinality of the dataset."""
        return self.points.shape[0]

    @property
    def ndim(self) -> int:
        """Dimensionality of the data space."""
        return self.domain.ndim

    def count_in(self, box: Box) -> int:
        """Exact number of points in ``box`` (the true answer of a range query)."""
        return box.count_points(self.points)

    def count_in_many(self, boxes: "Sequence[Box]") -> np.ndarray:
        """Exact counts for a whole workload, vectorized.

        Tests all queries against blocks of points with one broadcast per
        dimension, so evaluating a workload costs one pass over the data
        instead of one per query.
        """
        boxes = list(boxes)
        if not boxes:
            return np.empty(0, dtype=np.int64)
        lows = np.array([b.low for b in boxes])  # (q, d)
        highs = np.array([b.high for b in boxes])
        if lows.shape[1] != self.ndim:
            raise ValueError(
                f"queries have {lows.shape[1]} dims but the dataset has {self.ndim}"
            )
        counts = np.zeros(len(boxes), dtype=np.int64)
        # Block the points so the (queries x points) mask stays ~tens of MB.
        block = max(1, 4_000_000 // len(boxes))
        for start in range(0, self.n, block):
            chunk = self.points[start : start + block]
            inside = np.ones((len(boxes), chunk.shape[0]), dtype=bool)
            for dim in range(self.ndim):
                coords = chunk[:, dim]
                inside &= (coords >= lows[:, dim, None]) & (
                    coords < highs[:, dim, None]
                )
            counts += inside.sum(axis=1)
        return counts

    def restrict(self, box: Box) -> "SpatialDataset":
        """The sub-dataset of points falling in ``box`` (with ``box`` as domain)."""
        mask = box.contains_points(self.points)
        return SpatialDataset(points=self.points[mask], domain=box, name=self.name)
