"""Private spatial decompositions: datasets, trees, queries, metrics."""

from .dataset import SpatialDataset
from .flat import FlatHistogram, flatten_tree
from .histogram_tree import HistogramNode, HistogramTree
from .metrics import SMOOTHING_FRACTION, average_relative_error, relative_error
from .payload import SpatialNodeData
from .quadtree import privtree_decomposition, privtree_histogram, simpletree_histogram
from .queries import QUERY_BANDS, QueryBand, generate_workload, random_query
from .render import render_density, render_leaf_depth
from .serialize import load_tree, save_tree, tree_from_dict, tree_to_dict

__all__ = [
    "QUERY_BANDS",
    "FlatHistogram",
    "HistogramNode",
    "HistogramTree",
    "flatten_tree",
    "QueryBand",
    "SMOOTHING_FRACTION",
    "SpatialDataset",
    "SpatialNodeData",
    "average_relative_error",
    "generate_workload",
    "load_tree",
    "privtree_decomposition",
    "privtree_histogram",
    "random_query",
    "relative_error",
    "render_density",
    "render_leaf_depth",
    "save_tree",
    "simpletree_histogram",
    "tree_from_dict",
    "tree_to_dict",
]
