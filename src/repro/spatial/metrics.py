"""Accuracy metrics for spatial synopses (Section 6.1).

The paper measures the *relative error* of an answer ``qhat`` against the
exact answer ``q`` with a smoothing floor:

    RE = |qhat - q| / max(q, smoothing)

where ``smoothing`` is 0.1% of the dataset cardinality.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..domains.box import Box
from .dataset import SpatialDataset

__all__ = [
    "relative_error",
    "average_relative_error",
    "average_relative_error_from_answers",
    "workload_error",
    "SMOOTHING_FRACTION",
]

#: Δ = 0.1% of n, per Section 6.1 (following Qardaji et al. / Privelet).
SMOOTHING_FRACTION = 0.001


def relative_error(estimate: float, exact: float, smoothing: float) -> float:
    """``|estimate - exact| / max(exact, smoothing)``."""
    if smoothing <= 0:
        raise ValueError(f"smoothing must be positive, got {smoothing!r}")
    return abs(estimate - exact) / max(exact, smoothing)


def average_relative_error(
    answer: Callable[[Box], float],
    dataset: SpatialDataset,
    queries: Sequence[Box],
    smoothing_fraction: float = SMOOTHING_FRACTION,
) -> float:
    """Mean relative error of ``answer`` over a query workload.

    ``answer`` is any synopsis's range-count function; exact answers come
    from the dataset itself.
    """
    if not queries:
        raise ValueError("workload must contain at least one query")
    smoothing = smoothing_fraction * dataset.n
    total = 0.0
    for query in queries:
        exact = dataset.count_in(query)
        total += relative_error(answer(query), exact, smoothing)
    return total / len(queries)


def average_relative_error_from_answers(
    estimates: np.ndarray,
    exacts: np.ndarray,
    smoothing: float,
) -> float:
    """Vectorized mean relative error given precomputed answer vectors.

    Legacy alias: the §6.1 formula now lives in
    :mod:`repro.queries.metrics` (``relative_errors``), which this
    delegates to so the two surfaces can never diverge.
    """
    from ..queries.metrics import relative_errors

    return float(relative_errors(estimates, exacts, smoothing).mean())


def workload_error(
    synopsis: object,
    queries: Sequence[Box],
    exacts: np.ndarray,
    smoothing: float,
) -> float:
    """Mean relative error of a synopsis over a box workload.

    Legacy alias of :func:`repro.queries.metrics.workload_error` taking
    raw boxes; the experiments now score typed
    :class:`~repro.queries.Workload` objects directly.
    """
    from ..queries import Workload
    from ..queries.metrics import workload_error as _workload_error

    return _workload_error(synopsis, Workload.ranges(queries), exacts, smoothing)
