"""The Section 5 thought experiment: a quadtree built on the binary SVT.

The paper observes that *if* the binary SVT's claimed guarantee held, it
would beat PrivTree for spatial decomposition: initialize a queue with the
root's count query, pop queries one by one through the SVT, and split every
node whose indicator comes back 1.  Lemma 5.1 shows the premise is false —
the construction is **not** ε-differentially private at the claimed noise
scale — so this implementation exists purely to reproduce the comparison
and must never be used to release data.
"""

from __future__ import annotations

from collections import deque

from ..mechanisms.laplace import laplace_noise
from ..mechanisms.rng import RngLike, ensure_rng
from ..spatial.dataset import SpatialDataset
from ..spatial.histogram_tree import HistogramNode, HistogramTree
from ..spatial.payload import SpatialNodeData

__all__ = ["binary_svt_decomposition"]


def binary_svt_decomposition(
    dataset: SpatialDataset,
    epsilon: float,
    theta: float,
    dims_per_split: int | None = None,
    max_depth: int = 24,
    rng: RngLike = None,
) -> HistogramTree:
    """Build a quadtree with the (broken) binary-SVT split rule.

    Uses ``lam = 2/epsilon`` — the scale Claim 1 asserts is sufficient.
    **Warning:** by Lemma 5.1 this procedure does *not* satisfy
    ε-differential privacy; it is provided to reproduce the paper's
    analysis only.  Counts attached to the returned tree are the exact
    counts (the structure itself is the privacy-relevant release here).
    """
    if not epsilon > 0:
        raise ValueError(f"epsilon must be positive, got {epsilon!r}")
    gen = ensure_rng(rng)
    lam = 2.0 / epsilon
    noisy_theta = theta + laplace_noise(lam, rng=gen)

    root_payload = SpatialNodeData.root(dataset, dims_per_split)
    root = HistogramNode(box=root_payload.box, count=root_payload.score())
    queue: deque[tuple[HistogramNode, SpatialNodeData, int]] = deque(
        [(root, root_payload, 0)]
    )
    while queue:
        node, payload, depth = queue.popleft()
        noisy = payload.score() + laplace_noise(lam, rng=gen)
        if noisy <= noisy_theta or depth >= max_depth or not payload.can_split():
            continue
        for child_payload in payload.split():
            child = HistogramNode(
                box=child_payload.box, count=child_payload.score()
            )
            node.children.append(child)
            queue.append((child, child_payload, depth + 1))
    return HistogramTree(root=root)
