"""The four sparse-vector-technique variants of Section 5 and Appendix A.

All variants take a stream of exact query answers (each query has
sensitivity 1), a threshold, and a noise scale, and report which answers
appear to exceed the threshold.  Their privacy properties differ sharply:

* :func:`binary_svt` (Algorithm 3) — **claimed** ε-DP with ``lam >= 2/eps``
  in prior work; Lemma 5.1 shows it actually needs ``lam = Omega(k/eps)``.
* :func:`vanilla_svt` (Algorithm 4) — releases the noisy answers of the
  above-threshold queries; Appendix A shows its claimed guarantee fails too.
* :func:`reduced_svt` (Algorithm 5) — Dwork & Roth's variant; genuinely
  ε-DP with ``lam >= 2/eps`` (threshold noise ``t*lam``, re-drawn after
  every positive answer).
* :func:`improved_svt` (Algorithm 6) — the paper's improvement: a single
  threshold draw at scale ``lam`` suffices (Lemma A.1), giving more
  accurate decisions at the same privacy.

These functions exist to *reproduce the paper's negative results*
(``repro.svt.attack``) and as reference implementations; use PrivTree, not
an SVT, for hierarchical decompositions.
"""

from __future__ import annotations

from typing import Sequence

from ..mechanisms.laplace import laplace_noise
from ..mechanisms.rng import RngLike, ensure_rng

__all__ = ["binary_svt", "vanilla_svt", "reduced_svt", "improved_svt"]


def _validate(lam: float, theta: float) -> None:
    if not lam > 0:
        raise ValueError(f"lam must be positive, got {lam!r}")
    del theta  # any real threshold is fine


def binary_svt(
    answers: Sequence[float], theta: float, lam: float, rng: RngLike = None
) -> list[int]:
    """Algorithm 3: one noisy threshold, noisy answers compared against it.

    Returns one 0/1 indicator per query.  **Not ε-DP** at the claimed
    ``lam = 2/eps`` (Lemma 5.1).
    """
    _validate(lam, theta)
    gen = ensure_rng(rng)
    noisy_theta = theta + laplace_noise(lam, rng=gen)
    return [
        1 if answer + laplace_noise(lam, rng=gen) > noisy_theta else 0
        for answer in answers
    ]


def vanilla_svt(
    answers: Sequence[float],
    theta: float,
    lam: float,
    t: int,
    rng: RngLike = None,
) -> list[float | None]:
    """Algorithm 4: releases up to ``t`` noisy above-threshold answers.

    Below-threshold queries yield ``None`` (the paper's ⊥); the stream stops
    after ``t`` positive answers.  **Not ε-DP** at the claimed scale
    (Appendix A).
    """
    _validate(lam, theta)
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t!r}")
    gen = ensure_rng(rng)
    noisy_theta = theta + laplace_noise(lam, rng=gen)
    out: list[float | None] = []
    released = 0
    for answer in answers:
        noisy = answer + laplace_noise(t * lam, rng=gen)
        if noisy > noisy_theta:
            out.append(noisy)
            released += 1
            if released >= t:
                break
        else:
            out.append(None)
    return out


def reduced_svt(
    answers: Sequence[float],
    theta: float,
    lam: float,
    t: int,
    rng: RngLike = None,
) -> list[int]:
    """Algorithm 5 (Dwork & Roth): ε-DP with ``lam >= 2/eps``.

    Threshold noise has scale ``t * lam`` and is re-drawn after every
    positive answer; query noise has scale ``t * lam``; at most ``t``
    positive answers are emitted.
    """
    _validate(lam, theta)
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t!r}")
    gen = ensure_rng(rng)
    noisy_theta = theta + laplace_noise(t * lam, rng=gen)
    out: list[int] = []
    released = 0
    for answer in answers:
        noisy = answer + laplace_noise(t * lam, rng=gen)
        if noisy > noisy_theta:
            out.append(1)
            released += 1
            if released >= t:
                break
            noisy_theta = theta + laplace_noise(t * lam, rng=gen)
        else:
            out.append(0)
    return out


def improved_svt(
    answers: Sequence[float],
    theta: float,
    lam: float,
    t: int,
    rng: RngLike = None,
) -> list[int]:
    """Algorithm 6 (this paper): ε-DP with ``lam >= 2/eps`` (Lemma A.1).

    Like :func:`reduced_svt` but the threshold is perturbed **once** with
    scale ``lam`` instead of ``t * lam`` — a strictly more accurate
    comparison at the same privacy cost.
    """
    _validate(lam, theta)
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t!r}")
    gen = ensure_rng(rng)
    noisy_theta = theta + laplace_noise(lam, rng=gen)
    out: list[int] = []
    released = 0
    for answer in answers:
        noisy = answer + laplace_noise(t * lam, rng=gen)
        if noisy > noisy_theta:
            out.append(1)
            released += 1
            if released >= t:
                break
        else:
            out.append(0)
    return out
