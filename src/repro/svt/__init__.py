"""Sparse vector techniques and the paper's negative results (Section 5)."""

from .algorithms import binary_svt, improved_svt, reduced_svt, vanilla_svt
from .attack import (
    binary_svt_log_ratio,
    improved_svt_log_ratio_bound,
    vanilla_svt_log_ratio,
)
from .decomposition import binary_svt_decomposition

__all__ = [
    "binary_svt",
    "binary_svt_decomposition",
    "binary_svt_log_ratio",
    "improved_svt",
    "improved_svt_log_ratio_bound",
    "reduced_svt",
    "vanilla_svt",
    "vanilla_svt_log_ratio",
]
