"""Numeric reproduction of the SVT privacy-loss counterexamples.

Lemma 5.1 (binary SVT) and the Appendix A analysis (vanilla SVT) both work
by exhibiting an output event ``E`` and dataset pairs whose probability
ratio ``Pr[D -> E] / Pr[D' -> E]`` grows like ``e^{k/lam}`` — far beyond
the ``e^{2 eps}`` allowed if the claimed guarantees held.  This module
computes those event probabilities by numeric integration (log-space grid +
logsumexp), so the counterexamples can be verified quantitatively and
plotted as a function of ``k``.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp

from ..mechanisms.laplace import laplace_logcdf, laplace_logpdf, laplace_logsf

__all__ = [
    "binary_svt_log_ratio",
    "vanilla_svt_log_ratio",
    "improved_svt_log_ratio_bound",
]


def _log_event_probability_binary(
    qa_answer: float,
    qb_answer: float,
    k: int,
    lam: float,
    theta: float,
    grid: np.ndarray,
) -> float:
    """``ln Pr[E]`` for Lemma 5.1's event under the binary SVT.

    ``E``: the first ``k/2`` queries (answer ``qa_answer``) output 1 and the
    remaining ``k/2`` (answer ``qb_answer``) output 0.  Integrates over the
    noisy threshold ``x``.
    """
    half = k // 2
    log_pdf = np.array([laplace_logpdf(x, lam, loc=theta) for x in grid])
    log_above = np.array([laplace_logsf(x, lam, loc=qa_answer) for x in grid])
    log_below = np.array([laplace_logcdf(x, lam, loc=qb_answer) for x in grid])
    log_integrand = log_pdf + half * log_above + half * log_below
    dx = grid[1] - grid[0]
    return float(logsumexp(log_integrand) + np.log(dx))


def binary_svt_log_ratio(
    k: int, lam: float, theta: float = 1.0, grid_width: float = 60.0, grid_points: int = 40_001
) -> float:
    """``ln( Pr[D1 -> E] / Pr[D3 -> E] )`` for the Lemma 5.1 construction.

    ``D1 = {a, b}``, ``D3 = {b, b}``; ``Q`` is ``k/2`` copies of "count a"
    then ``k/2`` copies of "count b"; ``theta = 1``.  The lemma proves the
    ratio exceeds ``k / (2 lam)``, so ε-DP would force
    ``lam = Omega(k / eps)``.
    """
    if k < 2 or k % 2:
        raise ValueError(f"k must be a positive even integer, got {k!r}")
    if not lam > 0:
        raise ValueError(f"lam must be positive, got {lam!r}")
    grid = np.linspace(theta - grid_width * lam, theta + grid_width * lam, grid_points)
    # D1 = {a, b}: qa = 1, qb = 1.   D3 = {b, b}: qa = 0, qb = 2.
    log_p1 = _log_event_probability_binary(1.0, 1.0, k, lam, theta, grid)
    log_p3 = _log_event_probability_binary(0.0, 2.0, k, lam, theta, grid)
    return log_p1 - log_p3


def _log_event_probability_vanilla(
    qa_answer: float,
    qb_answer: float,
    k: int,
    lam: float,
    theta: float,
    output_value: float,
    grid: np.ndarray,
) -> float:
    """``ln Pr[E]`` for the Appendix A event under the vanilla SVT (t=1).

    ``E``: ⊥ for the first ``k-1`` queries (answer ``qa_answer``), then the
    final query (answer ``qb_answer``) releases the noisy value
    ``output_value``.  The threshold must exceed all suppressed answers and
    lie below the released one, hence the integral over ``x < output_value``.
    """
    mask = grid < output_value
    xs = grid[mask]
    log_pdf = np.array([laplace_logpdf(x, lam, loc=theta) for x in xs])
    log_below = np.array([laplace_logcdf(x, lam, loc=qa_answer) for x in xs])
    log_release = laplace_logpdf(output_value, lam, loc=qb_answer)
    log_integrand = log_pdf + (k - 1) * log_below + log_release
    dx = grid[1] - grid[0]
    return float(logsumexp(log_integrand) + np.log(dx))


def vanilla_svt_log_ratio(
    k: int, lam: float, theta: float = 0.0, grid_width: float = 60.0, grid_points: int = 40_001
) -> float:
    """``ln( Pr[D1 -> E] / Pr[D3 -> E] )`` for the Claim-2 counterexample.

    ``D1 = {a, b}``, ``D3 = {a, a}``; ``Q`` is ``k-1`` copies of "count a"
    then one "count b"; ``t = 1``; the event releases the value 1 for the
    last query.  Appendix A shows the ratio equals ``e^{k/lam}``.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k!r}")
    if not lam > 0:
        raise ValueError(f"lam must be positive, got {lam!r}")
    grid = np.linspace(-grid_width * lam, 1.0, grid_points)
    # D1 = {a, b}: qa = 1, qb = 1.   D3 = {a, a}: qa = 2, qb = 0.
    log_p1 = _log_event_probability_vanilla(1.0, 1.0, k, lam, theta, 1.0, grid)
    log_p3 = _log_event_probability_vanilla(2.0, 0.0, k, lam, theta, 1.0, grid)
    return log_p1 - log_p3


def improved_svt_log_ratio_bound(lam: float) -> float:
    """The Lemma A.1 guarantee: the improved SVT's privacy loss is ≤ 2/lam,
    independent of the number of queries."""
    if not lam > 0:
        raise ValueError(f"lam must be positive, got {lam!r}")
    return 2.0 / lam
