"""The modified PrivTree for private Markov models (Section 4.2).

Pipeline (Theorems 4.1 and 4.2, plus the §4.2 budget split):

1. **Structure** — run PrivTree over PST contexts with the Equation (13)
   score, fanout ``β = |I| + 1`` and score sensitivity ``l⊤`` (one inserted
   sequence touches at most ``l⊤`` root-to-leaf paths, changing each
   affected node's score by at most one each time).  Budget: ``ε / β``.
2. **Histograms** — release each leaf's prediction histogram with
   ``Lap(l⊤ / ε_hist)`` noise, ``ε_hist = ε (β − 1) / β`` (each token of a
   sequence lands in exactly one leaf histogram, so the leaf-histogram
   vector has sensitivity ``l⊤``).
3. **Postprocess** — internal histograms are sums of their leaves; negative
   counts clamp to zero so every histogram is a valid distribution.
"""

from __future__ import annotations

import numpy as np

from ..core.node import TreeNode
from ..core.params import PrivTreeParams
from ..core.privtree import DEFAULT_MAX_DEPTH, privtree
from ..mechanisms.accountant import PrivacyAccountant
from ..mechanisms.rng import RngLike, ensure_rng
from .dataset import SequenceDataset, TokenStore
from .payload import PSTNodeData
from .pst import PredictionSuffixTree, PSTNode

__all__ = ["private_pst", "exact_pst"]


def _release(
    node: TreeNode[PSTNodeData],
    scale: float | None,
    rng: np.random.Generator,
) -> PSTNode:
    """Recursively build the released PST; ``scale=None`` means no noise."""
    if node.is_leaf:
        hist = node.payload.hist().astype(float)
        if scale is not None:
            hist = hist + rng.laplace(0.0, scale, size=hist.shape)
        return PSTNode(context=node.payload.context, hist=hist)
    children = {}
    total = None
    for child in node.children:
        released = _release(child, scale, rng)
        children[released.context[0]] = released
        total = released.hist if total is None else total + released.hist
    return PSTNode(context=node.payload.context, hist=total, children=children)


def private_pst(
    dataset: SequenceDataset,
    epsilon: float,
    l_top: int,
    theta: float = 0.0,
    rng: RngLike = None,
    max_depth: int | None = DEFAULT_MAX_DEPTH,
    accountant: PrivacyAccountant | None = None,
) -> PredictionSuffixTree:
    """Build an ε-DP prediction suffix tree over ``dataset``.

    ``l_top`` is the Section 4.2 length bound; sequences longer than it are
    truncated (open-ended) before anything touches the data.  Passing an
    external ``accountant`` records the §4.2 split as two ledger entries
    summing to ``epsilon``; a private one is created when omitted.
    """
    gen = ensure_rng(rng)
    store = dataset.truncate(l_top)
    beta = dataset.alphabet.pst_fanout
    if accountant is None:
        accountant = PrivacyAccountant(epsilon)
    eps_tree = accountant.spend((1.0 / beta) * epsilon, "pst/structure")
    eps_hist = accountant.spend((1.0 - 1.0 / beta) * epsilon, "pst/leaf histograms")

    params = PrivTreeParams.calibrate(
        eps_tree, fanout=beta, sensitivity=float(l_top), theta=theta
    )
    tree = privtree(PSTNodeData.root(store), params, rng=gen, max_depth=max_depth)

    hist_scale = l_top / eps_hist  # Theorem 4.2
    root = _release(tree.root, hist_scale, gen)
    _clamp_nonnegative(root)
    return PredictionSuffixTree(alphabet=dataset.alphabet, root=root)


def exact_pst(
    dataset: SequenceDataset,
    l_top: int,
    split_threshold: float = 0.0,
    max_context: int = 16,
) -> PredictionSuffixTree:
    """A non-private PST: split while Equation (13) exceeds the threshold.

    Used by tests (ground truth) and by the Truncate baseline's synthetic
    generation.  ``max_context`` bounds context length for tractability.
    """
    store: TokenStore = dataset.truncate(l_top)
    root_payload = PSTNodeData.root(store)
    root_node = TreeNode(payload=root_payload, depth=0)
    frontier = [root_node]
    while frontier:
        node = frontier.pop()
        payload = node.payload
        if (
            payload.can_split()
            and len(payload.context) < max_context
            and payload.score() > split_threshold
        ):
            node.children = [
                TreeNode(payload=c, depth=node.depth + 1) for c in payload.split()
            ]
            frontier.extend(node.children)
    gen = ensure_rng(0)  # unused: scale is None
    root = _release(root_node, None, gen)
    return PredictionSuffixTree(alphabet=dataset.alphabet, root=root)


def _clamp_nonnegative(node: PSTNode) -> None:
    """Reset negative histogram counts to zero, bottom-up (Section 4.2)."""
    for child in node.children.values():
        _clamp_nonnegative(child)
    np.maximum(node.hist, 0.0, out=node.hist)
