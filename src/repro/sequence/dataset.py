"""Sequence datasets, l⊤-truncation, and the flat token store.

Section 4.2 bounds each sequence's token length (symbols plus the end
marker ``&``, not the start marker ``$``) by a constant ``l⊤``; sequences
exceeding the bound are truncated to their first ``l⊤`` symbols and become
*open-ended* (no ``&``).  The :class:`TokenStore` materializes the truncated
dataset as one flat code array plus per-sequence offsets, which the PST
construction filters with vectorized numpy operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .alphabet import Alphabet

__all__ = ["SequenceDataset", "TokenStore"]


@dataclass(frozen=True)
class SequenceDataset:
    """A multiset of symbol sequences over a common alphabet."""

    alphabet: Alphabet
    sequences: tuple[np.ndarray, ...]
    name: str = "unnamed"

    def __post_init__(self) -> None:
        cleaned = []
        for i, seq in enumerate(self.sequences):
            arr = np.asarray(seq, dtype=np.int64)
            if arr.ndim != 1:
                raise ValueError(f"sequence {i} is not one-dimensional")
            if arr.size and (arr.min() < 0 or arr.max() >= self.alphabet.size):
                raise ValueError(
                    f"sequence {i} contains codes outside the alphabet "
                    f"(size {self.alphabet.size})"
                )
            cleaned.append(arr)
        object.__setattr__(self, "sequences", tuple(cleaned))

    @staticmethod
    def from_symbols(
        alphabet: Alphabet, sequences: list[list[str]], name: str = "unnamed"
    ) -> "SequenceDataset":
        """Build from plain symbol lists."""
        return SequenceDataset(
            alphabet=alphabet,
            sequences=tuple(alphabet.encode(s) for s in sequences),
            name=name,
        )

    @property
    def n(self) -> int:
        """Number of sequences."""
        return len(self.sequences)

    def lengths(self) -> np.ndarray:
        """Symbol counts per sequence (sentinels not counted)."""
        return np.asarray([len(s) for s in self.sequences], dtype=np.int64)

    @property
    def average_length(self) -> float:
        """Mean symbol count (the Table 3 statistic)."""
        if self.n == 0:
            return 0.0
        return float(self.lengths().mean())

    def n_longer_than(self, l_top: int) -> int:
        """How many sequences the ``l⊤`` truncation rule affects."""
        return int((self.lengths() >= l_top).sum())

    def length_quantile(self, q: float) -> int:
        """The ``q``-quantile of token lengths (symbols + ``&``) — used to
        pick ``l⊤`` as "roughly the 95% quantile" (Section 6.2)."""
        if self.n == 0:
            raise ValueError("dataset is empty")
        return int(np.quantile(self.lengths() + 1, q))

    def truncate(self, l_top: int) -> "TokenStore":
        """Apply the Section 4.2 truncation and build the token store."""
        return TokenStore.build(self, l_top)


@dataclass(frozen=True)
class TokenStore:
    """The truncated dataset, flattened for vectorized PST counting.

    ``flat`` concatenates every sequence's tokens ``[$ x1 ... xl &]`` (the
    ``&`` dropped for truncated sequences); ``starts``/``ends`` delimit each
    sequence.  ``position_starts`` maps every *prediction position* (a token
    that is a symbol or ``&``) to the start offset of its sequence.
    """

    alphabet: Alphabet
    l_top: int
    flat: np.ndarray
    starts: np.ndarray
    ends: np.ndarray
    name: str = "unnamed"
    n_truncated: int = 0

    @staticmethod
    def build(dataset: SequenceDataset, l_top: int) -> "TokenStore":
        """Truncate ``dataset`` at ``l⊤`` and flatten it."""
        if l_top < 1:
            raise ValueError(f"l_top must be >= 1, got {l_top!r}")
        alphabet = dataset.alphabet
        start, end = alphabet.start_code, alphabet.end_code
        pieces: list[np.ndarray] = []
        starts: list[int] = []
        ends: list[int] = []
        offset = 0
        n_truncated = 0
        for seq in dataset.sequences:
            if len(seq) >= l_top:  # token length would exceed l_top
                tokens = np.concatenate([[start], seq[:l_top]])
                n_truncated += 1
            else:
                tokens = np.concatenate([[start], seq, [end]])
            pieces.append(tokens)
            starts.append(offset)
            offset += len(tokens)
            ends.append(offset)
        flat = (
            np.concatenate(pieces)
            if pieces
            else np.empty(0, dtype=np.int64)
        )
        return TokenStore(
            alphabet=alphabet,
            l_top=l_top,
            flat=flat.astype(np.int64),
            starts=np.asarray(starts, dtype=np.int64),
            ends=np.asarray(ends, dtype=np.int64),
            name=dataset.name,
            n_truncated=n_truncated,
        )

    @property
    def n(self) -> int:
        """Number of sequences."""
        return len(self.starts)

    def prediction_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """All positions whose token is a "next symbol" (not ``$``).

        Returns ``(positions, sequence_starts)`` — global indices into
        ``flat`` plus, for each, the start offset of its sequence.  These are
        exactly the root PST node's occurrences.
        """
        mask = self.flat != self.alphabet.start_code
        positions = np.nonzero(mask)[0]
        lengths = self.ends - self.starts
        seq_starts = np.repeat(self.starts, lengths)[positions]
        return positions, seq_starts

    def token_lengths(self) -> np.ndarray:
        """Token counts per sequence, excluding ``$`` (at most ``l⊤``)."""
        return self.ends - self.starts - 1

    def symbol_lengths(self) -> np.ndarray:
        """Symbol counts per sequence after truncation (``&`` not counted)."""
        lengths = self.ends - self.starts - 1
        has_end = self.flat[self.ends - 1] == self.alphabet.end_code
        return lengths - has_end.astype(np.int64)

    def sequence_tokens(self, index: int) -> np.ndarray:
        """The token codes of one sequence (including sentinels)."""
        return self.flat[self.starts[index] : self.ends[index]]
