"""The two analytical tasks of Section 6.2.

* **Top-k frequent strings** — the k strings (over ``I``, sentinels
  excluded) occurring most often as substrings of the sequences in ``D``.
  ``exact_top_k`` computes the ground truth ``K(D)``; each method's
  ``A(D)`` is compared with :func:`~repro.sequence.metrics.top_k_precision`.
* **Sequence-length distribution** — methods generate synthetic data whose
  length distribution is compared to the input's by total variation
  distance.
"""

from __future__ import annotations

from collections import Counter

from .dataset import SequenceDataset

__all__ = ["count_substrings", "exact_top_k"]


def count_substrings(
    dataset: SequenceDataset, max_length: int
) -> Counter[tuple[int, ...]]:
    """Occurrence counts of every substring of length ``<= max_length``.

    Counts *occurrences* (a string appearing twice in one sequence counts
    twice), matching the paper's notion of string frequency.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length!r}")
    counts: Counter[tuple[int, ...]] = Counter()
    for seq in dataset.sequences:
        tokens = tuple(int(c) for c in seq)
        n = len(tokens)
        for start in range(n):
            limit = min(max_length, n - start)
            for length in range(1, limit + 1):
                counts[tokens[start : start + length]] += 1
    return counts


def exact_top_k(
    dataset: SequenceDataset, k: int, max_length: int = 10
) -> list[tuple[int, ...]]:
    """The ground-truth top-k frequent strings ``K(D)``.

    Ties break lexicographically so the answer is deterministic.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k!r}")
    counts = count_substrings(dataset, max_length)
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return [codes for codes, _ in ranked[:k]]
