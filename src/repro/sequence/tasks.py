"""The two analytical tasks of Section 6.2.

* **Top-k frequent strings** — the k strings (over ``I``, sentinels
  excluded) occurring most often as substrings of the sequences in ``D``.
  ``exact_top_k`` computes the ground truth ``K(D)``; each method's
  ``A(D)`` is compared with :func:`~repro.sequence.metrics.top_k_precision`.
* **Sequence-length distribution** — methods generate synthetic data whose
  length distribution is compared to the input's by total variation
  distance.

``count_substrings`` is vectorized (packed window keys + ``np.unique``, see
:mod:`repro.sequence.windows`); ``count_substrings_reference`` keeps the
historical dict loop, which the vectorized path must match *exactly* — the
equivalence is exercised by the test suite and re-verified by
``repro bench``.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .dataset import SequenceDataset
from .windows import max_packable_length, packed_window_counts

__all__ = [
    "count_substrings",
    "count_substrings_reference",
    "exact_top_k",
    "rank_substring_counts",
    "top_k_substrings",
]


def count_substrings_reference(
    dataset: SequenceDataset, max_length: int
) -> Counter[tuple[int, ...]]:
    """Occurrence counts of every substring of length ``<= max_length``.

    Counts *occurrences* (a string appearing twice in one sequence counts
    twice), matching the paper's notion of string frequency.  Frozen loop
    reference for :func:`count_substrings`.
    """
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length!r}")
    counts: Counter[tuple[int, ...]] = Counter()
    for seq in dataset.sequences:
        tokens = tuple(seq.tolist())
        n = len(tokens)
        for start in range(n):
            limit = min(max_length, n - start)
            for length in range(1, limit + 1):
                counts[tokens[start : start + length]] += 1
    return counts


def rank_substring_counts(
    counts: Counter[tuple[int, ...]] | dict[tuple[int, ...], int],
    k: int | None = None,
) -> list[tuple[tuple[int, ...], int]]:
    """Rank a substring table by ``(-count, codes)`` — the canonical §6.2
    order (count descending, lexicographic tie-break, a prefix before its
    extensions); ``k`` truncates the ranking."""
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return ranked if k is None else ranked[:k]


def _window_batches(dataset: SequenceDataset, max_length: int, base: int):
    """Per-length ``(length, codes, counts)`` batches of the corpus."""
    lengths = dataset.lengths()
    if lengths.sum() == 0:
        return
    flat = np.concatenate([s for s in dataset.sequences if s.size])
    ends = np.cumsum(lengths)
    positions = np.arange(flat.shape[0], dtype=np.int64)
    limits = np.repeat(ends, lengths)
    yield from packed_window_counts(flat, positions, limits, max_length, base)


def count_substrings(
    dataset: SequenceDataset, max_length: int
) -> Counter[tuple[int, ...]]:
    """Occurrence counts of every substring of length ``<= max_length``.

    Vectorized: every (position, length) window of the concatenated corpus
    becomes a packed integer key, counted per length with one sort.  Output
    is exactly :func:`count_substrings_reference`'s.  (Materializing the
    tuple-keyed table dominates the runtime; rankings that only need the
    top of the table should use :func:`top_k_substrings`, which never
    leaves array form.)
    """
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length!r}")
    base = max(dataset.alphabet.size, 2)
    if max_length > max_packable_length(base):
        return count_substrings_reference(dataset, max_length)
    counts: Counter[tuple[int, ...]] = Counter()
    for _, codes, occurrences in _window_batches(dataset, max_length, base):
        # dict.update (not Counter.update) so the pair iterable is consumed
        # at C speed; keys never repeat across window lengths.
        dict.update(
            counts, zip(map(tuple, codes.tolist()), occurrences.tolist())
        )
    return counts


def top_k_substrings(
    dataset: SequenceDataset, k: int, max_length: int
) -> list[tuple[tuple[int, ...], int]]:
    """The ``k`` most frequent substrings with their counts, array-native.

    Equivalent to ranking :func:`count_substrings` by ``(-count, codes)``
    (count descending, lexicographic tie-break, a prefix before its
    extensions) but the ranking happens on packed arrays: only the ``k``
    winning substrings are ever materialized as tuples.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k!r}")
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length!r}")
    base = max(dataset.alphabet.size, 2)
    if max_length > max_packable_length(base):
        return rank_substring_counts(
            count_substrings_reference(dataset, max_length), k
        )
    batches = list(_window_batches(dataset, max_length, base))
    if not batches:
        return []
    total = sum(codes.shape[0] for _, codes, _ in batches)
    # Pad windows to a common width with -1: lexicographic order on the
    # padded rows equals tuple order (a prefix sorts before its extensions
    # because -1 precedes every code).
    padded = np.full((total, max_length), -1, dtype=np.int64)
    occurrences = np.empty(total, dtype=np.int64)
    cursor = 0
    for length, codes, occ in batches:
        padded[cursor : cursor + codes.shape[0], :length] = codes
        occurrences[cursor : cursor + codes.shape[0]] = occ
        cursor += codes.shape[0]
    if k < total:
        # Keep only rows that can still reach the answer set: those whose
        # count ties or beats the k-th largest.
        kth = np.partition(occurrences, total - k)[total - k]
        contenders = np.nonzero(occurrences >= kth)[0]
    else:
        contenders = np.arange(total)
    keys = [padded[contenders, col] for col in range(max_length - 1, -1, -1)]
    keys.append(-occurrences[contenders])
    order = contenders[np.lexsort(keys)][:k]
    return [
        (tuple(row[: int(width)]), int(count))
        for row, width, count in zip(
            padded[order].tolist(),
            (padded[order] >= 0).sum(axis=1),
            occurrences[order],
        )
    ]


def exact_top_k(
    dataset: SequenceDataset,
    k: int,
    max_length: int = 10,
    counts: Counter[tuple[int, ...]] | None = None,
) -> list[tuple[int, ...]]:
    """The ground-truth top-k frequent strings ``K(D)``.

    Ties break lexicographically so the answer is deterministic.  Passing
    precomputed ``counts`` (from :func:`count_substrings` at the **same**
    ``max_length`` — a smaller cap silently drops longer strings from the
    ground truth and cannot be detected here; a larger one is rejected)
    amortizes the counting across experiments; without them the ranking
    runs array-native via :func:`top_k_substrings`.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k!r}")
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length!r}")
    if counts is None:
        return [codes for codes, _ in top_k_substrings(dataset, k, max_length)]
    if any(len(codes) > max_length for codes in counts):
        raise ValueError(
            "precomputed counts contain substrings longer than max_length "
            f"({max_length}); they were counted at a larger cap"
        )
    return [codes for codes, _ in rank_substring_counts(counts, k)]
