"""Private Markov models over sequence data (Section 4)."""

from .alphabet import Alphabet, END_SYMBOL, START_SYMBOL
from .dataset import SequenceDataset, TokenStore
from .markov import MarkovModel
from .metrics import length_distribution, top_k_precision, total_variation_distance
from .payload import PSTNodeData, equation_13_score
from .private_pst import exact_pst, private_pst
from .pst import PredictionSuffixTree, PSTNode
from .serialize import load_pst, pst_from_dict, pst_to_dict, save_pst
from .tasks import count_substrings, exact_top_k

__all__ = [
    "Alphabet",
    "END_SYMBOL",
    "MarkovModel",
    "PSTNode",
    "PSTNodeData",
    "PredictionSuffixTree",
    "START_SYMBOL",
    "SequenceDataset",
    "TokenStore",
    "count_substrings",
    "equation_13_score",
    "exact_pst",
    "exact_top_k",
    "length_distribution",
    "load_pst",
    "private_pst",
    "pst_from_dict",
    "pst_to_dict",
    "save_pst",
    "top_k_precision",
    "total_variation_distance",
]
