"""Private Markov models over sequence data (Section 4)."""

from .alphabet import Alphabet, END_SYMBOL, START_SYMBOL
from .dataset import SequenceDataset, TokenStore
from .flat import FlatPST, flatten_pst
from .markov import MarkovModel
from .metrics import length_distribution, top_k_precision, total_variation_distance
from .payload import PSTNodeData, equation_13_score
from .private_pst import exact_pst, private_pst
from .pst import PredictionSuffixTree, PSTNode
from .serialize import load_pst, pst_from_dict, pst_to_dict, save_pst
from .tasks import (
    count_substrings,
    count_substrings_reference,
    exact_top_k,
    top_k_substrings,
)

__all__ = [
    "Alphabet",
    "END_SYMBOL",
    "FlatPST",
    "MarkovModel",
    "PSTNode",
    "PSTNodeData",
    "PredictionSuffixTree",
    "START_SYMBOL",
    "SequenceDataset",
    "TokenStore",
    "count_substrings",
    "count_substrings_reference",
    "equation_13_score",
    "exact_pst",
    "exact_top_k",
    "flatten_pst",
    "length_distribution",
    "load_pst",
    "private_pst",
    "pst_from_dict",
    "pst_to_dict",
    "save_pst",
    "top_k_precision",
    "top_k_substrings",
    "total_variation_distance",
]
