"""Prediction suffix trees (Section 4.1).

A PST node carries a *predictor string* ``dom(v)`` (a context over
``I ∪ {$}``) and a *prediction histogram* ``hist(v)`` counting, for every
``x ∈ I ∪ {&}``, how often an occurrence of the context is immediately
followed by ``x``.  Children prepend one symbol to the parent's context.

This module holds the released artifact (:class:`PredictionSuffixTree`) and
its query/sampling algorithms; the construction machinery (exact counting
payload + modified PrivTree) lives in ``payload.py`` / ``private_pst.py``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..mechanisms.rng import RngLike, ensure_rng
from .alphabet import Alphabet

__all__ = ["PSTNode", "PredictionSuffixTree"]


@dataclass
class PSTNode:
    """A released PST node: context, histogram, children by prepended code."""

    context: tuple[int, ...]
    hist: np.ndarray
    children: dict[int, "PSTNode"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children

    @property
    def magnitude(self) -> float:
        """``‖hist(v)‖₁`` — the total of the prediction histogram."""
        return float(self.hist.sum())

    def iter_nodes(self) -> Iterator["PSTNode"]:
        """All nodes of the subtree, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())


@dataclass
class PredictionSuffixTree:
    """A PST supporting string-frequency estimation and sequence sampling.

    Structural statistics (``size``, ``height``) and the array-backed query
    engine (:meth:`flat`) are computed lazily on first access and cached:
    released trees are never mutated after construction, and experiments
    read these per trial.
    """

    alphabet: Alphabet
    root: PSTNode
    _stats: tuple[int, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _flat: "FlatPST | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def _compute_stats(self) -> tuple[int, int]:
        """(size, height) in one iterative traversal."""
        if self._stats is None:
            size = height = 0
            for node in self.root.iter_nodes():
                size += 1
                if len(node.context) > height:
                    height = len(node.context)
            self._stats = (size, height)
        return self._stats

    @property
    def size(self) -> int:
        """Total number of nodes."""
        return self._compute_stats()[0]

    @property
    def height(self) -> int:
        """Longest context length."""
        return self._compute_stats()[1]

    def flat(self) -> "FlatPST":
        """The compiled array-backed engine (built once, then cached)."""
        if self._flat is None:
            from .flat import FlatPST

            self._flat = FlatPST.from_pst(self)
        return self._flat

    def lookup(self, context: Sequence[int]) -> PSTNode:
        """The node whose predictor string is the longest suffix of ``context``.

        Children prepend symbols, so the walk consumes ``context`` from its
        end backwards.
        """
        node = self.root
        for code in reversed(list(context)):
            child = node.children.get(int(code))
            if child is None:
                break
            node = child
        return node

    def _step_distribution(self, node: PSTNode) -> np.ndarray | None:
        total = node.hist.sum()
        if total <= 0:
            return None
        return node.hist / total

    @staticmethod
    def _sample_code(dist: np.ndarray, gen: np.random.Generator) -> int:
        # Inverse-CDF sampling: considerably faster than Generator.choice
        # for the small histograms sampled once per generated symbol.
        return int(np.searchsorted(np.cumsum(dist), gen.random(), side="right"))

    def string_frequency(self, codes: Sequence[int]) -> float:
        """Estimate how often the string occurs in ``D`` (Equation (12)).

        ``codes`` must be plain symbols (no sentinels).  The first symbol's
        count comes from the root histogram; every further symbol multiplies
        by the conditional probability predicted by the longest matching
        context.
        """
        codes = [int(c) for c in codes]
        if not codes:
            raise ValueError("query string must be non-empty")
        if any(c >= self.alphabet.size or c < 0 for c in codes):
            raise ValueError("query string must contain ordinary symbols only")
        answer = float(self.root.hist[codes[0]])
        for i in range(1, len(codes)):
            if answer <= 0:
                return 0.0
            node = self.lookup(codes[:i])
            dist = self._step_distribution(node)
            if dist is None:
                return 0.0
            answer *= float(dist[codes[i]])
        return max(answer, 0.0)

    def string_frequency_of(self, symbols: Sequence[str]) -> float:
        """Symbol-level convenience wrapper around :meth:`string_frequency`."""
        return self.string_frequency(
            [self.alphabet.code_of(s) for s in symbols]
        )

    def sample_sequence(
        self, rng: RngLike = None, max_length: int | None = None
    ) -> np.ndarray:
        """Generate one synthetic sequence (Section 4.1's sampling procedure).

        Starts from the context ``[$]`` and repeatedly samples the next
        symbol from the longest-matching node's histogram until ``&`` or
        ``max_length`` symbols.  Returns plain symbol codes (no sentinels).
        """
        gen = ensure_rng(rng)
        if max_length is None:
            max_length = 10_000
        context: list[int] = [self.alphabet.start_code]
        out: list[int] = []
        end = self.alphabet.end_code
        for _ in range(max_length):
            node = self.lookup(context)
            dist = self._step_distribution(node)
            if dist is None:
                break
            code = min(self._sample_code(dist, gen), len(dist) - 1)
            if code == end:
                break
            out.append(code)
            context.append(code)
        return np.asarray(out, dtype=np.int64)

    def sample_dataset(
        self, n: int, rng: RngLike = None, max_length: int | None = None
    ) -> list[np.ndarray]:
        """Sample ``n`` synthetic sequences."""
        gen = ensure_rng(rng)
        return [self.sample_sequence(gen, max_length) for _ in range(n)]

    def top_k_strings(
        self, k: int, max_length: int = 12
    ) -> list[tuple[tuple[int, ...], float]]:
        """The model's ``k`` most frequent strings, by best-first search.

        Equation (12) estimates are non-increasing under extension (each
        step multiplies by a probability), so a priority queue over prefixes
        explores exactly the candidates that can still reach the answer set.
        Returns ``(codes, estimated_count)`` pairs, most frequent first.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k!r}")
        counter = 0
        heap: list[tuple[float, int, tuple[int, ...]]] = []
        for code in range(self.alphabet.size):
            est = self.string_frequency([code])
            heap.append((-est, counter, (code,)))
            counter += 1
        heapq.heapify(heap)
        results: list[tuple[tuple[int, ...], float]] = []
        while heap and len(results) < k:
            neg_est, _, codes = heapq.heappop(heap)
            est = -neg_est
            results.append((codes, est))
            if len(codes) < max_length and est > 0:
                for code in range(self.alphabet.size):
                    ext = codes + (code,)
                    ext_est = self.string_frequency(ext)
                    if ext_est > 0:
                        heapq.heappush(heap, (-ext_est, counter, ext))
                        counter += 1
        return results
