"""The PST as a variable-length Markov model (Ron, Singer, Tishby 1996).

Section 4.1 presents the PST as a Markov model; beyond the paper's two
tasks it supports the standard language-model API: next-symbol prediction,
sequence log-likelihood, and per-symbol perplexity.  This module wraps a
(private or exact) :class:`~repro.sequence.pst.PredictionSuffixTree` with
those operations, with additive smoothing so noisy zero counts never
produce infinite surprisal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .dataset import SequenceDataset
from .pst import PredictionSuffixTree

__all__ = ["MarkovModel"]


@dataclass(frozen=True)
class MarkovModel:
    """Next-symbol prediction over a prediction suffix tree.

    ``smoothing`` is the additive (Lidstone) pseudo-count applied to every
    histogram cell when forming conditional distributions — essential for
    *private* PSTs whose clamped noisy counts can be all-zero.
    """

    pst: PredictionSuffixTree
    smoothing: float = 0.5

    def __post_init__(self) -> None:
        if not self.smoothing > 0:
            raise ValueError(f"smoothing must be positive, got {self.smoothing!r}")

    @property
    def alphabet(self):
        """The underlying alphabet."""
        return self.pst.alphabet

    def predict_distribution(
        self, context: list[int] | tuple[int, ...]
    ) -> np.ndarray:
        """``P(next symbol | context)`` over ``I ∪ {&}``.

        ``context`` lists the preceding codes, earliest first, and may begin
        with the start marker (``alphabet.start_code``) to condition on
        being near the start of a sequence.
        """
        codes = [int(c) for c in context]
        for i, code in enumerate(codes):
            is_start = code == self.alphabet.start_code
            if is_start and i != 0:
                raise ValueError("start marker may only open the context")
            if not is_start and not 0 <= code < self.alphabet.size:
                raise ValueError(f"invalid context code {code!r}")
        node = self.pst.lookup(codes)
        hist = np.maximum(node.hist, 0.0) + self.smoothing
        return hist / hist.sum()

    def predict_after_start(self) -> np.ndarray:
        """``P(first symbol)`` — the distribution right after ``$``."""
        return self.predict_distribution([self.alphabet.start_code])

    def sequence_log_likelihood(self, codes: np.ndarray | list[int]) -> float:
        """Log-probability of a full sequence, including its termination.

        The sequence is scored symbol by symbol with the longest-matching
        context, then the end marker ``&`` is scored after the last symbol.
        """
        codes = [int(c) for c in codes]
        if any(not 0 <= c < self.alphabet.size for c in codes):
            raise ValueError("sequence must contain ordinary symbols only")
        context: list[int] = [self.alphabet.start_code]
        total = 0.0
        for code in codes + [self.alphabet.end_code]:
            total += math.log(self.predict_distribution(context)[code])
            context.append(code)
        return total

    def dataset_log_likelihood(self, dataset: SequenceDataset) -> float:
        """Total log-likelihood of a dataset under the model."""
        if dataset.alphabet.size != self.alphabet.size:
            raise ValueError("dataset alphabet does not match the model")
        return sum(self.sequence_log_likelihood(seq) for seq in dataset.sequences)

    def perplexity(self, dataset: SequenceDataset) -> float:
        """Per-token perplexity (tokens = symbols plus one ``&`` each)."""
        if dataset.n == 0:
            raise ValueError("dataset is empty")
        tokens = int(dataset.lengths().sum()) + dataset.n
        return math.exp(-self.dataset_log_likelihood(dataset) / tokens)
