"""Flat, array-backed view of a released prediction suffix tree.

A :class:`FlatPST` compiles a :class:`~repro.sequence.pst.
PredictionSuffixTree` into structure-of-arrays form: stacked prediction
histograms, per-node totals and cumulative-probability rows, and the
topology as a dense child table indexed by prepended symbol code.  The
hot sequence operations then run as batched NumPy passes instead of
per-node dict walks:

* :meth:`lookup_many` — longest-suffix context resolution for a whole
  batch, one vectorized step per tree level;
* :meth:`frequency_many` — Equation (12) string-frequency estimates for a
  whole query batch, numerically identical to the recursive
  ``string_frequency`` (same operations in the same order);
* :meth:`sample_dataset` — batched synthetic generation: every active
  sequence advances one symbol per iteration from a single sized uniform
  draw (per-row inverse CDF), instead of one Python ``lookup`` + scalar
  draw per symbol per sequence.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..mechanisms.rng import RngLike, ensure_rng
from .alphabet import Alphabet
from .pst import PredictionSuffixTree, PSTNode

__all__ = ["FlatPST", "assemble_batches", "flatten_pst", "sample_lockstep"]


def assemble_batches(
    n: int, row_chunks: list[np.ndarray], code_chunks: list[np.ndarray]
) -> list[np.ndarray]:
    """Stitch per-step (row, symbol) batches into per-sequence arrays.

    Each step of a batched generator emits the rows still active and the
    symbol each drew; a stable sort by row id recovers every sequence in
    generation order.
    """
    if not row_chunks:
        return [np.empty(0, dtype=np.int64) for _ in range(n)]
    rows = np.concatenate(row_chunks)
    symbols = np.concatenate(code_chunks)
    order = np.argsort(rows, kind="stable")
    symbols = symbols[order]
    per_row = np.bincount(rows, minlength=n)
    return [piece.copy() for piece in np.split(symbols, np.cumsum(per_row)[:-1])]


def sample_lockstep(
    n: int,
    max_length: int,
    gen: np.random.Generator,
    windows: np.ndarray,
    end_code: int,
    hist_size: int,
    step,
) -> list[np.ndarray]:
    """The lockstep generation driver shared by the flat sequence engines.

    Every iteration advances all still-active sequences one symbol:
    ``step(active_windows)`` resolves each row's context to its cumulative
    conditional-probability row and a liveness mask (rows whose
    distribution has no mass stop generating), one sized uniform draw picks
    all next symbols via per-row inverse CDF, ``end_code`` retires a
    sequence, and the rolling context ``windows`` shift left by one.
    ``windows`` is mutated in place; the caller pre-fills its initial
    context.
    """
    active = np.arange(n, dtype=np.intp)
    row_chunks: list[np.ndarray] = []
    code_chunks: list[np.ndarray] = []
    for _ in range(max_length):
        if active.size == 0:
            break
        cum, live = step(windows[active])
        active = active[live]
        if active.size == 0:
            break
        cum = cum[live]
        u = gen.random(size=active.size)
        codes = np.minimum((cum <= u[:, None]).sum(axis=1), hist_size - 1)
        keep = codes != end_code
        active = active[keep]
        codes = codes[keep].astype(np.int64)
        if active.size:
            row_chunks.append(active.copy())
            code_chunks.append(codes)
            windows[active, :-1] = windows[active, 1:]
            windows[active, -1] = codes
    return assemble_batches(n, row_chunks, code_chunks)


@dataclass(frozen=True)
class FlatPST:
    """A released PST compiled to structure-of-arrays (pre-order layout).

    Attributes
    ----------
    hists:
        ``(m, hist_size)`` prediction histograms, nodes in pre-order
        (children visited in prepended-code order).
    totals:
        ``(m,)`` histogram magnitudes (``hists.sum(axis=1)``).
    cum_probs:
        ``(m, hist_size)`` cumulative conditional probabilities
        (``cumsum(hist / total)``; zero rows where ``total <= 0``).
    parents, depths, edge_symbols:
        ``(m,)`` topology: pre-order parent index (``-1`` for the root),
        context length, and the symbol the node prepends to its parent's
        context (``-1`` for the root).
    child_table:
        ``(m, |I| + 2)`` dense child index by prepended code (columns cover
        ``I ∪ {&, $}``; ``-1`` marks a missing child).
    """

    alphabet: Alphabet
    hists: np.ndarray
    totals: np.ndarray
    cum_probs: np.ndarray
    parents: np.ndarray
    depths: np.ndarray
    edge_symbols: np.ndarray
    child_table: np.ndarray

    @property
    def size(self) -> int:
        """Total number of nodes."""
        return int(self.hists.shape[0])

    @property
    def height(self) -> int:
        """Longest context length."""
        return int(self.depths.max())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def from_pst(pst: PredictionSuffixTree) -> "FlatPST":
        """Compile a released :class:`PredictionSuffixTree`."""
        alphabet = pst.alphabet
        nodes: list[PSTNode] = []
        parents: list[int] = []
        edges: list[int] = []
        stack: list[tuple[PSTNode, int, int]] = [(pst.root, -1, -1)]
        while stack:
            node, parent, edge = stack.pop()
            index = len(nodes)
            nodes.append(node)
            parents.append(parent)
            edges.append(edge)
            for code, child in sorted(node.children.items(), reverse=True):
                stack.append((child, index, int(code)))
        m = len(nodes)
        hist_size = alphabet.hist_size
        hists = np.empty((m, hist_size))
        for i, node in enumerate(nodes):
            hists[i] = node.hist
        parents_arr = np.asarray(parents, dtype=np.intp)
        edges_arr = np.asarray(edges, dtype=np.int64)
        depths = np.zeros(m, dtype=np.int64)
        for i in range(1, m):
            depths[i] = depths[parents_arr[i]] + 1
        child_table = np.full((m, alphabet.start_code + 1), -1, dtype=np.intp)
        for i in range(1, m):
            child_table[parents_arr[i], edges_arr[i]] = i
        totals = hists.sum(axis=1)
        safe = np.where(totals > 0, totals, 1.0)
        cum_probs = np.cumsum(hists / safe[:, None], axis=1)
        cum_probs[totals <= 0] = 0.0
        return FlatPST(
            alphabet=alphabet,
            hists=hists,
            totals=totals,
            cum_probs=cum_probs,
            parents=parents_arr,
            depths=depths,
            edge_symbols=edges_arr,
            child_table=child_table,
        )

    def to_pst(self) -> PredictionSuffixTree:
        """Reconstruct the pointer-based :class:`PredictionSuffixTree`.

        The inverse of :meth:`from_pst` (up to child-dict insertion order):
        used to materialize a model on demand when a release was loaded
        from a flat binary artifact.
        """
        m = self.size
        contexts: list[tuple[int, ...]] = [()] * m
        nodes: list[PSTNode] = [None] * m  # type: ignore[list-item]
        for i in range(m):
            parent = int(self.parents[i])
            if parent >= 0:
                contexts[i] = (int(self.edge_symbols[i]),) + contexts[parent]
            nodes[i] = PSTNode(
                context=contexts[i], hist=np.array(self.hists[i], dtype=float)
            )
        for i in range(1, m):
            parent = int(self.parents[i])
            nodes[parent].children[int(self.edge_symbols[i])] = nodes[i]
        return PredictionSuffixTree(alphabet=self.alphabet, root=nodes[0])

    def node_context(self, index: int) -> tuple[int, ...]:
        """The predictor string of node ``index`` (root: ``()``)."""
        context: list[int] = []
        while index > 0:
            context.append(int(self.edge_symbols[index]))
            index = int(self.parents[index])
        return tuple(context)

    # ------------------------------------------------------------------
    # Lookup and frequency estimation
    # ------------------------------------------------------------------

    def _lookup_rows(self, contexts: np.ndarray) -> np.ndarray:
        """Vectorized longest-suffix lookup.

        ``contexts`` is ``(B, W)`` right-aligned (last symbol in the last
        column) with ``-1`` padding on the left; any out-of-range code ends
        that row's walk, like a missing child in the recursive lookup.
        """
        n_rows, width = contexts.shape
        cur = np.zeros(n_rows, dtype=np.intp)
        alive = np.ones(n_rows, dtype=bool)
        n_codes = self.child_table.shape[1]
        for step in range(min(width, self.height)):
            if not alive.any():
                break
            symbols = contexts[:, width - 1 - step]
            bad = alive & ((symbols < 0) | (symbols >= n_codes))
            alive[bad] = False
            rows = np.nonzero(alive)[0]
            if rows.size == 0:
                break
            child = self.child_table[cur[rows], symbols[rows]]
            found = child >= 0
            cur[rows[found]] = child[found]
            alive[rows[~found]] = False
        return cur

    def lookup(self, context: Sequence[int]) -> int:
        """Index of the node whose context is the longest suffix of
        ``context`` (the flat counterpart of ``PredictionSuffixTree.lookup``)."""
        return int(self.lookup_many([context])[0])

    def lookup_many(self, contexts: Sequence[Sequence[int]]) -> np.ndarray:
        """Batched lookup: one node index per context."""
        arrays = [np.asarray(c, dtype=np.int64).ravel() for c in contexts]
        if not arrays:
            return np.empty(0, dtype=np.intp)
        width = max((a.shape[0] for a in arrays), default=0)
        if width == 0:
            return np.zeros(len(arrays), dtype=np.intp)
        padded = np.full((len(arrays), width), -1, dtype=np.int64)
        for i, a in enumerate(arrays):
            if a.shape[0]:
                padded[i, width - a.shape[0] :] = a
        return self._lookup_rows(padded)

    def string_frequency(self, codes: Sequence[int]) -> float:
        """Equation (12) estimate for one string (flat engine)."""
        return float(self.frequency_many([codes])[0])

    def _frequency_chain(
        self, queries: Sequence[Sequence[int]], anchored: bool
    ) -> np.ndarray:
        """The Equation (12) product chain for a whole batch of strings.

        Unanchored, the first factor is the root histogram's count of the
        first symbol and every context is a plain suffix — the occurrence
        estimate.  Anchored, a ``$`` start sentinel is prepended: the first
        factor comes from the ``$`` context node (how many sequences open
        with the symbol) and every conditional sees the sentinel, making
        the chain a *sequences-starting-with* estimate.
        """
        arrays = [np.asarray(q, dtype=np.int64).ravel() for q in queries]
        if not arrays:
            return np.empty(0)
        size = self.alphabet.size
        for a in arrays:
            if a.shape[0] == 0:
                raise ValueError("query string must be non-empty")
            if a.min() < 0 or a.max() >= size:
                raise ValueError("query string must contain ordinary symbols only")
        n_rows = len(arrays)
        lengths = np.asarray([a.shape[0] for a in arrays], dtype=np.int64)
        width = int(lengths.max())
        offset = 1 if anchored else 0
        padded = np.full((n_rows, width + offset), -1, dtype=np.int64)
        if anchored:
            padded[:, 0] = self.alphabet.start_code
        for i, a in enumerate(arrays):
            padded[i, offset : offset + a.shape[0]] = a
        if anchored:
            # The $-context node carries the sequence-start counts the
            # anchored chain opens with.  A tree released without it (tiny
            # budgets may never split on the start sentinel) has no
            # sequence-start statistics — falling back to the root would
            # silently answer with *occurrence* counts instead.
            first = int(self.child_table[0, self.alphabet.start_code])
            if first < 0:
                raise ValueError(
                    "the released PST has no '$' context node; "
                    "sequence-start (prefix) statistics are unavailable"
                )
        else:
            first = 0
        answers = self.hists[first][padded[:, offset]]
        for i in range(1, width):
            active = np.nonzero(lengths > i)[0]
            if active.size == 0:
                break
            nodes = self._lookup_rows(padded[active, : i + offset])
            totals = self.totals[nodes]
            live = (answers[active] > 0) & (totals > 0)
            stepped = np.zeros(active.shape[0])
            rows = active[live]
            stepped[live] = answers[rows] * (
                self.hists[nodes[live], padded[rows, i + offset]] / totals[live]
            )
            answers[active] = stepped
        return np.maximum(answers, 0.0)

    def frequency_many(self, queries: Sequence[Sequence[int]]) -> np.ndarray:
        """Equation (12) estimates for a whole batch of strings.

        Performs the same floating-point operations in the same order as
        the recursive ``string_frequency``, so answers agree exactly.
        """
        return self._frequency_chain(queries, anchored=False)

    def prefix_frequency_many(self, queries: Sequence[Sequence[int]]) -> np.ndarray:
        """Estimated number of sequences *starting with* each string.

        The Equation (12) chain anchored at the ``$`` start sentinel (see
        :meth:`_frequency_chain`); one vectorized pass for the batch.
        """
        return self._frequency_chain(queries, anchored=True)

    def conditional_rows(
        self,
        contexts: Sequence[Sequence[int]],
        anchored: np.ndarray | None = None,
    ) -> np.ndarray:
        """``P(· | context)`` rows for a batch of contexts.

        Each row is the longest-matching node's normalized prediction
        histogram over ``I ∪ {&}`` (all zeros when that node's histogram
        has no mass).  ``anchored`` marks rows whose context starts a
        sequence: the ``$`` sentinel is prepended before lookup, so an
        anchored empty context resolves to the sequence-start node instead
        of the root.
        """
        arrays = [np.asarray(c, dtype=np.int64).ravel() for c in contexts]
        n_rows = len(arrays)
        hist_size = self.alphabet.hist_size
        if n_rows == 0:
            return np.empty((0, hist_size))
        if anchored is None:
            flags = np.zeros(n_rows, dtype=bool)
        else:
            flags = np.asarray(anchored, dtype=bool)
            if flags.shape != (n_rows,):
                raise ValueError(
                    f"anchored has shape {flags.shape}, expected ({n_rows},)"
                )
        start = self.alphabet.start_code
        widths = [a.shape[0] + int(flags[i]) for i, a in enumerate(arrays)]
        width = max(max(widths), 1)
        padded = np.full((n_rows, width), -1, dtype=np.int64)
        for i, a in enumerate(arrays):
            if flags[i]:
                padded[i, width - a.shape[0] - 1] = start
            if a.shape[0]:
                padded[i, width - a.shape[0] :] = a
        nodes = self._lookup_rows(padded)
        totals = self.totals[nodes]
        safe = np.where(totals > 0, totals, 1.0)
        rows = self.hists[nodes] / safe[:, None]
        rows[totals <= 0] = 0.0
        return rows

    # ------------------------------------------------------------------
    # Batched generation and mining
    # ------------------------------------------------------------------

    def sample_dataset(
        self, n: int, rng: RngLike = None, max_length: int | None = None
    ) -> list[np.ndarray]:
        """Generate ``n`` synthetic sequences in lockstep.

        Identically distributed to ``PredictionSuffixTree.sample_dataset``
        (same per-step conditional laws, independent uniforms), but the RNG
        stream interleaves across sequences per *step* instead of per
        sequence, so fixed-seed outputs differ from the scalar reference.
        """
        gen = ensure_rng(rng)
        if max_length is None:
            max_length = 10_000
        windows = np.full((n, max(self.height, 1)), -1, dtype=np.int64)
        windows[:, -1] = self.alphabet.start_code

        def step(active_windows: np.ndarray):
            nodes = self._lookup_rows(active_windows)
            return self.cum_probs[nodes], self.totals[nodes] > 0

        return sample_lockstep(
            n,
            max_length,
            gen,
            windows,
            end_code=self.alphabet.end_code,
            hist_size=self.alphabet.hist_size,
            step=step,
        )

    def top_k_strings(
        self, k: int, max_length: int = 12
    ) -> list[tuple[tuple[int, ...], float]]:
        """Best-first top-k mining with batched frequency scoring.

        Explores exactly the candidates of the recursive
        ``PredictionSuffixTree.top_k_strings`` (same heap discipline, same
        tie-breaking) but scores each popped prefix's β extensions in one
        :meth:`frequency_many` call.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k!r}")
        size = self.alphabet.size
        counter = 0
        singles = self.frequency_many([(code,) for code in range(size)])
        heap: list[tuple[float, int, tuple[int, ...]]] = []
        for code in range(size):
            heap.append((-float(singles[code]), counter, (code,)))
            counter += 1
        heapq.heapify(heap)
        results: list[tuple[tuple[int, ...], float]] = []
        while heap and len(results) < k:
            neg_est, _, codes = heapq.heappop(heap)
            est = -neg_est
            results.append((codes, est))
            if len(codes) < max_length and est > 0:
                extensions = [codes + (code,) for code in range(size)]
                estimates = self.frequency_many(extensions)
                for code in range(size):
                    ext_est = float(estimates[code])
                    if ext_est > 0:
                        heapq.heappush(heap, (-ext_est, counter, extensions[code]))
                        counter += 1
        return results


def flatten_pst(pst: PredictionSuffixTree) -> FlatPST:
    """Alias of :meth:`FlatPST.from_pst`."""
    return FlatPST.from_pst(pst)
