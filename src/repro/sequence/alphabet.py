"""Alphabets and the sentinel symbols of Section 4.1.

Symbols are encoded as small integers: ``0 .. size-1`` for the alphabet ``I``,
``size`` for the end marker ``&`` and ``size + 1`` for the start marker ``$``.
Prediction histograms are indexed over ``I ∪ {&}``, i.e. codes ``0 .. size``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Alphabet", "END_SYMBOL", "START_SYMBOL"]

END_SYMBOL = "&"
START_SYMBOL = "$"


@dataclass(frozen=True)
class Alphabet:
    """A finite symbol set ``I`` with integer encoding and sentinels."""

    symbols: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.symbols:
            raise ValueError("alphabet must contain at least one symbol")
        if len(set(self.symbols)) != len(self.symbols):
            raise ValueError("alphabet symbols must be distinct")
        for forbidden in (END_SYMBOL, START_SYMBOL):
            if forbidden in self.symbols:
                raise ValueError(f"symbol {forbidden!r} is reserved as a sentinel")

    @staticmethod
    def of_size(size: int) -> "Alphabet":
        """An alphabet of ``size`` generic symbols ``s0, s1, ...``."""
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size!r}")
        return Alphabet(tuple(f"s{i}" for i in range(size)))

    @property
    def size(self) -> int:
        """``|I|`` — the number of ordinary symbols."""
        return len(self.symbols)

    @property
    def end_code(self) -> int:
        """Integer code of the end marker ``&``."""
        return self.size

    @property
    def start_code(self) -> int:
        """Integer code of the start marker ``$``."""
        return self.size + 1

    @property
    def hist_size(self) -> int:
        """Length of a prediction histogram: ``|I| + 1`` (symbols plus ``&``)."""
        return self.size + 1

    @property
    def pst_fanout(self) -> int:
        """β of the PST: each split prepends a symbol from ``I ∪ {$}``."""
        return self.size + 1

    def code_of(self, symbol: str) -> int:
        """Integer code of a symbol (sentinels included)."""
        if symbol == END_SYMBOL:
            return self.end_code
        if symbol == START_SYMBOL:
            return self.start_code
        try:
            return self.symbols.index(symbol)
        except ValueError:
            raise KeyError(f"unknown symbol {symbol!r}") from None

    def symbol_of(self, code: int) -> str:
        """Inverse of :meth:`code_of`."""
        if code == self.end_code:
            return END_SYMBOL
        if code == self.start_code:
            return START_SYMBOL
        if 0 <= code < self.size:
            return self.symbols[code]
        raise KeyError(f"invalid symbol code {code!r}")

    def encode(self, symbols: Iterable[str]) -> np.ndarray:
        """Encode a sequence of plain symbols (no sentinels) to codes."""
        codes = [self.code_of(s) for s in symbols]
        if any(c >= self.size for c in codes):
            raise ValueError("sequences must not contain sentinel symbols")
        return np.asarray(codes, dtype=np.int64)

    def decode(self, codes: Sequence[int] | np.ndarray) -> list[str]:
        """Decode integer codes back to symbols (sentinels allowed)."""
        return [self.symbol_of(int(c)) for c in codes]
