"""Packed-key window counting over flat token arrays.

The sequence tasks repeatedly need occurrence counts of every window of
length ``<= n_max`` of a flattened corpus (substring mining, gram tables).
Instead of a Python triple loop over (sequence, position, length), every
window is encoded as a packed base-``base`` integer key — symbol codes are
the digits, most-significant first — and counted with one ``np.unique``
sort per window length.  Keys of the same length are collision-free as long
as every code is ``< base``, so the counts are *exactly* those of the dict
reference implementations.

``int64`` keys cap the packable window length at
``floor(63 / log2(base))``; callers fall back to their loop reference in
the (unrealistic) regime beyond it.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["max_packable_length", "packed_window_counts"]


def max_packable_length(base: int) -> int:
    """Longest window length whose packed key fits an ``int64``."""
    if base < 2:
        # A 1-symbol alphabet packs to key 0 at every length; length is
        # tracked separately, so any n_max is representable.
        return np.iinfo(np.int64).bits - 1
    length = 0
    key_max = 1
    limit = np.iinfo(np.int64).max
    while key_max <= limit // base:
        key_max *= base
        length += 1
    return length


def packed_window_counts(
    flat: np.ndarray,
    positions: np.ndarray,
    limits: np.ndarray,
    n_max: int,
    base: int,
) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
    """Unique windows of ``flat`` starting at ``positions``, by length.

    ``positions`` are candidate window starts (indices into ``flat``) and
    ``limits[i]`` is the exclusive end offset window ``i`` may not cross
    (its sequence boundary).  Yields ``(length, codes, counts)`` for every
    length ``1 .. n_max`` with any valid window, where ``codes`` is the
    ``(k, length)`` matrix of distinct windows (lexicographically sorted)
    and ``counts`` their occurrence counts.

    All codes gathered from ``flat`` must be ``< base`` for keys to be
    collision-free; callers choose ``base`` accordingly.
    """
    if n_max < 1:
        raise ValueError(f"n_max must be >= 1, got {n_max!r}")
    if n_max > max_packable_length(base):
        raise OverflowError(
            f"windows of length {n_max} over base {base} overflow int64 keys"
        )
    positions = np.asarray(positions, dtype=np.int64)
    limits = np.asarray(limits, dtype=np.int64)
    keys = np.zeros(positions.shape[0], dtype=np.int64)
    for length in range(1, n_max + 1):
        keep = positions + length <= limits
        if not keep.all():
            positions = positions[keep]
            limits = limits[keep]
            keys = keys[keep]
        if positions.size == 0:
            return
        keys = keys * base + flat[positions + length - 1]
        unique, counts = np.unique(keys, return_counts=True)
        codes = np.empty((unique.shape[0], length), dtype=np.int64)
        remainder = unique
        for digit in range(length - 1, -1, -1):
            remainder, codes[:, digit] = np.divmod(remainder, base)
        yield length, codes, counts
