"""The PST node payload driving the modified PrivTree (Section 4.2).

Each payload holds a context plus the vectorized list of its *occurrences* —
the positions in the flat token store where the context is immediately
followed by a symbol.  Splitting filters the parent's occurrences by the
preceding token, so the whole construction makes one pass over each
occurrence per tree level.

The split score is Equation (13):

    c(v) = ‖hist(v)‖₁ − max_x hist(v)[x]

which is monotone (Lemma 4.1) and small when the histogram has either a
small magnitude (condition C2) or low entropy (condition C3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .dataset import TokenStore

__all__ = ["PSTNodeData", "equation_13_score"]


def equation_13_score(hist: np.ndarray) -> float:
    """``‖hist‖₁ − max(hist)`` — Equation (13); 0 for an empty histogram."""
    if hist.size == 0 or hist.sum() == 0:
        return 0.0
    return float(hist.sum() - hist.max())


@dataclass
class PSTNodeData:
    """Context + occurrence positions, ready for splitting."""

    store: TokenStore
    context: tuple[int, ...]
    occurrences: np.ndarray
    occurrence_starts: np.ndarray
    _hist: np.ndarray | None = field(default=None, repr=False)

    @staticmethod
    def root(store: TokenStore) -> "PSTNodeData":
        """The empty-context root: every prediction position occurs."""
        positions, seq_starts = store.prediction_positions()
        return PSTNodeData(
            store=store,
            context=(),
            occurrences=positions,
            occurrence_starts=seq_starts,
        )

    def hist(self) -> np.ndarray:
        """The exact prediction histogram over ``I ∪ {&}`` (cached)."""
        if self._hist is None:
            next_tokens = self.store.flat[self.occurrences]
            self._hist = np.bincount(
                next_tokens, minlength=self.store.alphabet.hist_size
            )[: self.store.alphabet.hist_size].astype(np.int64)
        return self._hist

    def score(self) -> float:
        """Equation (13) on the exact histogram."""
        return equation_13_score(self.hist())

    def can_split(self) -> bool:
        """Condition C1: a context starting with ``$`` cannot be extended."""
        return not (
            self.context and self.context[0] == self.store.alphabet.start_code
        )

    def split(self) -> list["PSTNodeData"]:
        """One child per symbol in ``I ∪ {$}`` prepended to the context.

        An occurrence survives into the child whose symbol precedes the
        context; because ``$`` opens every sequence, the children partition
        the parent's occurrences exactly.
        """
        if not self.can_split():
            raise ValueError(
                f"context {self.context!r} starts with $ and cannot be split"
            )
        alphabet = self.store.alphabet
        L = len(self.context)
        prev_positions = self.occurrences - L - 1
        valid = prev_positions >= self.occurrence_starts
        prev_tokens = np.where(
            valid, self.store.flat[np.maximum(prev_positions, 0)], -1
        )
        children = []
        for code in list(range(alphabet.size)) + [alphabet.start_code]:
            mask = prev_tokens == code
            children.append(
                PSTNodeData(
                    store=self.store,
                    context=(code,) + self.context,
                    occurrences=self.occurrences[mask],
                    occurrence_starts=self.occurrence_starts[mask],
                )
            )
        return children
