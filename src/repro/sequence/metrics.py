"""Accuracy metrics for sequence tasks (Section 6.2)."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["top_k_precision", "length_distribution", "total_variation_distance"]


def top_k_precision(
    exact: Iterable[tuple[int, ...]], returned: Iterable[tuple[int, ...]]
) -> float:
    """``|K(D) ∩ A(D)| / k`` — the paper's top-k precision.

    ``k`` is taken from the exact answer set's size; the returned set is
    truncated/padded implicitly by intersection.
    """
    exact_set = set(exact)
    if not exact_set:
        raise ValueError("exact top-k set must be non-empty")
    returned_set = set(returned)
    return len(exact_set & returned_set) / len(exact_set)


def length_distribution(
    lengths: Sequence[int] | np.ndarray, max_length: int
) -> np.ndarray:
    """Empirical distribution of sequence lengths over ``0 .. max_length``.

    Lengths above ``max_length`` are clamped into the final bin, mirroring
    the ``l⊤`` truncation.
    """
    arr = np.asarray(lengths, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("lengths must be non-empty")
    clamped = np.clip(arr, 0, max_length)
    counts = np.bincount(clamped, minlength=max_length + 1)
    return counts / counts.sum()


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """``TV(p, q) = 0.5 * ||p - q||_1`` between two distributions."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    for name, dist in (("p", p), ("q", q)):
        if (dist < -1e-12).any():
            raise ValueError(f"{name} has negative entries")
        if not np.isclose(dist.sum(), 1.0, atol=1e-6):
            raise ValueError(f"{name} does not sum to 1 (sum={dist.sum():.6f})")
    return float(0.5 * np.abs(p - q).sum())
