"""Serialization of released prediction suffix trees.

Mirrors ``repro.spatial.serialize``: the published artifact (contexts,
noisy histograms, the alphabet) as plain JSON, so a private Markov model
can be shipped to consumers who only need to *use* it.

Loading validates the document — artifacts arriving through the release
store or the HTTP query service are untrusted, so inconsistent contexts,
wrong-width histograms, and non-finite values fail here with a clear
:class:`ValueError` instead of surfacing later inside the flat engine.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from .._io import atomic_write_text
from .alphabet import Alphabet
from .pst import PredictionSuffixTree, PSTNode

__all__ = ["pst_to_dict", "pst_from_dict", "save_pst", "load_pst"]

_FORMAT = "repro.prediction_suffix_tree"
_VERSION = 1


def _node_to_dict(node: PSTNode) -> dict[str, Any]:
    out: dict[str, Any] = {
        "context": list(node.context),
        "hist": [float(v) for v in node.hist],
    }
    if node.children:
        out["children"] = {
            str(code): _node_to_dict(child)
            for code, child in sorted(node.children.items())
        }
    return out


def _node_from_dict(
    data: dict[str, Any],
    alphabet: Alphabet,
    parent_context: tuple[int, ...] | None = None,
    child_code: int | None = None,
) -> PSTNode:
    try:
        context = tuple(int(c) for c in data["context"])
    except (KeyError, TypeError, ValueError):
        raise ValueError(
            f"PST node must carry an integer 'context' list, "
            f"got {data.get('context')!r}"
        ) from None
    if parent_context is not None and context != (child_code,) + parent_context:
        raise ValueError(
            f"child context {context!r} under key {child_code!r} does not "
            f"extend its parent context {parent_context!r}"
        )
    try:
        hist = np.asarray([float(v) for v in data["hist"]], dtype=float)
    except (KeyError, TypeError, ValueError):
        raise ValueError(
            f"PST node {context!r} must carry a numeric 'hist' list, "
            f"got {data.get('hist')!r}"
        ) from None
    if hist.shape != (alphabet.hist_size,):
        raise ValueError(
            f"PST node {context!r} histogram has {hist.size} entries; the "
            f"alphabet requires {alphabet.hist_size}"
        )
    if not np.all(np.isfinite(hist)):
        raise ValueError(f"non-finite histogram value in PST node {context!r}")
    children = {}
    for raw_code, child in data.get("children", {}).items():
        try:
            code = int(raw_code)
        except (TypeError, ValueError):
            raise ValueError(f"non-integer child key {raw_code!r}") from None
        children[code] = _node_from_dict(child, alphabet, context, code)
    return PSTNode(context=context, hist=hist, children=children)


def pst_to_dict(pst: PredictionSuffixTree) -> dict[str, Any]:
    """Plain-JSON representation of a released PST."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "alphabet": list(pst.alphabet.symbols),
        "root": _node_to_dict(pst.root),
    }


def pst_from_dict(data: dict[str, Any]) -> PredictionSuffixTree:
    """Inverse of :func:`pst_to_dict` (validates header and structure).

    Raises :class:`ValueError` on malformed documents: histograms whose
    width disagrees with the alphabet, non-finite values, child contexts
    that do not extend their parent's context by the child's key symbol.
    """
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a PST document: {data.get('format')!r}")
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    try:
        symbols = tuple(str(s) for s in data["alphabet"])
    except (KeyError, TypeError):
        raise ValueError(
            f"PST document must carry an 'alphabet' symbol list, "
            f"got {data.get('alphabet')!r}"
        ) from None
    alphabet = Alphabet(symbols)
    if "root" not in data:
        raise ValueError("PST document has no 'root' node")
    return PredictionSuffixTree(
        alphabet=alphabet, root=_node_from_dict(data["root"], alphabet)
    )


def save_pst(pst: PredictionSuffixTree, path: str | Path) -> None:
    """Write a PST to a JSON file (atomically: temp file + rename)."""
    atomic_write_text(path, json.dumps(pst_to_dict(pst)))


def load_pst(path: str | Path) -> PredictionSuffixTree:
    """Read a PST back from a JSON file."""
    return pst_from_dict(json.loads(Path(path).read_text()))
