"""Serialization of released prediction suffix trees.

Mirrors ``repro.spatial.serialize``: the published artifact (contexts,
noisy histograms, the alphabet) as plain JSON, so a private Markov model
can be shipped to consumers who only need to *use* it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from .alphabet import Alphabet
from .pst import PredictionSuffixTree, PSTNode

__all__ = ["pst_to_dict", "pst_from_dict", "save_pst", "load_pst"]

_FORMAT = "repro.prediction_suffix_tree"
_VERSION = 1


def _node_to_dict(node: PSTNode) -> dict[str, Any]:
    out: dict[str, Any] = {
        "context": list(node.context),
        "hist": [float(v) for v in node.hist],
    }
    if node.children:
        out["children"] = {
            str(code): _node_to_dict(child)
            for code, child in sorted(node.children.items())
        }
    return out


def _node_from_dict(data: dict[str, Any]) -> PSTNode:
    children = {
        int(code): _node_from_dict(child)
        for code, child in data.get("children", {}).items()
    }
    return PSTNode(
        context=tuple(int(c) for c in data["context"]),
        hist=np.asarray(data["hist"], dtype=float),
        children=children,
    )


def pst_to_dict(pst: PredictionSuffixTree) -> dict[str, Any]:
    """Plain-JSON representation of a released PST."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "alphabet": list(pst.alphabet.symbols),
        "root": _node_to_dict(pst.root),
    }


def pst_from_dict(data: dict[str, Any]) -> PredictionSuffixTree:
    """Inverse of :func:`pst_to_dict` (validates the header)."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a PST document: {data.get('format')!r}")
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    alphabet = Alphabet(tuple(data["alphabet"]))
    return PredictionSuffixTree(alphabet=alphabet, root=_node_from_dict(data["root"]))


def save_pst(pst: PredictionSuffixTree, path: str | Path) -> None:
    """Write a PST to a JSON file."""
    Path(path).write_text(json.dumps(pst_to_dict(pst)))


def load_pst(path: str | Path) -> PredictionSuffixTree:
    """Read a PST back from a JSON file."""
    return pst_from_dict(json.loads(Path(path).read_text()))
