"""A registry mapping the paper's dataset names to synthetic substitutes.

Each entry records the paper's reported statistics (Tables 2 and 3) next to
the generator and the scaled-down default cardinality used by the benchmark
harness, so reports can show "paper scale" and "bench scale" side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from ..mechanisms.rng import RngLike
from ..sequence.dataset import SequenceDataset
from ..spatial.dataset import SpatialDataset
from .sequence import mooclike, msnbclike
from .spatial import beijinglike, gowallalike, nyclike, roadlike

__all__ = ["DatasetSpec", "SPATIAL_DATASETS", "SEQUENCE_DATASETS", "make_dataset"]

AnyDataset = Union[SpatialDataset, SequenceDataset]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata + generator for one of the paper's datasets."""

    name: str
    kind: str  # "spatial" | "sequence"
    generator: Callable[..., AnyDataset]
    paper_cardinality: int
    default_cardinality: int
    description: str
    #: Spatial: dimensionality.  Sequence: alphabet size.
    dimensionality: int
    #: Sequence only: the paper's l_top and average length.
    l_top: int | None = None
    paper_average_length: float | None = None

    def make(self, n: int | None = None, rng: RngLike = None) -> AnyDataset:
        """Generate the dataset at ``n`` (default: bench-scale) cardinality."""
        return self.generator(n or self.default_cardinality, rng)


SPATIAL_DATASETS: dict[str, DatasetSpec] = {
    "road": DatasetSpec(
        name="road",
        kind="spatial",
        generator=roadlike,
        paper_cardinality=1_634_165,
        default_cardinality=100_000,
        description="Road-junction analogue: points on a polyline network",
        dimensionality=2,
    ),
    "gowalla": DatasetSpec(
        name="gowalla",
        kind="spatial",
        generator=gowallalike,
        paper_cardinality=107_091,
        default_cardinality=40_000,
        description="Check-in analogue: Zipf-weighted city clusters",
        dimensionality=2,
    ),
    "nyc": DatasetSpec(
        name="nyc",
        kind="spatial",
        generator=nyclike,
        paper_cardinality=98_013,
        default_cardinality=30_000,
        description="NYC-taxi analogue: correlated 4-d pickup/dropoff pairs",
        dimensionality=4,
    ),
    "beijing": DatasetSpec(
        name="beijing",
        kind="spatial",
        generator=beijinglike,
        paper_cardinality=30_000,
        default_cardinality=15_000,
        description="Beijing-taxi analogue: mild 4-d skew",
        dimensionality=4,
    ),
}

SEQUENCE_DATASETS: dict[str, DatasetSpec] = {
    "mooc": DatasetSpec(
        name="mooc",
        kind="sequence",
        generator=mooclike,
        paper_cardinality=80_362,
        default_cardinality=20_000,
        description="MOOC-behaviour analogue: 7-state sticky Markov chain",
        dimensionality=7,
        l_top=50,
        paper_average_length=13.46,
    ),
    "msnbc": DatasetSpec(
        name="msnbc",
        kind="sequence",
        generator=msnbclike,
        paper_cardinality=989_818,
        default_cardinality=50_000,
        description="Browsing analogue: 17-state chain, short sessions",
        dimensionality=17,
        l_top=20,
        paper_average_length=4.75,
    ),
}


def make_dataset(name: str, n: int | None = None, rng: RngLike = None) -> AnyDataset:
    """Generate a registered dataset by name."""
    spec = SPATIAL_DATASETS.get(name) or SEQUENCE_DATASETS.get(name)
    if spec is None:
        known = sorted(SPATIAL_DATASETS) + sorted(SEQUENCE_DATASETS)
        raise KeyError(f"unknown dataset {name!r}; known: {known}")
    return spec.make(n, rng)
