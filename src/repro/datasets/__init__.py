"""Synthetic substitutes for the paper's datasets (Tables 2 and 3)."""

from .registry import (
    SEQUENCE_DATASETS,
    SPATIAL_DATASETS,
    DatasetSpec,
    make_dataset,
)
from .sequence import markov_sequences, mooclike, msnbclike
from .spatial import beijinglike, gowallalike, nyclike, roadlike

__all__ = [
    "SEQUENCE_DATASETS",
    "SPATIAL_DATASETS",
    "DatasetSpec",
    "beijinglike",
    "gowallalike",
    "make_dataset",
    "markov_sequences",
    "mooclike",
    "msnbclike",
    "nyclike",
    "roadlike",
]
