"""Synthetic spatial datasets mimicking the paper's Table 2 corpora.

No network access is available, so each of the paper's datasets is replaced
by a generator that preserves the property the experiments exercise — the
*skewness* of the point distribution (see DESIGN.md §3):

* :func:`roadlike` — mass concentrated on a random polyline network, like
  road junctions: extreme 2-d skew.
* :func:`gowallalike` — Zipf-weighted city clusters plus background, like
  check-ins: moderate 2-d skew.
* :func:`nyclike` — 4-d correlated pickup/dropoff pairs from a few tight
  hotspots, like NYC taxis: extreme 4-d skew.
* :func:`beijinglike` — broader clusters with weak pickup/dropoff coupling:
  moderate 4-d skew.

Every generator uses two random streams: a fixed *structure* seed (the road
network / city layout — the "population", identical across calls) and the
caller's ``rng`` for sampling points, so experiment repetitions vary the
sample but not the underlying world.  All points land in the unit cube.
"""

from __future__ import annotations

import numpy as np

from ..domains.box import Box
from ..mechanisms.rng import RngLike, ensure_rng
from ..spatial.dataset import SpatialDataset

__all__ = ["roadlike", "gowallalike", "nyclike", "beijinglike"]

#: Seed of the fixed "world" (road layout, city positions, hotspots).
_STRUCTURE_SEED = 160115  # arXiv submission date of the paper


def _clip_unit(points: np.ndarray) -> np.ndarray:
    return np.clip(points, 0.0, np.nextafter(1.0, 0.0))


def roadlike(
    n: int = 100_000,
    rng: RngLike = None,
    n_segments: int = 400,
    noise_fraction: float = 0.02,
    jitter: float = 1.5e-3,
) -> SpatialDataset:
    """2-d points along a random polyline network (road-junction analogue).

    A fixed random walk lays out ``n_segments`` connected road segments;
    points are placed uniformly along segments (weighted by length) with a
    small perpendicular jitter, plus a ``noise_fraction`` uniform background.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    world = np.random.default_rng(_STRUCTURE_SEED)
    gen = ensure_rng(rng)

    # A two-tier network, like real road maps: dense tangles of short
    # streets inside a few "urban" areas, plus long sparse "rural" roads.
    towns = world.uniform(0.1, 0.9, size=(10, 2))
    town_radius = world.uniform(0.03, 0.10, size=10)
    segments = []
    n_urban = int(n_segments * 0.7)
    n_walkers = 40
    per_walker = max(1, n_urban // n_walkers)
    for w in range(n_walkers):
        town = w % len(towns)
        pos = towns[town] + world.normal(0.0, town_radius[town] / 2, size=2)
        heading = world.uniform(0, 2 * np.pi)
        for _ in range(per_walker):
            heading += world.normal(0.0, 1.1)
            step = world.uniform(0.005, 0.02)
            nxt = pos + step * np.array([np.cos(heading), np.sin(heading)])
            nxt = np.clip(nxt, 0.02, 0.98)
            segments.append((pos.copy(), nxt.copy()))
            pos = nxt
    n_rural = n_segments - len(segments)
    for _ in range(max(n_rural, 1)):
        a = towns[world.integers(len(towns))]
        b = towns[world.integers(len(towns))]
        wiggle = world.normal(0.0, 0.04, size=(2, 2))
        segments.append((np.clip(a + wiggle[0], 0.02, 0.98), np.clip(b + wiggle[1], 0.02, 0.98)))
    seg_a = np.array([s[0] for s in segments])
    seg_b = np.array([s[1] for s in segments])
    lengths = np.linalg.norm(seg_b - seg_a, axis=1)
    # Junction density is highest on urban streets: weight segments by
    # length but give the short urban segments a density boost.
    density = np.where(lengths < 0.025, 6.0, 1.0)
    weights = lengths * density
    weights = weights / weights.sum()

    n_noise = int(round(n * noise_fraction))
    n_road = n - n_noise
    which = gen.choice(len(segments), size=n_road, p=weights)
    along = gen.uniform(0.0, 1.0, size=(n_road, 1))
    base = seg_a[which] + along * (seg_b[which] - seg_a[which])
    pts = base + gen.normal(0.0, jitter, size=base.shape)
    noise = gen.uniform(0.0, 1.0, size=(n_noise, 2))
    points = _clip_unit(np.vstack([pts, noise]))
    return SpatialDataset(points=points, domain=Box.unit(2), name="roadlike")


def gowallalike(
    n: int = 40_000,
    rng: RngLike = None,
    n_cities: int = 60,
    background_fraction: float = 0.08,
) -> SpatialDataset:
    """2-d Zipf-weighted Gaussian city clusters (check-in analogue)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    world = np.random.default_rng(_STRUCTURE_SEED + 1)
    gen = ensure_rng(rng)

    centers = world.uniform(0.05, 0.95, size=(n_cities, 2))
    scales = world.uniform(0.004, 0.05, size=n_cities)
    ranks = np.arange(1, n_cities + 1, dtype=float)
    weights = (1.0 / ranks**0.9)
    weights /= weights.sum()

    n_bg = int(round(n * background_fraction))
    n_city = n - n_bg
    which = gen.choice(n_cities, size=n_city, p=weights)
    pts = centers[which] + gen.normal(0.0, 1.0, size=(n_city, 2)) * scales[
        which, None
    ]
    background = gen.uniform(0.0, 1.0, size=(n_bg, 2))
    points = _clip_unit(np.vstack([pts, background]))
    return SpatialDataset(points=points, domain=Box.unit(2), name="gowallalike")


def _trip_dataset(
    n: int,
    gen: np.random.Generator,
    centers: np.ndarray,
    scales: np.ndarray,
    weights: np.ndarray,
    same_cluster_prob: float,
    name: str,
) -> SpatialDataset:
    """4-d (pickup, dropoff) pairs from a shared 2-d hotspot mixture."""
    k = len(centers)
    pick = gen.choice(k, size=n, p=weights)
    stay = gen.uniform(size=n) < same_cluster_prob
    drop = np.where(stay, pick, gen.choice(k, size=n, p=weights))
    pickup = centers[pick] + gen.normal(0.0, 1.0, size=(n, 2)) * scales[pick, None]
    dropoff = centers[drop] + gen.normal(0.0, 1.0, size=(n, 2)) * scales[drop, None]
    points = _clip_unit(np.hstack([pickup, dropoff]))
    return SpatialDataset(points=points, domain=Box.unit(4), name=name)


def nyclike(n: int = 30_000, rng: RngLike = None) -> SpatialDataset:
    """4-d taxi-trip analogue with extreme skew (a few tight hotspots)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    world = np.random.default_rng(_STRUCTURE_SEED + 2)
    gen = ensure_rng(rng)
    k = 12
    centers = world.uniform(0.1, 0.9, size=(k, 2))
    scales = np.concatenate([world.uniform(0.004, 0.012, 4), world.uniform(0.01, 0.04, k - 4)])
    weights = np.concatenate([np.full(4, 0.20), np.full(k - 4, 0.20 / (k - 4))])
    return _trip_dataset(n, gen, centers, scales, weights, 0.55, "nyclike")


def beijinglike(n: int = 15_000, rng: RngLike = None) -> SpatialDataset:
    """4-d taxi-trip analogue with milder skew (broad, even hotspots)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    world = np.random.default_rng(_STRUCTURE_SEED + 3)
    gen = ensure_rng(rng)
    k = 16
    centers = world.uniform(0.08, 0.92, size=(k, 2))
    scales = world.uniform(0.04, 0.12, size=k)
    weights = world.dirichlet(np.full(k, 4.0))
    return _trip_dataset(n, gen, centers, scales, weights, 0.3, "beijinglike")
