"""Synthetic sequence datasets mimicking the paper's Table 3 corpora.

The sequence experiments depend only on the Markov structure and the length
distribution of the data, so the substitutes are parametric Markov chains:

* :func:`mooclike` — 7 behaviour categories, sticky skewed transitions,
  average length ≈ 13.5 with a heavy tail (``l⊤ = 50`` truncates a few %).
* :func:`msnbclike` — 17 URL categories, many very short sessions, average
  length ≈ 4.75 (``l⊤ = 20``).

As with the spatial generators, a fixed *structure* seed freezes the chain
(the "population") while the caller's ``rng`` draws the sample.  Sampling is
vectorized across sequences, one Markov step per iteration.
"""

from __future__ import annotations

import numpy as np

from ..mechanisms.rng import RngLike, ensure_rng
from ..sequence.alphabet import Alphabet
from ..sequence.dataset import SequenceDataset

__all__ = ["mooclike", "msnbclike", "markov_sequences"]

_STRUCTURE_SEED = 160115


def markov_sequences(
    alphabet: Alphabet,
    n: int,
    lengths: np.ndarray,
    initial: np.ndarray,
    transition: np.ndarray,
    rng: np.random.Generator,
    name: str,
) -> SequenceDataset:
    """Sample ``n`` sequences of the given lengths from a Markov chain.

    Vectorized: one ``rng`` draw per time step updates every still-active
    sequence via inverse-CDF sampling against the cumulative transition
    rows.
    """
    k = alphabet.size
    if transition.shape != (k, k):
        raise ValueError(f"transition must be ({k}, {k}), got {transition.shape}")
    if initial.shape != (k,):
        raise ValueError(f"initial must be ({k},), got {initial.shape}")
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape != (n,) or (lengths < 1).any():
        raise ValueError("lengths must be n positive integers")

    max_len = int(lengths.max())
    cum_init = np.cumsum(initial)
    cum_trans = np.cumsum(transition, axis=1)

    states = np.searchsorted(cum_init, rng.uniform(size=n), side="right")
    states = np.minimum(states, k - 1)
    symbols = np.full((n, max_len), -1, dtype=np.int64)
    symbols[:, 0] = states
    for t in range(1, max_len):
        active = lengths > t
        if not active.any():
            break
        u = rng.uniform(size=int(active.sum()))
        rows = cum_trans[states[active]]
        nxt = (rows < u[:, None]).sum(axis=1)
        nxt = np.minimum(nxt, k - 1)
        states = states.copy()
        states[active] = nxt
        symbols[active, t] = nxt
    sequences = tuple(symbols[i, : lengths[i]].copy() for i in range(n))
    return SequenceDataset(alphabet=alphabet, sequences=sequences, name=name)


def _skewed_transition(
    world: np.random.Generator, k: int, stickiness: float, concentration: float
) -> tuple[np.ndarray, np.ndarray]:
    """A random transition matrix with self-loops plus a skewed initial law."""
    transition = world.dirichlet(np.full(k, concentration), size=k)
    transition = (1.0 - stickiness) * transition + stickiness * np.eye(k)
    transition /= transition.sum(axis=1, keepdims=True)
    initial = world.dirichlet(np.full(k, concentration))
    return initial, transition


def mooclike(n: int = 20_000, rng: RngLike = None) -> SequenceDataset:
    """7-symbol learner-behaviour analogue: avg length ≈ 13.5, tail past 50."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    world = np.random.default_rng(_STRUCTURE_SEED + 10)
    gen = ensure_rng(rng)
    alphabet = Alphabet.of_size(7)
    initial, transition = _skewed_transition(world, 7, stickiness=0.35, concentration=0.5)
    # Negative-binomial lengths: mean ~13.5 with a long tail.
    lengths = 1 + gen.negative_binomial(2, 2.0 / 14.5, size=n)
    return markov_sequences(
        alphabet, n, lengths, initial, transition, gen, "mooclike"
    )


def msnbclike(n: int = 50_000, rng: RngLike = None) -> SequenceDataset:
    """17-symbol browsing analogue: many short sessions, avg length ≈ 4.75."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    world = np.random.default_rng(_STRUCTURE_SEED + 11)
    gen = ensure_rng(rng)
    alphabet = Alphabet.of_size(17)
    initial, transition = _skewed_transition(world, 17, stickiness=0.30, concentration=0.25)
    # Mixture: ~40% single-page sessions, geometric tail for the rest.
    single = gen.uniform(size=n) < 0.40
    geom = 1 + gen.geometric(1.0 / 6.8, size=n)
    lengths = np.where(single, 1, geom)
    return markov_sequences(
        alphabet, n, lengths, initial, transition, gen, "msnbclike"
    )
