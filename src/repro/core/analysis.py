"""The privacy-loss analysis behind PrivTree (Sections 3.2-3.4).

Implements, exactly:

* ``rho(x)`` — Equation (5): the per-node privacy cost of releasing the
  boolean ``x + Lap(lambda) > theta``.
* ``rho_top(x)`` — Equation (7): the closed-form upper bound of Lemma 3.1.
* ``path_cost_bound`` — the telescoping bound
  ``(2 e^gamma - 1)/(e^gamma - 1) / lambda`` from the proof of Theorem 3.1.
* Calibration helpers realizing Theorem 3.1 / Corollary 1: given ε and the
  tree fanout β, the noise scale λ and decay δ PrivTree must use.

These functions are pure and deterministic; the tests check Lemma 3.1
pointwise and property-based, and the Figure 2 bench plots them.
"""

from __future__ import annotations

import math

from ..mechanisms.laplace import laplace_logsf, laplace_sf

__all__ = [
    "rho",
    "rho_top",
    "path_cost_bound",
    "lambda_for_epsilon",
    "epsilon_for_lambda",
    "delta_for_lambda",
    "simpletree_scale",
    "split_probability",
]


def rho(x: float, lam: float, theta: float = 0.0) -> float:
    """Equation (5): ``ln( Pr[x + Lap(lam) > theta] / Pr[x-1 + Lap(lam) > theta] )``.

    This is the privacy cost of revealing that a node with biased count ``x``
    was split, relative to the neighboring dataset where the count is
    ``x - 1``.  Computed in log-space for numerical stability far into the
    tails.
    """
    if not lam > 0:
        raise ValueError(f"lam must be positive, got {lam!r}")
    return laplace_logsf(theta, lam, loc=x) - laplace_logsf(theta, lam, loc=x - 1)


def rho_top(x: float, lam: float, theta: float = 0.0) -> float:
    """Equation (7): the Lemma 3.1 upper bound of :func:`rho`.

    ``1/lam`` below ``theta + 1``, decaying as ``exp((theta+1-x)/lam)/lam``
    above it.
    """
    if not lam > 0:
        raise ValueError(f"lam must be positive, got {lam!r}")
    if x < theta + 1:
        return 1.0 / lam
    return math.exp((theta + 1 - x) / lam) / lam


def path_cost_bound(lam: float, gamma: float) -> float:
    """Total privacy cost of an arbitrary root-to-leaf path (proof of Thm 3.1).

    With decay ``delta = gamma * lam`` per level, the biased counts along a
    path drop by at least ``delta`` per level, so the telescoped sum of
    :func:`rho_top` is at most ``(2 e^gamma - 1)/(e^gamma - 1) / lam``.
    """
    if not lam > 0:
        raise ValueError(f"lam must be positive, got {lam!r}")
    if not gamma > 0:
        raise ValueError(f"gamma must be positive, got {gamma!r}")
    eg = math.exp(gamma)
    return (2.0 * eg - 1.0) / (eg - 1.0) / lam


def lambda_for_epsilon(epsilon: float, fanout: int, gamma: float | None = None) -> float:
    """Noise scale λ that makes PrivTree ε-DP (Theorem 3.1 / Corollary 1).

    With the recommended ``gamma = ln(fanout)`` (Lemma 3.2's convergence
    choice) this is ``(2β - 1)/(β - 1) / ε``.
    """
    if not epsilon > 0:
        raise ValueError(f"epsilon must be positive, got {epsilon!r}")
    if fanout < 2:
        raise ValueError(f"fanout must be at least 2, got {fanout!r}")
    if gamma is None:
        gamma = math.log(fanout)
    if not gamma > 0:
        raise ValueError(f"gamma must be positive, got {gamma!r}")
    eg = math.exp(gamma)
    return (2.0 * eg - 1.0) / (eg - 1.0) / epsilon


def epsilon_for_lambda(lam: float, fanout: int, gamma: float | None = None) -> float:
    """The ε actually guaranteed by noise scale ``lam`` (inverse of above)."""
    if not lam > 0:
        raise ValueError(f"lam must be positive, got {lam!r}")
    if gamma is None:
        if fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {fanout!r}")
        gamma = math.log(fanout)
    return path_cost_bound(lam, gamma)


def delta_for_lambda(lam: float, fanout: int, gamma: float | None = None) -> float:
    """Decay factor ``delta = gamma * lam`` (default ``gamma = ln β``, §3.4)."""
    if not lam > 0:
        raise ValueError(f"lam must be positive, got {lam!r}")
    if gamma is None:
        if fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {fanout!r}")
        gamma = math.log(fanout)
    return gamma * lam


def simpletree_scale(epsilon: float, height: int) -> float:
    """Noise scale SimpleTree (Algorithm 1) needs: ``h / ε`` (Section 3.1)."""
    if not epsilon > 0:
        raise ValueError(f"epsilon must be positive, got {epsilon!r}")
    if height < 1:
        raise ValueError(f"height must be at least 1, got {height!r}")
    return height / epsilon


def split_probability(biased_count: float, lam: float, theta: float = 0.0) -> float:
    """``Pr[b + Lap(lam) > theta]`` — the chance a node with biased count b splits.

    At the floor ``b = theta - delta`` with ``delta = lam * ln(beta)`` this
    equals ``1/(2 beta)``, the quantity Lemma 3.2's convergence argument uses.
    """
    return laplace_sf(theta, lam, loc=biased_count)
