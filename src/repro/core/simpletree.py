"""SimpleTree — Algorithm 1 of the paper (the h-limited baseline).

The classical private hierarchical decomposition: every node's exact score
gets i.i.d. ``Lap(lam)`` noise and a node splits when its noisy score exceeds
``theta`` *and* the height limit ``h`` has not been reached.  Differential
privacy requires ``lam >= h / epsilon`` (Section 3.1), which is exactly the
dilemma PrivTree removes.

Unlike PrivTree, the noisy scores of Algorithm 1 *are* part of the release:
they are stored on each node as ``noisy_score``.
"""

from __future__ import annotations

from typing import TypeVar

from ..domains.base import NodePayload
from ..mechanisms.laplace import laplace_noise
from ..mechanisms.rng import RngLike, ensure_rng
from ..telemetry import span as _span
from .analysis import simpletree_scale
from .node import DecompositionTree, TreeNode

__all__ = ["simpletree", "simpletree_for_epsilon"]

P = TypeVar("P", bound=NodePayload)


def simpletree(
    root_payload: P,
    lam: float,
    theta: float,
    height: int,
    rng: RngLike = None,
) -> DecompositionTree[P]:
    """Run SimpleTree (Algorithm 1).

    Parameters
    ----------
    root_payload:
        Domain + data for the whole space.
    lam:
        Laplace scale; must be at least ``height / epsilon`` for ε-DP.
    theta:
        Split threshold.
    height:
        The pre-defined limit ``h``: nodes at ``depth >= height - 1`` are
        never split, so the tree has at most ``height`` levels.
    """
    if height < 1:
        raise ValueError(f"height must be at least 1, got {height!r}")
    if not lam > 0:
        raise ValueError(f"lam must be positive, got {lam!r}")
    gen = ensure_rng(rng)
    root = TreeNode(payload=root_payload, depth=0)
    level: list[TreeNode[P]] = [root]
    split_many = getattr(type(root_payload), "split_many", None)
    while level:
        # Per-level span only; attrs stay at frontier shape + split count.
        with _span(
            "simpletree.level", depth=level[0].depth, frontier=len(level)
        ) as level_span:
            # One batched draw per level; numpy's sized laplace consumes the
            # same stream as per-node scalar draws, so results are
            # bit-identical.
            noise = laplace_noise(lam, size=len(level), rng=gen)
            to_split: list[TreeNode[P]] = []
            for node, perturbation in zip(level, noise):
                noisy = node.payload.score() + float(perturbation)
                node.noisy_score = noisy
                if (
                    noisy > theta
                    and node.depth < height - 1
                    and node.payload.can_split()
                ):
                    to_split.append(node)
            if split_many is not None:
                children_lists = split_many([node.payload for node in to_split])
            else:
                children_lists = [node.payload.split() for node in to_split]
            next_level: list[TreeNode[P]] = []
            for node, child_payloads in zip(to_split, children_lists):
                node.children = [
                    TreeNode(payload=child, depth=node.depth + 1)
                    for child in child_payloads
                ]
                next_level.extend(node.children)
            level_span.set(split=len(to_split))
            level = next_level
    return DecompositionTree(root=root)


def simpletree_for_epsilon(
    root_payload: P,
    epsilon: float,
    theta: float,
    height: int,
    rng: RngLike = None,
) -> DecompositionTree[P]:
    """SimpleTree with the noise scale set to the ε-DP minimum ``h/ε``."""
    return simpletree(
        root_payload,
        lam=simpletree_scale(epsilon, height),
        theta=theta,
        height=height,
        rng=rng,
    )
