"""PrivTree — Algorithm 2 of the paper, generic over the domain.

The engine walks the frontier level by level.  For each node ``v`` it

1. computes the biased score ``b(v) = max(theta - delta, score(v) - depth(v) * delta)``
   (Equation (8)),
2. perturbs it: ``bhat(v) = b(v) + Lap(lam)``,
3. splits ``v`` iff ``bhat(v) > theta``.

All of a level's Laplace perturbations are drawn in a single batched RNG
call.  numpy fills a sized ``Generator.laplace`` request from the same
underlying stream, in the same order, as repeated scalar calls, so the
decomposition is bit-identical to the historical one-draw-per-node engine:
the draw order remains BFS over splittable nodes only.

No height limit is needed: the decaying bias makes the expected tree size at
most twice the noise-free tree (Lemma 3.2).  The engine works on any
:class:`~repro.domains.base.NodePayload` — spatial boxes with point sets,
product domains, or PST contexts — as long as the payload's score is
monotone under splitting.

Released artifacts must not expose the scores used here; the spatial and
sequence wrappers add noisy counts in a separate, separately-budgeted
postprocessing pass (§3.4).
"""

from __future__ import annotations

import warnings
from typing import TypeVar

from ..domains.base import NodePayload
from ..mechanisms.laplace import laplace_noise
from ..mechanisms.rng import RngLike, ensure_rng
from ..telemetry import span as _span
from .node import DecompositionTree, TreeNode
from .params import PrivTreeParams

__all__ = ["privtree", "MaxDepthWarning", "DEFAULT_MAX_DEPTH"]

P = TypeVar("P", bound=NodePayload)

#: Implementation guard, not part of the paper's algorithm: Lemma 3.2 bounds
#: the *expected* tree size, but a hard stop protects against pathological
#: RNG streams and float-resolution degeneracy.  At fanout 4 a depth-64 tree
#: would already hold 4^64 nodes, so the guard is far outside normal operation.
DEFAULT_MAX_DEPTH = 64


class MaxDepthWarning(UserWarning):
    """Emitted if the max-depth guard truncated the decomposition."""


def privtree(
    root_payload: P,
    params: PrivTreeParams,
    rng: RngLike = None,
    max_depth: int | None = DEFAULT_MAX_DEPTH,
) -> DecompositionTree[P]:
    """Run PrivTree (Algorithm 2) from ``root_payload``.

    Parameters
    ----------
    root_payload:
        Domain + data for the whole space (``dom(v1) = Ω``).
    params:
        Calibrated noise scale / decay / threshold; build with
        :meth:`PrivTreeParams.calibrate`.
    rng:
        Seed or generator for the Laplace noise.
    max_depth:
        Safety guard (see :data:`DEFAULT_MAX_DEPTH`); ``None`` disables it.

    Returns
    -------
    DecompositionTree
        The decomposition; node scores are *not* stored on the returned tree
        (per Algorithm 2 line 11, all point counts are removed).
    """
    gen = ensure_rng(rng)
    root = TreeNode(payload=root_payload, depth=0)
    level: list[TreeNode[P]] = [root]
    guard_hit = False
    floor = params.floor()
    # Payload classes may vectorize a whole level's splits (see
    # SpatialNodeData.split_many); others fall back to node-by-node split().
    split_many = getattr(type(root_payload), "split_many", None)
    while level:
        # Per-level span only (never per-node): frontier shape and split
        # counts are safe to trace, raw points and scores are not.
        with _span(
            "privtree.level", depth=level[0].depth, frontier=len(level)
        ) as level_span:
            eligible: list[TreeNode[P]] = []
            for node in level:
                if not node.payload.can_split():
                    continue
                if max_depth is not None and node.depth >= max_depth:
                    guard_hit = True
                    continue
                eligible.append(node)
            if not eligible:
                level_span.set(eligible=0, split=0)
                break
            noise = laplace_noise(params.lam, size=len(eligible), rng=gen)
            to_split: list[TreeNode[P]] = []
            for node, perturbation in zip(eligible, noise):
                biased = max(floor, node.payload.score() - node.depth * params.delta)
                if biased + perturbation > params.theta:
                    to_split.append(node)
            if split_many is not None:
                children_lists = split_many([node.payload for node in to_split])
            else:
                children_lists = [node.payload.split() for node in to_split]
            next_level: list[TreeNode[P]] = []
            for node, child_payloads in zip(to_split, children_lists):
                node.children = [
                    TreeNode(payload=child, depth=node.depth + 1)
                    for child in child_payloads
                ]
                next_level.extend(node.children)
            level_span.set(eligible=len(eligible), split=len(to_split))
            level = next_level
    if guard_hit:
        warnings.warn(
            f"PrivTree hit the max_depth={max_depth} guard; the decomposition "
            "was truncated (this is outside the paper's analysis)",
            MaxDepthWarning,
            stacklevel=2,
        )
    return DecompositionTree(root=root)
