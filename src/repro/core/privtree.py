"""PrivTree — Algorithm 2 of the paper, generic over the domain.

The engine walks a frontier of unvisited nodes.  For each node ``v`` it

1. computes the biased score ``b(v) = max(theta - delta, score(v) - depth(v) * delta)``
   (Equation (8)),
2. perturbs it: ``bhat(v) = b(v) + Lap(lam)``,
3. splits ``v`` iff ``bhat(v) > theta``.

No height limit is needed: the decaying bias makes the expected tree size at
most twice the noise-free tree (Lemma 3.2).  The engine works on any
:class:`~repro.domains.base.NodePayload` — spatial boxes with point sets,
product domains, or PST contexts — as long as the payload's score is
monotone under splitting.

Released artifacts must not expose the scores used here; the spatial and
sequence wrappers add noisy counts in a separate, separately-budgeted
postprocessing pass (§3.4).
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import TypeVar

from ..domains.base import NodePayload
from ..mechanisms.laplace import laplace_noise
from ..mechanisms.rng import RngLike, ensure_rng
from .node import DecompositionTree, TreeNode
from .params import PrivTreeParams

__all__ = ["privtree", "MaxDepthWarning", "DEFAULT_MAX_DEPTH"]

P = TypeVar("P", bound=NodePayload)

#: Implementation guard, not part of the paper's algorithm: Lemma 3.2 bounds
#: the *expected* tree size, but a hard stop protects against pathological
#: RNG streams and float-resolution degeneracy.  At fanout 4 a depth-64 tree
#: would already hold 4^64 nodes, so the guard is far outside normal operation.
DEFAULT_MAX_DEPTH = 64


class MaxDepthWarning(UserWarning):
    """Emitted if the max-depth guard truncated the decomposition."""


def privtree(
    root_payload: P,
    params: PrivTreeParams,
    rng: RngLike = None,
    max_depth: int | None = DEFAULT_MAX_DEPTH,
) -> DecompositionTree[P]:
    """Run PrivTree (Algorithm 2) from ``root_payload``.

    Parameters
    ----------
    root_payload:
        Domain + data for the whole space (``dom(v1) = Ω``).
    params:
        Calibrated noise scale / decay / threshold; build with
        :meth:`PrivTreeParams.calibrate`.
    rng:
        Seed or generator for the Laplace noise.
    max_depth:
        Safety guard (see :data:`DEFAULT_MAX_DEPTH`); ``None`` disables it.

    Returns
    -------
    DecompositionTree
        The decomposition; node scores are *not* stored on the returned tree
        (per Algorithm 2 line 11, all point counts are removed).
    """
    gen = ensure_rng(rng)
    root = TreeNode(payload=root_payload, depth=0)
    frontier: deque[TreeNode[P]] = deque([root])
    guard_hit = False
    while frontier:
        node = frontier.popleft()
        if not node.payload.can_split():
            continue
        if max_depth is not None and node.depth >= max_depth:
            guard_hit = True
            continue
        biased = max(
            params.floor(),
            node.payload.score() - node.depth * params.delta,
        )
        noisy = biased + laplace_noise(params.lam, rng=gen)
        if noisy > params.theta:
            node.children = [
                TreeNode(payload=child, depth=node.depth + 1)
                for child in node.payload.split()
            ]
            frontier.extend(node.children)
    if guard_hit:
        warnings.warn(
            f"PrivTree hit the max_depth={max_depth} guard; the decomposition "
            "was truncated (this is outside the paper's analysis)",
            MaxDepthWarning,
            stacklevel=2,
        )
    return DecompositionTree(root=root)
