"""Tree nodes shared by the PrivTree and SimpleTree engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Iterator, TypeVar

__all__ = ["TreeNode", "DecompositionTree"]

P = TypeVar("P")


@dataclass
class TreeNode(Generic[P]):
    """One node of a decomposition tree.

    ``payload`` is the application object (spatial node data, PST node, ...)
    that knows its domain, its data subset, and its score.  ``noisy_score``
    records the noisy value the engine compared against the threshold — kept
    for SimpleTree (whose released counts are exactly these values) and for
    diagnostics; PrivTree's released artifacts never expose it.
    """

    payload: P
    depth: int
    noisy_score: float | None = None
    children: list["TreeNode[P]"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children

    def iter_nodes(self) -> Iterator["TreeNode[P]"]:
        """All nodes of the subtree, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_leaves(self) -> Iterator["TreeNode[P]"]:
        """All leaves of the subtree, left-to-right."""
        for node in self.iter_nodes():
            if node.is_leaf:
                yield node


@dataclass
class DecompositionTree(Generic[P]):
    """A finished decomposition: the root node plus simple statistics."""

    root: TreeNode[P]

    @property
    def size(self) -> int:
        """Total number of nodes (the ``|T|`` of Lemma 3.2)."""
        return sum(1 for _ in self.root.iter_nodes())

    @property
    def leaf_count(self) -> int:
        """Number of leaves."""
        return sum(1 for _ in self.root.iter_leaves())

    @property
    def height(self) -> int:
        """Maximum depth over all nodes (root has depth 0)."""
        return max(node.depth for node in self.root.iter_nodes())

    def nodes(self) -> list[TreeNode[P]]:
        """All nodes, pre-order."""
        return list(self.root.iter_nodes())

    def leaves(self) -> list[TreeNode[P]]:
        """All leaves, left-to-right."""
        return list(self.root.iter_leaves())
