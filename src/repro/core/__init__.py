"""The paper's core contribution: PrivTree and its privacy analysis."""

from .analysis import (
    delta_for_lambda,
    epsilon_for_lambda,
    lambda_for_epsilon,
    path_cost_bound,
    rho,
    rho_top,
    simpletree_scale,
    split_probability,
)
from .node import DecompositionTree, TreeNode
from .params import PrivTreeParams
from .privtree import DEFAULT_MAX_DEPTH, MaxDepthWarning, privtree
from .simpletree import simpletree, simpletree_for_epsilon

__all__ = [
    "DEFAULT_MAX_DEPTH",
    "DecompositionTree",
    "MaxDepthWarning",
    "PrivTreeParams",
    "TreeNode",
    "delta_for_lambda",
    "epsilon_for_lambda",
    "lambda_for_epsilon",
    "path_cost_bound",
    "privtree",
    "rho",
    "rho_top",
    "simpletree",
    "simpletree_for_epsilon",
    "simpletree_scale",
    "split_probability",
]
