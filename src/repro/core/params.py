"""Parameter calibration for PrivTree (Theorem 3.1 / Corollary 1, §3.4)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from .analysis import delta_for_lambda, lambda_for_epsilon

__all__ = ["PrivTreeParams"]


@dataclass(frozen=True)
class PrivTreeParams:
    """Everything PrivTree needs to run: noise scale, decay, and threshold.

    Build one with :meth:`calibrate` to get the paper's recommended setting
    (Corollary 1): ``lam = (2β-1)/(β-1) * sensitivity / ε`` and
    ``delta = lam * ln β``, with ``theta = 0``.

    Attributes
    ----------
    lam:
        Scale of the Laplace noise added to each biased score.
    delta:
        The per-level decay subtracted from scores (``δ`` in the paper).
    theta:
        Split threshold (``θ``); the paper recommends and defaults to 0.
    fanout:
        β — the number of children per split; only used for reporting and
        for the Lemma 3.2 convergence guarantee.
    """

    lam: float
    delta: float
    theta: float = 0.0
    fanout: int = 4

    def __post_init__(self) -> None:
        if not self.lam > 0:
            raise ValueError(f"lam must be positive, got {self.lam!r}")
        if not self.delta > 0:
            raise ValueError(f"delta must be positive, got {self.delta!r}")
        if self.fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {self.fanout!r}")

    @staticmethod
    def calibrate(
        epsilon: float,
        fanout: int,
        sensitivity: float = 1.0,
        theta: float = 0.0,
        gamma: float | None = None,
    ) -> "PrivTreeParams":
        """Calibrate λ and δ for ε-DP.

        ``sensitivity`` scales the noise for score functions whose value can
        change by more than 1 between neighboring datasets — the §3.5
        multi-leaf extension and the Theorem 4.1 sequence setting (where it
        is ``l⊤``) both enter here.
        """
        if not sensitivity > 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity!r}")
        lam = lambda_for_epsilon(epsilon, fanout, gamma) * sensitivity
        delta = delta_for_lambda(lam, fanout, gamma)
        return PrivTreeParams(lam=lam, delta=delta, theta=theta, fanout=fanout)

    @property
    def gamma(self) -> float:
        """The ratio ``delta / lam`` (``γ`` in Theorem 3.1)."""
        return self.delta / self.lam

    def floor(self) -> float:
        """The biased-count floor ``theta - delta`` of Equation (8)."""
        return self.theta - self.delta

    def split_probability_at_floor(self) -> float:
        """``Pr[split]`` for a node at the floor — ``1/(2β)`` when γ = ln β."""
        return 0.5 * math.exp(-self.gamma)
