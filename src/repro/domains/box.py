"""Axis-aligned boxes: the sub-domains of spatial decompositions.

A :class:`Box` is the ``dom(v)`` of Section 2.2: a half-open hyper-rectangle
``[low, high)`` in d dimensions.  Boxes know how to bisect themselves (all
dimensions at once for a 2^d quadtree split, or a subset of dimensions for
the round-robin splits used in the Figure 8 fanout ablation) and how to
answer the geometric predicates the range-count traversal needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """A half-open axis-aligned hyper-rectangle ``[low, high)``.

    ``low`` and ``high`` are tuples so the box is hashable and immutable;
    conversion to numpy happens at the predicate boundary.
    """

    low: tuple[float, ...]
    high: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.low) != len(self.high):
            raise ValueError(
                f"low has {len(self.low)} dims but high has {len(self.high)}"
            )
        if len(self.low) == 0:
            raise ValueError("a box must have at least one dimension")
        for lo, hi in zip(self.low, self.high):
            if not lo < hi:
                raise ValueError(f"degenerate extent [{lo}, {hi})")

    @staticmethod
    def from_arrays(low: Iterable[float], high: Iterable[float]) -> "Box":
        """Build a box from any float iterables (e.g. numpy arrays)."""
        return Box(tuple(float(x) for x in low), tuple(float(x) for x in high))

    @classmethod
    def _trusted(cls, low: tuple[float, ...], high: tuple[float, ...]) -> "Box":
        """Construct without re-validating (internal: inputs already checked)."""
        box = object.__new__(cls)
        object.__setattr__(box, "low", low)
        object.__setattr__(box, "high", high)
        return box

    @staticmethod
    def unit(ndim: int) -> "Box":
        """The unit cube ``[0, 1)^ndim``."""
        return Box((0.0,) * ndim, (1.0,) * ndim)

    @staticmethod
    def bounding(points: np.ndarray, padding: float = 1e-9) -> "Box":
        """Smallest box containing all ``points`` (with a half-open pad)."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        lows = pts.min(axis=0)
        highs = pts.max(axis=0)
        span = np.maximum(highs - lows, 1.0)
        return Box.from_arrays(lows, highs + padding * span)

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.low)

    @property
    def extents(self) -> tuple[float, ...]:
        """Side length per dimension."""
        return tuple(hi - lo for lo, hi in zip(self.low, self.high))

    @property
    def volume(self) -> float:
        """Product of side lengths (``|dom(v)|`` in the paper)."""
        vol = 1.0
        for lo, hi in zip(self.low, self.high):
            vol *= hi - lo
        return vol

    @property
    def center(self) -> tuple[float, ...]:
        """Midpoint of the box."""
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.low, self.high))

    # ------------------------------------------------------------------
    # Geometric predicates
    # ------------------------------------------------------------------

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of which rows of ``points`` fall inside the box."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != self.ndim:
            raise ValueError(
                f"points must have shape (n, {self.ndim}), got {pts.shape}"
            )
        low = np.asarray(self.low)
        high = np.asarray(self.high)
        return np.all((pts >= low) & (pts < high), axis=1)

    def count_points(self, points: np.ndarray) -> int:
        """Number of rows of ``points`` inside the box."""
        return int(self.contains_points(points).sum())

    def contains_box(self, other: "Box") -> bool:
        """Whether ``other`` lies entirely within this box."""
        self._check_same_ndim(other)
        return all(
            slo <= olo and ohi <= shi
            for slo, shi, olo, ohi in zip(self.low, self.high, other.low, other.high)
        )

    def intersects(self, other: "Box") -> bool:
        """Whether the two boxes overlap on a set of positive volume."""
        self._check_same_ndim(other)
        return all(
            olo < shi and slo < ohi
            for slo, shi, olo, ohi in zip(self.low, self.high, other.low, other.high)
        )

    def intersection(self, other: "Box") -> "Box | None":
        """The overlapping box, or ``None`` if the overlap is empty."""
        if not self.intersects(other):
            return None
        low = tuple(max(a, b) for a, b in zip(self.low, other.low))
        high = tuple(min(a, b) for a, b in zip(self.high, other.high))
        return Box(low, high)

    def overlap_fraction(self, other: "Box") -> float:
        """``|self ∩ other| / |self|`` — the uniform-estimate weight of §2.2."""
        inter = self.intersection(other)
        if inter is None:
            return 0.0
        return inter.volume / self.volume

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------

    def bisect(self, dims: Sequence[int] | None = None) -> list["Box"]:
        """Bisect the box along ``dims`` (all dimensions when ``None``).

        Bisecting ``k`` dimensions yields ``2^k`` children in a fixed
        lexicographic order; with ``k = ndim`` this is the quadtree/octree
        split of the paper.
        """
        if dims is None:
            dims = list(range(self.ndim))
        dims = list(dims)
        if not dims:
            raise ValueError("must bisect at least one dimension")
        seen: set[int] = set()
        for d in dims:
            if d < 0 or d >= self.ndim:
                raise ValueError(f"dimension {d} out of range for ndim={self.ndim}")
            if d in seen:
                raise ValueError(f"dimension {d} repeated")
            seen.add(d)
        mid = {}
        for d in dims:
            m = (self.low[d] + self.high[d]) / 2.0
            if not self.low[d] < m < self.high[d]:
                raise ValueError(
                    f"degenerate extent [{self.low[d]}, {self.high[d]}) at "
                    f"dimension {d}: midpoint collapses onto an endpoint"
                )
            mid[d] = m
        # Children skip per-box revalidation: every extent is either inherited
        # from this (already valid) box or one of the above-checked halves.
        children = []
        for choice in itertools.product((0, 1), repeat=len(dims)):
            low = list(self.low)
            high = list(self.high)
            for bit, d in zip(choice, dims):
                if bit == 0:
                    high[d] = mid[d]
                else:
                    low[d] = mid[d]
            children.append(Box._trusted(tuple(low), tuple(high)))
        return children

    def can_bisect(self, dims: Sequence[int] | None = None) -> bool:
        """Whether bisection keeps every child extent strictly positive.

        Guards against float-resolution degeneracy: once an extent is so
        small that its midpoint equals an endpoint, the box is atomic.
        """
        if dims is None:
            dims = range(self.ndim)
        for d in dims:
            lo, hi = self.low[d], self.high[d]
            mid = (lo + hi) / 2.0
            if not (lo < mid < hi):
                return False
        return True

    # `Domain` protocol: default split bisects every dimension.
    def split(self) -> list["Box"]:
        """Protocol alias for :meth:`bisect` over all dimensions."""
        return self.bisect()

    def can_split(self) -> bool:
        """Protocol alias for :meth:`can_bisect` over all dimensions."""
        return self.can_bisect()

    def _check_same_ndim(self, other: "Box") -> None:
        if other.ndim != self.ndim:
            raise ValueError(
                f"dimension mismatch: {self.ndim} vs {other.ndim}"
            )
